//! Property-based tests for the EVM substrate: U256 arithmetic laws,
//! byte-encoding round trips and Keccak-256 behaviour.

use mufuzz_evm::{keccak256, Address, U256};
use proptest::prelude::*;

fn arb_u256() -> impl Strategy<Value = U256> {
    proptest::array::uniform32(any::<u8>()).prop_map(U256::from_be_bytes)
}

proptest! {
    #[test]
    fn add_is_commutative(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
    }

    #[test]
    fn add_then_sub_round_trips(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a.wrapping_add(b).wrapping_sub(b), a);
    }

    #[test]
    fn mul_is_commutative_and_distributes_overflow_flag(a in arb_u256(), b in arb_u256()) {
        let (p1, o1) = a.overflowing_mul(b);
        let (p2, o2) = b.overflowing_mul(a);
        prop_assert_eq!(p1, p2);
        prop_assert_eq!(o1, o2);
    }

    #[test]
    fn div_rem_reconstructs_dividend(a in arb_u256(), b in arb_u256()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(b);
        prop_assert!(r < b);
        prop_assert_eq!(q.wrapping_mul(b).wrapping_add(r), a);
    }

    #[test]
    fn checked_add_agrees_with_overflowing_add(a in arb_u256(), b in arb_u256()) {
        let (sum, overflow) = a.overflowing_add(b);
        match a.checked_add(b) {
            Some(v) => {
                prop_assert!(!overflow);
                prop_assert_eq!(v, sum);
            }
            None => prop_assert!(overflow),
        }
    }

    #[test]
    fn be_bytes_round_trip(a in arb_u256()) {
        prop_assert_eq!(U256::from_be_bytes(a.to_be_bytes()), a);
    }

    #[test]
    fn decimal_string_round_trip(a in arb_u256()) {
        prop_assert_eq!(U256::from_dec(&a.to_dec_string()).unwrap(), a);
    }

    #[test]
    fn hex_string_round_trip(a in arb_u256()) {
        prop_assert_eq!(U256::from_hex(&a.to_hex_string()).unwrap(), a);
    }

    #[test]
    fn ordering_is_consistent_with_subtraction(a in arb_u256(), b in arb_u256()) {
        let (_, borrow) = a.overflowing_sub(b);
        // a < b exactly when a - b borrows.
        prop_assert_eq!(a < b, borrow);
    }

    #[test]
    fn shifts_compose(a in arb_u256(), s in 0u32..255) {
        // Shifting left then right clears the high bits but preserves the rest.
        let masked = a.shl_bits(s).shr_bits(s);
        let expected = if s == 0 { a } else { a & (U256::MAX.shr_bits(s)) };
        prop_assert_eq!(masked, expected);
    }

    #[test]
    fn abs_diff_is_symmetric(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a.abs_diff(b), b.abs_diff(a));
        prop_assert_eq!(a.abs_diff(a), U256::ZERO);
    }

    #[test]
    fn address_round_trips_through_u256(n in any::<u64>()) {
        let addr = Address::from_low_u64(n);
        prop_assert_eq!(Address::from_u256(addr.to_u256()), addr);
    }

    #[test]
    fn keccak_is_deterministic_and_fixed_size(data in proptest::collection::vec(any::<u8>(), 0..600)) {
        let d1 = keccak256(&data);
        let d2 = keccak256(&data);
        prop_assert_eq!(d1, d2);
        prop_assert_eq!(d1.len(), 32);
    }

    #[test]
    fn keccak_distinguishes_appended_bytes(data in proptest::collection::vec(any::<u8>(), 0..200), extra in any::<u8>()) {
        let mut longer = data.clone();
        longer.push(extra);
        prop_assert_ne!(keccak256(&data), keccak256(&longer));
    }
}
