//! State-variable data-flow analysis over the AST.
//!
//! This is the information source for MuFuzz's sequence-aware mutation
//! (paper §IV-A): for each function we compute which state variables it reads
//! and writes, which of them are read inside branch conditions, and which have
//! a read-after-write (RAW) dependency *within the function itself* (e.g.
//! `invested += donations` both reads and writes `invested`).

use mufuzz_lang::{Contract, Expr, Function, LValue, Stmt, Type};
use std::collections::{BTreeMap, BTreeSet};

/// Read/write facts for one function.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FunctionAccess {
    /// Function name.
    pub name: String,
    /// State variables read anywhere in the function.
    pub reads: BTreeSet<String>,
    /// State variables written anywhere in the function.
    pub writes: BTreeSet<String>,
    /// State variables read inside a branch condition (`if`, `while`,
    /// `require`) of this function.
    pub branch_reads: BTreeSet<String>,
    /// State variables with a read-after-write dependency inside this
    /// function: the variable is written by an expression that reads the same
    /// variable (directly or via a compound assignment).
    pub raw_vars: BTreeSet<String>,
    /// Whether the function touches any state variable at all.
    pub touches_state: bool,
    /// Whether the function is payable (can receive ether).
    pub payable: bool,
}

/// Data-flow facts for a whole contract.
#[derive(Clone, Debug, Default)]
pub struct DataFlowInfo {
    /// Per-function facts, in declaration order.
    pub functions: Vec<FunctionAccess>,
    /// All state variable names.
    pub state_vars: BTreeSet<String>,
    /// State variables read in *any* branch condition of the contract.
    pub branch_read_vars: BTreeSet<String>,
}

impl DataFlowInfo {
    /// Facts for a specific function.
    pub fn function(&self, name: &str) -> Option<&FunctionAccess> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Functions that repetition should be considered for (paper §IV-A): the
    /// function has a RAW dependency on a state variable `V` within itself and
    /// `V` is read by one of the branch statements of the contract.
    pub fn repeat_candidates(&self) -> BTreeSet<String> {
        self.functions
            .iter()
            .filter(|f| f.raw_vars.iter().any(|v| self.branch_read_vars.contains(v)))
            .map(|f| f.name.clone())
            .collect()
    }

    /// Map from state variable to the functions that write it.
    pub fn writers(&self) -> BTreeMap<String, BTreeSet<String>> {
        let mut map: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for f in &self.functions {
            for v in &f.writes {
                map.entry(v.clone()).or_default().insert(f.name.clone());
            }
        }
        map
    }

    /// Map from state variable to the functions that read it.
    pub fn readers(&self) -> BTreeMap<String, BTreeSet<String>> {
        let mut map: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for f in &self.functions {
            for v in &f.reads {
                map.entry(v.clone()).or_default().insert(f.name.clone());
            }
        }
        map
    }
}

/// Analyse a contract's data flow.
pub fn analyze_contract(contract: &Contract) -> DataFlowInfo {
    let state_vars: BTreeSet<String> = contract.state_vars.iter().map(|v| v.name.clone()).collect();

    let mut functions = Vec::new();
    for f in contract.callable_functions() {
        if f.name.is_empty() {
            continue;
        }
        functions.push(analyze_function(f, &state_vars));
    }

    let branch_read_vars = functions
        .iter()
        .flat_map(|f| f.branch_reads.iter().cloned())
        .collect();

    DataFlowInfo {
        functions,
        state_vars,
        branch_read_vars,
    }
}

/// Analyse one function.
pub fn analyze_function(f: &Function, state_vars: &BTreeSet<String>) -> FunctionAccess {
    let mut access = FunctionAccess {
        name: f.name.clone(),
        payable: f.payable,
        ..Default::default()
    };
    analyze_block(&f.body, state_vars, &mut access);
    access.touches_state = !access.reads.is_empty() || !access.writes.is_empty();
    access
}

fn analyze_block(block: &[Stmt], state_vars: &BTreeSet<String>, out: &mut FunctionAccess) {
    for stmt in block {
        analyze_stmt(stmt, state_vars, out);
    }
}

fn analyze_stmt(stmt: &Stmt, state_vars: &BTreeSet<String>, out: &mut FunctionAccess) {
    match stmt {
        Stmt::Local(_, _, init) => collect_reads(init, state_vars, &mut out.reads),
        Stmt::Assign(lvalue, op, value) => {
            let target = lvalue.base_name().to_string();
            let mut rhs_reads = BTreeSet::new();
            collect_reads(value, state_vars, &mut rhs_reads);
            // A mapping index expression also reads state used in the key.
            if let LValue::Index(_, key) = lvalue {
                collect_reads(key, state_vars, &mut rhs_reads);
            }
            let is_state = state_vars.contains(&target);
            if is_state {
                out.writes.insert(target.clone());
                // Compound assignments read the target; an explicit
                // self-reference on the right-hand side also counts.
                let compound = !matches!(op, mufuzz_lang::AssignOp::Assign);
                if compound || rhs_reads.contains(&target) {
                    out.raw_vars.insert(target.clone());
                }
                if compound {
                    out.reads.insert(target.clone());
                }
            }
            out.reads.extend(rhs_reads);
        }
        Stmt::If(cond, then_block, else_block) => {
            let mut cond_reads = BTreeSet::new();
            collect_reads(cond, state_vars, &mut cond_reads);
            out.branch_reads.extend(cond_reads.iter().cloned());
            out.reads.extend(cond_reads);
            analyze_block(then_block, state_vars, out);
            analyze_block(else_block, state_vars, out);
        }
        Stmt::While(cond, body) => {
            let mut cond_reads = BTreeSet::new();
            collect_reads(cond, state_vars, &mut cond_reads);
            out.branch_reads.extend(cond_reads.iter().cloned());
            out.reads.extend(cond_reads);
            analyze_block(body, state_vars, out);
        }
        Stmt::Require(cond) => {
            let mut cond_reads = BTreeSet::new();
            collect_reads(cond, state_vars, &mut cond_reads);
            out.branch_reads.extend(cond_reads.iter().cloned());
            out.reads.extend(cond_reads);
        }
        Stmt::Transfer(to, amount) => {
            collect_reads(to, state_vars, &mut out.reads);
            collect_reads(amount, state_vars, &mut out.reads);
        }
        Stmt::ExprStmt(e) | Stmt::SelfDestruct(e) => collect_reads(e, state_vars, &mut out.reads),
        Stmt::Return(Some(e)) => collect_reads(e, state_vars, &mut out.reads),
        Stmt::Return(None) | Stmt::BugMarker => {}
    }
}

/// Collect the state variables read by an expression.
fn collect_reads(expr: &Expr, state_vars: &BTreeSet<String>, out: &mut BTreeSet<String>) {
    match expr {
        Expr::Ident(name) => {
            if state_vars.contains(name) {
                out.insert(name.clone());
            }
        }
        Expr::Index(base, key) => {
            collect_reads(base, state_vars, out);
            collect_reads(key, state_vars, out);
        }
        Expr::Binary(_, lhs, rhs) => {
            collect_reads(lhs, state_vars, out);
            collect_reads(rhs, state_vars, out);
        }
        Expr::Not(inner) | Expr::BalanceOf(inner) | Expr::Cast(_, inner) => {
            collect_reads(inner, state_vars, out)
        }
        Expr::Keccak(args) => {
            for a in args {
                collect_reads(a, state_vars, out);
            }
        }
        Expr::Send(to, amount) | Expr::CallValue(to, amount) => {
            collect_reads(to, state_vars, out);
            collect_reads(amount, state_vars, out);
        }
        Expr::DelegateCall(to, args) => {
            collect_reads(to, state_vars, out);
            for a in args {
                collect_reads(a, state_vars, out);
            }
        }
        Expr::Number(_) | Expr::Bool(_) | Expr::Env(_) => {}
    }
}

/// True if the function's parameters are all value types (mappings cannot be
/// ABI-encoded). Exposed for corpus sanity checks.
pub fn has_encodable_params(f: &Function) -> bool {
    f.params
        .iter()
        .all(|p| !matches!(p.ty, Type::Mapping(_, _)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mufuzz_lang::parse_contract_source;

    const CROWDSALE: &str = r#"
        contract Crowdsale {
            uint256 phase = 0;
            uint256 goal;
            uint256 invested;
            address owner;
            mapping(address => uint256) invests;

            constructor() public {
                goal = 100 ether;
                invested = 0;
                owner = msg.sender;
            }
            function invest(uint256 donations) public payable {
                if (invested < goal) {
                    invests[msg.sender] += donations;
                    invested += donations;
                    phase = 0;
                } else {
                    phase = 1;
                }
            }
            function refund() public {
                if (phase == 0) {
                    msg.sender.transfer(invests[msg.sender]);
                    invests[msg.sender] = 0;
                }
            }
            function withdraw() public {
                if (phase == 1) {
                    bug();
                    owner.transfer(invested);
                }
            }
        }
    "#;

    fn info() -> DataFlowInfo {
        analyze_contract(&parse_contract_source(CROWDSALE).unwrap())
    }

    #[test]
    fn matches_paper_dependency_graph() {
        // Figure 3 of the paper: invest writes invested/invests/phase and
        // reads goal/invested; refund reads phase/invests and writes invests;
        // withdraw reads phase/invested.
        let info = info();
        let invest = info.function("invest").unwrap();
        assert!(invest.writes.contains("invested"));
        assert!(invest.writes.contains("invests"));
        assert!(invest.writes.contains("phase"));
        assert!(invest.reads.contains("goal"));
        assert!(invest.reads.contains("invested"));

        let refund = info.function("refund").unwrap();
        assert!(refund.reads.contains("phase"));
        assert!(refund.reads.contains("invests"));
        assert!(refund.writes.contains("invests"));

        let withdraw = info.function("withdraw").unwrap();
        assert!(withdraw.reads.contains("phase"));
        assert!(withdraw.reads.contains("invested"));
        assert!(withdraw.writes.is_empty());
    }

    #[test]
    fn detects_raw_dependency_on_invested() {
        let info = info();
        let invest = info.function("invest").unwrap();
        assert!(invest.raw_vars.contains("invested"));
        assert!(invest.raw_vars.contains("invests"));
        // phase = 0 / 1 are plain writes, not RAW.
        assert!(!invest.raw_vars.contains("phase"));
    }

    #[test]
    fn branch_reads_include_condition_variables() {
        let info = info();
        let invest = info.function("invest").unwrap();
        assert!(invest.branch_reads.contains("invested"));
        assert!(invest.branch_reads.contains("goal"));
        let withdraw = info.function("withdraw").unwrap();
        assert!(withdraw.branch_reads.contains("phase"));
        assert!(info.branch_read_vars.contains("invested"));
    }

    #[test]
    fn repeat_candidates_single_out_invest() {
        // invest has a RAW dependency on `invested`, and `invested` is read in
        // a branch condition — exactly the paper's criterion for repetition.
        let info = info();
        let candidates = info.repeat_candidates();
        assert!(candidates.contains("invest"));
        assert!(!candidates.contains("refund"));
        assert!(!candidates.contains("withdraw"));
    }

    #[test]
    fn writers_and_readers_maps() {
        let info = info();
        let writers = info.writers();
        assert!(writers["phase"].contains("invest"));
        let readers = info.readers();
        assert!(readers["phase"].contains("refund"));
        assert!(readers["phase"].contains("withdraw"));
    }

    #[test]
    fn functions_without_state_are_flagged() {
        let src = r#"
            contract Pure {
                uint256 counter;
                function noop(uint256 x) public returns (uint256) { return x + 1; }
                function bump() public { counter += 1; }
            }
        "#;
        let info = analyze_contract(&parse_contract_source(src).unwrap());
        assert!(!info.function("noop").unwrap().touches_state);
        assert!(info.function("bump").unwrap().touches_state);
    }

    #[test]
    fn explicit_self_reference_counts_as_raw() {
        let src = r#"
            contract C {
                uint256 total;
                function add(uint256 x) public { total = total + x; }
                function reset() public { total = 0; }
            }
        "#;
        let info = analyze_contract(&parse_contract_source(src).unwrap());
        assert!(info.function("add").unwrap().raw_vars.contains("total"));
        assert!(info.function("reset").unwrap().raw_vars.is_empty());
    }

    #[test]
    fn while_and_require_conditions_count_as_branch_reads() {
        let src = r#"
            contract C {
                uint256 limit;
                uint256 count;
                function run(uint256 n) public {
                    require(count < limit);
                    while (count < n) { count += 1; }
                }
            }
        "#;
        let info = analyze_contract(&parse_contract_source(src).unwrap());
        let run = info.function("run").unwrap();
        assert!(run.branch_reads.contains("limit"));
        assert!(run.branch_reads.contains("count"));
        assert!(run.raw_vars.contains("count"));
    }

    #[test]
    fn encodable_params_check() {
        let contract = parse_contract_source(CROWDSALE).unwrap();
        assert!(has_encodable_params(contract.function("invest").unwrap()));
    }
}
