//! Initial seed generation and sequence-level (structural) mutation.
//!
//! With sequence-aware mutation enabled (paper §IV-A) the initial sequences
//! follow the data-flow-derived ordering, including the RAW-based repetition
//! of critical transactions; structural mutations preserve that ordering and
//! only vary senders, argument seeds and extra repetitions. With the component
//! disabled (the sFuzz-style baseline and the ablation variant) sequences are
//! random permutations of the callable functions and structural mutation
//! shuffles them freely.

use crate::input::{Sequence, TxInput};
use crate::mutation::InterestingValues;
use mufuzz_analysis::SequencePlan;
use mufuzz_evm::U256;
use mufuzz_lang::ContractAbi;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Generates whole sequences.
#[derive(Clone, Debug)]
pub struct SequenceGenerator {
    /// Callable function names in ABI order.
    pub callable: Vec<String>,
    /// The analysis-derived plan (ignored when sequence-aware mutation is
    /// disabled).
    pub plan: SequencePlan,
    /// Whether the plan ordering is honoured.
    pub sequence_aware: bool,
    /// Number of senders available.
    pub sender_count: usize,
}

impl SequenceGenerator {
    /// Build a generator from the ABI and the analysis plan.
    pub fn new(
        abi: &ContractAbi,
        plan: SequencePlan,
        sequence_aware: bool,
        sender_count: usize,
    ) -> SequenceGenerator {
        SequenceGenerator {
            callable: abi.functions.iter().map(|f| f.name.clone()).collect(),
            plan,
            sequence_aware,
            sender_count: sender_count.max(1),
        }
    }

    fn random_tx(
        &self,
        function: &str,
        abi: &ContractAbi,
        rng: &mut SmallRng,
        interesting: &InterestingValues,
    ) -> TxInput {
        // Seed one word per mutable *lane*: static params take one lane,
        // dynamic params (ingested ABIs) take length + content lanes, so
        // every shaped byte of the calldata starts from fuzz-chosen data.
        let (arity, payable) = abi
            .function(function)
            .map(|f| (f.lane_count(), f.payable))
            .unwrap_or((0, false));
        let mut args = Vec::with_capacity(arity);
        for _ in 0..arity {
            // Bias towards small values and interesting constants.
            let word = match rng.gen_range(0..4u8) {
                0 => U256::from_u64(rng.gen_range(0..256u64)),
                1 => U256::from_u64(rng.gen()),
                _ => interesting.pick(rng),
            };
            args.push(word);
        }
        // Ether is only attached to payable functions (non-payable ones revert
        // on any value, which every practical smart-contract fuzzer avoids by
        // reading payability from the ABI).
        let value = if payable {
            match rng.gen_range(0..4u8) {
                0 => U256::ZERO,
                1 => U256::from_u64(rng.gen_range(0..1_000u64)),
                _ => interesting.pick(rng),
            }
        } else {
            U256::ZERO
        };
        let sender = rng.gen_range(0..self.sender_count);
        TxInput::new(function, sender, value, &args)
    }

    /// Generate one fresh sequence.
    pub fn generate(
        &self,
        abi: &ContractAbi,
        rng: &mut SmallRng,
        interesting: &InterestingValues,
    ) -> Sequence {
        if self.callable.is_empty() {
            return Sequence::default();
        }
        let order: Vec<String> = if self.sequence_aware && !self.plan.mutated_order.is_empty() {
            // Alternate between the mutated (with repetition) and base orders,
            // and occasionally extend the planned sequence with extra trailing
            // calls (sequence extension, §IV-A).
            let mut order = if rng.gen_bool(0.7) {
                self.plan.mutated_order.clone()
            } else {
                self.plan.base_order.clone()
            };
            if rng.gen_bool(0.35) {
                // Replay the whole planned cycle a second time: the second
                // pass starts from the state the first pass established, which
                // is how deeper persistent states are reached.
                let again = order.clone();
                order.extend(again);
            } else if rng.gen_bool(0.3) {
                for _ in 0..rng.gen_range(1..=2usize) {
                    order.push(self.callable[rng.gen_range(0..self.callable.len())].clone());
                }
            }
            order
        } else {
            // Random order, random length between 1 and 2x the function count.
            let len = rng.gen_range(1..=self.callable.len() * 2);
            (0..len)
                .map(|_| self.callable[rng.gen_range(0..self.callable.len())].clone())
                .collect()
        };
        let txs = order
            .iter()
            .map(|name| self.random_tx(name, abi, rng, interesting))
            .collect();
        Sequence::new(txs)
    }

    /// Generate the initial corpus: plan-derived sequences plus one
    /// single-transaction sequence per callable function (so every function is
    /// exercised at least once).
    pub fn initial_sequences(
        &self,
        abi: &ContractAbi,
        count: usize,
        rng: &mut SmallRng,
        interesting: &InterestingValues,
    ) -> Vec<Sequence> {
        if self.callable.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for name in &self.callable {
            out.push(Sequence::new(vec![self.random_tx(
                name,
                abi,
                rng,
                interesting,
            )]));
        }
        while out.len() < count.max(self.callable.len()) {
            out.push(self.generate(abi, rng, interesting));
        }
        out
    }

    /// Structurally mutate a sequence (ordering / senders / repetition); the
    /// byte-level argument mutation is handled separately by the mask-guided
    /// mutator.
    pub fn mutate_structure(
        &self,
        sequence: &Sequence,
        abi: &ContractAbi,
        rng: &mut SmallRng,
        interesting: &InterestingValues,
    ) -> Sequence {
        let mut seq = sequence.clone();
        if seq.is_empty() {
            return self.generate(abi, rng, interesting);
        }
        if self.sequence_aware {
            match rng.gen_range(0..4u8) {
                // Change the sender of one transaction.
                0 => {
                    let i = rng.gen_range(0..seq.txs.len());
                    seq.txs[i].sender_index = rng.gen_range(0..self.sender_count);
                }
                // Extend the sequence with a trailing call (ordering of the
                // planned prefix is preserved).
                3 => {
                    let name = &self.callable[rng.gen_range(0..self.callable.len())];
                    let fresh = self.random_tx(name, abi, rng, interesting);
                    seq.txs.push(fresh);
                }
                // Duplicate a repetition candidate once more (sequence
                // extension, §IV-A).
                1 => {
                    let candidates: Vec<usize> = seq
                        .txs
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| self.plan.repeat_candidates.contains(&t.function))
                        .map(|(i, _)| i)
                        .collect();
                    if let Some(&i) = candidates.first() {
                        let copy = seq.txs[i].clone();
                        let at = rng.gen_range(i + 1..=seq.txs.len());
                        seq.txs.insert(at, copy);
                    } else {
                        let i = rng.gen_range(0..seq.txs.len());
                        seq.txs[i].sender_index = rng.gen_range(0..self.sender_count);
                    }
                }
                // Re-randomise the arguments of one transaction.
                _ => {
                    let i = rng.gen_range(0..seq.txs.len());
                    let fresh = self.random_tx(&seq.txs[i].function.clone(), abi, rng, interesting);
                    seq.txs[i] = fresh;
                }
            }
        } else {
            match rng.gen_range(0..4u8) {
                // Shuffle the order.
                0 => seq.txs.shuffle(rng),
                // Replace one call with a random function.
                1 => {
                    let i = rng.gen_range(0..seq.txs.len());
                    let name = &self.callable[rng.gen_range(0..self.callable.len())];
                    seq.txs[i] = self.random_tx(name, abi, rng, interesting);
                }
                // Drop a call.
                2 => {
                    if seq.txs.len() > 1 {
                        let i = rng.gen_range(0..seq.txs.len());
                        seq.txs.remove(i);
                    }
                }
                // Append a random call.
                _ => {
                    let name = &self.callable[rng.gen_range(0..self.callable.len())];
                    seq.txs.push(self.random_tx(name, abi, rng, interesting));
                }
            }
        }
        seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mufuzz_analysis::{analyze_contract, plan_sequence};
    use mufuzz_lang::compile_source;
    use rand::SeedableRng;

    const SRC: &str = r#"
        contract Crowdsale {
            uint256 phase = 0;
            uint256 goal;
            uint256 invested;
            mapping(address => uint256) invests;
            constructor() public { goal = 100 ether; }
            function invest(uint256 donations) public payable {
                if (invested < goal) { invested += donations; phase = 0; } else { phase = 1; }
            }
            function refund() public { if (phase == 0) { invests[msg.sender] = 0; } }
            function withdraw() public { if (phase == 1) { bug(); } }
        }
    "#;

    fn generator(sequence_aware: bool) -> (SequenceGenerator, mufuzz_lang::ContractAbi) {
        let compiled = compile_source(SRC).unwrap();
        let plan = plan_sequence(&analyze_contract(&compiled.contract));
        let generator = SequenceGenerator::new(&compiled.abi, plan, sequence_aware, 3);
        (generator, compiled.abi)
    }

    #[test]
    fn sequence_aware_generation_follows_the_plan() {
        let (generator, abi) = generator(true);
        let mut rng = SmallRng::seed_from_u64(1);
        let pool = InterestingValues::defaults();
        let mut saw_repeated_invest = false;
        for _ in 0..20 {
            let seq = generator.generate(&abi, &mut rng, &pool);
            let shape = seq.shape();
            // The ordering always starts with invest (the writer).
            assert!(shape.starts_with("invest"));
            if seq.txs.iter().filter(|t| t.function == "invest").count() >= 2 {
                saw_repeated_invest = true;
            }
        }
        assert!(saw_repeated_invest);
    }

    #[test]
    fn random_generation_varies_order_and_length() {
        let (generator, abi) = generator(false);
        let mut rng = SmallRng::seed_from_u64(2);
        let pool = InterestingValues::defaults();
        let shapes: std::collections::BTreeSet<String> = (0..30)
            .map(|_| generator.generate(&abi, &mut rng, &pool).shape())
            .collect();
        assert!(shapes.len() > 5, "only {} distinct shapes", shapes.len());
    }

    #[test]
    fn initial_sequences_cover_every_function() {
        let (generator, abi) = generator(true);
        let mut rng = SmallRng::seed_from_u64(3);
        let pool = InterestingValues::defaults();
        let seeds = generator.initial_sequences(&abi, 8, &mut rng, &pool);
        assert!(seeds.len() >= 8);
        for name in ["invest", "refund", "withdraw"] {
            assert!(seeds
                .iter()
                .any(|s| s.txs.iter().any(|t| t.function == name)));
        }
    }

    #[test]
    fn sequence_aware_structural_mutation_preserves_order() {
        let (generator, abi) = generator(true);
        let mut rng = SmallRng::seed_from_u64(4);
        let pool = InterestingValues::defaults();
        let base = generator.generate(&abi, &mut rng, &pool);
        for _ in 0..20 {
            let mutated = generator.mutate_structure(&base, &abi, &mut rng, &pool);
            // The relative order of distinct functions is preserved: invest
            // always precedes withdraw.
            let first_invest = mutated
                .txs
                .iter()
                .position(|t| t.function == "invest")
                .unwrap();
            let withdraw = mutated.txs.iter().position(|t| t.function == "withdraw");
            if let Some(w) = withdraw {
                assert!(first_invest < w);
            }
        }
    }

    #[test]
    fn random_structural_mutation_changes_shapes() {
        let (generator, abi) = generator(false);
        let mut rng = SmallRng::seed_from_u64(5);
        let pool = InterestingValues::defaults();
        let base = generator.generate(&abi, &mut rng, &pool);
        let mut changed = false;
        for _ in 0..20 {
            let mutated = generator.mutate_structure(&base, &abi, &mut rng, &pool);
            if mutated.shape() != base.shape() {
                changed = true;
            }
        }
        assert!(changed);
    }

    #[test]
    fn empty_contract_is_handled() {
        let compiled = compile_source("contract Empty { uint256 x; }").unwrap();
        let plan = plan_sequence(&analyze_contract(&compiled.contract));
        let generator = SequenceGenerator::new(&compiled.abi, plan, true, 2);
        let mut rng = SmallRng::seed_from_u64(6);
        let pool = InterestingValues::defaults();
        assert!(generator
            .generate(&compiled.abi, &mut rng, &pool)
            .is_empty());
        assert!(generator
            .initial_sequences(&compiled.abi, 4, &mut rng, &pool)
            .is_empty());
    }
}
