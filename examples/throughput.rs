//! Throughput benchmark of the campaign engine: fuzz the quickstart
//! PiggyBank contract with 1 worker and with N workers, report execs/sec for
//! both, and emit a machine-readable `BENCH_throughput.json` so CI can track
//! the performance trajectory across PRs.
//!
//! Run with:
//! ```text
//! cargo run --release --example throughput            # N = 4 workers
//! MUFUZZ_WORKERS=8 cargo run --release --example throughput
//! MUFUZZ_EXECS=100000 cargo run --release --example throughput
//! ```

use mufuzz::{CampaignReport, Fuzzer, FuzzerConfig};
use mufuzz_lang::compile_source;

const SOURCE: &str = r#"
contract PiggyBank {
    address owner;
    uint256 total;
    mapping(address => uint256) deposits;

    constructor() public { owner = msg.sender; }

    function deposit() public payable {
        require(msg.value > 0);
        deposits[msg.sender] += msg.value;
        total += msg.value;
    }

    function withdraw(uint256 amount) public {
        require(deposits[msg.sender] >= amount);
        deposits[msg.sender] -= amount;
        total -= amount;
        msg.sender.transfer(amount);
    }

    function smash() public {
        if (total > 10 ether) {
            bug();
            selfdestruct(msg.sender);
        }
    }
}
"#;

fn campaign(workers: usize, executions: usize) -> CampaignReport {
    let compiled = compile_source(SOURCE).expect("contract should compile");
    let config = FuzzerConfig::mufuzz(executions)
        .with_rng_seed(42)
        .with_workers(workers);
    Fuzzer::new(compiled, config)
        .expect("deployment should succeed")
        .run()
}

fn print_report(report: &CampaignReport) {
    println!(
        "workers={}: {} execs in {} ms -> {:.0} execs/sec ({:.1}% coverage)",
        report.workers,
        report.executions,
        report.elapsed_ms,
        report.execs_per_sec(),
        report.coverage_percent()
    );
}

/// One JSON record per measured configuration.
fn json_entry(report: &CampaignReport) -> String {
    format!(
        concat!(
            "{{\"workers\": {}, \"executions\": {}, \"elapsed_ms\": {}, ",
            "\"execs_per_sec\": {:.1}, \"coverage_percent\": {:.2}}}"
        ),
        report.workers,
        report.executions,
        report.elapsed_ms,
        report.execs_per_sec(),
        report.coverage_percent()
    )
}

fn main() {
    let executions = std::env::var("MUFUZZ_EXECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let workers = std::env::var("MUFUZZ_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);

    // Warm-up run so page faults and lazy allocations do not skew the
    // single-worker number.
    campaign(1, executions / 10);

    let single = campaign(1, executions);
    print_report(&single);

    let parallel = campaign(workers, executions);
    print_report(&parallel);
    println!(
        "speedup: {:.2}x",
        parallel.execs_per_sec() / single.execs_per_sec()
    );

    // Machine-readable record for the CI perf-smoke artifact.
    let json = format!(
        concat!(
            "{{\n  \"benchmark\": \"piggybank\",\n  \"budget\": {},\n",
            "  \"single\": {},\n  \"parallel\": {}\n}}\n"
        ),
        executions,
        json_entry(&single),
        json_entry(&parallel)
    );
    let path =
        std::env::var("MUFUZZ_BENCH_JSON").unwrap_or_else(|_| "BENCH_throughput.json".into());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
