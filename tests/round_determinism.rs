//! Cross-worker-count determinism suite for the round-mode profile.
//!
//! The round-mode contract (tentpole of the determinism PR): with
//! [`DeterminismProfile::Round`] the campaign advances in barrier-synchronized
//! rounds of fixed work slots, so **any** worker count produces the
//! bit-identical `CampaignReport` — same coverage bitmap, same corpus (by
//! uid), same findings, same replayable finding records, same timeline. This
//! suite is the multi-worker analogue of the `workers == 1` snapshot test in
//! `tests/fleet_service.rs`: 4 seeds x 3 contracts, compared across
//! `workers in {1, 2, 4, 8}`.
//!
//! CI runs this file once per worker count with `MUFUZZ_ROUND_WORKERS=<n>`
//! set, which narrows the comparison to `{1, n}` so the matrix legs stay
//! fast while still covering 2, 4 and 8 workers between them.

use mufuzz::{CampaignReport, CampaignService, DeterminismProfile, FuzzerConfig};
use mufuzz_corpus::contracts;
use mufuzz_lang::compile_source;

const SEEDS: [u64; 4] = [3, 11, 29, 42];

fn bench_contracts() -> Vec<(&'static str, String)> {
    vec![
        ("crowdsale", contracts::crowdsale().source),
        ("game", contracts::game().source),
        ("reentrant_bank", contracts::reentrant_bank().source),
    ]
}

/// Worker counts to compare: `{1, 2, 4, 8}` by default, `{1, n}` when the CI
/// matrix pins `MUFUZZ_ROUND_WORKERS=n`.
fn worker_counts() -> Vec<usize> {
    match std::env::var("MUFUZZ_ROUND_WORKERS") {
        Ok(v) => {
            let n: usize = v
                .parse()
                .unwrap_or_else(|_| panic!("bad MUFUZZ_ROUND_WORKERS: {v:?}"));
            if n == 1 {
                vec![1]
            } else {
                vec![1, n]
            }
        }
        Err(_) => vec![1, 2, 4, 8],
    }
}

fn round_config(seed: u64, workers: usize) -> FuzzerConfig {
    // Small rounds (4 slots x 16 executions) so a 300-execution campaign
    // spans several barriers — the suite exercises multi-round freezing and
    // commit, not just a single jumbo round.
    FuzzerConfig::mufuzz(300)
        .with_rng_seed(seed)
        .with_workers(workers)
        .with_determinism(DeterminismProfile::Round)
        .with_round_slots(4)
        .with_round_batch(16)
}

fn run_round(source: &str, config: FuzzerConfig) -> CampaignReport {
    let compiled = compile_source(source).unwrap();
    let service = CampaignService::new(2);
    service.submit(compiled, config).unwrap().wait()
}

/// Assert two reports are bit-identical in every worker-count-independent
/// dimension. `workers`, wall-clock stamps and the informational
/// `FindingRecord::workers` field legitimately differ; everything else —
/// including the corpus and coverage digests — must match exactly.
fn assert_reports_identical(a: &CampaignReport, b: &CampaignReport, label: &str) {
    assert_eq!(a.contract, b.contract, "{label}: contract");
    assert_eq!(a.executions, b.executions, "{label}: executions");
    assert_eq!(a.covered_edges, b.covered_edges, "{label}: covered_edges");
    assert_eq!(a.total_edges, b.total_edges, "{label}: total_edges");
    assert_eq!(a.coverage, b.coverage, "{label}: coverage");
    assert_eq!(a.corpus_size, b.corpus_size, "{label}: corpus_size");
    assert_eq!(a.culled_seeds, b.culled_seeds, "{label}: culled_seeds");
    assert_eq!(a.corpus_digest, b.corpus_digest, "{label}: corpus digest");
    assert_eq!(
        a.coverage_digest, b.coverage_digest,
        "{label}: coverage bitmap digest"
    );
    assert_eq!(a.findings, b.findings, "{label}: findings");
    assert_eq!(
        a.interesting_shapes, b.interesting_shapes,
        "{label}: interesting shapes"
    );
    assert_eq!(
        a.timeline.len(),
        b.timeline.len(),
        "{label}: timeline length"
    );
    for (pa, pb) in a.timeline.iter().zip(&b.timeline) {
        assert_eq!(pa.executions, pb.executions, "{label}: timeline executions");
        assert_eq!(
            pa.covered_edges, pb.covered_edges,
            "{label}: timeline coverage"
        );
    }
    assert_eq!(
        a.finding_records.len(),
        b.finding_records.len(),
        "{label}: finding record count"
    );
    for (ra, rb) in a.finding_records.iter().zip(&b.finding_records) {
        assert_eq!(
            ra.contract_hash, rb.contract_hash,
            "{label}: record contract"
        );
        assert_eq!(ra.seed_uid, rb.seed_uid, "{label}: record seed uid");
        assert_eq!(ra.round, rb.round, "{label}: record round");
        assert_eq!(ra.slot, rb.slot, "{label}: record slot");
        assert_eq!(ra.finding, rb.finding, "{label}: record finding");
        assert_eq!(ra.sequence, rb.sequence, "{label}: record sequence");
        assert_eq!(
            ra.outcome_digest, rb.outcome_digest,
            "{label}: record outcome digest"
        );
    }
}

/// The headline property: round mode yields the bit-identical report at every
/// worker count, across 4 seeds x 3 contracts.
#[test]
fn round_mode_reports_are_identical_across_worker_counts() {
    let workers = worker_counts();
    for (name, source) in bench_contracts() {
        for seed in SEEDS {
            let baseline = run_round(&source, round_config(seed, workers[0]));
            assert_eq!(baseline.executions, 300, "{name} seed {seed}: full budget");
            for &w in &workers[1..] {
                let report = run_round(&source, round_config(seed, w));
                assert_eq!(report.workers, w);
                assert_reports_identical(
                    &baseline,
                    &report,
                    &format!("{name} seed {seed} workers {w}"),
                );
            }
        }
    }
}

/// Round-mode runs are also reproducible run-to-run at the *same* worker
/// count — the trivial half of the contract, but the one that catches
/// time-dependent state leaking into the report.
#[test]
fn round_mode_is_reproducible_at_a_fixed_worker_count() {
    let (_, source) = &bench_contracts()[0];
    let first = run_round(source, round_config(11, 4));
    let second = run_round(source, round_config(11, 4));
    assert_reports_identical(&first, &second, "crowdsale seed 11 rerun");
}

/// Round mode enables corpus culling by default (the uid re-keying removed
/// the bit-identity objection that kept it off in free-running mode); the
/// free-running default and explicit overrides are unchanged.
#[test]
fn round_mode_enables_culling_by_default() {
    use mufuzz::DEFAULT_ROUND_CULL_INTERVAL;
    let round = FuzzerConfig::mufuzz(100).with_determinism(DeterminismProfile::Round);
    assert_eq!(
        round.effective_cull_interval(),
        Some(DEFAULT_ROUND_CULL_INTERVAL)
    );
    let free = FuzzerConfig::mufuzz(100);
    assert_eq!(free.effective_cull_interval(), None);
    // An explicit setting always wins over the profile default.
    assert_eq!(
        round
            .clone()
            .with_corpus_culling(8)
            .effective_cull_interval(),
        Some(8)
    );
    assert_eq!(
        round.without_corpus_culling().effective_cull_interval(),
        Some(usize::MAX)
    );
}

/// Default-on culling is invariant: a round campaign with the default cull
/// interval produces exactly the report an explicitly-unculled campaign
/// produces — turning culling on by default did not perturb the round-mode
/// trajectory of existing campaigns.
#[test]
fn default_culling_is_invariant_for_round_mode_findings() {
    for (name, source) in bench_contracts() {
        for seed in [11, 29] {
            let culled = run_round(&source, round_config(seed, 2));
            let unculled = run_round(&source, round_config(seed, 2).without_corpus_culling());
            let label = format!("{name} seed {seed}");
            assert_eq!(unculled.culled_seeds, 0, "{label}: culling disabled");
            assert_eq!(culled.findings, unculled.findings, "{label}: findings");
            assert_eq!(
                culled.covered_edges, unculled.covered_edges,
                "{label}: coverage"
            );
            assert_eq!(
                culled.coverage_digest, unculled.coverage_digest,
                "{label}: coverage bitmap"
            );
            assert!(
                culled.corpus_size <= unculled.corpus_size,
                "{label}: culling never grows the corpus"
            );
        }
    }
}

/// An aggressive cull interval that demonstrably fires still preserves the
/// finding set and the coverage on campaigns where only dominated seeds get
/// dropped — and the culled campaign stays bit-identical across worker
/// counts, since culling runs at the barrier in stable order.
#[test]
fn active_culling_preserves_findings_and_worker_count_identity() {
    let source = contracts::game().source;
    for seed in [11, 29] {
        let config = |workers| {
            FuzzerConfig::mufuzz(600)
                .with_rng_seed(seed)
                .with_workers(workers)
                .with_determinism(DeterminismProfile::Round)
                .with_round_slots(4)
                .with_round_batch(16)
                .with_corpus_culling(8)
        };
        let culled = run_round(&source, config(2));
        assert!(culled.culled_seeds > 0, "seed {seed}: culling fired");
        let unculled = run_round(&source, config(2).without_corpus_culling());
        assert_eq!(culled.findings, unculled.findings, "seed {seed}: findings");
        assert_eq!(
            culled.covered_edges, unculled.covered_edges,
            "seed {seed}: coverage"
        );
        // Culling at the barrier is part of the determinism contract: the
        // same culled campaign is bit-identical at any worker count.
        for workers in [1, 4] {
            let other = run_round(&source, config(workers));
            assert_reports_identical(&culled, &other, &format!("seed {seed} workers {workers}"));
        }
    }
}

/// The reentrant bank yields replayable finding records under round mode,
/// and each record round-trips through its integrity-hashed byte encoding.
#[test]
fn round_mode_records_findings_with_provenance() {
    let report = run_round(&contracts::reentrant_bank().source, round_config(9, 2));
    assert!(
        !report.finding_records.is_empty(),
        "reentrant bank produces replayable records"
    );
    for record in &report.finding_records {
        assert_eq!(record.workers, 2);
        let bytes = record.to_bytes();
        let parsed = mufuzz::FindingRecord::from_bytes(&bytes).expect("record parses");
        assert_eq!(&parsed, record);
    }
}
