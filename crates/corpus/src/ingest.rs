//! Real-contract ingestion: ABI JSON + runtime-bytecode hex → a fuzzable
//! [`CompiledContract`].
//!
//! The toy-language pipeline produces contracts by compiling mini-Solidity
//! source; this module is the second front door, for contracts that exist
//! only as deployment artefacts. It parses the standard Solidity ABI JSON
//! array and a runtime-bytecode hex blob (the two files every build tool
//! emits) and synthesizes the same [`CompiledContract`] the compiler would
//! have produced — so the campaign layer, the edge index, the program cache
//! and the block-lowered interpreter treat ingested blobs exactly like
//! compiled toy contracts.
//!
//! No external crates are available offline, so both parsers are
//! hand-rolled: a minimal recursive-descent JSON reader covering the subset
//! ABI files use (objects, arrays, strings, numbers, booleans, null) and a
//! whitespace-tolerant hex decoder.
//!
//! ```
//! use mufuzz_corpus::ingest::ingest;
//!
//! let abi = r#"[{"type":"function","name":"set","inputs":[{"type":"uint256"}],
//!               "stateMutability":"nonpayable"}]"#;
//! // STOP-only runtime: a degenerate but valid target.
//! let contract = ingest("Tiny", abi, "0x00").unwrap();
//! assert_eq!(contract.compiled.abi.functions.len(), 1);
//! ```

use mufuzz_lang::ast::{Contract, Function, Param, Type, Visibility};
use mufuzz_lang::{
    compute_selector, CompiledContract, ContractAbi, FunctionAbi, FunctionInfo, ParamType,
    StorageLayout,
};
use std::fmt;

/// An error raised while parsing the ABI JSON or the bytecode hex.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IngestError {
    /// Description of the problem.
    pub message: String,
}

impl IngestError {
    fn new(message: impl Into<String>) -> IngestError {
        IngestError {
            message: message.into(),
        }
    }
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ingest error: {}", self.message)
    }
}

impl std::error::Error for IngestError {}

/// The result of ingesting one ABI + bytecode pair.
#[derive(Clone, Debug)]
pub struct IngestedContract {
    /// The synthesized compiled contract, ready for `ContractHarness::new`.
    pub compiled: CompiledContract,
    /// Signatures of ABI functions that were skipped because a parameter
    /// type is outside the supported surface (tuples, nested arrays, ...).
    pub skipped: Vec<String>,
}

/// Ingest a contract from its ABI JSON array and runtime-bytecode hex.
///
/// Functions whose parameter types fall outside the supported surface
/// (`uint*`/`int*`/`address`/`bool`/`bytesN`/`bytes`/`string` and flat
/// arrays of the static ones) are skipped and reported in
/// [`IngestedContract::skipped`]; ingestion fails only when the ABI has no
/// usable function at all or either input does not parse.
pub fn ingest(
    name: &str,
    abi_json: &str,
    bytecode_hex: &str,
) -> Result<IngestedContract, IngestError> {
    let runtime = parse_hex_bytecode(bytecode_hex)?;
    if runtime.is_empty() {
        return Err(IngestError::new("empty runtime bytecode"));
    }
    let (abi, skipped) = parse_abi_json(abi_json)?;
    if abi.functions.is_empty() {
        return Err(IngestError::new(
            "ABI contains no function with supported parameter types",
        ));
    }

    // Synthesize the AST the static analyses expect. The bodies are empty
    // (no source to analyse), so data-flow planning degrades gracefully to
    // random sequence orderings; parameter types map to the closest
    // toy-language value type so arity and payability survive.
    let contract = Contract {
        name: name.to_string(),
        functions: abi
            .functions
            .iter()
            .map(|f| Function {
                name: f.name.clone(),
                params: f
                    .inputs
                    .iter()
                    .enumerate()
                    .map(|(i, ty)| Param {
                        name: format!("arg{i}"),
                        ty: ast_type_for(ty),
                    })
                    .collect(),
                visibility: Visibility::Public,
                payable: f.payable,
                returns: None,
                body: vec![],
            })
            .collect(),
        ..Default::default()
    };

    // Function pc ranges are unknown without source: empty ranges make
    // `function_at_pc` miss, and pc attribution falls back to the entered
    // selector (which the trace records), so findings still name functions.
    let functions = abi
        .functions
        .iter()
        .map(|f| FunctionInfo {
            name: f.name.clone(),
            selector: Some(f.selector),
            entry_pc: 0,
            end_pc: 0,
            payable: f.payable,
        })
        .collect();

    Ok(IngestedContract {
        compiled: CompiledContract {
            name: name.to_string(),
            runtime,
            // No constructor blob: deployment installs the runtime directly
            // and runs an empty constructor, which halts successfully.
            constructor: vec![],
            abi,
            layout: StorageLayout::for_contract(&contract),
            contract,
            functions,
        },
        skipped,
    })
}

/// Map an ABI parameter type to the closest toy-language value type (the
/// synthesized AST only feeds arity-level analyses, so word-shaped is fine).
fn ast_type_for(ty: &ParamType) -> Type {
    match ty {
        ParamType::Address => Type::Address,
        ParamType::Bool => Type::Bool,
        _ => Type::Uint256,
    }
}

/// Decode a hex bytecode blob: optional `0x` prefix, whitespace tolerated,
/// must have even length.
pub fn parse_hex_bytecode(hex: &str) -> Result<Vec<u8>, IngestError> {
    let cleaned: String = hex.chars().filter(|c| !c.is_whitespace()).collect();
    let digits = cleaned.strip_prefix("0x").unwrap_or(&cleaned);
    if !digits.len().is_multiple_of(2) {
        return Err(IngestError::new("odd number of hex digits in bytecode"));
    }
    let nibble = |c: u8| -> Result<u8, IngestError> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(IngestError::new(format!(
                "invalid hex digit {:?} in bytecode",
                c as char
            ))),
        }
    };
    digits
        .as_bytes()
        .chunks(2)
        .map(|pair| Ok(nibble(pair[0])? << 4 | nibble(pair[1])?))
        .collect()
}

/// Parse a Solidity ABI JSON array into a [`ContractAbi`] plus the list of
/// skipped (unsupported) function signatures.
pub fn parse_abi_json(text: &str) -> Result<(ContractAbi, Vec<String>), IngestError> {
    let json = JsonValue::parse(text)?;
    let JsonValue::Array(entries) = json else {
        return Err(IngestError::new("ABI JSON must be a top-level array"));
    };
    let mut functions = Vec::new();
    let mut skipped = Vec::new();
    for entry in &entries {
        let JsonValue::Object(fields) = entry else {
            return Err(IngestError::new("ABI entry is not an object"));
        };
        // Constructors, events, errors, fallback and receive entries carry
        // no dispatchable selector; only "type":"function" matters here
        // (and a missing "type" defaults to function, as in early ABIs).
        let kind = get_str(fields, "type").unwrap_or("function");
        if kind != "function" {
            continue;
        }
        let name = get_str(fields, "name")
            .ok_or_else(|| IngestError::new("function entry without a name"))?
            .to_string();
        let raw_inputs = match lookup(fields, "inputs") {
            Some(JsonValue::Array(inputs)) => inputs.as_slice(),
            None => &[],
            Some(_) => return Err(IngestError::new("function inputs is not an array")),
        };
        let mut inputs = Vec::with_capacity(raw_inputs.len());
        let mut unsupported = None;
        for input in raw_inputs {
            let JsonValue::Object(param) = input else {
                return Err(IngestError::new("function input is not an object"));
            };
            let type_name = get_str(param, "type")
                .ok_or_else(|| IngestError::new("function input without a type"))?;
            match parse_param_type(type_name) {
                Some(ty) => inputs.push(ty),
                None => {
                    unsupported = Some(type_name.to_string());
                    break;
                }
            }
        }
        if let Some(ty) = unsupported {
            skipped.push(format!("{name}({ty},...)"));
            continue;
        }
        // Modern ABIs carry "stateMutability"; legacy ones a "payable" bool.
        let payable = match get_str(fields, "stateMutability") {
            Some(m) => m == "payable",
            None => matches!(lookup(fields, "payable"), Some(JsonValue::Bool(true))),
        };
        let signature = {
            let params: Vec<String> = inputs.iter().map(ParamType::name).collect();
            format!("{name}({})", params.join(","))
        };
        functions.push(FunctionAbi {
            name,
            inputs,
            payable,
            selector: compute_selector(&signature),
        });
    }
    Ok((ContractAbi { functions }, skipped))
}

/// Map a canonical ABI type name to a [`ParamType`], or `None` when the
/// type is outside the supported surface.
pub fn parse_param_type(name: &str) -> Option<ParamType> {
    if let Some(elem) = name.strip_suffix("[]") {
        let inner = parse_param_type(elem)?;
        // Flat arrays of static one-word elements only: nested arrays and
        // arrays of dynamic types are out of surface.
        if inner.is_dynamic() || matches!(inner, ParamType::Array(_)) {
            return None;
        }
        return Some(ParamType::Array(Box::new(inner)));
    }
    match name {
        "address" => Some(ParamType::Address),
        "bool" => Some(ParamType::Bool),
        "bytes" => Some(ParamType::Bytes),
        "string" => Some(ParamType::Str),
        _ => {
            if let Some(bits) = name.strip_prefix("uint") {
                return int_width_ok(bits).then_some(ParamType::Uint256);
            }
            if let Some(bits) = name.strip_prefix("int") {
                return int_width_ok(bits).then_some(ParamType::Int256);
            }
            if let Some(n) = name.strip_prefix("bytes") {
                let n: u8 = n.parse().ok()?;
                return (1..=32).contains(&n).then_some(ParamType::FixedBytes(n));
            }
            None
        }
    }
}

/// `uintN`/`intN` width suffix check: empty (alias for 256) or a multiple of
/// 8 in 8..=256. Narrow integers are widened to their 256-bit word form,
/// which is how they travel in calldata anyway.
fn int_width_ok(bits: &str) -> bool {
    if bits.is_empty() {
        return true;
    }
    matches!(bits.parse::<u32>(), Ok(n) if n % 8 == 0 && (8..=256).contains(&n))
}

fn lookup<'j>(fields: &'j [(String, JsonValue)], key: &str) -> Option<&'j JsonValue> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_str<'j>(fields: &'j [(String, JsonValue)], key: &str) -> Option<&'j str> {
    match lookup(fields, key) {
        Some(JsonValue::String(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// A parsed JSON value (the subset ABI and fixture files use).
///
/// Public so other fixture-driven consumers (the conformance-vector
/// runner in particular) can reuse the same dependency-free parser.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `{...}` — fields in source order (duplicate keys keep the first).
    Object(Vec<(String, JsonValue)>),
    /// `[...]`.
    Array(Vec<JsonValue>),
    /// `"..."` with standard escapes.
    String(String),
    /// Any numeric literal, widened to `f64`.
    Number(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl JsonValue {
    /// Parse a complete JSON document (trailing bytes are an error).
    pub fn parse(text: &str) -> Result<JsonValue, IngestError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(IngestError::new(format!(
                "trailing characters after JSON value at byte {}",
                p.pos
            )));
        }
        Ok(value)
    }

    /// Object field lookup by key; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => lookup(fields, key),
            _ => None,
        }
    }

    /// The object's fields in source order, if this is an object.
    pub fn entries(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The element slice, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as a `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Minimal recursive-descent JSON parser.
struct Parser<'t> {
    bytes: &'t [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), IngestError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(IngestError::new(format!(
                "expected {:?} at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<JsonValue, IngestError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(IngestError::new(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<JsonValue, IngestError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(IngestError::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, IngestError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(IngestError::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, IngestError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self
                        .peek()
                        .ok_or_else(|| IngestError::new("unterminated escape in JSON string"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| IngestError::new("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(IngestError::new(format!(
                                "unsupported escape \\{}",
                                other as char
                            )))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences are
                    // passed through unchanged).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && self.bytes[end] & 0xc0 == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| IngestError::new("invalid UTF-8 in JSON string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
                None => return Err(IngestError::new("unterminated JSON string")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, IngestError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Number)
            .ok_or_else(|| IngestError::new(format!("bad number at byte {start}")))
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, IngestError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(IngestError::new(format!(
                "bad literal at byte {}",
                self.pos
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ERC20_ISH: &str = r#"[
        {"type":"constructor","inputs":[{"name":"supply","type":"uint256"}]},
        {"type":"event","name":"Transfer","inputs":[]},
        {"type":"function","name":"transfer","stateMutability":"nonpayable",
         "inputs":[{"name":"to","type":"address"},{"name":"amount","type":"uint256"}]},
        {"type":"function","name":"deposit","stateMutability":"payable","inputs":[]},
        {"type":"function","name":"batch","stateMutability":"nonpayable",
         "inputs":[{"name":"targets","type":"address[]"},{"name":"data","type":"bytes"}]},
        {"type":"function","name":"weird","stateMutability":"nonpayable",
         "inputs":[{"name":"t","type":"tuple","components":[]}]}
    ]"#;

    #[test]
    fn abi_json_parses_functions_and_skips_unsupported() {
        let (abi, skipped) = parse_abi_json(ERC20_ISH).unwrap();
        assert_eq!(abi.functions.len(), 3);
        // The canonical reference selector proves signature derivation.
        let transfer = abi.function("transfer").unwrap();
        assert_eq!(transfer.selector, [0xa9, 0x05, 0x9c, 0xbb]);
        assert!(!transfer.payable);
        assert!(abi.function("deposit").unwrap().payable);
        let batch = abi.function("batch").unwrap();
        assert_eq!(
            batch.inputs,
            vec![
                ParamType::Array(Box::new(ParamType::Address)),
                ParamType::Bytes
            ]
        );
        assert_eq!(skipped, vec!["weird(tuple,...)".to_string()]);
    }

    #[test]
    fn legacy_payable_flag_is_honoured() {
        let (abi, _) =
            parse_abi_json(r#"[{"type":"function","name":"buy","payable":true,"inputs":[]}]"#)
                .unwrap();
        assert!(abi.function("buy").unwrap().payable);
    }

    #[test]
    fn param_type_surface() {
        assert_eq!(parse_param_type("uint256"), Some(ParamType::Uint256));
        assert_eq!(parse_param_type("uint8"), Some(ParamType::Uint256));
        assert_eq!(parse_param_type("uint"), Some(ParamType::Uint256));
        assert_eq!(parse_param_type("int128"), Some(ParamType::Int256));
        assert_eq!(parse_param_type("bytes4"), Some(ParamType::FixedBytes(4)));
        assert_eq!(parse_param_type("bytes32"), Some(ParamType::FixedBytes(32)));
        assert_eq!(parse_param_type("string"), Some(ParamType::Str));
        assert_eq!(
            parse_param_type("uint256[]"),
            Some(ParamType::Array(Box::new(ParamType::Uint256)))
        );
        // Out of surface: odd widths, oversized bytesN, nested/dynamic arrays.
        assert_eq!(parse_param_type("uint7"), None);
        assert_eq!(parse_param_type("bytes33"), None);
        assert_eq!(parse_param_type("uint256[][]"), None);
        assert_eq!(parse_param_type("bytes[]"), None);
        assert_eq!(parse_param_type("tuple"), None);
    }

    #[test]
    fn hex_decoding_tolerates_prefix_and_whitespace() {
        assert_eq!(parse_hex_bytecode("0x6001600201").unwrap().len(), 5);
        assert_eq!(
            parse_hex_bytecode(" 60 01\n60FF\t00 ").unwrap(),
            vec![0x60, 0x01, 0x60, 0xff, 0x00]
        );
        assert!(parse_hex_bytecode("0x123").is_err());
        assert!(parse_hex_bytecode("zz").is_err());
    }

    #[test]
    fn ingest_builds_a_compiled_contract() {
        let contract = ingest("Ingested", ERC20_ISH, "0x600060005500").unwrap();
        assert_eq!(contract.compiled.name, "Ingested");
        assert_eq!(contract.compiled.runtime.len(), 6);
        assert!(contract.compiled.constructor.is_empty());
        assert_eq!(contract.compiled.abi.functions.len(), 3);
        // The synthesized AST mirrors the ABI arity so sequence planning and
        // payability checks behave.
        let ast_fn = contract.compiled.contract.function("transfer").unwrap();
        assert_eq!(ast_fn.params.len(), 2);
        assert!(ast_fn.visibility.is_callable());
        assert_eq!(contract.skipped.len(), 1);
    }

    #[test]
    fn ingest_rejects_empty_inputs() {
        assert!(ingest("X", "[]", "0x00").is_err());
        assert!(ingest("X", ERC20_ISH, "").is_err());
        assert!(ingest("X", "not json", "0x00").is_err());
    }
}
