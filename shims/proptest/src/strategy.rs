//! The [`Strategy`] trait and the combinators the test suites use.

use std::marker::PhantomData;
use std::rc::Rc;

use rand::Rng;

use crate::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// deterministic function of the runner's RNG state.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Generates a (non-shrinking) value tree, mirroring
    /// `proptest::strategy::Strategy::new_tree`.
    fn new_tree(
        &self,
        runner: &mut crate::test_runner::TestRunner,
    ) -> Result<ValueTree<Self::Value>, String> {
        Ok(ValueTree(self.generate(runner.rng_mut())))
    }
}

/// A generated value; real proptest shrinks these, the shim does not.
pub struct ValueTree<T>(T);

impl<T: Clone> ValueTree<T> {
    /// The current (and only) value of the tree.
    pub fn current(&self) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Picks uniformly among type-erased strategies (built by `prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].generate(rng)
    }
}

/// Types with a canonical [`any`] strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, bool);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// A strategy generating uniformly arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// A tiny pattern-string strategy: `&str` literals act as generators for a
/// regex subset of character classes with repetition, e.g. `"[a-c]{1,4}"`.
///
/// Supported syntax: literal characters, `[x-y…]` classes of ranges and
/// single characters, and `{n}` / `{m,n}` repetition suffixes.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = self.chars().peekable();
        while let Some(c) = chars.next() {
            let choices: Vec<char> = match c {
                '[' => {
                    let mut set = Vec::new();
                    let mut class = Vec::new();
                    for c in chars.by_ref() {
                        if c == ']' {
                            break;
                        }
                        class.push(c);
                    }
                    let mut i = 0;
                    while i < class.len() {
                        if i + 2 < class.len() && class[i + 1] == '-' {
                            for code in class[i]..=class[i + 2] {
                                set.push(code);
                            }
                            i += 3;
                        } else {
                            set.push(class[i]);
                            i += 1;
                        }
                    }
                    set
                }
                lit => vec![lit],
            };
            assert!(
                !choices.is_empty(),
                "empty character class in pattern {self:?}"
            );
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad repetition in pattern"),
                        hi.trim().parse().expect("bad repetition in pattern"),
                    ),
                    None => {
                        let n: usize = spec.trim().parse().expect("bad repetition in pattern");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = rng.gen_range(min..=max);
            for _ in 0..count {
                out.push(choices[rng.gen_range(0..choices.len())]);
            }
        }
        out
    }
}
