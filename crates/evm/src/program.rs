//! Pre-decoded instruction streams.
//!
//! The fuzzer executes the same runtime bytecode tens of thousands of times
//! per second. Decoding a byte at a time on every execution — opcode match,
//! `PUSH` immediate materialisation, `JUMPDEST` scan per call frame — is pure
//! overhead after the first run, so [`DecodedProgram`] lowers a code blob
//! once into a dense instruction stream:
//!
//! * one [`DecodedInstr`] per instruction with the opcode tag and the
//!   `PUSH` immediate already materialised as a [`U256`],
//! * a pc → instruction-index table so `JUMP`/`JUMPI` destinations resolve
//!   in O(1) without scanning,
//! * a `JUMPDEST` validity bitmap (a destination is valid only when the
//!   `0x5b` byte is an instruction start, not push data).
//!
//! The sequential successor of an instruction is pre-resolved too: it is
//! simply the next index in the stream, so the dispatch loop never computes
//! `pc + 1 + immediate_size` again.
//!
//! [`ProgramCache`] maps code blobs (by `Arc` pointer identity — the world
//! state shares code blobs across snapshots, so the pointer is stable) to
//! their decoded programs. The fuzzing harness decodes the contract under
//! test once at build time and shares the cache `Arc`-style across worker
//! harness clones, exactly like the dense edge index.

use crate::opcode::Opcode;
use crate::u256::U256;
use std::sync::Arc;

/// One pre-decoded instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodedInstr {
    /// The opcode.
    pub op: Opcode,
    /// Byte offset of the opcode in the original code (what traces record).
    pub pc: u32,
    /// Pre-materialised immediate for `PUSH*` (zero for everything else;
    /// truncated pushes at the end of the code zero-pad exactly like the
    /// byte-at-a-time decoder).
    pub imm: U256,
}

/// A code blob lowered into a dense instruction stream with O(1) jump
/// resolution.
///
/// ```
/// use mufuzz_evm::{DecodedProgram, Opcode};
///
/// // PUSH1 0x03, JUMP, INVALID, JUMPDEST, STOP
/// let program = DecodedProgram::decode(&[0x60, 0x03, 0x56, 0x5b, 0x00]);
/// assert_eq!(program.instructions().len(), 4);
/// assert_eq!(program.instructions()[0].op, Opcode::Push(1));
/// // pc 3 is a valid JUMPDEST and resolves to instruction index 2.
/// assert_eq!(program.jump_cursor(3), Some(2));
/// // pc 1 is push data, not a jump destination.
/// assert_eq!(program.jump_cursor(1), None);
/// ```
#[derive(Clone, Debug, Default)]
pub struct DecodedProgram {
    code_len: usize,
    instrs: Vec<DecodedInstr>,
    /// pc → index into `instrs` (`u32::MAX` for bytes inside push data).
    pc_to_instr: Vec<u32>,
    /// Valid `JUMPDEST` positions, one bit per code byte.
    jumpdests: Vec<u64>,
}

impl DecodedProgram {
    /// Decode a code blob. One linear pass; every later execution reuses the
    /// result.
    pub fn decode(code: &[u8]) -> DecodedProgram {
        let mut instrs = Vec::with_capacity(code.len());
        let mut pc_to_instr = vec![u32::MAX; code.len()];
        let mut jumpdests = vec![0u64; code.len().div_ceil(64)];
        let mut pc = 0usize;
        while pc < code.len() {
            let op = Opcode::from_byte(code[pc]);
            let imm_len = op.immediate_size();
            let imm = if imm_len > 0 {
                let end = (pc + 1 + imm_len).min(code.len());
                U256::from_be_slice(&code[pc + 1..end])
            } else {
                U256::ZERO
            };
            pc_to_instr[pc] = instrs.len() as u32;
            if op == Opcode::JumpDest {
                jumpdests[pc / 64] |= 1 << (pc % 64);
            }
            instrs.push(DecodedInstr {
                op,
                pc: pc as u32,
                imm,
            });
            pc += 1 + imm_len;
        }
        DecodedProgram {
            code_len: code.len(),
            instrs,
            pc_to_instr,
            jumpdests,
        }
    }

    /// Byte length of the original code (`CODESIZE`).
    pub fn code_len(&self) -> usize {
        self.code_len
    }

    /// The instruction stream, in code order.
    pub fn instructions(&self) -> &[DecodedInstr] {
        &self.instrs
    }

    /// Resolve a jump destination: the instruction index of `dest` when it
    /// is a valid `JUMPDEST` (an instruction start carrying `0x5b`), `None`
    /// otherwise.
    #[inline]
    pub fn jump_cursor(&self, dest: usize) -> Option<usize> {
        if dest >= self.code_len || (self.jumpdests[dest / 64] >> (dest % 64)) & 1 == 0 {
            return None;
        }
        Some(self.pc_to_instr[dest] as usize)
    }
}

/// Decoded programs keyed by code-blob identity.
///
/// Lookup is by `Arc` pointer equality: the world state hands out clones of
/// the same `Arc<Vec<u8>>` for an account's code across snapshots, so the
/// pointer is a stable identity for "the same deployed code". Each entry
/// pins its code blob alive, so a pointer can never be recycled while the
/// cache maps it. The cache is built once by the harness and then only read
/// (it is shared across worker threads behind an `Arc`), so there is no
/// interior mutability.
#[derive(Clone, Debug, Default)]
pub struct ProgramCache {
    entries: Vec<(Arc<Vec<u8>>, Arc<DecodedProgram>)>,
}

impl ProgramCache {
    /// An empty cache.
    pub fn new() -> ProgramCache {
        ProgramCache::default()
    }

    /// Register the decoded program of a code blob.
    pub fn insert(&mut self, code: Arc<Vec<u8>>, program: Arc<DecodedProgram>) {
        self.entries.push((code, program));
    }

    /// Look up the decoded program of a code blob by pointer identity. The
    /// handful of entries (one per deployed contract under test) makes a
    /// linear scan faster than hashing.
    #[inline]
    pub fn get(&self, code: &Arc<Vec<u8>>) -> Option<&Arc<DecodedProgram>> {
        self.entries
            .iter()
            .find(|(c, _)| Arc::ptr_eq(c, code))
            .map(|(_, p)| p)
    }

    /// Number of registered programs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no program is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::disassemble;

    #[test]
    fn decode_matches_disassembler() {
        // PUSH1 2, PUSH2 0x0304, ADD, JUMPDEST, PUSH32 (truncated), implicit end
        let mut code = vec![0x60, 0x02, 0x61, 0x03, 0x04, 0x01, 0x5b];
        code.push(0x7f);
        code.extend_from_slice(&[0xaa, 0xbb]);
        let program = DecodedProgram::decode(&code);
        let instrs = disassemble(&code);
        assert_eq!(program.instructions().len(), instrs.len());
        for (decoded, reference) in program.instructions().iter().zip(&instrs) {
            assert_eq!(decoded.op, reference.opcode);
            assert_eq!(decoded.pc as usize, reference.pc);
            assert_eq!(decoded.imm, U256::from_be_slice(&reference.immediate));
        }
        assert_eq!(program.code_len(), code.len());
    }

    #[test]
    fn jumpdest_inside_push_data_is_invalid() {
        // PUSH1 0x5b: the 0x5b byte at pc 1 is data, not a JUMPDEST.
        let program = DecodedProgram::decode(&[0x60, 0x5b, 0x5b, 0x00]);
        assert_eq!(program.jump_cursor(1), None);
        assert_eq!(program.jump_cursor(2), Some(1));
        assert_eq!(program.jump_cursor(3), None); // STOP, not JUMPDEST
        assert_eq!(program.jump_cursor(400), None); // out of range
    }

    #[test]
    fn empty_code_decodes_to_empty_program() {
        let program = DecodedProgram::decode(&[]);
        assert!(program.instructions().is_empty());
        assert_eq!(program.code_len(), 0);
        assert_eq!(program.jump_cursor(0), None);
    }

    #[test]
    fn cache_hits_by_pointer_identity_only() {
        let code_a = Arc::new(vec![0x60, 0x01, 0x00]);
        let code_b = Arc::new(vec![0x60, 0x01, 0x00]); // equal bytes, new blob
        let mut cache = ProgramCache::new();
        assert!(cache.is_empty());
        cache.insert(
            Arc::clone(&code_a),
            Arc::new(DecodedProgram::decode(&code_a)),
        );
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&code_a).is_some());
        assert!(cache.get(&Arc::clone(&code_a)).is_some());
        assert!(cache.get(&code_b).is_none());
    }
}
