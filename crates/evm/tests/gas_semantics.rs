//! Gas-accounting regression suite for the three dynamic charges the static
//! schedule used to miss:
//!
//! 1. `EXP` costs 50 gas per significant exponent byte on top of its base
//!    cost (EIP-160-style pricing), so the charge scales with the exponent's
//!    magnitude instead of being flat.
//! 2. Memory expansion is charged quadratically (`C_mem(w) = 3·w + w²/512`
//!    per 32-byte word) on growth, so huge `MLOAD`/`MSTORE`/`CALLDATACOPY`
//!    offsets halt with `OutOfGas` instead of relying only on the
//!    `max_memory` fault cap.
//! 3. `CALL`-family forwarding follows the EIP-150 all-but-one-64th rule and
//!    the caller pays the callee's actual consumption, so a draining callee
//!    always leaves the outer frame at least `gas_left / 64` to finish.
//!
//! Every vector executes through both decoders (the pre-decoded stream and
//! the legacy byte-at-a-time path) and asserts bit-identical results; the
//! decoder differential suite covers the corpus contracts, this file covers
//! the gas-edge programs.

use mufuzz_evm::{
    Account, Address, BlockEnv, Evm, ExecutionResult, HaltReason, Message, WorldState, U256,
};

fn addr(n: u64) -> Address {
    Address::from_low_u64(n)
}

/// Run `code` at address 0x100 from a funded sender with the given gas
/// budget, through both decoders, asserting they agree bit for bit.
fn run_with_gas(code: &[u8], gas: u64) -> ExecutionResult {
    let exec = |legacy: bool| {
        let mut world = WorldState::new();
        world.put_account(addr(1), Account::eoa(U256::from_u128(1 << 100)));
        world.put_account(addr(0x100), Account::contract(code.to_vec(), U256::ZERO));
        let mut evm = Evm::new(&mut world, BlockEnv::default());
        evm.config.legacy_decode = legacy;
        let mut msg = Message::new(addr(1), addr(0x100), U256::ZERO, vec![]);
        msg.gas = gas;
        evm.execute(&msg)
    };
    let decoded = exec(false);
    let legacy = exec(true);
    assert_eq!(decoded, legacy, "decoder divergence on a gas vector");
    decoded
}

/// `C_mem(words)`: the interpreter's quadratic memory schedule.
fn memory_cost(words: u64) -> u64 {
    3 * words + (words * words) / 512
}

// ---------------------------------------------------------------------------
// 1. EXP: per-exponent-byte pricing
// ---------------------------------------------------------------------------

/// PUSH the exponent, PUSH the base, EXP, POP, STOP.
fn exp_program(base: u8, exponent_be: &[u8]) -> Vec<u8> {
    assert!(!exponent_be.is_empty() && exponent_be.len() <= 32);
    let mut code = vec![0x60 + (exponent_be.len() as u8 - 1)]; // PUSH<n>
    code.extend_from_slice(exponent_be);
    code.extend_from_slice(&[0x60, base, 0x0a, 0x50, 0x00]); // PUSH1 base, EXP, POP, STOP
    code
}

#[test]
fn exp_gas_scales_with_exponent_byte_length() {
    // Fixed instruction overhead: PUSH (2) + PUSH1 (2) + EXP base (50) +
    // POP (2) + STOP (1) = 57 gas.
    let zero = run_with_gas(&exp_program(2, &[0x00]), 1_000_000);
    assert!(zero.success);
    assert_eq!(zero.gas_used, 57, "a zero exponent has no dynamic cost");

    let one_byte = run_with_gas(&exp_program(2, &[0x0a]), 1_000_000);
    assert!(one_byte.success);
    assert_eq!(one_byte.gas_used, 57 + 50);

    let two_bytes = run_with_gas(&exp_program(2, &[0x01, 0x00]), 1_000_000);
    assert!(two_bytes.success);
    assert_eq!(two_bytes.gas_used, 57 + 2 * 50);

    let max = [0xffu8; 32];
    let full_word = run_with_gas(&exp_program(2, &max), 1_000_000);
    assert!(full_word.success);
    assert_eq!(full_word.gas_used, 57 + 32 * 50);
}

#[test]
fn exp_dynamic_charge_can_out_of_gas() {
    // 57 + 32·50 = 1657 needed; 1600 is enough for the base charge but not
    // the per-byte part.
    let max = [0xffu8; 32];
    let result = run_with_gas(&exp_program(2, &max), 1_600);
    assert!(!result.success);
    assert_eq!(result.halt, HaltReason::OutOfGas);
}

// ---------------------------------------------------------------------------
// 2. Memory expansion: quadratic word cost, charged on growth
// ---------------------------------------------------------------------------

/// PUSH1 1, PUSH<offset>, MSTORE, STOP.
fn mstore_program(offset_be: &[u8]) -> Vec<u8> {
    let mut code = vec![0x60, 0x01, 0x60 + (offset_be.len() as u8 - 1)];
    code.extend_from_slice(offset_be);
    code.extend_from_slice(&[0x52, 0x00]);
    code
}

#[test]
fn memory_growth_is_charged_quadratically() {
    // MSTORE at offset 0 grows to 1 word; at offset 65536 to 2049 words.
    let small = run_with_gas(&mstore_program(&[0x00]), 10_000_000);
    assert!(small.success);
    let big = run_with_gas(&mstore_program(&[0x01, 0x00, 0x00]), 10_000_000);
    assert!(big.success);
    assert_eq!(
        big.gas_used - small.gas_used,
        memory_cost(2049) - memory_cost(1),
        "growth must be billed by the quadratic word schedule"
    );
}

#[test]
fn unaffordable_memory_growth_halts_out_of_gas() {
    // The 2049-word expansion costs C(2049) = 14347 gas; a 10k budget cannot
    // pay it even though the offset is far below the max_memory fault cap.
    let result = run_with_gas(&mstore_program(&[0x01, 0x00, 0x00]), 10_000);
    assert!(!result.success);
    assert_eq!(result.halt, HaltReason::OutOfGas);
}

#[test]
fn huge_offsets_out_of_gas_rather_than_hitting_the_cap() {
    // Offset 2^40: the expansion charge saturates long before the simulator
    // cap is consulted, so the halt is OutOfGas, exactly like a real EVM.
    let result = run_with_gas(
        &mstore_program(&[0x01, 0x00, 0x00, 0x00, 0x00, 0x00]),
        10_000_000,
    );
    assert!(!result.success);
    assert_eq!(result.halt, HaltReason::OutOfGas);
}

#[test]
fn calldatacopy_expansion_is_charged() {
    // CALLDATACOPY len 32 to offset 65536: same expansion charge as MSTORE.
    // PUSH1 32 (len), PUSH1 0 (src), PUSH3 0x010000 (dst), CALLDATACOPY, STOP
    let code = vec![0x60, 0x20, 0x60, 0x00, 0x62, 0x01, 0x00, 0x00, 0x37, 0x00];
    let ok = run_with_gas(&code, 10_000_000);
    assert!(ok.success);
    assert!(ok.gas_used > memory_cost(2049), "expansion must be billed");
    let broke = run_with_gas(&code, 10_000);
    assert!(!broke.success);
    assert_eq!(broke.halt, HaltReason::OutOfGas);
}

// ---------------------------------------------------------------------------
// 3. CALL forwarding: 63/64 retention + actual consumption accounting
// ---------------------------------------------------------------------------

/// Outer contract at 0x100: CALL 0x200 with a u64::MAX gas request and no
/// value, POP the flag, then SSTORE 42 at slot 1 and STOP.
fn outer_caller() -> Vec<u8> {
    let mut code = vec![
        0x60, 0x00, // ret len
        0x60, 0x00, // ret offset
        0x60, 0x00, // arg len
        0x60, 0x00, // arg offset
        0x60, 0x00, // value
        0x61, 0x02, 0x00, // PUSH2 0x0200 (callee)
        0x7f, // PUSH32 gas request
    ];
    code.extend_from_slice(&[0xff; 32]);
    code.extend_from_slice(&[
        0xf1, // CALL
        0x50, // POP
        0x60, 0x2a, // PUSH1 42
        0x60, 0x01, // PUSH1 1
        0x55, // SSTORE
        0x00, // STOP
    ]);
    code
}

fn run_call_pair(callee_code: Vec<u8>, gas: u64) -> (ExecutionResult, WorldState) {
    let exec = |legacy: bool| {
        let mut world = WorldState::new();
        world.put_account(addr(1), Account::eoa(U256::from_u128(1 << 100)));
        world.put_account(addr(0x100), Account::contract(outer_caller(), U256::ZERO));
        world.put_account(
            addr(0x200),
            Account::contract(callee_code.clone(), U256::ZERO),
        );
        let mut evm = Evm::new(&mut world, BlockEnv::default());
        evm.config.legacy_decode = legacy;
        let mut msg = Message::new(addr(1), addr(0x100), U256::ZERO, vec![]);
        msg.gas = gas;
        (evm.execute(&msg), world)
    };
    let (decoded, world_decoded) = exec(false);
    let (legacy, world_legacy) = exec(true);
    assert_eq!(decoded, legacy, "decoder divergence on a call vector");
    assert_eq!(world_decoded, world_legacy);
    (decoded, world_decoded)
}

/// Gas remaining in the outer frame at the moment of forwarding: the message
/// budget minus the six pushes (2 gas each), the PUSH32 (2), the CALL base
/// cost (700) and the EIP-2929 cold surcharge for the first touch of the
/// callee account (2200).
fn gas_at_forwarding(msg_gas: u64) -> u64 {
    msg_gas - 7 * 2 - 700 - 2_200
}

#[test]
fn call_forwards_all_but_one_64th() {
    // The callee is an empty STOP contract; the trace records exactly what
    // was forwarded.
    let msg_gas = 1_000_000u64;
    let (result, world) = run_call_pair(vec![0x00], msg_gas);
    assert!(result.success);
    let gl = gas_at_forwarding(msg_gas);
    assert_eq!(result.trace.calls.len(), 1);
    assert_eq!(
        result.trace.calls[0].gas,
        gl - gl / 64,
        "a max gas request must be capped at 63/64 of the remaining gas"
    );
    assert!(result.trace.calls[0].success);
    // The caller finished its postlude: slot 1 was written.
    assert_eq!(world.storage(addr(0x100), U256::ONE), U256::from_u64(42));
}

#[test]
fn draining_callee_leaves_the_caller_a_64th() {
    // The callee burns everything it was forwarded in an SSTORE loop:
    // JUMPDEST, PUSH1 1, PUSH1 0, SSTORE, PUSH1 0, JUMP.
    let drain = vec![0x5b, 0x60, 0x01, 0x60, 0x00, 0x55, 0x60, 0x00, 0x56];
    let msg_gas = 1_000_000u64;
    let (result, world) = run_call_pair(drain, msg_gas);

    // The callee ran out of gas...
    assert_eq!(result.trace.calls.len(), 1);
    assert!(!result.trace.calls[0].success);
    assert!(result.trace.calls[0].callee_exception);

    // ...but the outer frame kept its 1/64 retention and completed: the
    // transaction succeeds and the post-call SSTORE is committed.
    assert!(
        result.success,
        "caller must survive a draining callee: {:?}",
        result.halt
    );
    assert_eq!(world.storage(addr(0x100), U256::ONE), U256::from_u64(42));

    // Exact accounting: the callee consumed all forwarded gas, the caller
    // paid its own instructions on top, and what is left is the retention
    // minus the postlude (POP + 2 pushes + cold SSTORE + STOP = 6907).
    let gl = gas_at_forwarding(msg_gas);
    let retained = gl / 64;
    assert_eq!(msg_gas - result.gas_used, retained - 6_907);
}

#[test]
fn successful_callee_refunds_unspent_gas() {
    // A STOP callee consumes nothing: the only costs are the caller's own
    // instructions, so nearly the whole budget comes back.
    let msg_gas = 1_000_000u64;
    let (result, _world) = run_call_pair(vec![0x00], msg_gas);
    assert!(result.success);
    // Caller instructions: 7 pushes (14) + CALL (700 + 2200 cold account) +
    // callee STOP (1, charged inside the callee frame) + POP (2) + 2 pushes
    // (4) + SSTORE (5000 + 1900 cold slot) + STOP (1).
    assert_eq!(
        result.gas_used,
        14 + 700 + 2_200 + 1 + 2 + 4 + 5_000 + 1_900 + 1
    );
}
