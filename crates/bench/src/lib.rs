//! # mufuzz-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! MuFuzz paper's evaluation (§V) on the reproduction corpus:
//!
//! | Paper artefact | Binary | Library entry point |
//! |---|---|---|
//! | Table I (tool support matrix) | `table1_tool_matrix` | [`mufuzz_baselines::table1_matrix`] |
//! | Table II (datasets) | `table2_datasets` | [`mufuzz_corpus::table2_summaries`] |
//! | Figure 5 (coverage over time) | `fig5_coverage_over_time` | [`experiments::coverage_over_time`] |
//! | Figure 6 (overall coverage) | `fig6_overall_coverage` | [`experiments::overall_coverage`] |
//! | Table III (bug detection) | `table3_bug_detection` | [`experiments::bug_detection`] |
//! | Figure 7 (ablation) | `fig7_ablation` | [`experiments::ablation`] |
//! | Table IV (real-world study) | `table4_real_world` | [`experiments::real_world`] |
//!
//! Experiment sizes are scaled down from the paper (which fuzzes tens of
//! thousands of contracts for 10–20 minutes each); the binaries accept
//! environment variables (`MUFUZZ_CONTRACTS`, `MUFUZZ_EXECS`) to scale up.

#![warn(missing_docs)]

pub mod experiments;
pub mod table;

pub use experiments::{
    ablation, bug_detection, coverage_over_time, fleet_threads, overall_coverage, real_world,
    AblationResult, BugDetectionResult, CoverageSeries, OverallCoverage, RealWorldResult,
};

/// Read a `usize` experiment parameter from the environment with a default.
pub fn env_param(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Resolve the fleet-pool thread count for a figure binary: a `--workers N`
/// command-line flag wins, then the `MUFUZZ_WORKERS` environment variable,
/// then `0` (auto: the machine's parallelism, capped — see
/// [`experiments::fleet_threads`]). The value sizes the one
/// [`mufuzz::CampaignService`] pool the experiment fans contracts out on;
/// per-contract campaigns stay single-lane, so any value keeps per-seed
/// results deterministic.
pub fn workers_param() -> usize {
    workers_from(std::env::args(), env_param("MUFUZZ_WORKERS", 0))
}

fn workers_from(args: impl Iterator<Item = String>, fallback: usize) -> usize {
    let args: Vec<String> = args.collect();
    for pair in args.windows(2) {
        if pair[0] == "--workers" {
            if let Ok(n) = pair[1].parse::<usize>() {
                return n;
            }
        }
    }
    fallback
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_flag_parses_and_keeps_auto() {
        let parse = |args: &[&str]| workers_from(args.iter().map(|s| s.to_string()), 0);
        assert_eq!(parse(&["bin", "--workers", "4"]), 4);
        assert_eq!(parse(&["bin", "--workers", "0"]), 0); // 0 = auto-size the pool
        assert_eq!(parse(&["bin", "--workers"]), 0); // missing value
        assert_eq!(parse(&["bin"]), 0);
        // The flag wins over the environment fallback.
        assert_eq!(workers_from(["bin".to_string()].into_iter(), 8), 8);
    }

    #[test]
    fn env_param_falls_back_to_default() {
        assert_eq!(env_param("MUFUZZ_DOES_NOT_EXIST", 7), 7);
        std::env::set_var("MUFUZZ_TEST_PARAM", "42");
        assert_eq!(env_param("MUFUZZ_TEST_PARAM", 7), 42);
        std::env::set_var("MUFUZZ_TEST_PARAM", "not a number");
        assert_eq!(env_param("MUFUZZ_TEST_PARAM", 7), 7);
    }
}
