//! Finding replay: re-demonstrate a recorded bug from a campaign snapshot.
//!
//! Round-mode campaigns record a [`FindingRecord`] for every finding the
//! first time a mutant triggers it: the exact mutant [`Sequence`], its
//! `(seed uid, round, slot)` provenance, the worker count of the producing
//! campaign and a digest of the triggering execution's outcome. Because every
//! sequence executes against the harness's copy-on-write constructor
//! snapshot — never against mutable campaign state — re-executing the
//! recorded sequence on a fresh harness reproduces the original execution
//! bit for bit, at any worker count and on any machine.
//!
//! [`replay_finding`] anchors the replay to a [`CampaignSnapshot`]: the
//! snapshot and the record must both belong to the offered contract, and the
//! record's seed uid must already have been handed out when the snapshot was
//! taken. The record's binary encoding carries a trailing FNV-1a integrity
//! hash, so a tampered mutation trace is rejected with a clear error instead
//! of silently replaying something else.

use crate::config::FuzzerConfig;
use crate::executor::{ContractHarness, HarnessError, SequenceOutcome};
use crate::input::{Sequence, TxInput};
use crate::snapshot::{
    contract_fingerprint, put_bytes, put_str, put_u32, put_u64, CampaignSnapshot, Digest, Reader,
    SnapshotError,
};
use mufuzz_evm::Address;
use mufuzz_lang::CompiledContract;
use mufuzz_oracles::{BugClass, BugFinding, CampaignMonitor};
use std::error::Error;
use std::fmt;

/// Magic bytes opening every serialized finding record.
const MAGIC: [u8; 4] = *b"MUFR";
/// Finding-record format version.
const VERSION: u32 = 1;

/// A replayable bug finding: the mutant that first triggered it, pinned to
/// its campaign provenance.
///
/// Produced by round-mode campaigns in
/// [`CampaignReport::finding_records`](crate::CampaignReport::finding_records)
/// and consumed by [`replay_finding`]. Persist with
/// [`FindingRecord::to_bytes`] / [`FindingRecord::from_bytes`].
#[derive(Clone, Debug, PartialEq)]
pub struct FindingRecord {
    /// Fingerprint of the contract the finding was made on.
    pub contract_hash: u64,
    /// Uid of the corpus seed the triggering mutant was derived from.
    pub seed_uid: u64,
    /// Round in which the finding was first triggered.
    pub round: u64,
    /// Slot within that round (the round's deterministic work unit).
    pub slot: u32,
    /// Worker count of the campaign that produced the record. Informational:
    /// round mode produces the same records at any worker count, which is
    /// exactly what the replay suite exercises.
    pub workers: u32,
    /// The finding itself.
    pub finding: BugFinding,
    /// The exact mutant sequence that triggered the finding.
    pub sequence: Sequence,
    /// Digest of the triggering execution's outcome (successes, covered
    /// edge ids, final contract balance); replay must reproduce it exactly.
    pub outcome_digest: u64,
}

impl FindingRecord {
    /// Serialize to the versioned binary format with a trailing integrity
    /// hash.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Vec::with_capacity(128);
        w.extend_from_slice(&MAGIC);
        put_u32(&mut w, VERSION);
        put_u64(&mut w, self.contract_hash);
        put_u64(&mut w, self.seed_uid);
        put_u64(&mut w, self.round);
        put_u32(&mut w, self.slot);
        put_u32(&mut w, self.workers);
        let class_index = BugClass::ALL
            .iter()
            .position(|c| *c == self.finding.class)
            .expect("bug class missing from BugClass::ALL") as u8;
        w.push(class_index);
        match &self.finding.function {
            Some(name) => {
                w.push(1);
                put_str(&mut w, name);
            }
            None => w.push(0),
        }
        put_u64(&mut w, self.finding.pc as u64);
        put_str(&mut w, &self.finding.detail);
        put_u64(&mut w, self.sequence.txs.len() as u64);
        for tx in &self.sequence.txs {
            put_str(&mut w, &tx.function);
            put_u64(&mut w, tx.sender_index as u64);
            put_bytes(&mut w, &tx.stream);
        }
        put_u64(&mut w, self.outcome_digest);
        let mut integrity = Digest::new();
        integrity.eat(&w);
        put_u64(&mut w, integrity.finish());
        w
    }

    /// Parse a record from its binary form. Truncation, bad magic, unknown
    /// versions and — most importantly — any byte flip in the mutation trace
    /// (the trailing integrity hash no longer matches) are rejected.
    pub fn from_bytes(bytes: &[u8]) -> Result<FindingRecord, ReplayError> {
        let bad = |what: &str| ReplayError::Tampered(what.to_string());
        if bytes.len() < 12 {
            return Err(bad("record truncated"));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let mut integrity = Digest::new();
        integrity.eat(body);
        if integrity.finish() != u64::from_le_bytes(tail.try_into().expect("8-byte slice")) {
            return Err(bad("integrity hash mismatch (record was modified)"));
        }
        let mut r = Reader {
            bytes: body,
            pos: 0,
        };
        let parse = (|| -> Result<FindingRecord, SnapshotError> {
            if r.take(4)? != MAGIC {
                return Err(SnapshotError::BadMagic);
            }
            let version = r.u32()?;
            if version != VERSION {
                return Err(SnapshotError::UnsupportedVersion(version));
            }
            let contract_hash = r.u64()?;
            let seed_uid = r.u64()?;
            let round = r.u64()?;
            let slot = r.u32()?;
            let workers = r.u32()?;
            let class_index = r.u8()? as usize;
            let class = *BugClass::ALL
                .get(class_index)
                .ok_or_else(|| SnapshotError::Corrupt(format!("bad bug class {class_index}")))?;
            let function = if r.bool()? { Some(r.string()?) } else { None };
            let pc = r.u64()? as usize;
            let detail = r.string()?;
            let n_txs = r.len()?;
            let mut txs = Vec::with_capacity(n_txs);
            for _ in 0..n_txs {
                let function = r.string()?;
                let sender_index = r.u64()? as usize;
                let stream = r.byte_vec()?;
                txs.push(TxInput {
                    function,
                    sender_index,
                    stream,
                });
            }
            let outcome_digest = r.u64()?;
            if r.pos != body.len() {
                return Err(SnapshotError::Corrupt("trailing bytes".into()));
            }
            Ok(FindingRecord {
                contract_hash,
                seed_uid,
                round,
                slot,
                workers,
                finding: BugFinding {
                    class,
                    function,
                    pc,
                    detail,
                },
                sequence: Sequence { txs },
                outcome_digest,
            })
        })();
        parse.map_err(|e| ReplayError::Tampered(e.to_string()))
    }
}

/// Digest of the observable outcome of one sequence execution: transaction
/// successes, the sorted covered-edge ids, and the contract's final balance.
/// This is what ties a replayed execution to the recorded one.
pub(crate) fn outcome_digest(outcome: &SequenceOutcome, contract: Address) -> u64 {
    let mut d = Digest::new();
    d.eat_u64(outcome.successes as u64);
    d.eat_u64(outcome.covered_edge_ids.len() as u64);
    for &id in &outcome.covered_edge_ids {
        d.eat(&id.to_le_bytes());
    }
    d.eat(&outcome.final_world.balance(contract).to_be_bytes());
    d.finish()
}

/// Why a finding could not be replayed.
#[derive(Debug)]
pub enum ReplayError {
    /// The anchoring snapshot failed to parse or validate.
    Snapshot(SnapshotError),
    /// The record's bytes failed their integrity check (or did not parse):
    /// the mutation trace was modified since it was recorded.
    Tampered(String),
    /// The record or snapshot belongs to a different contract than the one
    /// offered for replay.
    ContractMismatch,
    /// The record references a seed uid the snapshot has not handed out yet
    /// — the record cannot have been produced by (a prefix of) the
    /// snapshotted campaign.
    UnknownSeed {
        /// Seed uid named by the record.
        seed_uid: u64,
        /// First unassigned uid in the snapshot.
        next_uid: u64,
    },
    /// The re-executed sequence produced a different outcome than the
    /// recorded one.
    OutcomeMismatch {
        /// Digest stored in the record.
        expected: u64,
        /// Digest of the replayed execution.
        actual: u64,
    },
    /// The contract failed to deploy for replay.
    Harness(HarnessError),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Snapshot(e) => write!(f, "snapshot error: {e}"),
            ReplayError::Tampered(what) => {
                write!(f, "finding record rejected: {what}")
            }
            ReplayError::ContractMismatch => {
                write!(f, "finding record belongs to a different contract")
            }
            ReplayError::UnknownSeed { seed_uid, next_uid } => write!(
                f,
                "record references seed uid {seed_uid} but the snapshot has only assigned uids below {next_uid}"
            ),
            ReplayError::OutcomeMismatch { expected, actual } => write!(
                f,
                "replayed execution diverged from the record (outcome digest {actual:#x}, recorded {expected:#x})"
            ),
            ReplayError::Harness(e) => write!(f, "harness error during replay: {e}"),
        }
    }
}

impl Error for ReplayError {}

impl From<SnapshotError> for ReplayError {
    fn from(e: SnapshotError) -> ReplayError {
        ReplayError::Snapshot(e)
    }
}

impl From<HarnessError> for ReplayError {
    fn from(e: HarnessError) -> ReplayError {
        ReplayError::Harness(e)
    }
}

/// What a successful replay reproduced.
#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    /// Digest of the replayed execution (equals the record's by contract).
    pub digest: u64,
    /// Findings a fresh oracle monitor raises on the replayed execution.
    pub findings: Vec<BugFinding>,
    /// Transactions that completed successfully.
    pub successes: usize,
    /// Distinct branch edges the replayed execution covered.
    pub covered_edges: usize,
    /// True if the recorded finding (class, function, pc and detail) is
    /// among the fresh monitor's findings — the oracle verdict reproduced.
    pub verdict_reproduced: bool,
}

/// Re-execute a recorded finding from a campaign snapshot and verify it
/// reproduces bit-identically.
///
/// Validates that record and snapshot belong to `compiled`, that the
/// record's seed uid was already assigned when the snapshot was taken, then
/// executes the recorded mutant sequence on a fresh harness (sequences
/// always start from the constructor's copy-on-write world snapshot, so the
/// replay is a standalone re-execution of the original) and checks the
/// outcome digest and oracle verdict against the record.
pub fn replay_finding(
    compiled: CompiledContract,
    config: &FuzzerConfig,
    snapshot: &CampaignSnapshot,
    record: &FindingRecord,
) -> Result<ReplayOutcome, ReplayError> {
    let fingerprint = contract_fingerprint(&compiled);
    if snapshot.contract_hash != fingerprint || record.contract_hash != fingerprint {
        return Err(ReplayError::ContractMismatch);
    }
    if record.seed_uid >= snapshot.next_uid {
        return Err(ReplayError::UnknownSeed {
            seed_uid: record.seed_uid,
            next_uid: snapshot.next_uid,
        });
    }
    let harness = ContractHarness::new(compiled, config)?;
    let outcome = harness.execute_sequence(&record.sequence);
    let digest = outcome_digest(&outcome, harness.contract_address);
    if digest != record.outcome_digest {
        return Err(ReplayError::OutcomeMismatch {
            expected: record.outcome_digest,
            actual: digest,
        });
    }
    let mut monitor = CampaignMonitor::new();
    for trace in &outcome.traces {
        monitor.observe(&harness.compiled, trace);
    }
    monitor.observe_world(outcome.final_world.balance(harness.contract_address));
    let findings = monitor.findings();
    let verdict_reproduced = findings.contains(&record.finding);
    Ok(ReplayOutcome {
        digest,
        findings,
        successes: outcome.successes,
        covered_edges: outcome.covered_edge_ids.len(),
        verdict_reproduced,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> FindingRecord {
        FindingRecord {
            contract_hash: 0xFEED,
            seed_uid: 3,
            round: 2,
            slot: 5,
            workers: 4,
            finding: BugFinding {
                class: BugClass::ALL[0],
                function: Some("withdraw".into()),
                pc: 42,
                detail: "sample".into(),
            },
            sequence: Sequence {
                txs: vec![TxInput {
                    function: "withdraw".into(),
                    sender_index: 1,
                    stream: vec![9, 8, 7],
                }],
            },
            outcome_digest: 0xABCD,
        }
    }

    #[test]
    fn record_round_trips_through_bytes() {
        let record = sample_record();
        let restored = FindingRecord::from_bytes(&record.to_bytes()).expect("round trip");
        assert_eq!(restored, record);
    }

    #[test]
    fn any_byte_flip_is_rejected() {
        let bytes = sample_record().to_bytes();
        for i in 0..bytes.len() {
            let mut tampered = bytes.clone();
            tampered[i] ^= 0x01;
            assert!(
                FindingRecord::from_bytes(&tampered).is_err(),
                "flip at byte {i} should be rejected"
            );
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = sample_record().to_bytes();
        for cut in 0..bytes.len() {
            assert!(FindingRecord::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn tampered_error_is_descriptive() {
        let mut bytes = sample_record().to_bytes();
        let last = bytes.len() - 20;
        bytes[last] ^= 0xFF;
        match FindingRecord::from_bytes(&bytes) {
            Err(ReplayError::Tampered(msg)) => {
                assert!(msg.contains("modified"), "message: {msg}")
            }
            other => panic!("expected Tampered, got {other:?}"),
        }
    }
}
