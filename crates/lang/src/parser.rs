//! Recursive-descent parser for the mini-Solidity language.

use crate::ast::{
    AssignOp, BinOp, Contract, EnvValue, Expr, Function, LValue, Param, StateVar, Stmt, Type,
    Visibility,
};
use crate::lexer::{tokenize, LexError, SpannedToken, Token};
use std::fmt;

/// A parse error with a line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            line: e.line,
            message: e.message,
        }
    }
}

/// Parse a source file into its contract definitions.
pub fn parse_source(source: &str) -> Result<Vec<Contract>, ParseError> {
    // Tolerate `pragma solidity ...;` and `import ...;` lines by blanking them
    // out before lexing (they may contain characters like `^` that the lexer
    // otherwise rejects). Line numbers are preserved.
    let cleaned: String = source
        .lines()
        .map(|line| {
            let trimmed = line.trim_start();
            if trimmed.starts_with("pragma ") || trimmed.starts_with("import ") {
                String::new()
            } else {
                line.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    let tokens = tokenize(&cleaned)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut contracts = Vec::new();
    while !matches!(parser.peek(), Token::Eof) {
        contracts.push(parser.parse_contract()?);
    }
    if contracts.is_empty() {
        return Err(ParseError {
            line: 1,
            message: "no contract definition found".into(),
        });
    }
    Ok(contracts)
}

/// Parse a source file expected to contain exactly one primary contract
/// (the first one defined).
pub fn parse_contract_source(source: &str) -> Result<Contract, ParseError> {
    Ok(parse_source(source)?.remove(0))
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].token
    }

    fn peek_at(&self, offset: usize) -> &Token {
        &self.tokens[(self.pos + offset).min(self.tokens.len() - 1)].token
    }

    fn line(&self) -> usize {
        self.tokens[self.pos.min(self.tokens.len() - 1)].line
    }

    fn advance(&mut self) -> Token {
        let tok = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .token
            .clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        tok
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line: self.line(),
            message: message.into(),
        })
    }

    fn expect(&mut self, token: &Token) -> Result<(), ParseError> {
        if self.peek() == token {
            self.advance();
            Ok(())
        } else {
            self.error(format!("expected {token:?}, found {:?}", self.peek()))
        }
    }

    fn check_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Token::Ident(w) if w == word)
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if self.check_ident(word) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.advance() {
            Token::Ident(name) => Ok(name),
            other => self.error(format!("expected identifier, found {other:?}")),
        }
    }

    fn is_type_keyword(word: &str) -> bool {
        matches!(
            word,
            "uint256"
                | "uint"
                | "uint8"
                | "uint16"
                | "uint32"
                | "uint64"
                | "uint128"
                | "address"
                | "bool"
                | "mapping"
        )
    }

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        let word = self.expect_ident()?;
        match word.as_str() {
            "uint256" | "uint" | "uint8" | "uint16" | "uint32" | "uint64" | "uint128" => {
                Ok(Type::Uint256)
            }
            "address" => {
                // `address payable` is accepted and treated as `address`.
                self.eat_ident("payable");
                Ok(Type::Address)
            }
            "bool" => Ok(Type::Bool),
            "mapping" => {
                self.expect(&Token::LParen)?;
                let key = self.parse_type()?;
                self.expect(&Token::Arrow)?;
                let value = self.parse_type()?;
                self.expect(&Token::RParen)?;
                Ok(Type::Mapping(Box::new(key), Box::new(value)))
            }
            other => self.error(format!("unknown type '{other}'")),
        }
    }

    fn parse_contract(&mut self) -> Result<Contract, ParseError> {
        if !self.eat_ident("contract") {
            return self.error("expected 'contract'");
        }
        let name = self.expect_ident()?;
        // Inheritance clauses are accepted and ignored.
        if self.eat_ident("is") {
            self.expect_ident()?;
            while self.peek() == &Token::Comma {
                self.advance();
                self.expect_ident()?;
            }
        }
        self.expect(&Token::LBrace)?;
        let mut contract = Contract {
            name,
            ..Default::default()
        };
        while self.peek() != &Token::RBrace {
            if self.check_ident("constructor") {
                self.advance();
                let (params, payable) = self.parse_function_header_rest()?;
                contract.constructor_params = params;
                contract.constructor_payable = payable;
                contract.constructor = self.parse_block()?;
            } else if self.check_ident("function") {
                contract.functions.push(self.parse_function()?);
            } else {
                contract.state_vars.push(self.parse_state_var()?);
            }
        }
        self.expect(&Token::RBrace)?;
        Ok(contract)
    }

    fn parse_state_var(&mut self) -> Result<StateVar, ParseError> {
        let ty = self.parse_type()?;
        // Optional visibility / mutability keywords before the name.
        loop {
            if self.check_ident("public")
                || self.check_ident("private")
                || self.check_ident("internal")
                || self.check_ident("constant")
            {
                self.advance();
            } else {
                break;
            }
        }
        let name = self.expect_ident()?;
        let initial = if self.peek() == &Token::Assign {
            self.advance();
            Some(self.parse_expr()?)
        } else {
            None
        };
        self.expect(&Token::Semi)?;
        Ok(StateVar { name, ty, initial })
    }

    /// Parse `(params) modifiers...` shared by functions and constructors.
    /// Returns the parameters and the payable flag; visibility is returned by
    /// `parse_function`.
    fn parse_function_header_rest(&mut self) -> Result<(Vec<Param>, bool), ParseError> {
        self.expect(&Token::LParen)?;
        let mut params = Vec::new();
        while self.peek() != &Token::RParen {
            let ty = self.parse_type()?;
            let name = self.expect_ident()?;
            params.push(Param { name, ty });
            if self.peek() == &Token::Comma {
                self.advance();
            }
        }
        self.expect(&Token::RParen)?;
        let mut payable = false;
        loop {
            if self.check_ident("payable") {
                payable = true;
                self.advance();
            } else if self.check_ident("public")
                || self.check_ident("external")
                || self.check_ident("internal")
                || self.check_ident("private")
                || self.check_ident("view")
                || self.check_ident("pure")
                || self.check_ident("constant")
            {
                self.advance();
            } else {
                break;
            }
        }
        Ok((params, payable))
    }

    fn parse_function(&mut self) -> Result<Function, ParseError> {
        self.advance(); // 'function'
        let name = if self.peek() == &Token::LParen {
            String::new() // fallback function
        } else {
            self.expect_ident()?
        };

        self.expect(&Token::LParen)?;
        let mut params = Vec::new();
        while self.peek() != &Token::RParen {
            let ty = self.parse_type()?;
            let pname = self.expect_ident()?;
            params.push(Param { name: pname, ty });
            if self.peek() == &Token::Comma {
                self.advance();
            }
        }
        self.expect(&Token::RParen)?;

        let mut payable = false;
        let mut visibility = Visibility::Public;
        let mut returns = None;
        loop {
            if self.check_ident("payable") {
                payable = true;
                self.advance();
            } else if self.check_ident("public") {
                visibility = Visibility::Public;
                self.advance();
            } else if self.check_ident("external") {
                visibility = Visibility::External;
                self.advance();
            } else if self.check_ident("internal") {
                visibility = Visibility::Internal;
                self.advance();
            } else if self.check_ident("private") {
                visibility = Visibility::Private;
                self.advance();
            } else if self.check_ident("view")
                || self.check_ident("pure")
                || self.check_ident("constant")
            {
                self.advance();
            } else if self.check_ident("returns") {
                self.advance();
                self.expect(&Token::LParen)?;
                returns = Some(self.parse_type()?);
                // An optional return-parameter name is ignored.
                if matches!(self.peek(), Token::Ident(_)) {
                    self.advance();
                }
                self.expect(&Token::RParen)?;
            } else {
                break;
            }
        }
        let body = self.parse_block()?;
        Ok(Function {
            name,
            params,
            visibility,
            payable,
            returns,
            body,
        })
    }

    fn parse_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(&Token::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &Token::RBrace {
            stmts.push(self.parse_statement()?);
        }
        self.expect(&Token::RBrace)?;
        Ok(stmts)
    }

    fn parse_statement(&mut self) -> Result<Stmt, ParseError> {
        // Local variable declaration.
        if let Token::Ident(word) = self.peek() {
            let word = word.clone();
            if Self::is_type_keyword(&word) && matches!(self.peek_at(1), Token::Ident(_)) {
                // Disambiguate casts (`uint256(x)`) from declarations
                // (`uint256 x = ...`): a declaration is followed by an
                // identifier, a cast by '('.
                let ty = self.parse_type()?;
                let name = self.expect_ident()?;
                self.expect(&Token::Assign)?;
                let init = self.parse_expr()?;
                self.expect(&Token::Semi)?;
                return Ok(Stmt::Local(name, ty, init));
            }
            match word.as_str() {
                "if" => return self.parse_if(),
                "while" => {
                    self.advance();
                    self.expect(&Token::LParen)?;
                    let cond = self.parse_expr()?;
                    self.expect(&Token::RParen)?;
                    let body = self.parse_block()?;
                    return Ok(Stmt::While(cond, body));
                }
                "require" | "assert" => {
                    self.advance();
                    self.expect(&Token::LParen)?;
                    let cond = self.parse_expr()?;
                    if self.peek() == &Token::Comma {
                        self.advance();
                        // Error message string is ignored.
                        self.advance();
                    }
                    self.expect(&Token::RParen)?;
                    self.expect(&Token::Semi)?;
                    return Ok(Stmt::Require(cond));
                }
                "revert" => {
                    self.advance();
                    self.expect(&Token::LParen)?;
                    if matches!(self.peek(), Token::Str(_)) {
                        self.advance();
                    }
                    self.expect(&Token::RParen)?;
                    self.expect(&Token::Semi)?;
                    return Ok(Stmt::Require(Expr::Bool(false)));
                }
                "return" => {
                    self.advance();
                    if self.peek() == &Token::Semi {
                        self.advance();
                        return Ok(Stmt::Return(None));
                    }
                    let value = self.parse_expr()?;
                    self.expect(&Token::Semi)?;
                    return Ok(Stmt::Return(Some(value)));
                }
                "selfdestruct" | "suicide" => {
                    self.advance();
                    self.expect(&Token::LParen)?;
                    let beneficiary = self.parse_expr()?;
                    self.expect(&Token::RParen)?;
                    self.expect(&Token::Semi)?;
                    return Ok(Stmt::SelfDestruct(beneficiary));
                }
                "bug" => {
                    self.advance();
                    self.expect(&Token::LParen)?;
                    self.expect(&Token::RParen)?;
                    self.expect(&Token::Semi)?;
                    return Ok(Stmt::BugMarker);
                }
                _ => {}
            }
        }

        // Assignment, transfer statement, or expression statement.
        let target = self.parse_unary()?;
        match self.peek().clone() {
            Token::Dot => {
                // Only `.transfer(amount)` reaches here; every other member is
                // consumed by the postfix parser.
                self.advance();
                let member = self.expect_ident()?;
                if member != "transfer" {
                    return self.error(format!("unsupported member call '.{member}' in statement"));
                }
                self.expect(&Token::LParen)?;
                let amount = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                self.expect(&Token::Semi)?;
                Ok(Stmt::Transfer(target, amount))
            }
            tok @ (Token::Assign | Token::PlusAssign | Token::MinusAssign | Token::StarAssign) => {
                self.advance();
                let op = match tok {
                    Token::Assign => AssignOp::Assign,
                    Token::PlusAssign => AssignOp::AddAssign,
                    Token::MinusAssign => AssignOp::SubAssign,
                    _ => AssignOp::MulAssign,
                };
                let lvalue = match target {
                    Expr::Ident(name) => LValue::Ident(name),
                    Expr::Index(base, key) => match *base {
                        Expr::Ident(name) => LValue::Index(name, *key),
                        _ => return self.error("unsupported assignment target"),
                    },
                    _ => return self.error("unsupported assignment target"),
                };
                let value = self.parse_expr()?;
                self.expect(&Token::Semi)?;
                Ok(Stmt::Assign(lvalue, op, value))
            }
            Token::Semi => {
                self.advance();
                Ok(Stmt::ExprStmt(target))
            }
            other => self.error(format!("unexpected token {other:?} in statement")),
        }
    }

    fn parse_if(&mut self) -> Result<Stmt, ParseError> {
        self.advance(); // 'if'
        self.expect(&Token::LParen)?;
        let cond = self.parse_expr()?;
        self.expect(&Token::RParen)?;
        let then_block = self.parse_block()?;
        let else_block = if self.eat_ident("else") {
            if self.check_ident("if") {
                vec![self.parse_if()?]
            } else {
                self.parse_block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If(cond, then_block, else_block))
    }

    // -------- expressions --------

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and()?;
        while self.peek() == &Token::OrOr {
            self.advance();
            let rhs = self.parse_and()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_equality()?;
        while self.peek() == &Token::AndAnd {
            self.advance();
            let rhs = self.parse_equality()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_equality(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_comparison()?;
        loop {
            let op = match self.peek() {
                Token::EqEq => BinOp::Eq,
                Token::NotEq => BinOp::Ne,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_comparison()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_comparison(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_additive()?;
        loop {
            let op = match self.peek() {
                Token::Lt => BinOp::Lt,
                Token::Gt => BinOp::Gt,
                Token::Le => BinOp::Le,
                Token::Ge => BinOp::Ge,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_additive()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                Token::Percent => BinOp::Mod,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_unary()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.peek() == &Token::Not {
            self.advance();
            let inner = self.parse_unary()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.parse_primary()?;
        loop {
            match self.peek() {
                Token::LBracket => {
                    self.advance();
                    let key = self.parse_expr()?;
                    self.expect(&Token::RBracket)?;
                    expr = Expr::Index(Box::new(expr), Box::new(key));
                }
                Token::Dot => {
                    // Leave `.transfer(...)` for the statement parser.
                    if let Token::Ident(next) = self.peek_at(1) {
                        if next == "transfer" {
                            break;
                        }
                    }
                    self.advance();
                    let member = self.expect_ident()?;
                    expr = self.parse_member(expr, &member)?;
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn parse_member(&mut self, base: Expr, member: &str) -> Result<Expr, ParseError> {
        match (&base, member) {
            (Expr::Ident(name), "sender") if name == "msg" => Ok(Expr::Env(EnvValue::MsgSender)),
            (Expr::Ident(name), "value") if name == "msg" => Ok(Expr::Env(EnvValue::MsgValue)),
            (Expr::Ident(name), "origin") if name == "tx" => Ok(Expr::Env(EnvValue::TxOrigin)),
            (Expr::Ident(name), "timestamp") if name == "block" => {
                Ok(Expr::Env(EnvValue::BlockTimestamp))
            }
            (Expr::Ident(name), "number") if name == "block" => {
                Ok(Expr::Env(EnvValue::BlockNumber))
            }
            (_, "balance") => Ok(Expr::BalanceOf(Box::new(base))),
            (_, "send") => {
                self.expect(&Token::LParen)?;
                let amount = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(Expr::Send(Box::new(base), Box::new(amount)))
            }
            (_, "call") => {
                // `.call.value(amount)()` possibly followed by `.gas(n)`.
                self.expect(&Token::Dot)?;
                let sub = self.expect_ident()?;
                if sub != "value" {
                    return self.error(format!("expected '.value' after '.call', found '.{sub}'"));
                }
                self.expect(&Token::LParen)?;
                let amount = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                // Optional `.gas(...)` clause is ignored.
                if self.peek() == &Token::Dot {
                    if let Token::Ident(next) = self.peek_at(1) {
                        if next == "gas" {
                            self.advance();
                            self.advance();
                            self.expect(&Token::LParen)?;
                            let _ = self.parse_expr()?;
                            self.expect(&Token::RParen)?;
                        }
                    }
                }
                self.expect(&Token::LParen)?;
                self.expect(&Token::RParen)?;
                Ok(Expr::CallValue(Box::new(base), Box::new(amount)))
            }
            (_, "delegatecall") => {
                self.expect(&Token::LParen)?;
                let mut args = Vec::new();
                while self.peek() != &Token::RParen {
                    args.push(self.parse_expr()?);
                    if self.peek() == &Token::Comma {
                        self.advance();
                    }
                }
                self.expect(&Token::RParen)?;
                Ok(Expr::DelegateCall(Box::new(base), args))
            }
            _ => self.error(format!("unsupported member access '.{member}'")),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Token::Number(n) => {
                self.advance();
                let multiplier: u128 = if let Token::Ident(unit) = self.peek() {
                    match unit.as_str() {
                        "wei" => {
                            self.advance();
                            1
                        }
                        "finney" => {
                            self.advance();
                            1_000_000_000_000_000
                        }
                        "ether" => {
                            self.advance();
                            1_000_000_000_000_000_000
                        }
                        "seconds" => {
                            self.advance();
                            1
                        }
                        "minutes" => {
                            self.advance();
                            60
                        }
                        "hours" => {
                            self.advance();
                            3_600
                        }
                        "days" => {
                            self.advance();
                            86_400
                        }
                        _ => 1,
                    }
                } else {
                    1
                };
                let value = n.checked_mul(multiplier).ok_or_else(|| ParseError {
                    line: self.line(),
                    message: "literal with unit overflows 128 bits".into(),
                })?;
                Ok(Expr::Number(value))
            }
            Token::LParen => {
                self.advance();
                let inner = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            Token::Ident(word) => {
                match word.as_str() {
                    "true" => {
                        self.advance();
                        Ok(Expr::Bool(true))
                    }
                    "false" => {
                        self.advance();
                        Ok(Expr::Bool(false))
                    }
                    "now" => {
                        self.advance();
                        Ok(Expr::Env(EnvValue::BlockTimestamp))
                    }
                    "this" => {
                        self.advance();
                        Ok(Expr::Env(EnvValue::This))
                    }
                    "keccak256" => {
                        self.advance();
                        self.expect(&Token::LParen)?;
                        let mut args = Vec::new();
                        if self.check_ident("abi") {
                            // keccak256(abi.encodePacked(a, b, ...))
                            self.advance();
                            self.expect(&Token::Dot)?;
                            let sub = self.expect_ident()?;
                            if sub != "encodePacked" && sub != "encode" {
                                return self.error(format!("unsupported abi helper 'abi.{sub}'"));
                            }
                            self.expect(&Token::LParen)?;
                            while self.peek() != &Token::RParen {
                                args.push(self.parse_expr()?);
                                if self.peek() == &Token::Comma {
                                    self.advance();
                                }
                            }
                            self.expect(&Token::RParen)?;
                        } else {
                            while self.peek() != &Token::RParen {
                                args.push(self.parse_expr()?);
                                if self.peek() == &Token::Comma {
                                    self.advance();
                                }
                            }
                        }
                        self.expect(&Token::RParen)?;
                        Ok(Expr::Keccak(args))
                    }
                    w if Self::is_type_keyword(w) => {
                        // Cast such as `uint256(x)` or `address(this)`.
                        let ty = self.parse_type()?;
                        self.expect(&Token::LParen)?;
                        let inner = self.parse_expr()?;
                        self.expect(&Token::RParen)?;
                        Ok(Expr::Cast(ty, Box::new(inner)))
                    }
                    _ => {
                        self.advance();
                        Ok(Expr::Ident(word))
                    }
                }
            }
            other => self.error(format!("unexpected token {other:?} in expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CROWDSALE: &str = r#"
        contract Crowdsale {
            uint256 phase = 0;
            uint256 goal;
            uint256 invested;
            address owner;
            mapping(address => uint256) invests;

            constructor() public {
                goal = 100 ether;
                invested = 0;
                owner = msg.sender;
            }

            function invest(uint256 donations) public payable {
                if (invested < goal) {
                    invests[msg.sender] += donations;
                    invested += donations;
                    phase = 0;
                } else {
                    phase = 1;
                }
            }

            function refund() public {
                if (phase == 0) {
                    msg.sender.transfer(invests[msg.sender]);
                    invests[msg.sender] = 0;
                }
            }

            function withdraw() public {
                if (phase == 1) {
                    bug();
                    owner.transfer(invested);
                }
            }
        }
    "#;

    #[test]
    fn parses_crowdsale_contract() {
        let contract = parse_contract_source(CROWDSALE).unwrap();
        assert_eq!(contract.name, "Crowdsale");
        assert_eq!(contract.state_vars.len(), 5);
        assert_eq!(contract.functions.len(), 3);
        assert_eq!(contract.constructor.len(), 3);
        assert!(contract.function("invest").unwrap().payable);
        assert!(!contract.function("refund").unwrap().payable);
    }

    #[test]
    fn parses_state_var_initialisers_and_units() {
        let contract = parse_contract_source(CROWDSALE).unwrap();
        assert_eq!(
            contract.state_var("phase").unwrap().initial,
            Some(Expr::Number(0))
        );
        // goal = 100 ether becomes a scaled literal in the constructor.
        match &contract.constructor[0] {
            Stmt::Assign(LValue::Ident(name), AssignOp::Assign, Expr::Number(v)) => {
                assert_eq!(name, "goal");
                assert_eq!(*v, 100 * 10u128.pow(18));
            }
            other => panic!("unexpected constructor stmt: {other:?}"),
        }
    }

    #[test]
    fn parses_if_else_and_compound_assignment() {
        let contract = parse_contract_source(CROWDSALE).unwrap();
        let invest = contract.function("invest").unwrap();
        match &invest.body[0] {
            Stmt::If(cond, then_block, else_block) => {
                assert!(matches!(cond, Expr::Binary(BinOp::Lt, _, _)));
                assert_eq!(then_block.len(), 3);
                assert_eq!(else_block.len(), 1);
                assert!(matches!(
                    then_block[0],
                    Stmt::Assign(LValue::Index(_, _), AssignOp::AddAssign, _)
                ));
            }
            other => panic!("unexpected stmt: {other:?}"),
        }
    }

    #[test]
    fn parses_transfer_and_bug_marker() {
        let contract = parse_contract_source(CROWDSALE).unwrap();
        let refund = contract.function("refund").unwrap();
        match &refund.body[0] {
            Stmt::If(_, then_block, _) => {
                assert!(matches!(then_block[0], Stmt::Transfer(_, _)));
            }
            other => panic!("unexpected stmt: {other:?}"),
        }
        let withdraw = contract.function("withdraw").unwrap();
        match &withdraw.body[0] {
            Stmt::If(_, then_block, _) => {
                assert!(matches!(then_block[0], Stmt::BugMarker));
                assert!(matches!(then_block[1], Stmt::Transfer(_, _)));
            }
            other => panic!("unexpected stmt: {other:?}"),
        }
    }

    #[test]
    fn parses_game_contract_with_keccak_and_require() {
        let src = r#"
            contract Game {
                mapping(address => uint256) balance;
                function guessNum(uint256 number) public payable {
                    uint256 random = uint256(keccak256(abi.encodePacked(block.timestamp, now))) % 200;
                    require(msg.value == 88 finney);
                    if (number < random) {
                        uint256 luckyNum = number % 2;
                        if (luckyNum == 0) {
                            balance[msg.sender] += msg.value * 10;
                        } else {
                            balance[msg.sender] += msg.value * 5;
                        }
                    }
                }
            }
        "#;
        let contract = parse_contract_source(src).unwrap();
        let f = contract.function("guessNum").unwrap();
        assert!(matches!(&f.body[0], Stmt::Local(name, Type::Uint256, _) if name == "random"));
        assert!(matches!(
            &f.body[1],
            Stmt::Require(Expr::Binary(BinOp::Eq, _, _))
        ));
        // Nested ifs.
        match &f.body[2] {
            Stmt::If(_, then_block, _) => {
                assert!(matches!(&then_block[1], Stmt::If(_, _, _)));
            }
            other => panic!("unexpected stmt: {other:?}"),
        }
    }

    #[test]
    fn parses_send_callvalue_delegatecall_selfdestruct() {
        let src = r#"
            contract Wallet {
                address owner;
                function pay(address to, uint256 amount) public {
                    to.send(amount);
                    to.call.value(amount)();
                }
                function proxy(address target, uint256 data) public {
                    target.delegatecall(data);
                }
                function kill() public {
                    selfdestruct(msg.sender);
                }
                function origin_guard() public {
                    require(tx.origin == owner);
                }
            }
        "#;
        let contract = parse_contract_source(src).unwrap();
        let pay = contract.function("pay").unwrap();
        assert!(matches!(&pay.body[0], Stmt::ExprStmt(Expr::Send(_, _))));
        assert!(matches!(
            &pay.body[1],
            Stmt::ExprStmt(Expr::CallValue(_, _))
        ));
        let proxy = contract.function("proxy").unwrap();
        assert!(matches!(
            &proxy.body[0],
            Stmt::ExprStmt(Expr::DelegateCall(_, _))
        ));
        let kill = contract.function("kill").unwrap();
        assert!(matches!(&kill.body[0], Stmt::SelfDestruct(_)));
        let guard = contract.function("origin_guard").unwrap();
        assert!(matches!(&guard.body[0], Stmt::Require(_)));
    }

    #[test]
    fn parses_while_loops_and_returns() {
        let src = r#"
            contract Loop {
                uint256 total;
                function sum(uint256 n) public returns (uint256) {
                    uint256 i = 0;
                    while (i < n) {
                        total += i;
                        i += 1;
                    }
                    return total;
                }
            }
        "#;
        let contract = parse_contract_source(src).unwrap();
        let f = contract.function("sum").unwrap();
        assert_eq!(f.returns, Some(Type::Uint256));
        assert!(matches!(&f.body[1], Stmt::While(_, body) if body.len() == 2));
        assert!(matches!(&f.body[2], Stmt::Return(Some(_))));
    }

    #[test]
    fn parses_multiple_contracts_and_pragma() {
        let src = r#"
            pragma solidity ^0.4.26;
            contract A { uint256 x; }
            contract B { uint256 y; }
        "#;
        let contracts = parse_source(src).unwrap();
        assert_eq!(contracts.len(), 2);
        assert_eq!(contracts[0].name, "A");
        assert_eq!(contracts[1].name, "B");
    }

    #[test]
    fn parses_balance_and_strict_equality() {
        let src = r#"
            contract Strict {
                function check() public {
                    require(address(this).balance == 1 ether);
                }
            }
        "#;
        let contract = parse_contract_source(src).unwrap();
        let f = contract.function("check").unwrap();
        match &f.body[0] {
            Stmt::Require(Expr::Binary(BinOp::Eq, lhs, _)) => {
                assert!(matches!(**lhs, Expr::BalanceOf(_)));
            }
            other => panic!("unexpected stmt: {other:?}"),
        }
    }

    #[test]
    fn reports_errors_with_lines() {
        let err = parse_contract_source("contract X { uint256 }").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(parse_contract_source("").is_err());
        assert!(parse_contract_source("contract { }").is_err());
    }

    #[test]
    fn rejects_unsupported_member() {
        let src = "contract C { function f() public { msg.sender.frobnicate(1); } }";
        assert!(parse_contract_source(src).is_err());
    }
}
