//! Property-based tests for the fuzzer's mutation layer: the operators never
//! panic, respect masks and maintain stream-length invariants.

use mufuzz::mutation::{
    apply_op, mutate_masked, word_count, InterestingValues, MutationMask, MutationOp,
};
use mufuzz::{Sequence, TxInput};
use mufuzz_evm::U256;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_stream() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..256)
}

fn arb_op() -> impl Strategy<Value = MutationOp> {
    prop_oneof![
        Just(MutationOp::Overwrite),
        Just(MutationOp::Insert),
        Just(MutationOp::Replace),
        Just(MutationOp::Delete),
    ]
}

proptest! {
    #[test]
    fn apply_op_never_panics_and_bounds_growth(
        stream in arb_stream(),
        op in arb_op(),
        word in 0usize..16,
        seed in any::<u64>(),
    ) {
        let pool = InterestingValues::defaults();
        let mut rng = SmallRng::seed_from_u64(seed);
        let out = apply_op(&stream, op, word, &mut rng, &pool);
        // A single mutation changes the length by at most one 32-byte word.
        prop_assert!(out.len() + 32 >= stream.len());
        prop_assert!(out.len() <= stream.len() + 32);
    }

    #[test]
    fn overwrite_and_replace_preserve_length(
        stream in proptest::collection::vec(any::<u8>(), 32..256),
        word in 0usize..4,
        seed in any::<u64>(),
    ) {
        let pool = InterestingValues::defaults();
        let mut rng = SmallRng::seed_from_u64(seed);
        let len = stream.len();
        let overwritten = apply_op(&stream, MutationOp::Overwrite, word % word_count(len), &mut rng, &pool);
        prop_assert_eq!(overwritten.len(), len);
        let replaced = apply_op(&stream, MutationOp::Replace, word % word_count(len), &mut rng, &pool);
        prop_assert_eq!(replaced.len(), len);
    }

    #[test]
    fn masked_mutation_never_touches_fully_frozen_words(
        stream in proptest::collection::vec(any::<u8>(), 64..160),
        seed in any::<u64>(),
    ) {
        // Freeze everything except the last word with length-preserving ops.
        let words = word_count(stream.len());
        let mut mask = MutationMask::deny_all(stream.len());
        mask.allow(words - 1, MutationOp::Overwrite);
        mask.allow(words - 1, MutationOp::Replace);
        let pool = InterestingValues::defaults();
        let mut rng = SmallRng::seed_from_u64(seed);
        let out = mutate_masked(&stream, &mask, &mut rng, &pool).unwrap();
        prop_assert_eq!(out.len(), stream.len());
        // All frozen words are untouched.
        let frozen_end = (words - 1) * 32;
        prop_assert_eq!(&out[..frozen_end], &stream[..frozen_end]);
    }

    #[test]
    fn fully_denied_masks_produce_no_mutants(stream in arb_stream(), seed in any::<u64>()) {
        let mask = MutationMask::deny_all(stream.len());
        let pool = InterestingValues::defaults();
        let mut rng = SmallRng::seed_from_u64(seed);
        prop_assert!(mutate_masked(&stream, &mask, &mut rng, &pool).is_none());
    }

    #[test]
    fn tx_input_value_and_args_are_consistent(
        value in proptest::array::uniform32(any::<u8>()),
        words in proptest::collection::vec(proptest::array::uniform32(any::<u8>()), 0..4),
    ) {
        let value = U256::from_be_bytes(value);
        let args: Vec<U256> = words.iter().map(|w| U256::from_be_bytes(*w)).collect();
        let tx = TxInput::new("f", 0, value, &args);
        prop_assert_eq!(tx.value(), value);
        for (i, arg) in args.iter().enumerate() {
            prop_assert_eq!(tx.arg_word(i), *arg);
        }
        prop_assert_eq!(tx.stream.len(), 32 * (1 + args.len()));
    }

    #[test]
    fn sequence_shape_reflects_functions(names in proptest::collection::vec("[a-c]{1,4}", 1..6)) {
        let seq = Sequence::new(names.iter().map(|n| TxInput::simple(n)).collect());
        let shape = seq.shape();
        prop_assert_eq!(shape.split("->").count(), names.len());
        for name in &names {
            prop_assert!(shape.contains(name.as_str()));
        }
    }
}
