//! Replay regression tests: a `FindingRecord` captured by a round-mode
//! campaign re-executes bit-identically from a `CampaignSnapshot` — the
//! outcome digest and the oracle verdict both reproduce — and a tampered
//! mutation trace is rejected with a clear error.
//!
//! The acceptance-criteria scenario is exercised directly: records are
//! captured at one worker count and replayed against a snapshot checkpointed
//! at a *different* worker count, which round mode makes equivalent.

use mufuzz::{
    replay_finding, CampaignProgress, CampaignReport, CampaignService, CampaignSnapshot,
    DeterminismProfile, FindingRecord, FuzzerConfig, ReplayError, SubmitOptions,
};
use mufuzz_corpus::contracts;
use mufuzz_lang::compile_source;

/// A PiggyBank in the style of the classic reentrancy example: `smash` sends
/// the whole balance through a raw call before zeroing the savings.
const PIGGY_BANK: &str = "contract PiggyBank {
    uint256 savings;
    function deposit() public payable { savings += msg.value; }
    function smash() public {
        msg.sender.call.value(address(this).balance)();
        savings = 0;
    }
}";

fn round_config(seed: u64, workers: usize) -> FuzzerConfig {
    // Small rounds so the 400-execution campaign crosses several barriers:
    // the mid-campaign checkpoint then lands at a genuine round boundary.
    FuzzerConfig::mufuzz(400)
        .with_rng_seed(seed)
        .with_workers(workers)
        .with_determinism(DeterminismProfile::Round)
        .with_round_slots(4)
        .with_round_batch(16)
}

/// Run a round-mode campaign to completion and return its report.
fn run_campaign(source: &str, config: FuzzerConfig) -> CampaignReport {
    let compiled = compile_source(source).unwrap();
    let service = CampaignService::new(2);
    service.submit(compiled, config).unwrap().wait()
}

/// Pause a round-mode campaign at (the barrier after) `pause_at` executions
/// and checkpoint it.
fn checkpoint_campaign(source: &str, config: FuzzerConfig, pause_at: usize) -> CampaignSnapshot {
    let compiled = compile_source(source).unwrap();
    let service = CampaignService::new(2);
    let handle = service
        .submit_with(compiled, config, SubmitOptions::pause_at(pause_at))
        .unwrap();
    handle.join();
    match handle.poll() {
        CampaignProgress::Paused { .. } => {}
        other => panic!("expected a paused campaign, got {other:?}"),
    }
    handle.checkpoint().expect("paused campaign checkpoints")
}

/// Record → snapshot → replay for one contract: every record the campaign
/// captured replays from the snapshot with a matching outcome digest and a
/// reproduced oracle verdict. The campaign that produced the records runs
/// with a different worker count than the campaign that produced the
/// snapshot — round mode guarantees they describe the same state.
fn assert_records_replay(source: &str, seed: u64) -> usize {
    let report = run_campaign(source, round_config(seed, 2));
    assert!(
        !report.finding_records.is_empty(),
        "campaign captures replayable records"
    );

    // Snapshot from a *different* worker count, paused mid-campaign; the
    // records reference early seed uids, so they predate the checkpoint.
    let snapshot = checkpoint_campaign(source, round_config(seed, 4), 200);
    let bytes = snapshot.to_bytes();
    let snapshot = CampaignSnapshot::from_bytes(&bytes).expect("snapshot round-trips");

    for record in &report.finding_records {
        assert_eq!(record.workers, 2, "records carry their origin worker count");
        let compiled = compile_source(source).unwrap();
        let outcome = replay_finding(compiled, &round_config(seed, 4), &snapshot, record)
            .expect("recorded finding replays from the snapshot");
        assert!(
            outcome.verdict_reproduced,
            "oracle verdict reproduces for {:?}",
            record.finding.class
        );
        assert!(
            outcome
                .findings
                .iter()
                .any(|f| f.class == record.finding.class),
            "replay raises the recorded bug class"
        );
    }
    report.finding_records.len()
}

#[test]
fn piggy_bank_findings_replay_from_a_snapshot() {
    // Seed 9 reliably smashes the piggy bank: one record in round 1.
    assert!(assert_records_replay(PIGGY_BANK, 9) >= 1);
}

#[test]
fn crowdsale_findings_replay_from_a_snapshot() {
    // Seed 42 is a known finding-bearing crowdsale campaign (record in
    // round 1, so it predates any mid-campaign checkpoint).
    assert!(assert_records_replay(&contracts::crowdsale().source, 42) >= 1);
}

/// Tampering with the serialized mutation trace breaks the record's
/// integrity hash: deserialization fails with a clear `Tampered` error.
#[test]
fn tampered_record_bytes_are_rejected() {
    let report = run_campaign(PIGGY_BANK, round_config(9, 2));
    let record = report.finding_records.first().expect("a record");
    let mut bytes = record.to_bytes();
    // Flip one bit in the middle of the payload (the sequence encoding).
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    match FindingRecord::from_bytes(&bytes) {
        Err(ReplayError::Tampered(reason)) => {
            assert!(!reason.is_empty(), "tampering error explains itself");
        }
        other => panic!("expected Tampered, got {other:?}"),
    }
}

/// A record whose in-memory mutation trace was altered after capture fails
/// replay with an outcome mismatch instead of silently "reproducing".
#[test]
fn altered_mutation_trace_fails_the_outcome_check() {
    let report = run_campaign(PIGGY_BANK, round_config(9, 2));
    let record = report.finding_records.first().expect("a record").clone();
    let snapshot = checkpoint_campaign(PIGGY_BANK, round_config(9, 2), 200);

    let mut altered = record;
    // Drop the final transaction of the trace: the replayed execution can
    // no longer produce the recorded outcome digest.
    altered.sequence.txs.pop().expect("non-empty trace");
    let compiled = compile_source(PIGGY_BANK).unwrap();
    match replay_finding(compiled, &round_config(9, 2), &snapshot, &altered) {
        Err(ReplayError::OutcomeMismatch { expected, actual }) => {
            assert_ne!(expected, actual);
        }
        other => panic!("expected OutcomeMismatch, got {other:?}"),
    }
}

/// A record naming a seed uid the snapshot never assigned is rejected: it
/// cannot have been produced by a prefix of the snapshotted campaign.
#[test]
fn record_from_an_unknown_seed_is_rejected() {
    let report = run_campaign(PIGGY_BANK, round_config(9, 2));
    let record = report.finding_records.first().expect("a record").clone();
    let snapshot = checkpoint_campaign(PIGGY_BANK, round_config(9, 2), 200);

    let mut future = record;
    future.seed_uid = u64::MAX / 2;
    let compiled = compile_source(PIGGY_BANK).unwrap();
    match replay_finding(compiled, &round_config(9, 2), &snapshot, &future) {
        Err(ReplayError::UnknownSeed { seed_uid, .. }) => {
            assert_eq!(seed_uid, u64::MAX / 2);
        }
        other => panic!("expected UnknownSeed, got {other:?}"),
    }
}

/// Replaying against the wrong contract fails loudly.
#[test]
fn replay_validates_the_contract_fingerprint() {
    let report = run_campaign(PIGGY_BANK, round_config(9, 2));
    let record = report.finding_records.first().expect("a record");
    let snapshot = checkpoint_campaign(PIGGY_BANK, round_config(9, 2), 200);

    let other = compile_source(&contracts::game().source).unwrap();
    match replay_finding(other, &round_config(9, 2), &snapshot, record) {
        Err(ReplayError::ContractMismatch) => {}
        other => panic!("expected ContractMismatch, got {other:?}"),
    }
}
