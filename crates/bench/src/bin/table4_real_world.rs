//! Regenerates Table IV: the real-world case study — alarms, true/false
//! positives per bug class and average coverage of MuFuzz on the D3 dataset.
//!
//! Scale with `MUFUZZ_CONTRACTS` and `MUFUZZ_EXECS`.

use mufuzz_bench::{env_param, real_world, table, workers_param};
use mufuzz_corpus::d3;
use mufuzz_oracles::BugClass;

fn main() {
    let contracts = env_param("MUFUZZ_CONTRACTS", 12);
    let execs = env_param("MUFUZZ_EXECS", 500);

    let dataset = d3(contracts);
    let result = real_world(&dataset, execs, 1, workers_param());

    let rows: Vec<Vec<String>> = BugClass::ALL
        .iter()
        .map(|class| {
            let (reported, tp, fp) = result.per_class.get(class).copied().unwrap_or((0, 0, 0));
            vec![
                class.abbrev().to_string(),
                reported.to_string(),
                tp.to_string(),
                fp.to_string(),
            ]
        })
        .collect();

    println!(
        "Table IV — real-world case study on D3 ({} contracts, each standing in for a popular contract with >30k historical transactions)",
        result.total_contracts
    );
    println!();
    print!(
        "{}",
        table::render(&["Bug ID", "Reported", "TP", "FP"], &rows)
    );
    println!();
    println!(
        "Total reported: {}   TP: {}   FP: {}",
        result.total_reported(),
        result.total_tp(),
        result.total_fp()
    );
    println!(
        "Contracts flagged with at least one alarm: {} / {}",
        result.flagged_contracts, result.total_contracts
    );
    println!(
        "Average branch coverage: {:.2}%  (paper: 80.71%)",
        result.average_coverage * 100.0
    );
    println!();
    println!("Expected shape (paper): 86 alarms, 94% of them true positives, ~80% coverage.");
}
