//! Integration tests for the parallel campaign engine.
//!
//! The contract: `workers == 1` replays the historical single-threaded
//! engine bit for bit (the snapshot constants below were captured from the
//! sequential implementation before the worker refactor), multi-worker
//! campaigns stay functionally equivalent (coverage, corpus growth, oracle
//! findings), and oracle results merge correctly across workers.

use mufuzz::{CampaignReport, Fuzzer, FuzzerConfig};
use mufuzz_corpus::contracts;
use mufuzz_lang::compile_source;
use mufuzz_oracles::BugClass;

fn run_crowdsale(seed: u64, workers: usize) -> CampaignReport {
    let compiled = compile_source(&contracts::crowdsale().source).unwrap();
    let config = FuzzerConfig::mufuzz(400)
        .with_rng_seed(seed)
        .with_workers(workers);
    Fuzzer::new(compiled, config).unwrap().run()
}

/// Snapshot test: a single worker must reproduce the exact campaign the
/// sequential engine produced for the same seed. The expected values were
/// recorded by running the pre-refactor implementation (400 executions on
/// the Crowdsale benchmark contract).
#[test]
fn workers_one_reproduces_the_sequential_baseline() {
    let report = run_crowdsale(11, 1);
    assert_eq!(report.covered_edges, 18);
    assert_eq!(report.total_edges, 20);
    assert_eq!(report.executions, 400);
    assert_eq!(report.corpus_size, 14);
    assert!(report.findings.is_empty());
    assert_eq!(
        report.interesting_shapes.first().map(String::as_str),
        Some("invest->refund->withdraw")
    );

    let report = run_crowdsale(42, 1);
    assert_eq!(report.covered_edges, 18);
    assert_eq!(report.corpus_size, 11);
    assert_eq!(
        report.interesting_shapes.first().map(String::as_str),
        Some("invest->refund->withdraw->invest->refund->withdraw")
    );
}

/// Two single-worker runs with the same seed are identical in every
/// reported dimension, including the timeline.
#[test]
fn single_worker_campaigns_are_fully_deterministic() {
    let a = run_crowdsale(7, 1);
    let b = run_crowdsale(7, 1);
    assert_eq!(a.covered_edges, b.covered_edges);
    assert_eq!(a.executions, b.executions);
    assert_eq!(a.corpus_size, b.corpus_size);
    assert_eq!(a.interesting_shapes, b.interesting_shapes);
    assert_eq!(a.detected_classes(), b.detected_classes());
    assert_eq!(a.timeline.len(), b.timeline.len());
    for (pa, pb) in a.timeline.iter().zip(&b.timeline) {
        assert_eq!(pa.executions, pb.executions);
        assert_eq!(pa.covered_edges, pb.covered_edges);
    }
}

/// The concurrent engine reaches the same coverage plateau as the
/// sequential one on the benchmark contract and respects the budget.
#[test]
fn four_workers_match_sequential_coverage_on_crowdsale() {
    let sequential = run_crowdsale(11, 1);
    let parallel = run_crowdsale(11, 4);
    assert_eq!(parallel.workers, 4);
    // Exact budget: execution slots are reserved atomically before every
    // execution (including mask probes), so a multi-worker campaign consumes
    // the budget exactly — no more overshoot by in-flight mutants.
    assert_eq!(parallel.executions, 400);
    // 400 executions saturate this contract from many seeds; the parallel
    // schedule must find (nearly) the same plateau regardless of interleaving.
    assert!(
        parallel.covered_edges + 2 >= sequential.covered_edges,
        "parallel {} vs sequential {}",
        parallel.covered_edges,
        sequential.covered_edges
    );
    assert!(parallel.corpus_size >= 3);
}

/// The sharded scheduler (the default: per-worker corpus mirrors, epoch
/// resyncs, lock-free steady-state draws) and the historical global draw
/// under the state lock make identical scheduling decisions: at one worker
/// the two paths produce the same campaign in every reported dimension —
/// findings, coverage, corpus, timeline and diagnostics.
#[test]
fn sharded_and_global_draw_are_identical_at_one_worker() {
    for seed in [3, 7, 11, 42] {
        let compiled = compile_source(&contracts::crowdsale().source).unwrap();
        let sharded = Fuzzer::new(
            compiled.clone(),
            FuzzerConfig::mufuzz(400)
                .with_rng_seed(seed)
                .with_workers(1),
        )
        .unwrap()
        .run();
        let global = Fuzzer::new(
            compiled,
            FuzzerConfig::mufuzz(400)
                .with_rng_seed(seed)
                .with_workers(1)
                .with_sharded_scheduler(false),
        )
        .unwrap()
        .run();

        assert_eq!(sharded.covered_edges, global.covered_edges, "seed {seed}");
        assert_eq!(sharded.executions, global.executions, "seed {seed}");
        assert_eq!(sharded.corpus_size, global.corpus_size, "seed {seed}");
        assert_eq!(sharded.culled_seeds, global.culled_seeds, "seed {seed}");
        assert_eq!(sharded.findings, global.findings, "seed {seed}");
        assert_eq!(
            sharded.interesting_shapes, global.interesting_shapes,
            "seed {seed}"
        );
        assert_eq!(sharded.timeline.len(), global.timeline.len(), "seed {seed}");
        for (a, b) in sharded.timeline.iter().zip(&global.timeline) {
            assert_eq!(a.executions, b.executions, "seed {seed}");
            assert_eq!(a.covered_edges, b.covered_edges, "seed {seed}");
        }
    }
}

/// The equivalence holds with a short forced-resync interval too: resyncing
/// the mirror is semantically a no-op at one worker (same corpus content,
/// no RNG consumption), whatever the cadence.
#[test]
fn forced_shard_resyncs_do_not_change_the_campaign() {
    let compiled = compile_source(&contracts::crowdsale().source).unwrap();
    let eager = Fuzzer::new(
        compiled,
        FuzzerConfig::mufuzz(400)
            .with_rng_seed(11)
            .with_workers(1)
            .with_shard_resync_draws(1),
    )
    .unwrap()
    .run();
    let baseline = run_crowdsale(11, 1);
    assert_eq!(eager.covered_edges, baseline.covered_edges);
    assert_eq!(eager.corpus_size, baseline.corpus_size);
    assert_eq!(eager.interesting_shapes, baseline.interesting_shapes);
}

/// Multi-worker campaigns on the sharded scheduler keep the exact-budget
/// invariant and the coverage plateau (the default path of every other test
/// in this file); pin the global scheduler explicitly to check the same for
/// the lock-drawing engine.
#[test]
fn global_scheduler_still_supported_at_four_workers() {
    let compiled = compile_source(&contracts::crowdsale().source).unwrap();
    let config = FuzzerConfig::mufuzz(400)
        .with_rng_seed(11)
        .with_workers(4)
        .with_sharded_scheduler(false);
    let report = Fuzzer::new(compiled, config).unwrap().run();
    assert_eq!(report.executions, 400);
    assert!(report.covered_edges >= 16);
}

/// Oracle findings survive the per-worker monitor merge: the reentrant bank
/// is detected with a multi-worker campaign too.
#[test]
fn parallel_campaign_detects_reentrancy() {
    let compiled = compile_source(&contracts::reentrant_bank().source).unwrap();
    let config = FuzzerConfig::mufuzz(600).with_rng_seed(5).with_workers(4);
    let report = Fuzzer::new(compiled, config).unwrap().run();
    assert!(
        report.detected_classes().contains(&BugClass::Reentrancy),
        "findings: {:?}",
        report.findings
    );
}

/// Exact-budget invariant: `report.executions <= max_executions` at every
/// worker count. Before the atomic reservation counter, workers checked the
/// budget and executed afterwards, overshooting by up to `workers - 1`
/// in-flight mutants plus outstanding mask-probe passes.
#[test]
fn budget_is_exact_at_any_worker_count() {
    for workers in [1, 2, 4, 8] {
        let compiled = compile_source(&contracts::crowdsale().source).unwrap();
        let config = FuzzerConfig::mufuzz(150)
            .with_rng_seed(11)
            .with_workers(workers);
        let report = Fuzzer::new(compiled, config).unwrap().run();
        assert!(
            report.executions <= 150,
            "workers={workers}: {} executions overshoot the budget of 150",
            report.executions
        );
        // With no wall-clock budget and a non-empty corpus the campaign also
        // consumes the whole budget.
        assert_eq!(
            report.executions, 150,
            "workers={workers}: budget left unconsumed"
        );
    }
}

/// Corpus culling drops provably dominated seeds without changing what the
/// campaign achieves: same coverage plateau, same detections, smaller
/// corpus. Culling is opt-in (it reshuffles corpus indices, breaking the
/// `workers == 1` bit-identity contract), so the baseline run here is the
/// exact snapshot campaign from above.
#[test]
fn culling_drops_dominated_seeds_without_losing_coverage_or_detections() {
    let baseline = run_crowdsale(3, 1);
    assert_eq!(baseline.culled_seeds, 0, "culling must be off by default");
    assert!(!baseline.detected_classes().is_empty());

    let compiled = compile_source(&contracts::crowdsale().source).unwrap();
    let config = FuzzerConfig::mufuzz(400)
        .with_rng_seed(3)
        .with_workers(1)
        .with_corpus_culling(8);
    let culled = Fuzzer::new(compiled, config).unwrap().run();

    assert!(
        culled.culled_seeds > 0,
        "no dominated seed was dropped (corpus {})",
        culled.corpus_size
    );
    assert!(
        culled.corpus_size < baseline.corpus_size + culled.culled_seeds,
        "culling did not shrink the live corpus"
    );
    assert_eq!(
        culled.covered_edges, baseline.covered_edges,
        "culling changed the coverage plateau"
    );
    assert_eq!(
        culled.detected_classes(),
        baseline.detected_classes(),
        "culling changed the detections"
    );
    assert_eq!(culled.executions, 400);
}
