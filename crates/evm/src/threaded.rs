//! Direct-threaded dispatch for the block-lowered tier.
//!
//! The `match` dispatcher in `interpreter.rs` decides what a unit does twice:
//! once on the fused tag, then (for plain units) on the opcode — a two-level
//! branch the CPU mispredicts on branchy programs. This module replaces it
//! with classic direct threading: [`select_handler`] resolves every
//! `(fused, opcode)` pair to a handler function pointer *once at lowering
//! time* (stored in [`BlockUnit::handler`]), and [`run`] is a tight loop of
//! indirect calls — fetch unit, settle the block envelope at leaders, call
//! the handler. Each call site's target correlates with the unit stream, so
//! the indirect-branch predictor learns the program's shape instead of
//! fighting a single shared `match`.
//!
//! Every handler is a line-for-line mirror of the corresponding `match` arm:
//! same trace records (bulk per-unit masks, prefix records on mid-pattern
//! faults), same gas discipline (block pre-charge, tail un-charge/re-charge
//! around gas-exact ops, per-constituent replay in the `MapSlot*` family),
//! same deopt points, same fault messages. The differential suite pins the
//! two dispatchers bit-identical across the corpus; the
//! [`EvmConfig::direct_threaded`](crate::EvmConfig) knob selects which one
//! runs.

use crate::gas::{static_gas, COPY_WORD_GAS, EXP_BYTE_GAS, SHA3_WORD_GAS, SSTORE_CLEAR_REFUND};
use crate::interpreter::{
    calldata_word, ensure_memory, exp_u256, fused_binop_eval, mem_span, read_memory_into,
    read_memory_range, BinopSite, CallContext, CreateSite, DepthScratch, Evm, ExecEnv, ExecFrame,
    FrameCtx, FrameInfo, FrameOutcome, FrameResult, LoopState, MemFail,
};
use crate::keccak::keccak256;
use crate::opcode::Opcode;
use crate::program::{BlockProgram, BlockUnit, DecodedInstr, Fused};
use crate::trace::{
    ArithEvent, BranchRecord, CallEvent, CallKind, CmpKind, Comparison, ConformanceEvent,
    ExecutionTrace, HaltReason, SelfDestructEvent, Taint,
};
use crate::types::Address;
use crate::u256::U256;

/// How one handler invocation ended.
///
/// Deliberately two words wide so every indirect call returns in registers
/// instead of through a stack slot: the cold payloads live elsewhere — a
/// halting handler stashes its [`FrameResult`] in [`Machine::halt`], and a
/// deopting handler carries only the *instruction* cursor, from which the
/// driver snapshots the full [`LoopState`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Step {
    /// Continue with the next unit in sequence.
    Next,
    /// Control transfer: continue at this *unit* cursor (always a block
    /// leader — jump destinations are `JUMPDEST`s).
    Jump(u32),
    /// The frame halted; the result is in [`Machine::halt`].
    Done,
    /// Hand off to per-instruction execution at this *instruction* cursor
    /// (same contract as [`FrameOutcome::Deopt`]).
    Deopt(u32),
}

/// A pre-resolved unit handler: the direct-threaded analogue of one `match`
/// arm, selected at lowering time by [`select_handler`].
pub(crate) type UnitHandler = fn(&mut Machine<'_, '_>, &BlockUnit) -> Step;

/// The interpreter state a handler operates on: the frame context by value,
/// everything shared (world, trace, scratch buffers) by disjoint `&mut`
/// fields so a handler can touch several at once without borrow conflicts.
pub(crate) struct Machine<'m, 'w> {
    evm: &'m mut Evm<'w>,
    program: &'m BlockProgram,
    code_address: Address,
    storage_address: Address,
    caller: Address,
    origin: Address,
    value: U256,
    calldata: &'m [u8],
    /// The frame's executing bytecode (for `CODECOPY`).
    code: &'m [u8],
    depth: usize,
    frames: &'m mut Vec<FrameInfo>,
    trace: &'m mut ExecutionTrace,
    scratch: &'m mut ExecFrame,
    stack: &'m mut Vec<(U256, Taint)>,
    memory: &'m mut Vec<u8>,
    args_buf: &'m mut Vec<u8>,
    gas_left: u64,
    last_cmp: Option<Comparison>,
    caller_guard_seen: bool,
    unchecked_calls: Vec<usize>,
    truncated_events: Vec<usize>,
    /// The frame's RETURNDATA buffer (EIP-211).
    return_data: Vec<u8>,
    /// Halt payload parked by a handler returning [`Step::Done`].
    halt: Option<FrameResult>,
}

impl Machine<'_, '_> {
    /// Snapshot the live loop variables for a deopt hand-off. `cursor` is an
    /// instruction index addressing the per-instruction view, exactly like
    /// the `match` dispatcher's deopt states.
    fn state_at(&mut self, cursor: usize) -> LoopState {
        LoopState {
            cursor,
            gas_left: self.gas_left,
            last_cmp: self.last_cmp,
            caller_guard_seen: self.caller_guard_seen,
            unchecked_calls: std::mem::take(&mut self.unchecked_calls),
            truncated_events: std::mem::take(&mut self.truncated_events),
            return_data: std::mem::take(&mut self.return_data),
        }
    }
}

/// The unit's constituent instructions. Borrowed from the program (not the
/// machine), so handlers keep the slice across mutations of `m`.
fn unit_parts<'m>(m: &Machine<'m, '_>, u: &BlockUnit) -> &'m [DecodedInstr] {
    let start = u.instr_start as usize;
    &m.program.base().instructions()[start..start + u.instr_count as usize]
}

macro_rules! t_fault {
    ($m:expr, $msg:expr) => {{
        $m.halt = Some(FrameResult {
            halt: HaltReason::Fault($msg.to_string()),
            output: vec![],
            gas_left: $m.gas_left,
        });
        return Step::Done;
    }};
}

macro_rules! t_oog {
    ($m:expr) => {{
        $m.halt = Some(FrameResult {
            halt: HaltReason::OutOfGas,
            output: vec![],
            gas_left: 0,
        });
        return Step::Done;
    }};
}

macro_rules! t_mem {
    ($m:expr, $res:expr) => {
        match $res {
            Ok(value) => value,
            Err(MemFail::Fault(msg)) => t_fault!($m, msg),
            Err(MemFail::OutOfGas) => t_oog!($m),
        }
    };
}

macro_rules! t_pop {
    ($m:expr) => {
        match $m.stack.pop() {
            Some(v) => v,
            None => t_fault!($m, "stack underflow"),
        }
    };
}

macro_rules! t_push {
    ($m:expr, $val:expr, $taint:expr) => {{
        if $m.stack.len() >= 1024 {
            t_fault!($m, "stack overflow");
        }
        $m.stack.push(($val, $taint));
    }};
}

/// Re-charge a gas-exact unit's tail residual after its arm, deopting to the
/// next instruction if a dynamic bill ate into the block's pre-payment.
macro_rules! t_recharge {
    ($m:expr, $u:expr) => {{
        if $m.gas_left < $u.tail {
            return Step::Deopt($u.instr_start + $u.instr_count);
        }
        $m.gas_left -= $u.tail;
    }};
}

/// Record the whole unit's constituents with one bulk OR of the precomputed
/// mask.
macro_rules! t_bulk {
    ($m:expr, $u:expr) => {
        $m.trace.record_unit($u.mask, $u.instr_count)
    };
}

/// Record the executed prefix `[0..=$k]` on a cold mid-pattern halt.
macro_rules! t_prefix {
    ($m:expr, $parts:expr, $k:expr) => {
        for di in &$parts[..=$k] {
            $m.trace.record_instr(di.op);
        }
    };
}

macro_rules! t_unit_fault {
    ($m:expr, $parts:expr, $k:expr, $msg:expr) => {{
        t_prefix!($m, $parts, $k);
        t_fault!($m, $msg);
    }};
}

macro_rules! t_unit_mem {
    ($m:expr, $parts:expr, $k:expr, $res:expr) => {
        match $res {
            Ok(value) => value,
            Err(MemFail::Fault(msg)) => {
                t_prefix!($m, $parts, $k);
                t_fault!($m, msg)
            }
            Err(MemFail::OutOfGas) => {
                t_prefix!($m, $parts, $k);
                t_oog!($m)
            }
        }
    };
}

/// Per-constituent static charge for arms that replay billing exactly from
/// the unit's `head` (the `MapSlot*` family).
macro_rules! t_charge {
    ($m:expr, $parts:expr, $k:expr) => {{
        let cost = static_gas($parts[$k].op);
        if $m.gas_left < cost {
            t_prefix!($m, $parts, $k);
            t_oog!($m);
        }
        $m.gas_left -= cost;
    }};
}

/// Bail out of a fused unit before anything mutates: re-charge the unit's
/// `head` and deopt to its first instruction.
macro_rules! t_deopt_unit {
    ($m:expr, $u:expr) => {{
        $m.gas_left += $u.head;
        return Step::Deopt($u.instr_start);
    }};
}

/// Whole-unit instruction-cap check for fused handlers (the driver's loop-top
/// check only covers the first constituent).
macro_rules! t_cap_check {
    ($m:expr, $u:expr) => {
        if $m.trace.instr_count as usize + $u.instr_count as usize > $m.evm.config.max_instructions
        {
            t_deopt_unit!($m, $u);
        }
    };
}

/// The shared fused-binop core, bound to the machine's bookkeeping.
macro_rules! t_binop {
    ($m:expr, $op:expr, $pc:expr, $a:expr, $b:expr, $taint:expr) => {
        fused_binop_eval(
            $op,
            $a,
            $b,
            $taint,
            BinopSite {
                pc: $pc,
                depth: $m.depth,
                trace: &mut *$m.trace,
                last_cmp: &mut $m.last_cmp,
                truncated_events: &mut $m.truncated_events,
            },
        )
    };
}

/// Run one call frame through the direct-threaded dispatch chain.
/// Semantically a line-for-line mirror of `run_frame_inner` over the block
/// view — same per-unit instruction cap, same per-block envelope settle with
/// deopt — but structured as two nested loops: the outer loop runs once per
/// *block* (control only enters at leaders: frame entry, jump targets and
/// block fall-through all land on one), where the instruction cap and the
/// envelope are settled; the inner loop then drives the block's units
/// through their pre-resolved handlers with the unit cursor in a register
/// and no per-unit bookkeeping beyond the indirect call itself.
pub(crate) fn run(
    evm: &mut Evm<'_>,
    program: &BlockProgram,
    ctx: FrameCtx<'_>,
    env: ExecEnv<'_>,
    owned: &mut DepthScratch,
    state: LoopState,
) -> FrameOutcome {
    let ExecEnv {
        frames,
        trace,
        scratch,
    } = env;
    trace.max_depth = trace.max_depth.max(ctx.depth);
    let max_instructions = evm.config.max_instructions;
    let DepthScratch {
        stack,
        memory,
        args,
    } = owned;
    let LoopState {
        cursor,
        gas_left,
        last_cmp,
        caller_guard_seen,
        unchecked_calls,
        truncated_events,
        return_data,
    } = state;
    let mut m = Machine {
        evm,
        program,
        code_address: ctx.code_address,
        storage_address: ctx.storage_address,
        caller: ctx.caller,
        origin: ctx.origin,
        value: ctx.value,
        calldata: ctx.calldata,
        code: ctx.code,
        depth: ctx.depth,
        frames,
        trace,
        scratch,
        stack,
        memory,
        args_buf: args,
        gas_left,
        last_cmp,
        caller_guard_seen,
        unchecked_calls,
        truncated_events,
        return_data,
        halt: None,
    };
    let units = program.units();
    let blocks = program.blocks();
    let mut cursor = cursor;
    'blocks: loop {
        if m.trace.instr_count as usize >= max_instructions {
            return FrameOutcome::Done(FrameResult {
                halt: HaltReason::OutOfGas,
                output: vec![],
                gas_left: 0,
            });
        }
        let Some(unit) = units.get(cursor) else {
            // Running off the end of the code is an implicit STOP.
            return FrameOutcome::Done(FrameResult {
                halt: HaltReason::Normal,
                output: vec![],
                gas_left: m.gas_left,
            });
        };
        // Settle the whole block at its leader, exactly like the `match`
        // dispatcher: pre-summed static gas and the stack envelope,
        // validated once, deopting when any part could fail mid-block.
        // Control flow only lands on leaders, so this runs once per block.
        let end = if unit.leader != u32::MAX {
            let block = &blocks[unit.leader as usize];
            if m.gas_left < block.static_gas
                || m.stack.len() < block.stack_needed as usize
                || m.stack.len() + block.max_growth as usize > 1024
            {
                return FrameOutcome::Deopt(m.state_at(block.instr_start as usize));
            }
            m.gas_left -= block.static_gas;
            // Hoist the per-unit instruction cap out of the inner loop when
            // the whole block provably fits: with `count + block_instrs`
            // within the cap, no unit in the block can start at or past it.
            let block_instrs = (block.instr_end - block.instr_start) as usize;
            if m.trace.instr_count as usize + block_instrs > max_instructions {
                cursor = match run_capped(&mut m, units, cursor, block.unit_end as usize) {
                    ControlFlow::At(c) => c,
                    ControlFlow::Return(outcome) => return outcome,
                };
                continue 'blocks;
            }
            block.unit_end as usize
        } else {
            // Unreachable by construction (entry, jumps and fall-through all
            // land on leaders); degrade to single-unit stepping if not.
            cursor + 1
        };
        // Slice iteration: no per-unit bounds check, and the only way out of
        // the block mid-flight is through a handler's non-`Next` step.
        for unit in &units[cursor..end] {
            match (unit.handler)(&mut m, unit) {
                Step::Next => {}
                Step::Jump(target) => {
                    cursor = target as usize;
                    continue 'blocks;
                }
                Step::Done => {
                    return FrameOutcome::Done(m.halt.take().expect("Step::Done parks a result"));
                }
                Step::Deopt(instr_cursor) => {
                    return FrameOutcome::Deopt(m.state_at(instr_cursor as usize));
                }
            }
        }
        cursor = end;
    }
}

/// Outcome of the cold per-unit stepping path.
enum ControlFlow {
    /// Continue the outer loop at this unit cursor.
    At(usize),
    /// The frame ended.
    Return(FrameOutcome),
}

/// The cold twin of the driver's inner loop, for blocks that might cross the
/// instruction cap: identical dispatch, but the per-unit cap check stays in
/// place, exactly like the `match` dispatcher's loop top.
#[cold]
fn run_capped(
    m: &mut Machine<'_, '_>,
    units: &[BlockUnit],
    mut cursor: usize,
    end: usize,
) -> ControlFlow {
    let max_instructions = m.evm.config.max_instructions;
    while cursor < end {
        if m.trace.instr_count as usize >= max_instructions {
            return ControlFlow::Return(FrameOutcome::Done(FrameResult {
                halt: HaltReason::OutOfGas,
                output: vec![],
                gas_left: 0,
            }));
        }
        let unit = &units[cursor];
        cursor += 1;
        match (unit.handler)(m, unit) {
            Step::Next => {}
            Step::Jump(target) => return ControlFlow::At(target as usize),
            Step::Done => {
                return ControlFlow::Return(FrameOutcome::Done(
                    m.halt.take().expect("Step::Done parks a result"),
                ));
            }
            Step::Deopt(instr_cursor) => {
                return ControlFlow::Return(FrameOutcome::Deopt(m.state_at(instr_cursor as usize)));
            }
        }
    }
    ControlFlow::At(cursor)
}

/// Branch bookkeeping shared by `JUMPI` and the fused jump handlers: guard /
/// unchecked-call accounting, the branch record, and `last_cmp` consumption.
fn note_branch(m: &mut Machine<'_, '_>, pc: usize, dest: usize, taken: bool, tc: Taint) {
    if tc.intersects(Taint::CALLER | Taint::ORIGIN) {
        m.caller_guard_seen = true;
    }
    if tc.contains(Taint::CALL_RESULT) {
        if let Some(idx) = m.unchecked_calls.pop() {
            if let Some(ev) = m.trace.calls.get_mut(idx) {
                ev.result_checked = true;
            }
        }
    }
    let record = BranchRecord {
        pc,
        dest,
        taken,
        cond_taint: tc,
        comparison: m.last_cmp,
        depth: m.depth,
        code_address: m.code_address,
    };
    m.trace.covered_edges.insert(record.edge());
    m.trace.branches.push(record);
    m.last_cmp = None;
}

/// `SSTORE` bookkeeping shared by the plain handler and every fused storage
/// arm: the write record, truncation-reached-storage marking, and the write
/// itself.
fn store_slot(m: &mut Machine<'_, '_>, pc: usize, slot: U256, val: U256, tv: Taint) {
    let old = m.evm.world.storage(m.storage_address, slot);
    m.trace.storage_writes.push(crate::trace::StorageWrite {
        pc,
        contract: m.storage_address,
        slot,
        old,
        new: val,
        taint: tv,
    });
    if tv.contains(Taint::TRUNCATED) {
        for &idx in &m.truncated_events {
            if let Some(ev) = m.trace.arith_events.get_mut(idx) {
                ev.reached_storage = true;
            }
        }
    }
    m.evm.world.set_storage(m.storage_address, slot, val, tv);
}

/// Resolve the handler for a `(fused, opcode)` pair, once at lowering time.
/// Fused tags dispatch to their dedicated handler; plain units dispatch on
/// the opcode. This is the *only* place the two-level decision is made — the
/// hot loop just calls through the stored pointer.
/// Expand one lowering-time selector for a fused shape whose body takes the
/// constituent binop as a parameter: `$select(op)` returns a wrapper
/// monomorphized for that op, so [`fused_binop_eval`]'s dispatch — and the
/// arithmetic behind it — constant-folds inside the handler. This is the
/// payoff of resolving handlers at lowering time: the `match` dispatcher has
/// to re-inspect the constituent opcode on every execution.
macro_rules! binop_specialized {
    ($select:ident, $body:ident) => {
        fn $select(op: Opcode) -> UnitHandler {
            fn add(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
                $body(m, u, Opcode::Add)
            }
            fn sub(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
                $body(m, u, Opcode::Sub)
            }
            fn mul(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
                $body(m, u, Opcode::Mul)
            }
            fn div(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
                $body(m, u, Opcode::Div)
            }
            fn sdiv(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
                $body(m, u, Opcode::Sdiv)
            }
            fn rem(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
                $body(m, u, Opcode::Mod)
            }
            fn srem(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
                $body(m, u, Opcode::Smod)
            }
            fn lt(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
                $body(m, u, Opcode::Lt)
            }
            fn gt(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
                $body(m, u, Opcode::Gt)
            }
            fn slt(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
                $body(m, u, Opcode::Slt)
            }
            fn sgt(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
                $body(m, u, Opcode::Sgt)
            }
            fn eq(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
                $body(m, u, Opcode::Eq)
            }
            fn and(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
                $body(m, u, Opcode::And)
            }
            fn or(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
                $body(m, u, Opcode::Or)
            }
            fn xor(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
                $body(m, u, Opcode::Xor)
            }
            match op {
                Opcode::Add => add,
                Opcode::Sub => sub,
                Opcode::Mul => mul,
                Opcode::Div => div,
                Opcode::Sdiv => sdiv,
                Opcode::Mod => rem,
                Opcode::Smod => srem,
                Opcode::Lt => lt,
                Opcode::Gt => gt,
                Opcode::Slt => slt,
                Opcode::Sgt => sgt,
                Opcode::Eq => eq,
                Opcode::And => and,
                Opcode::Or => or,
                Opcode::Xor => xor,
                other => unreachable!("non-fusable binop {other:?}"),
            }
        }
    };
}

binop_specialized!(sel_push_push_binop, hf_push_push_binop);
binop_specialized!(sel_push_push_mload_binop, hf_push_push_mload_binop);
binop_specialized!(sel_push_mload_binop, hf_push_mload_binop);
binop_specialized!(sel_push_mload_push_binop, hf_push_mload_push_binop);
binop_specialized!(sel_push_binop_push_mstore, hf_push_binop_push_mstore);
binop_specialized!(sel_binop_push_mstore, hf_binop_push_mstore);
binop_specialized!(sel_push_binop, hf_push_binop);
binop_specialized!(sel_storage_expr_store, hf_storage_expr_store);

/// Resolve a `DUP` to a depth-monomorphized handler.
fn sel_dup(n: u8) -> UnitHandler {
    match n {
        1 => h_dup_n::<1>,
        2 => h_dup_n::<2>,
        3 => h_dup_n::<3>,
        4 => h_dup_n::<4>,
        5 => h_dup_n::<5>,
        6 => h_dup_n::<6>,
        7 => h_dup_n::<7>,
        8 => h_dup_n::<8>,
        9 => h_dup_n::<9>,
        10 => h_dup_n::<10>,
        11 => h_dup_n::<11>,
        12 => h_dup_n::<12>,
        13 => h_dup_n::<13>,
        14 => h_dup_n::<14>,
        15 => h_dup_n::<15>,
        _ => h_dup_n::<16>,
    }
}

/// Resolve a `SWAP` to a depth-monomorphized handler.
fn sel_swap(n: u8) -> UnitHandler {
    match n {
        1 => h_swap_n::<1>,
        2 => h_swap_n::<2>,
        3 => h_swap_n::<3>,
        4 => h_swap_n::<4>,
        5 => h_swap_n::<5>,
        6 => h_swap_n::<6>,
        7 => h_swap_n::<7>,
        8 => h_swap_n::<8>,
        9 => h_swap_n::<9>,
        10 => h_swap_n::<10>,
        11 => h_swap_n::<11>,
        12 => h_swap_n::<12>,
        13 => h_swap_n::<13>,
        14 => h_swap_n::<14>,
        15 => h_swap_n::<15>,
        _ => h_swap_n::<16>,
    }
}

/// Resolve one dispatch unit to its handler, at lowering time.
///
/// `parts` is the unit's constituent instruction window, so the selector can
/// specialize on operands the `match` dispatcher must re-inspect at run time:
/// the binop inside a fused pattern, or a DUP/SWAP depth.
pub(crate) fn select_handler(fused: Fused, parts: &[DecodedInstr]) -> UnitHandler {
    use Opcode::*;
    let op = parts[parts.len() - 1].op;
    match fused {
        Fused::None => match op {
            Stop => h_stop,
            Add => h_add,
            Sub => h_sub,
            Mul => h_mul,
            Exp => h_exp,
            Div => h_div,
            Mod => h_mod,
            Sdiv => h_sdiv,
            Smod => h_smod,
            AddMod => h_addmod,
            MulMod => h_mulmod,
            SignExtend => h_signextend,
            Lt => h_lt,
            Gt => h_gt,
            Slt => h_slt,
            Sgt => h_sgt,
            Eq => h_eq,
            IsZero => h_iszero,
            And => h_and,
            Or => h_or,
            Xor => h_xor,
            Not => h_not,
            Byte => h_byte,
            Shl => h_shl,
            Shr => h_shr,
            Sar => h_sar,
            Sha3 => h_sha3,
            Address => h_address,
            Balance => h_balance,
            SelfBalance => h_selfbalance,
            Origin => h_origin,
            Caller => h_caller,
            CallValue => h_callvalue,
            CallDataLoad => h_calldataload,
            CallDataSize => h_calldatasize,
            CallDataCopy => h_calldatacopy,
            CodeSize => h_codesize,
            CodeCopy => h_codecopy,
            ReturnDataSize => h_returndatasize,
            ReturnDataCopy => h_returndatacopy,
            ExtCodeSize => h_extcodesize,
            ExtCodeCopy => h_extcodecopy,
            ExtCodeHash => h_extcodehash,
            GasPrice => h_gasprice,
            BlockHash => h_blockhash,
            Coinbase => h_coinbase,
            Timestamp => h_timestamp,
            Number => h_number,
            Difficulty => h_difficulty,
            GasLimit => h_gaslimit,
            ChainId => h_chainid,
            BaseFee => h_basefee,
            Pop => h_pop,
            MLoad => h_mload,
            MStore => h_mstore,
            MStore8 => h_mstore8,
            SLoad => h_sload,
            SStore => h_sstore,
            Jump => h_jump,
            JumpI => h_jumpi,
            Pc => h_pc,
            MSize => h_msize,
            Gas => h_gas,
            JumpDest => h_jumpdest,
            Push(_) => h_push,
            Dup(n) => sel_dup(n),
            Swap(n) => sel_swap(n),
            Log(_) => h_log,
            Call | CallCode | DelegateCall | StaticCall => h_call,
            Create => h_create,
            Create2 => h_create2,
            Return => h_return,
            Revert => h_revert,
            Invalid => h_invalid,
            SelfDestruct => h_selfdestruct,
            Unknown(_) => h_unknown,
        },
        Fused::PushPushBinop => sel_push_push_binop(parts[2].op),
        Fused::PushJump { .. } => hf_push_jump,
        Fused::PushJumpI { .. } => hf_push_jumpi,
        Fused::IsZeroPushJumpI { .. } => hf_iszero_push_jumpi,
        Fused::DupSwap => match (parts[0].op, parts[1].op) {
            (Opcode::Dup(n), Opcode::Swap(sw)) => sel_dup_swap(n, sw),
            _ => unreachable!("DupSwap is DUP;SWAP"),
        },
        Fused::PushPush => hf_push_push,
        Fused::PushMLoad => hf_push_mload,
        Fused::PushMStore => hf_push_mstore,
        Fused::PushCallDataLoad => hf_push_calldataload,
        Fused::PushPushSha3 => hf_push_push_sha3,
        Fused::PushPushMLoadBinop => sel_push_push_mload_binop(parts[3].op),
        Fused::PushMLoadPushBinop => sel_push_mload_push_binop(parts[3].op),
        Fused::PushMLoadBinop => sel_push_mload_binop(parts[2].op),
        Fused::PushBinopPushMStore => sel_push_binop_push_mstore(parts[1].op),
        Fused::BinopPushMStore => sel_binop_push_mstore(parts[0].op),
        Fused::PushBinop => sel_push_binop(parts[1].op),
        Fused::LocalExprStore => hf_local_expr_store,
        Fused::LocalPairStore => hf_local_pair_store,
        Fused::PushSLoad => hf_push_sload,
        Fused::PushSStore => hf_push_sstore,
        Fused::StorageExprStore => sel_storage_expr_store(parts[3].op),
        Fused::MapSlotSha3 | Fused::MapSlotSLoad | Fused::MapSlotSStore => hf_map_slot,
    }
}

// ---------------------------------------------------------------------------
// Plain handlers: one per `match` arm of the generic dispatcher. Each starts
// by recording its instruction (before the arm can fault, like the
// per-instruction tiers); gas-exact ops un-charge their tail around the body.
// ---------------------------------------------------------------------------

fn h_stop(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    m.halt = Some(FrameResult {
        halt: HaltReason::Normal,
        output: vec![],
        gas_left: m.gas_left,
    });
    Step::Done
}

/// Overflowing arithmetic shared by ADD / SUB / MUL: the op arrives as a
/// compile-time constant from the per-op wrappers, so the inner `match` and
/// the overflow path specialize away. EXP lives in its own handler (dynamic
/// gas), which also means the tail un/re-charge disappears here — a plain
/// arithmetic unit always carries `tail == 0`.
#[inline(always)]
fn arith_body(m: &mut Machine<'_, '_>, u: &BlockUnit, op: Opcode) -> Step {
    m.trace.record_instr(u.op);
    debug_assert_eq!(u.tail, 0);
    let (a, ta) = t_pop!(m);
    let (b, tb) = t_pop!(m);
    let taint = ta | tb;
    let (result, truncated) = match op {
        Opcode::Add => a.overflowing_add(b),
        Opcode::Sub => a.overflowing_sub(b),
        _ => a.overflowing_mul(b),
    };
    if truncated {
        m.truncated_events.push(m.trace.arith_events.len());
        m.trace.arith_events.push(ArithEvent {
            pc: u.pc as usize,
            opcode: op,
            truncated: true,
            taint,
            reached_storage: false,
            depth: m.depth,
        });
    }
    let result_taint = if truncated {
        taint | Taint::TRUNCATED
    } else {
        taint
    };
    t_push!(m, result, result_taint);
    Step::Next
}

fn h_add(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    arith_body(m, u, Opcode::Add)
}

fn h_sub(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    arith_body(m, u, Opcode::Sub)
}

fn h_mul(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    arith_body(m, u, Opcode::Mul)
}

fn h_exp(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    m.gas_left += u.tail;
    let (a, ta) = t_pop!(m);
    let (b, tb) = t_pop!(m);
    let taint = ta | tb;
    let exp_bytes = u64::from(b.bits().div_ceil(8));
    let dynamic = EXP_BYTE_GAS * exp_bytes;
    if m.gas_left < dynamic {
        t_oog!(m);
    }
    m.gas_left -= dynamic;
    let (result, truncated) = exp_u256(a, b);
    if truncated {
        m.truncated_events.push(m.trace.arith_events.len());
        m.trace.arith_events.push(ArithEvent {
            pc: u.pc as usize,
            opcode: u.op,
            truncated: true,
            taint,
            reached_storage: false,
            depth: m.depth,
        });
    }
    let result_taint = if truncated {
        taint | Taint::TRUNCATED
    } else {
        taint
    };
    t_push!(m, result, result_taint);
    t_recharge!(m, u);
    Step::Next
}

fn h_div(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    let (a, ta) = t_pop!(m);
    let (b, tb) = t_pop!(m);
    let (q, _) = a.div_rem(b);
    t_push!(m, q, ta | tb);
    Step::Next
}

fn h_mod(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    let (a, ta) = t_pop!(m);
    let (b, tb) = t_pop!(m);
    let (_, r) = a.div_rem(b);
    t_push!(m, r, ta | tb);
    Step::Next
}

fn h_sdiv(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    let (a, ta) = t_pop!(m);
    let (b, tb) = t_pop!(m);
    let (q, _) = a.signed_div_rem(b);
    t_push!(m, q, ta | tb);
    Step::Next
}

fn h_smod(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    let (a, ta) = t_pop!(m);
    let (b, tb) = t_pop!(m);
    let (_, r) = a.signed_div_rem(b);
    t_push!(m, r, ta | tb);
    Step::Next
}

fn h_addmod(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    let (a, ta) = t_pop!(m);
    let (b, tb) = t_pop!(m);
    let (n, tn) = t_pop!(m);
    t_push!(m, a.add_mod(b, n), ta | tb | tn);
    Step::Next
}

fn h_mulmod(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    let (a, ta) = t_pop!(m);
    let (b, tb) = t_pop!(m);
    let (n, tn) = t_pop!(m);
    t_push!(m, a.mul_mod(b, n), ta | tb | tn);
    Step::Next
}

fn h_signextend(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    let (b, tb) = t_pop!(m);
    let (x, tx) = t_pop!(m);
    let extended = match b.to_usize() {
        Some(i) => x.sign_extend(i),
        None => x,
    };
    t_push!(m, extended, tb | tx);
    Step::Next
}

/// Comparison shared by LT / GT / SLT / SGT / EQ; `op` is a compile-time
/// constant from the per-op wrappers, so the predicate and `CmpKind`
/// selection fold away.
#[inline(always)]
fn cmp_body(m: &mut Machine<'_, '_>, u: &BlockUnit, op: Opcode) -> Step {
    m.trace.record_instr(u.op);
    let (a, ta) = t_pop!(m);
    let (b, tb) = t_pop!(m);
    let taint = ta | tb;
    let result = match op {
        Opcode::Lt => a < b,
        Opcode::Gt => a > b,
        Opcode::Slt => a.signed_cmp(&b) == std::cmp::Ordering::Less,
        Opcode::Sgt => a.signed_cmp(&b) == std::cmp::Ordering::Greater,
        _ => a == b,
    };
    let kind = match op {
        Opcode::Lt | Opcode::Slt => CmpKind::Lt,
        Opcode::Gt | Opcode::Sgt => CmpKind::Gt,
        _ => CmpKind::Eq,
    };
    m.last_cmp = Some(Comparison {
        pc: u.pc as usize,
        kind,
        lhs: a,
        rhs: b,
        taint,
    });
    t_push!(m, U256::from(result), taint);
    Step::Next
}

fn h_lt(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    cmp_body(m, u, Opcode::Lt)
}

fn h_gt(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    cmp_body(m, u, Opcode::Gt)
}

fn h_slt(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    cmp_body(m, u, Opcode::Slt)
}

fn h_sgt(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    cmp_body(m, u, Opcode::Sgt)
}

fn h_eq(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    cmp_body(m, u, Opcode::Eq)
}

fn h_iszero(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    let (a, ta) = t_pop!(m);
    let is_bool = a.is_zero() || a == U256::ONE;
    if !(is_bool && m.last_cmp.is_some()) {
        m.last_cmp = Some(Comparison {
            pc: u.pc as usize,
            kind: CmpKind::IsZero,
            lhs: a,
            rhs: U256::ZERO,
            taint: ta,
        });
    }
    t_push!(m, U256::from(a.is_zero()), ta);
    Step::Next
}

#[inline(always)]
fn bit_body(m: &mut Machine<'_, '_>, u: &BlockUnit, op: Opcode) -> Step {
    m.trace.record_instr(u.op);
    let (a, ta) = t_pop!(m);
    let (b, tb) = t_pop!(m);
    let result = match op {
        Opcode::And => a & b,
        Opcode::Or => a | b,
        _ => a ^ b,
    };
    t_push!(m, result, ta | tb);
    Step::Next
}

fn h_and(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    bit_body(m, u, Opcode::And)
}

fn h_or(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    bit_body(m, u, Opcode::Or)
}

fn h_xor(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    bit_body(m, u, Opcode::Xor)
}

fn h_not(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    let (a, ta) = t_pop!(m);
    t_push!(m, !a, ta);
    Step::Next
}

fn h_byte(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    let (i, ti) = t_pop!(m);
    let (x, tx) = t_pop!(m);
    let byte = i
        .to_usize()
        .filter(|&i| i < 32)
        .map(|i| U256::from_u64(x.to_be_bytes()[i] as u64))
        .unwrap_or(U256::ZERO);
    t_push!(m, byte, ti | tx);
    Step::Next
}

fn h_shl(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    let (shift, ts) = t_pop!(m);
    let (x, tx) = t_pop!(m);
    let shifted = shift
        .to_u64()
        .map(|s| x.shl_bits(s.min(256) as u32))
        .unwrap_or(U256::ZERO);
    t_push!(m, shifted, ts | tx);
    Step::Next
}

fn h_shr(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    let (shift, ts) = t_pop!(m);
    let (x, tx) = t_pop!(m);
    let shifted = shift
        .to_u64()
        .map(|s| x.shr_bits(s.min(256) as u32))
        .unwrap_or(U256::ZERO);
    t_push!(m, shifted, ts | tx);
    Step::Next
}

fn h_sar(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    let (shift, ts) = t_pop!(m);
    let (x, tx) = t_pop!(m);
    let shifted = match shift.to_u64() {
        Some(s) => x.sar_bits(s.min(256) as u32),
        None if x.is_negative_signed() => U256::MAX,
        None => U256::ZERO,
    };
    t_push!(m, shifted, ts | tx);
    Step::Next
}

fn h_sha3(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    m.gas_left += u.tail;
    let (offset, to) = t_pop!(m);
    let (len, tl) = t_pop!(m);
    let (offset, len) = match (offset.to_usize(), len.to_usize()) {
        (Some(o), Some(l)) if l <= m.evm.config.max_memory => (o, l),
        _ => t_fault!(m, "sha3 out of bounds"),
    };
    let span = match mem_span(offset, len) {
        Ok(s) => s,
        Err(e) => t_fault!(m, e),
    };
    t_mem!(
        m,
        ensure_memory(m.memory, span, m.evm.config.max_memory, &mut m.gas_left)
    );
    let digest = keccak256(&m.memory[offset..offset + len]);
    t_push!(m, U256::from_be_bytes(digest), to | tl);
    t_recharge!(m, u);
    Step::Next
}

fn h_address(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    t_push!(m, m.code_address.to_u256(), Taint::empty());
    Step::Next
}

fn h_balance(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    m.gas_left += u.tail;
    let (who, _t) = t_pop!(m);
    let who = Address::from_u256(who);
    // EIP-2929: the first touch of the account this transaction pays the
    // cold surcharge, billed on the exact counter the tail anchor exposes.
    let surcharge = m.scratch.access.address_surcharge(who);
    if m.gas_left < surcharge {
        t_oog!(m);
    }
    m.gas_left -= surcharge;
    let bal = m.evm.world.balance(who);
    t_push!(m, bal, Taint::BALANCE);
    t_recharge!(m, u);
    Step::Next
}

fn h_extcodesize(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    m.gas_left += u.tail;
    let (who, _t) = t_pop!(m);
    let who = Address::from_u256(who);
    let surcharge = m.scratch.access.address_surcharge(who);
    if m.gas_left < surcharge {
        t_oog!(m);
    }
    m.gas_left -= surcharge;
    let size = m.evm.world.code(who).len();
    t_push!(m, U256::from_u64(size as u64), Taint::empty());
    t_recharge!(m, u);
    Step::Next
}

fn h_extcodehash(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    m.gas_left += u.tail;
    let (who, _t) = t_pop!(m);
    let who = Address::from_u256(who);
    let surcharge = m.scratch.access.address_surcharge(who);
    if m.gas_left < surcharge {
        t_oog!(m);
    }
    m.gas_left -= surcharge;
    let hash = match m.evm.world.account(who) {
        None => U256::ZERO,
        Some(account) => U256::from_be_bytes(keccak256(&account.code)),
    };
    t_push!(m, hash, Taint::empty());
    t_recharge!(m, u);
    Step::Next
}

fn h_extcodecopy(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    m.gas_left += u.tail;
    let (who, _t) = t_pop!(m);
    let (dst, _) = t_pop!(m);
    let (src, _) = t_pop!(m);
    let (len, _) = t_pop!(m);
    let who = Address::from_u256(who);
    let surcharge = m.scratch.access.address_surcharge(who);
    if m.gas_left < surcharge {
        t_oog!(m);
    }
    m.gas_left -= surcharge;
    let (dst, src, len) = match (dst.to_usize(), src.to_usize(), len.to_usize()) {
        (Some(d), Some(s), Some(l)) if l <= m.evm.config.max_memory => (d, s, l),
        _ => t_fault!(m, "extcodecopy out of bounds"),
    };
    let dynamic = COPY_WORD_GAS * (len as u64).div_ceil(32);
    if m.gas_left < dynamic {
        t_oog!(m);
    }
    m.gas_left -= dynamic;
    let span = match mem_span(dst, len) {
        Ok(s) => s,
        Err(e) => t_fault!(m, e),
    };
    t_mem!(
        m,
        ensure_memory(m.memory, span, m.evm.config.max_memory, &mut m.gas_left)
    );
    let ext = m.evm.world.code(who);
    for i in 0..len {
        m.memory[dst + i] = ext.get(src.saturating_add(i)).copied().unwrap_or(0);
    }
    t_recharge!(m, u);
    Step::Next
}

fn h_selfbalance(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    let bal = m.evm.world.balance(m.storage_address);
    t_push!(m, bal, Taint::BALANCE);
    Step::Next
}

fn h_origin(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    t_push!(m, m.origin.to_u256(), Taint::ORIGIN);
    Step::Next
}

fn h_caller(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    t_push!(m, m.caller.to_u256(), Taint::CALLER);
    Step::Next
}

fn h_callvalue(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    t_push!(m, m.value, Taint::CALLVALUE);
    Step::Next
}

fn h_calldataload(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    let (offset, _t) = t_pop!(m);
    let word = calldata_word(m.calldata, offset);
    t_push!(m, word, Taint::CALLDATA);
    Step::Next
}

fn h_calldatasize(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    t_push!(m, U256::from_u64(m.calldata.len() as u64), Taint::CALLDATA);
    Step::Next
}

fn h_calldatacopy(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    m.gas_left += u.tail;
    let (dst, _td) = t_pop!(m);
    let (src, _ts) = t_pop!(m);
    let (len, _tl) = t_pop!(m);
    let (dst, src, len) = match (dst.to_usize(), src.to_usize(), len.to_usize()) {
        (Some(d), Some(s), Some(l)) if l <= m.evm.config.max_memory => (d, s, l),
        _ => t_fault!(m, "calldatacopy out of bounds"),
    };
    let span = match mem_span(dst, len) {
        Ok(s) => s,
        Err(e) => t_fault!(m, e),
    };
    t_mem!(
        m,
        ensure_memory(m.memory, span, m.evm.config.max_memory, &mut m.gas_left)
    );
    for i in 0..len {
        m.memory[dst + i] = m.calldata.get(src + i).copied().unwrap_or(0);
    }
    t_recharge!(m, u);
    Step::Next
}

fn h_codesize(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    let len = m.program.base().code_len();
    t_push!(m, U256::from_u64(len as u64), Taint::empty());
    Step::Next
}

fn h_codecopy(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    m.gas_left += u.tail;
    let (dst, _) = t_pop!(m);
    let (src, _) = t_pop!(m);
    let (len, _) = t_pop!(m);
    let (dst, src, len) = match (dst.to_usize(), src.to_usize(), len.to_usize()) {
        (Some(d), Some(s), Some(l)) if l <= m.evm.config.max_memory => (d, s, l),
        _ => t_fault!(m, "codecopy out of bounds"),
    };
    let dynamic = COPY_WORD_GAS * (len as u64).div_ceil(32);
    if m.gas_left < dynamic {
        t_oog!(m);
    }
    m.gas_left -= dynamic;
    let span = match mem_span(dst, len) {
        Ok(s) => s,
        Err(e) => t_fault!(m, e),
    };
    t_mem!(
        m,
        ensure_memory(m.memory, span, m.evm.config.max_memory, &mut m.gas_left)
    );
    // Reads past the end of the code are zero-padded (the EVM's implicit
    // trailing STOP region).
    for i in 0..len {
        m.memory[dst + i] = m.code.get(src.saturating_add(i)).copied().unwrap_or(0);
    }
    t_recharge!(m, u);
    Step::Next
}

fn h_returndatasize(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    t_push!(
        m,
        U256::from_u64(m.return_data.len() as u64),
        Taint::empty()
    );
    Step::Next
}

fn h_returndatacopy(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    m.gas_left += u.tail;
    let (dst, _) = t_pop!(m);
    let (src, _) = t_pop!(m);
    let (len, _) = t_pop!(m);
    let (dst, src, len) = match (dst.to_usize(), src.to_usize(), len.to_usize()) {
        (Some(d), Some(s), Some(l)) if l <= m.evm.config.max_memory => (d, s, l),
        _ => t_fault!(m, "returndatacopy out of bounds"),
    };
    // Unlike CALLDATACOPY's zero padding, reading past the end of the
    // return buffer is an exceptional halt (EIP-211).
    match src.checked_add(len) {
        Some(end) if end <= m.return_data.len() => {}
        _ => t_fault!(m, "returndatacopy out of bounds"),
    }
    let dynamic = COPY_WORD_GAS * (len as u64).div_ceil(32);
    if m.gas_left < dynamic {
        t_oog!(m);
    }
    m.gas_left -= dynamic;
    let span = match mem_span(dst, len) {
        Ok(s) => s,
        Err(e) => t_fault!(m, e),
    };
    t_mem!(
        m,
        ensure_memory(m.memory, span, m.evm.config.max_memory, &mut m.gas_left)
    );
    m.memory[dst..dst + len].copy_from_slice(&m.return_data[src..src + len]);
    t_recharge!(m, u);
    Step::Next
}

fn h_gasprice(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    t_push!(m, U256::from_u64(1_000_000_000), Taint::empty());
    Step::Next
}

fn h_blockhash(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    let (n, _t) = t_pop!(m);
    let hash = keccak256(&n.to_be_bytes());
    t_push!(m, U256::from_be_bytes(hash), Taint::BLOCK);
    Step::Next
}

fn h_coinbase(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    t_push!(m, m.evm.block.coinbase.to_u256(), Taint::BLOCK);
    Step::Next
}

fn h_timestamp(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    t_push!(m, U256::from_u64(m.evm.block.timestamp), Taint::BLOCK);
    Step::Next
}

fn h_number(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    t_push!(m, U256::from_u64(m.evm.block.number), Taint::BLOCK);
    Step::Next
}

fn h_difficulty(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    t_push!(m, m.evm.block.difficulty, Taint::BLOCK);
    Step::Next
}

fn h_gaslimit(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    t_push!(m, U256::from_u64(m.evm.block.gas_limit), Taint::empty());
    Step::Next
}

fn h_chainid(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    t_push!(m, U256::from_u64(m.evm.block.chain_id), Taint::BLOCK);
    Step::Next
}

fn h_basefee(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    t_push!(m, m.evm.block.base_fee, Taint::BLOCK);
    Step::Next
}

fn h_pop(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    t_pop!(m);
    Step::Next
}

fn h_mload(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    m.gas_left += u.tail;
    let (offset, to) = t_pop!(m);
    let offset = match offset.to_usize() {
        Some(o) => o,
        None => t_fault!(m, "mload out of bounds"),
    };
    let span = match mem_span(offset, 32) {
        Ok(s) => s,
        Err(e) => t_fault!(m, e),
    };
    t_mem!(
        m,
        ensure_memory(m.memory, span, m.evm.config.max_memory, &mut m.gas_left)
    );
    let mut word = [0u8; 32];
    word.copy_from_slice(&m.memory[offset..offset + 32]);
    t_push!(m, U256::from_be_bytes(word), to);
    t_recharge!(m, u);
    Step::Next
}

fn h_mstore(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    m.gas_left += u.tail;
    let (offset, _to) = t_pop!(m);
    let (val, _tv) = t_pop!(m);
    let offset = match offset.to_usize() {
        Some(o) => o,
        None => t_fault!(m, "mstore out of bounds"),
    };
    let span = match mem_span(offset, 32) {
        Ok(s) => s,
        Err(e) => t_fault!(m, e),
    };
    t_mem!(
        m,
        ensure_memory(m.memory, span, m.evm.config.max_memory, &mut m.gas_left)
    );
    m.memory[offset..offset + 32].copy_from_slice(&val.to_be_bytes());
    t_recharge!(m, u);
    Step::Next
}

fn h_mstore8(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    m.gas_left += u.tail;
    let (offset, _to) = t_pop!(m);
    let (val, _tv) = t_pop!(m);
    let offset = match offset.to_usize() {
        Some(o) => o,
        None => t_fault!(m, "mstore8 out of bounds"),
    };
    let span = match mem_span(offset, 1) {
        Ok(s) => s,
        Err(e) => t_fault!(m, e),
    };
    t_mem!(
        m,
        ensure_memory(m.memory, span, m.evm.config.max_memory, &mut m.gas_left)
    );
    m.memory[offset] = val.low_u64() as u8;
    t_recharge!(m, u);
    Step::Next
}

fn h_sload(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    m.gas_left += u.tail;
    let (slot, _ts) = t_pop!(m);
    // EIP-2929: cold slots pay the surcharge on first touch.
    let surcharge = m.scratch.access.slot_surcharge(m.storage_address, slot);
    if m.gas_left < surcharge {
        t_oog!(m);
    }
    m.gas_left -= surcharge;
    let val = m.evm.world.storage(m.storage_address, slot);
    let stored_taint = m.evm.world.storage_taint(m.storage_address, slot);
    t_push!(m, val, Taint::STORAGE | stored_taint);
    t_recharge!(m, u);
    Step::Next
}

fn h_sstore(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    m.gas_left += u.tail;
    let (slot, _ts) = t_pop!(m);
    let (val, tv) = t_pop!(m);
    let surcharge = m.scratch.access.slot_surcharge(m.storage_address, slot);
    if m.gas_left < surcharge {
        t_oog!(m);
    }
    m.gas_left -= surcharge;
    let old = m.evm.world.storage(m.storage_address, slot);
    if !old.is_zero() && val.is_zero() {
        // EIP-3529: clearing a slot earns a (journaled, settlement-capped)
        // refund.
        m.scratch.access.add_refund(SSTORE_CLEAR_REFUND);
    }
    store_slot(m, u.pc as usize, slot, val, tv);
    t_recharge!(m, u);
    Step::Next
}

fn h_jump(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    let (dest, _t) = t_pop!(m);
    let target = dest.to_usize().and_then(|d| m.program.jump_unit(d));
    match target {
        Some(t) => Step::Jump(t as u32),
        None => t_fault!(m, "invalid jump destination"),
    }
}

fn h_jumpi(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    let (dest, _td) = t_pop!(m);
    let (cond, tc) = t_pop!(m);
    let taken = !cond.is_zero();
    let dest_usize = dest.to_usize().unwrap_or(usize::MAX);
    note_branch(m, u.pc as usize, dest_usize, taken, tc);
    if taken {
        match m.program.jump_unit(dest_usize) {
            Some(t) => return Step::Jump(t as u32),
            None => t_fault!(m, "invalid jump destination"),
        }
    }
    Step::Next
}

fn h_pc(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    t_push!(m, U256::from_u64(u.pc as u64), Taint::empty());
    Step::Next
}

fn h_msize(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    t_push!(m, U256::from_u64(m.memory.len() as u64), Taint::empty());
    Step::Next
}

fn h_gas(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    // GAS is gas-exact: un-charge the tail so the pushed value is the
    // per-instruction counter, then re-charge.
    m.gas_left += u.tail;
    t_push!(m, U256::from_u64(m.gas_left), Taint::empty());
    t_recharge!(m, u);
    Step::Next
}

fn h_jumpdest(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    Step::Next
}

fn h_push(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    t_push!(m, u.imm, Taint::empty());
    Step::Next
}

/// `DUP<N>` with the depth resolved at lowering time.
fn h_dup_n<const N: usize>(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    if m.stack.len() < N {
        t_fault!(m, "stack underflow");
    }
    let item = m.stack[m.stack.len() - N];
    t_push!(m, item.0, item.1);
    Step::Next
}

/// `SWAP<N>` with the depth resolved at lowering time.
fn h_swap_n<const N: usize>(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    if m.stack.len() < N + 1 {
        t_fault!(m, "stack underflow");
    }
    let top = m.stack.len() - 1;
    m.stack.swap(top, top - N);
    Step::Next
}

fn h_log(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    let n = match u.op {
        Opcode::Log(n) => n,
        _ => unreachable!("h_log dispatches LOG"),
    };
    let (_offset, _) = t_pop!(m);
    let (_len, _) = t_pop!(m);
    for _ in 0..n {
        t_pop!(m);
    }
    Step::Next
}

fn h_call(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    let op = u.op;
    let pc = u.pc as usize;
    m.trace.record_instr(op);
    let (gas_req, _tg) = t_pop!(m);
    let (to_word, t_to) = t_pop!(m);
    let (call_value, tv) = if matches!(op, Opcode::Call | Opcode::CallCode) {
        t_pop!(m)
    } else {
        (U256::ZERO, Taint::empty())
    };
    let (args_offset, _) = t_pop!(m);
    let (args_len, _) = t_pop!(m);
    let (ret_offset, _) = t_pop!(m);
    let (ret_len, _) = t_pop!(m);

    let to = Address::from_u256(to_word);
    let kind = match op {
        Opcode::Call => CallKind::Call,
        Opcode::CallCode => CallKind::CallCode,
        Opcode::DelegateCall => CallKind::DelegateCall,
        _ => CallKind::StaticCall,
    };
    m.args_buf.clear();
    t_mem!(
        m,
        read_memory_into(
            m.memory,
            args_offset,
            args_len,
            m.evm.config.max_memory,
            &mut m.gas_left,
            m.args_buf,
        )
    );
    // EIP-2929: the first touch of the callee account this transaction pays
    // the cold surcharge, before any gas is forwarded.
    let surcharge = m.scratch.access.address_surcharge(to);
    if m.gas_left < surcharge {
        t_oog!(m);
    }
    m.gas_left -= surcharge;
    let available = m.gas_left - m.gas_left / 64;
    let forwarded_gas = gas_req.to_u64().unwrap_or(u64::MAX).min(available);

    let call_idx = m.trace.calls.len();
    m.trace.calls.push(CallEvent {
        pc,
        kind,
        from: m.code_address,
        to,
        value: call_value,
        gas: forwarded_gas,
        success: false,
        callee_exception: false,
        result_checked: false,
        depth: m.depth,
        caller_selector: m.trace.entered_selector,
        arg_taint: t_to | tv,
        caller_guarded: m.caller_guard_seen,
    });

    if m.frames.iter().any(|f| f.code_address == to) {
        m.trace.reentered = true;
    }

    let (success, callee_exception, output, gas_spent) = m.evm.do_call(
        CallContext {
            kind,
            code_address: m.code_address,
            storage_address: m.storage_address,
            caller: m.caller,
            origin: m.origin,
            current_value: m.value,
            to,
            call_value,
            gas: forwarded_gas,
            depth: m.depth,
        },
        m.args_buf,
        m.frames,
        m.trace,
        m.scratch,
    );
    m.gas_left = m.gas_left.saturating_sub(gas_spent);
    if let Some(ev) = m.trace.calls.get_mut(call_idx) {
        ev.success = success;
        ev.callee_exception = callee_exception;
    }
    m.unchecked_calls.push(call_idx);
    // The callee's output becomes this frame's RETURNDATA buffer (empty
    // after an exceptional halt), and the part that fits is copied into the
    // caller's return region.
    m.return_data = output;
    let ret_n = ret_len.to_usize().unwrap_or(0).min(m.return_data.len());
    if ret_n > 0 {
        let offset = match ret_offset.to_usize() {
            Some(o) => o,
            None => t_fault!(m, "return region out of bounds"),
        };
        let span = match mem_span(offset, ret_n) {
            Ok(s) => s,
            Err(e) => t_fault!(m, e),
        };
        t_mem!(
            m,
            ensure_memory(m.memory, span, m.evm.config.max_memory, &mut m.gas_left)
        );
        m.memory[offset..offset + ret_n].copy_from_slice(&m.return_data[..ret_n]);
    }
    t_push!(m, U256::from(success), Taint::CALL_RESULT);
    Step::Next
}

fn h_create(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    let (_value, _) = t_pop!(m);
    let (_offset, _) = t_pop!(m);
    let (_len, _) = t_pop!(m);
    t_push!(m, U256::ZERO, Taint::empty());
    Step::Next
}

fn h_create2(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    let (create_value, _tv) = t_pop!(m);
    let (offset, _) = t_pop!(m);
    let (len, _) = t_pop!(m);
    let (salt, _) = t_pop!(m);
    let init = t_mem!(
        m,
        read_memory_range(
            m.memory,
            offset,
            len,
            m.evm.config.max_memory,
            &mut m.gas_left
        )
    );
    // Hashing the init code for the deterministic address derivation costs
    // the Keccak word price.
    let dynamic = SHA3_WORD_GAS * (init.len() as u64).div_ceil(32);
    if m.gas_left < dynamic {
        t_oog!(m);
    }
    m.gas_left -= dynamic;
    let site = CreateSite {
        creator: m.storage_address,
        origin: m.origin,
        value: create_value,
        salt,
        depth: m.depth,
    };
    let (created, out) =
        m.evm
            .do_create2(site, &init, m.frames, m.trace, m.scratch, &mut m.gas_left);
    m.return_data = out;
    t_push!(m, created, Taint::CALL_RESULT);
    Step::Next
}

fn h_return(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    let (offset, _) = t_pop!(m);
    let (len, _) = t_pop!(m);
    let out = t_mem!(
        m,
        read_memory_range(
            m.memory,
            offset,
            len,
            m.evm.config.max_memory,
            &mut m.gas_left
        )
    );
    m.halt = Some(FrameResult {
        halt: HaltReason::Normal,
        output: out,
        gas_left: m.gas_left,
    });
    Step::Done
}

fn h_revert(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    let (offset, _) = t_pop!(m);
    let (len, _) = t_pop!(m);
    let out = t_mem!(
        m,
        read_memory_range(
            m.memory,
            offset,
            len,
            m.evm.config.max_memory,
            &mut m.gas_left
        )
    );
    m.halt = Some(FrameResult {
        halt: HaltReason::Revert,
        output: out,
        gas_left: m.gas_left,
    });
    Step::Done
}

fn h_invalid(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    m.halt = Some(FrameResult {
        halt: HaltReason::Invalid,
        output: vec![],
        gas_left: 0,
    });
    Step::Done
}

fn h_selfdestruct(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    let (beneficiary_word, tb) = t_pop!(m);
    let beneficiary = Address::from_u256(beneficiary_word);
    let balance = m.evm.world.balance(m.storage_address);
    m.evm
        .world
        .transfer(m.storage_address, beneficiary, balance);
    m.evm.world.account_mut(m.storage_address).destroyed = true;
    m.trace.self_destructs.push(SelfDestructEvent {
        pc: u.pc as usize,
        contract: m.storage_address,
        beneficiary,
        caller_guarded: m.caller_guard_seen,
        beneficiary_taint: tb,
    });
    m.halt = Some(FrameResult {
        halt: HaltReason::Normal,
        output: vec![],
        gas_left: m.gas_left,
    });
    Step::Done
}

fn h_unknown(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    m.trace.record_instr(u.op);
    let b = match u.op {
        Opcode::Unknown(b) => b,
        _ => unreachable!("h_unknown dispatches Unknown"),
    };
    // Conformance-tagged exceptional halt (see the `match` arm).
    m.trace.conformance.push(ConformanceEvent {
        pc: u.pc as usize,
        byte: b,
        depth: m.depth,
    });
    t_fault!(m, format!("unknown opcode 0x{b:02x}"));
}

// ---------------------------------------------------------------------------
// Fused handlers: one per superinstruction tag, mirroring the fused `match`
// arms. Each checks the whole-unit instruction cap first (deopting untouched
// on a hit), then follows the arm's bulk/prefix trace discipline.
// ---------------------------------------------------------------------------

#[inline(always)]
fn hf_push_push_binop(m: &mut Machine<'_, '_>, u: &BlockUnit, op: Opcode) -> Step {
    t_cap_check!(m, u);
    let parts = unit_parts(m, u);
    t_bulk!(m, u);
    let (result, taint) = t_binop!(
        m,
        op,
        parts[2].pc as usize,
        parts[1].imm,
        parts[0].imm,
        Taint::empty()
    );
    t_push!(m, result, taint);
    Step::Next
}

fn hf_push_jump(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    t_cap_check!(m, u);
    t_bulk!(m, u);
    let Fused::PushJump { target } = u.fused else {
        unreachable!("hf_push_jump dispatches PushJump");
    };
    if target == u32::MAX {
        t_fault!(m, "invalid jump destination");
    }
    Step::Jump(target)
}

fn hf_push_jumpi(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    t_cap_check!(m, u);
    let parts = unit_parts(m, u);
    t_bulk!(m, u);
    let Fused::PushJumpI { target } = u.fused else {
        unreachable!("hf_push_jumpi dispatches PushJumpI");
    };
    let (cond, tc) = t_pop!(m);
    let taken = !cond.is_zero();
    let pc = parts[1].pc as usize;
    let dest_usize = parts[0].imm.to_usize().unwrap_or(usize::MAX);
    note_branch(m, pc, dest_usize, taken, tc);
    if taken {
        if target == u32::MAX {
            t_fault!(m, "invalid jump destination");
        }
        return Step::Jump(target);
    }
    Step::Next
}

fn hf_iszero_push_jumpi(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    t_cap_check!(m, u);
    let parts = unit_parts(m, u);
    t_bulk!(m, u);
    let Fused::IsZeroPushJumpI { target } = u.fused else {
        unreachable!("hf_iszero_push_jumpi dispatches IsZeroPushJumpI");
    };
    let (x, tx) = t_pop!(m);
    let is_bool = x.is_zero() || x == U256::ONE;
    if !(is_bool && m.last_cmp.is_some()) {
        m.last_cmp = Some(Comparison {
            pc: parts[0].pc as usize,
            kind: CmpKind::IsZero,
            lhs: x,
            rhs: U256::ZERO,
            taint: tx,
        });
    }
    let taken = x.is_zero();
    let pc = parts[2].pc as usize;
    let dest_usize = parts[1].imm.to_usize().unwrap_or(usize::MAX);
    note_branch(m, pc, dest_usize, taken, tx);
    if taken {
        if target == u32::MAX {
            t_fault!(m, "invalid jump destination");
        }
        return Step::Jump(target);
    }
    Step::Next
}

/// `DUPn;SWAPm` with both depths resolved at lowering time (the common
/// compiler range gets monomorphized wrappers; deeper pairs fall back to the
/// runtime-depth version).
#[inline(always)]
fn dup_swap_body(m: &mut Machine<'_, '_>, u: &BlockUnit, n: usize, sw: usize) -> Step {
    t_cap_check!(m, u);
    let parts = unit_parts(m, u);
    if m.stack.len() < n {
        t_unit_fault!(m, parts, 0, "stack underflow");
    }
    if m.stack.len() >= 1024 {
        t_unit_fault!(m, parts, 0, "stack overflow");
    }
    let item = m.stack[m.stack.len() - n];
    m.stack.push(item);
    if m.stack.len() < sw + 1 {
        t_unit_fault!(m, parts, 1, "stack underflow");
    }
    t_bulk!(m, u);
    let top = m.stack.len() - 1;
    m.stack.swap(top, top - sw);
    Step::Next
}

fn hf_dup_swap_c<const N: usize, const M: usize>(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    dup_swap_body(m, u, N, M)
}

/// Resolve a `DUPn;SWAPm` pair to a depth-monomorphized handler when both
/// depths sit in the compiler's hot range.
fn sel_dup_swap(n: u8, sw: u8) -> UnitHandler {
    match (n, sw) {
        (1, 1) => hf_dup_swap_c::<1, 1>,
        (1, 2) => hf_dup_swap_c::<1, 2>,
        (1, 3) => hf_dup_swap_c::<1, 3>,
        (1, 4) => hf_dup_swap_c::<1, 4>,
        (2, 1) => hf_dup_swap_c::<2, 1>,
        (2, 2) => hf_dup_swap_c::<2, 2>,
        (2, 3) => hf_dup_swap_c::<2, 3>,
        (2, 4) => hf_dup_swap_c::<2, 4>,
        (3, 1) => hf_dup_swap_c::<3, 1>,
        (3, 2) => hf_dup_swap_c::<3, 2>,
        (3, 3) => hf_dup_swap_c::<3, 3>,
        (3, 4) => hf_dup_swap_c::<3, 4>,
        (4, 1) => hf_dup_swap_c::<4, 1>,
        (4, 2) => hf_dup_swap_c::<4, 2>,
        (4, 3) => hf_dup_swap_c::<4, 3>,
        (4, 4) => hf_dup_swap_c::<4, 4>,
        _ => hf_dup_swap,
    }
}

fn hf_dup_swap(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    t_cap_check!(m, u);
    let parts = unit_parts(m, u);
    let n = match parts[0].op {
        Opcode::Dup(n) => n as usize,
        _ => unreachable!("DupSwap starts with DUP"),
    };
    if m.stack.len() < n {
        t_unit_fault!(m, parts, 0, "stack underflow");
    }
    if m.stack.len() >= 1024 {
        t_unit_fault!(m, parts, 0, "stack overflow");
    }
    let item = m.stack[m.stack.len() - n];
    m.stack.push(item);
    let sw = match parts[1].op {
        Opcode::Swap(sw) => sw as usize,
        _ => unreachable!("DupSwap ends with SWAP"),
    };
    if m.stack.len() < sw + 1 {
        t_unit_fault!(m, parts, 1, "stack underflow");
    }
    t_bulk!(m, u);
    let top = m.stack.len() - 1;
    m.stack.swap(top, top - sw);
    Step::Next
}

fn hf_push_push(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    t_cap_check!(m, u);
    let parts = unit_parts(m, u);
    t_bulk!(m, u);
    t_push!(m, parts[0].imm, Taint::empty());
    t_push!(m, parts[1].imm, Taint::empty());
    Step::Next
}

fn hf_push_mload(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    t_cap_check!(m, u);
    let parts = unit_parts(m, u);
    t_bulk!(m, u);
    m.gas_left += u.tail;
    let offset = match parts[0].imm.to_usize() {
        Some(o) => o,
        None => t_fault!(m, "mload out of bounds"),
    };
    let span = match mem_span(offset, 32) {
        Ok(s) => s,
        Err(e) => t_fault!(m, e),
    };
    t_mem!(
        m,
        ensure_memory(m.memory, span, m.evm.config.max_memory, &mut m.gas_left)
    );
    let mut word = [0u8; 32];
    word.copy_from_slice(&m.memory[offset..offset + 32]);
    t_push!(m, U256::from_be_bytes(word), Taint::empty());
    t_recharge!(m, u);
    Step::Next
}

fn hf_push_mstore(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    t_cap_check!(m, u);
    let parts = unit_parts(m, u);
    t_bulk!(m, u);
    m.gas_left += u.tail;
    let (val, _tv) = t_pop!(m);
    let offset = match parts[0].imm.to_usize() {
        Some(o) => o,
        None => t_fault!(m, "mstore out of bounds"),
    };
    let span = match mem_span(offset, 32) {
        Ok(s) => s,
        Err(e) => t_fault!(m, e),
    };
    t_mem!(
        m,
        ensure_memory(m.memory, span, m.evm.config.max_memory, &mut m.gas_left)
    );
    m.memory[offset..offset + 32].copy_from_slice(&val.to_be_bytes());
    t_recharge!(m, u);
    Step::Next
}

fn hf_push_calldataload(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    t_cap_check!(m, u);
    let parts = unit_parts(m, u);
    t_bulk!(m, u);
    let word = calldata_word(m.calldata, parts[0].imm);
    t_push!(m, word, Taint::CALLDATA);
    Step::Next
}

fn hf_push_push_sha3(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    t_cap_check!(m, u);
    let parts = unit_parts(m, u);
    t_bulk!(m, u);
    m.gas_left += u.tail;
    let (offset, len) = (parts[1].imm, parts[0].imm);
    let (offset, len) = match (offset.to_usize(), len.to_usize()) {
        (Some(o), Some(l)) if l <= m.evm.config.max_memory => (o, l),
        _ => t_fault!(m, "sha3 out of bounds"),
    };
    let span = match mem_span(offset, len) {
        Ok(s) => s,
        Err(e) => t_fault!(m, e),
    };
    t_mem!(
        m,
        ensure_memory(m.memory, span, m.evm.config.max_memory, &mut m.gas_left)
    );
    let digest = keccak256(&m.memory[offset..offset + len]);
    t_push!(m, U256::from_be_bytes(digest), Taint::empty());
    t_recharge!(m, u);
    Step::Next
}

#[inline(always)]
fn hf_push_push_mload_binop(m: &mut Machine<'_, '_>, u: &BlockUnit, op: Opcode) -> Step {
    t_cap_check!(m, u);
    let parts = unit_parts(m, u);
    m.gas_left += u.tail;
    let offset = match parts[1].imm.to_usize() {
        Some(o) => o,
        None => t_unit_fault!(m, parts, 2, "mload out of bounds"),
    };
    let span = match mem_span(offset, 32) {
        Ok(s) => s,
        Err(e) => t_unit_fault!(m, parts, 2, e),
    };
    t_unit_mem!(
        m,
        parts,
        2,
        ensure_memory(m.memory, span, m.evm.config.max_memory, &mut m.gas_left)
    );
    t_bulk!(m, u);
    let mut word = [0u8; 32];
    word.copy_from_slice(&m.memory[offset..offset + 32]);
    let (result, taint) = t_binop!(
        m,
        op,
        parts[3].pc as usize,
        U256::from_be_bytes(word),
        parts[0].imm,
        Taint::empty()
    );
    t_push!(m, result, taint);
    t_recharge!(m, u);
    Step::Next
}

#[inline(always)]
fn hf_push_mload_binop(m: &mut Machine<'_, '_>, u: &BlockUnit, op: Opcode) -> Step {
    t_cap_check!(m, u);
    let parts = unit_parts(m, u);
    m.gas_left += u.tail;
    let offset = match parts[0].imm.to_usize() {
        Some(o) => o,
        None => t_unit_fault!(m, parts, 1, "mload out of bounds"),
    };
    let span = match mem_span(offset, 32) {
        Ok(s) => s,
        Err(e) => t_unit_fault!(m, parts, 1, e),
    };
    t_unit_mem!(
        m,
        parts,
        1,
        ensure_memory(m.memory, span, m.evm.config.max_memory, &mut m.gas_left)
    );
    t_bulk!(m, u);
    let mut word = [0u8; 32];
    word.copy_from_slice(&m.memory[offset..offset + 32]);
    let (b, tb) = t_pop!(m);
    let (result, taint) = t_binop!(
        m,
        op,
        parts[2].pc as usize,
        U256::from_be_bytes(word),
        b,
        tb
    );
    t_push!(m, result, taint);
    t_recharge!(m, u);
    Step::Next
}

#[inline(always)]
fn hf_push_mload_push_binop(m: &mut Machine<'_, '_>, u: &BlockUnit, op: Opcode) -> Step {
    t_cap_check!(m, u);
    let parts = unit_parts(m, u);
    m.gas_left += u.tail;
    let offset = match parts[0].imm.to_usize() {
        Some(o) => o,
        None => t_unit_fault!(m, parts, 1, "mload out of bounds"),
    };
    let span = match mem_span(offset, 32) {
        Ok(s) => s,
        Err(e) => t_unit_fault!(m, parts, 1, e),
    };
    t_unit_mem!(
        m,
        parts,
        1,
        ensure_memory(m.memory, span, m.evm.config.max_memory, &mut m.gas_left)
    );
    t_bulk!(m, u);
    let mut word = [0u8; 32];
    word.copy_from_slice(&m.memory[offset..offset + 32]);
    let (result, taint) = t_binop!(
        m,
        op,
        parts[3].pc as usize,
        parts[2].imm,
        U256::from_be_bytes(word),
        Taint::empty()
    );
    t_push!(m, result, taint);
    t_recharge!(m, u);
    Step::Next
}

#[inline(always)]
fn hf_push_binop_push_mstore(m: &mut Machine<'_, '_>, u: &BlockUnit, op: Opcode) -> Step {
    t_cap_check!(m, u);
    let parts = unit_parts(m, u);
    t_bulk!(m, u);
    let (b, tb) = t_pop!(m);
    let (val, _tv) = t_binop!(m, op, parts[1].pc as usize, parts[0].imm, b, tb);
    m.gas_left += u.tail;
    let offset = match parts[2].imm.to_usize() {
        Some(o) => o,
        None => t_fault!(m, "mstore out of bounds"),
    };
    let span = match mem_span(offset, 32) {
        Ok(s) => s,
        Err(e) => t_fault!(m, e),
    };
    t_mem!(
        m,
        ensure_memory(m.memory, span, m.evm.config.max_memory, &mut m.gas_left)
    );
    m.memory[offset..offset + 32].copy_from_slice(&val.to_be_bytes());
    t_recharge!(m, u);
    Step::Next
}

#[inline(always)]
fn hf_binop_push_mstore(m: &mut Machine<'_, '_>, u: &BlockUnit, op: Opcode) -> Step {
    t_cap_check!(m, u);
    let parts = unit_parts(m, u);
    t_bulk!(m, u);
    let (a, ta) = t_pop!(m);
    let (b, tb) = t_pop!(m);
    let (val, _tv) = t_binop!(m, op, parts[0].pc as usize, a, b, ta | tb);
    m.gas_left += u.tail;
    let offset = match parts[1].imm.to_usize() {
        Some(o) => o,
        None => t_fault!(m, "mstore out of bounds"),
    };
    let span = match mem_span(offset, 32) {
        Ok(s) => s,
        Err(e) => t_fault!(m, e),
    };
    t_mem!(
        m,
        ensure_memory(m.memory, span, m.evm.config.max_memory, &mut m.gas_left)
    );
    m.memory[offset..offset + 32].copy_from_slice(&val.to_be_bytes());
    t_recharge!(m, u);
    Step::Next
}

#[inline(always)]
fn hf_push_binop(m: &mut Machine<'_, '_>, u: &BlockUnit, op: Opcode) -> Step {
    t_cap_check!(m, u);
    let parts = unit_parts(m, u);
    t_bulk!(m, u);
    let (b, tb) = t_pop!(m);
    let (result, taint) = t_binop!(m, op, parts[1].pc as usize, parts[0].imm, b, tb);
    t_push!(m, result, taint);
    Step::Next
}

fn hf_local_expr_store(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    t_cap_check!(m, u);
    let parts = unit_parts(m, u);
    let load_off = match parts[2].imm.to_usize() {
        Some(o) if m.memory.len() >= 32 && o <= m.memory.len() - 32 => o,
        _ => t_deopt_unit!(m, u),
    };
    t_bulk!(m, u);
    let mut word = [0u8; 32];
    word.copy_from_slice(&m.memory[load_off..load_off + 32]);
    let (mid, mid_taint) = t_binop!(
        m,
        parts[4].op,
        parts[4].pc as usize,
        U256::from_be_bytes(word),
        parts[1].imm,
        Taint::empty()
    );
    let (val, _tv) = t_binop!(
        m,
        parts[5].op,
        parts[5].pc as usize,
        mid,
        parts[0].imm,
        mid_taint
    );
    m.gas_left += u.tail;
    let offset = match parts[6].imm.to_usize() {
        Some(o) => o,
        None => t_fault!(m, "mstore out of bounds"),
    };
    let span = match mem_span(offset, 32) {
        Ok(s) => s,
        Err(e) => t_fault!(m, e),
    };
    t_mem!(
        m,
        ensure_memory(m.memory, span, m.evm.config.max_memory, &mut m.gas_left)
    );
    m.memory[offset..offset + 32].copy_from_slice(&val.to_be_bytes());
    t_recharge!(m, u);
    Step::Next
}

fn hf_local_pair_store(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    t_cap_check!(m, u);
    let parts = unit_parts(m, u);
    let (off_b, off_a) = match (parts[0].imm.to_usize(), parts[2].imm.to_usize()) {
        (Some(b), Some(a))
            if m.memory.len() >= 32 && b <= m.memory.len() - 32 && a <= m.memory.len() - 32 =>
        {
            (b, a)
        }
        _ => t_deopt_unit!(m, u),
    };
    t_bulk!(m, u);
    let mut word = [0u8; 32];
    word.copy_from_slice(&m.memory[off_b..off_b + 32]);
    let b = U256::from_be_bytes(word);
    word.copy_from_slice(&m.memory[off_a..off_a + 32]);
    let a = U256::from_be_bytes(word);
    let (val, _tv) = t_binop!(m, parts[4].op, parts[4].pc as usize, a, b, Taint::empty());
    m.gas_left += u.tail;
    let offset = match parts[5].imm.to_usize() {
        Some(o) => o,
        None => t_fault!(m, "mstore out of bounds"),
    };
    let span = match mem_span(offset, 32) {
        Ok(s) => s,
        Err(e) => t_fault!(m, e),
    };
    t_mem!(
        m,
        ensure_memory(m.memory, span, m.evm.config.max_memory, &mut m.gas_left)
    );
    m.memory[offset..offset + 32].copy_from_slice(&val.to_be_bytes());
    t_recharge!(m, u);
    Step::Next
}

fn hf_push_sload(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    t_cap_check!(m, u);
    t_bulk!(m, u);
    m.gas_left += u.tail;
    // The pushed slot is the unit's first constituent: its immediate is the
    // unit's `imm`.
    let slot = u.imm;
    // EIP-2929: the first touch of the slot this transaction pays the cold
    // surcharge, billed on the exact counter the tail anchor exposes.
    let surcharge = m.scratch.access.slot_surcharge(m.storage_address, slot);
    if m.gas_left < surcharge {
        t_oog!(m);
    }
    m.gas_left -= surcharge;
    let val = m.evm.world.storage(m.storage_address, slot);
    let stored_taint = m.evm.world.storage_taint(m.storage_address, slot);
    t_push!(m, val, Taint::STORAGE | stored_taint);
    t_recharge!(m, u);
    Step::Next
}

fn hf_push_sstore(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    t_cap_check!(m, u);
    let parts = unit_parts(m, u);
    t_bulk!(m, u);
    m.gas_left += u.tail;
    let slot = parts[0].imm;
    let (val, tv) = t_pop!(m);
    let surcharge = m.scratch.access.slot_surcharge(m.storage_address, slot);
    if m.gas_left < surcharge {
        t_oog!(m);
    }
    m.gas_left -= surcharge;
    let old = m.evm.world.storage(m.storage_address, slot);
    if !old.is_zero() && val.is_zero() {
        // EIP-3529: clearing a slot earns a refund, journaled so a
        // reverting frame forfeits it.
        m.scratch.access.add_refund(SSTORE_CLEAR_REFUND);
    }
    store_slot(m, parts[1].pc as usize, slot, val, tv);
    t_recharge!(m, u);
    Step::Next
}

#[inline(always)]
fn hf_storage_expr_store(m: &mut Machine<'_, '_>, u: &BlockUnit, op: Opcode) -> Step {
    t_cap_check!(m, u);
    let parts = unit_parts(m, u);
    // Both storage ops carry a dynamic EIP-2929 surcharge, so (like the
    // `MapSlot*` family) the arm rewinds to the exact per-instruction
    // counter at the unit's start and replays every constituent's billing in
    // order (see the `match` arm).
    m.gas_left += u.head;
    t_charge!(m, parts, 0);
    t_charge!(m, parts, 1);
    t_charge!(m, parts, 2);
    let slot = parts[1].imm;
    let surcharge = m.scratch.access.slot_surcharge(m.storage_address, slot);
    if m.gas_left < surcharge {
        t_prefix!(m, parts, 2);
        t_oog!(m);
    }
    m.gas_left -= surcharge;
    let loaded = m.evm.world.storage(m.storage_address, slot);
    let stored_taint = m.evm.world.storage_taint(m.storage_address, slot);
    t_charge!(m, parts, 3);
    let (val, tv) = t_binop!(
        m,
        op,
        parts[3].pc as usize,
        loaded,
        parts[0].imm,
        Taint::STORAGE | stored_taint
    );
    t_charge!(m, parts, 4);
    t_charge!(m, parts, 5);
    let out_slot = parts[4].imm;
    let surcharge = m.scratch.access.slot_surcharge(m.storage_address, out_slot);
    if m.gas_left < surcharge {
        t_prefix!(m, parts, 5);
        t_oog!(m);
    }
    m.gas_left -= surcharge;
    let old = m.evm.world.storage(m.storage_address, out_slot);
    if !old.is_zero() && val.is_zero() {
        m.scratch.access.add_refund(SSTORE_CLEAR_REFUND);
    }
    store_slot(m, parts[5].pc as usize, out_slot, val, tv);
    t_bulk!(m, u);
    // Restore block billing exactly as `MapSlot*` does: re-charge the
    // statics of the block's instructions after this unit, deopting with the
    // exact counter if the surcharges drained what the block had pre-paid.
    let unit_statics: u64 = parts.iter().map(|di| static_gas(di.op)).sum();
    let after = u.head - unit_statics;
    if m.gas_left < after {
        return Step::Deopt(u.instr_start + u.instr_count);
    }
    m.gas_left -= after;
    Step::Next
}

fn hf_map_slot(m: &mut Machine<'_, '_>, u: &BlockUnit) -> Step {
    t_cap_check!(m, u);
    let parts = unit_parts(m, u);
    // Rewind to the exact per-instruction counter at the unit's start and
    // replay every constituent's billing in order (see the `match` arm).
    m.gas_left += u.head;
    t_charge!(m, parts, 0);
    t_charge!(m, parts, 1);
    let (key, _tk) = t_pop!(m);
    let off1 = match parts[0].imm.to_usize() {
        Some(o) => o,
        None => t_unit_fault!(m, parts, 1, "mstore out of bounds"),
    };
    let span = match mem_span(off1, 32) {
        Ok(s) => s,
        Err(e) => t_unit_fault!(m, parts, 1, e),
    };
    t_unit_mem!(
        m,
        parts,
        1,
        ensure_memory(m.memory, span, m.evm.config.max_memory, &mut m.gas_left)
    );
    m.memory[off1..off1 + 32].copy_from_slice(&key.to_be_bytes());
    t_charge!(m, parts, 2);
    t_charge!(m, parts, 3);
    t_charge!(m, parts, 4);
    let off2 = match parts[3].imm.to_usize() {
        Some(o) => o,
        None => t_unit_fault!(m, parts, 4, "mstore out of bounds"),
    };
    let span = match mem_span(off2, 32) {
        Ok(s) => s,
        Err(e) => t_unit_fault!(m, parts, 4, e),
    };
    t_unit_mem!(
        m,
        parts,
        4,
        ensure_memory(m.memory, span, m.evm.config.max_memory, &mut m.gas_left)
    );
    m.memory[off2..off2 + 32].copy_from_slice(&parts[2].imm.to_be_bytes());
    t_charge!(m, parts, 5);
    t_charge!(m, parts, 6);
    t_charge!(m, parts, 7);
    let (sha_off, sha_len) = match (parts[6].imm.to_usize(), parts[5].imm.to_usize()) {
        (Some(o), Some(l)) if l <= m.evm.config.max_memory => (o, l),
        _ => t_unit_fault!(m, parts, 7, "sha3 out of bounds"),
    };
    let span = match mem_span(sha_off, sha_len) {
        Ok(s) => s,
        Err(e) => t_unit_fault!(m, parts, 7, e),
    };
    t_unit_mem!(
        m,
        parts,
        7,
        ensure_memory(m.memory, span, m.evm.config.max_memory, &mut m.gas_left)
    );
    let digest = U256::from_be_bytes(keccak256(&m.memory[sha_off..sha_off + sha_len]));
    match u.fused {
        Fused::MapSlotSha3 => {
            t_push!(m, digest, Taint::empty());
        }
        Fused::MapSlotSLoad => {
            t_charge!(m, parts, 8);
            let surcharge = m.scratch.access.slot_surcharge(m.storage_address, digest);
            if m.gas_left < surcharge {
                t_prefix!(m, parts, 8);
                t_oog!(m);
            }
            m.gas_left -= surcharge;
            let val = m.evm.world.storage(m.storage_address, digest);
            let stored_taint = m.evm.world.storage_taint(m.storage_address, digest);
            t_push!(m, val, Taint::STORAGE | stored_taint);
        }
        _ => {
            t_charge!(m, parts, 8);
            let (val, tv) = t_pop!(m);
            let surcharge = m.scratch.access.slot_surcharge(m.storage_address, digest);
            if m.gas_left < surcharge {
                t_prefix!(m, parts, 8);
                t_oog!(m);
            }
            m.gas_left -= surcharge;
            let old = m.evm.world.storage(m.storage_address, digest);
            if !old.is_zero() && val.is_zero() {
                m.scratch.access.add_refund(SSTORE_CLEAR_REFUND);
            }
            store_slot(m, parts[8].pc as usize, digest, val, tv);
        }
    }
    t_bulk!(m, u);
    // Restore block billing: re-charge the statics of the block's
    // instructions after this unit, deopting to the next instruction if the
    // dynamic bills drained the block's pre-payment.
    let unit_statics: u64 = parts.iter().map(|di| static_gas(di.op)).sum();
    let after = u.head - unit_statics;
    if m.gas_left < after {
        return Step::Deopt(u.instr_start + u.instr_count);
    }
    m.gas_left -= after;
    Step::Next
}
