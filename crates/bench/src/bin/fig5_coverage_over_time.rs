//! Regenerates Figure 5: branch coverage over time for MuFuzz, IR-Fuzz,
//! ConFuzzius and sFuzz on small and large contracts.
//!
//! Scale with `MUFUZZ_CONTRACTS` (contracts per dataset) and `MUFUZZ_EXECS`
//! (execution budget per campaign); size the fleet pool the campaigns share with
//! `--workers N` (or `MUFUZZ_WORKERS`; 0 = auto).

use mufuzz_bench::{coverage_over_time, env_param, table, workers_param};
use mufuzz_corpus::{d1_large, d1_small};
use std::time::Instant;

fn main() {
    let contracts = env_param("MUFUZZ_CONTRACTS", 10);
    let execs = env_param("MUFUZZ_EXECS", 400);
    let workers = workers_param();
    let pool = mufuzz_bench::fleet_threads(workers);
    let checkpoints = 10;

    println!(
        "Figure 5 — branch coverage over time (budget = {execs} executions per contract, fleet pool of {pool} thread(s))"
    );
    println!();

    // The paper gives large contracts twice the fuzzing budget (20 vs 10
    // minutes); the reproduction scales the execution budget the same way.
    for (label, dataset, budget) in [
        ("(a) small contracts", d1_small(contracts), execs),
        (
            "(b) large contracts",
            d1_large(contracts.div_ceil(2)),
            execs * 2,
        ),
    ] {
        let wall = Instant::now();
        let series = coverage_over_time(label, &dataset.contracts, budget, 1, checkpoints, workers);
        let elapsed = wall.elapsed().as_secs_f64().max(1e-9);
        let execs = budget;
        let chart: Vec<(String, Vec<(f64, f64)>)> = series
            .per_tool
            .iter()
            .map(|(tool, points)| {
                (
                    tool.clone(),
                    points
                        .iter()
                        .map(|(frac, cov)| (frac * execs as f64, *cov))
                        .collect(),
                )
            })
            .collect();
        println!(
            "{}",
            table::render_series(
                &format!(
                    "{label}: coverage vs executions ({} contracts)",
                    dataset.len()
                ),
                &chart
            )
        );
        let rows: Vec<Vec<String>> = series
            .final_coverage
            .iter()
            .map(|(tool, cov)| vec![tool.clone(), format!("{:.1}%", cov * 100.0)])
            .collect();
        print!("{}", table::render(&["Tool", "Final coverage"], &rows));
        println!(
            "throughput: {:.0} execs/sec ({} executions in {:.2} s)",
            series.total_executions as f64 / elapsed,
            series.total_executions,
            elapsed
        );
        println!();
    }
}
