//! The EVM interpreter.
//!
//! A fully instrumented 256-bit stack machine. It supports the opcode subset
//! emitted by the `mufuzz-lang` compiler plus the instructions the bug
//! oracles and path-prefix analysis inspect. Every transaction execution
//! produces an [`ExecutionTrace`] with branch decisions, coverage edges,
//! arithmetic truncation events, call events and storage writes.
//!
//! # Execution pipeline
//!
//! The dispatch loop is generic over a `CodeView`, the (private) abstraction
//! that feeds it instructions:
//!
//! * the **block** view walks a [`BlockProgram`] — the decoded stream
//!   lowered once more into basic blocks with a pre-summed static gas cost
//!   and stack envelope, validated once per block instead of per
//!   instruction, plus fused superinstructions for common compiler idioms.
//!   This is the default fuzzing fast path ([`EvmConfig::block_lowering`]).
//!   A block whose envelope cannot be prevalidated (near-OOG, stack near
//!   the limits) *deopts*: the frame resumes per-instruction from the block
//!   entry, so faults and out-of-gas halts are bit-identical to
//!   per-instruction billing by construction.
//! * the **pre-decoded** view walks a [`DecodedProgram`] — bytecode is
//!   lowered once (per harness, shared via a [`ProgramCache`]) into a dense
//!   instruction stream with materialised `PUSH` immediates and O(1)
//!   `JUMP` resolution. Instruction-at-a-time billing; also the deopt
//!   target of the block view.
//! * the **legacy** view ([`EvmConfig::legacy_decode`]) re-decodes the raw
//!   bytes on the fly, exactly like the original interpreter: one opcode
//!   match per instruction and a fresh `JUMPDEST` scan per call frame.
//!
//! All views drive the *same* loop body, so they halt, trace and spend gas
//! identically by construction; `tests/decoder_differential.rs` asserts
//! bit-identical results (including gas remaining) across the whole corpus
//! three ways anyway.
//!
//! Per-execution scratch (operand stacks, memory buffers, call-argument
//! staging) lives in a reusable [`ExecFrame`] so a fuzzing campaign executes
//! without per-transaction heap churn; see its documentation.

use crate::env::{BlockEnv, ExecutionResult, Message};
use crate::gas::{
    static_gas, AccessSets, COPY_WORD_GAS, EXP_BYTE_GAS, MAX_REFUND_QUOTIENT, SHA3_WORD_GAS,
    SSTORE_CLEAR_REFUND,
};
use crate::keccak::keccak256;
use crate::opcode::Opcode;
use crate::program::{BlockInfo, BlockProgram, DecodedInstr, DecodedProgram, Fused, ProgramCache};
use crate::state::{HostBehaviour, WorldState};
use crate::trace::{
    ArithEvent, BranchRecord, CallEvent, CallKind, CmpKind, Comparison, ConformanceEvent,
    ExecutionTrace, HaltReason, OpcodeSet, SelfDestructEvent, StorageWrite, Taint,
};
use crate::types::Address;
use crate::u256::U256;
use std::collections::HashSet;
use std::sync::Arc;

/// Configuration knobs for the interpreter.
#[derive(Clone, Copy, Debug)]
pub struct EvmConfig {
    /// Maximum nested call depth.
    pub max_call_depth: usize,
    /// Maximum memory size per frame in bytes.
    pub max_memory: usize,
    /// Hard cap on executed instructions per transaction (loop guard in
    /// addition to gas).
    pub max_instructions: usize,
    /// Gas stipend forwarded on value-bearing `transfer`/`send` style calls.
    pub call_stipend: u64,
    /// Decode bytecode a byte at a time on every execution (the historical
    /// decoder) instead of through the pre-decoded instruction stream.
    /// Execution semantics are identical — the knob exists for the decoder
    /// differential suite and performance comparisons. Takes precedence over
    /// [`EvmConfig::block_lowering`].
    pub legacy_decode: bool,
    /// Execute cached programs through the block-lowered fast path: static
    /// gas and the stack envelope validated once per basic block, fused
    /// superinstructions for common idioms. Execution semantics are
    /// identical to instruction-at-a-time billing (blocks that cannot be
    /// prevalidated deopt to it); the knob exists for the three-way decoder
    /// differential suite and A/B benchmarks.
    pub block_lowering: bool,
    /// Drive the block-lowered tier through the direct-threaded dispatch
    /// table: every [`crate::BlockUnit`] carries a handler function pointer
    /// pre-resolved at lowering time, so the hot loop is an indirect call
    /// chain instead of a `match` over the unit tag. Semantics are identical
    /// to the `match` dispatcher by construction (both are asserted
    /// bit-identical by the differential suite); the knob selects which one
    /// runs. No effect unless [`EvmConfig::block_lowering`] is on.
    pub direct_threaded: bool,
}

impl Default for EvmConfig {
    fn default() -> Self {
        EvmConfig {
            max_call_depth: 16,
            max_memory: 1 << 20,
            max_instructions: 400_000,
            call_stipend: 2_300,
            legacy_decode: false,
            block_lowering: true,
            direct_threaded: true,
        }
    }
}

/// The result of running a single call frame.
pub(crate) struct FrameResult {
    pub(crate) halt: HaltReason,
    pub(crate) output: Vec<u8>,
    pub(crate) gas_left: u64,
}

/// Resumable state of the dispatch loop: everything live across a deopt from
/// the block-billed fast path to per-instruction execution. Stack, memory
/// and call-argument buffers live in the frame's [`DepthScratch`] and carry
/// over untouched.
pub(crate) struct LoopState {
    pub(crate) cursor: usize,
    pub(crate) gas_left: u64,
    pub(crate) last_cmp: Option<Comparison>,
    pub(crate) caller_guard_seen: bool,
    /// Indices into `trace.calls` for calls made by this frame whose result
    /// has not yet been consumed by a `JUMPI`.
    pub(crate) unchecked_calls: Vec<usize>,
    /// Indices of truncated arithmetic events produced in this frame.
    pub(crate) truncated_events: Vec<usize>,
    /// The frame's RETURNDATA buffer (EIP-211): output of the most recent
    /// completed call or create, empty at frame entry and after an
    /// exceptional callee halt.
    pub(crate) return_data: Vec<u8>,
}

impl LoopState {
    /// Fresh state at frame entry.
    fn start(gas: u64) -> LoopState {
        LoopState {
            cursor: 0,
            gas_left: gas,
            last_cmp: None,
            caller_guard_seen: false,
            unchecked_calls: Vec::new(),
            truncated_events: Vec::new(),
            return_data: Vec::new(),
        }
    }
}

/// How one pass of the dispatch loop ended.
pub(crate) enum FrameOutcome {
    /// The frame halted (normally or otherwise).
    Done(FrameResult),
    /// The block-billed fast path reached a block whose static-gas/stack
    /// envelope could not be prevalidated (near-OOG or near the stack
    /// limits); resume per-instruction from the block entry with this state.
    Deopt(LoopState),
}

/// One entry on the interpreter's internal call stack: which contract's code
/// is executing at which depth. Used to detect re-entrancy.
#[derive(Clone, Copy)]
pub(crate) struct FrameInfo {
    pub(crate) code_address: Address,
}

/// One dispatch unit as the loop sees it, independent of how the code is
/// decoded: a single instruction for the raw/pre-decoded views, possibly a
/// superinstruction plus block metadata for the block view.
#[derive(Clone, Copy)]
struct Fetched<'a> {
    op: Opcode,
    /// Byte offset of the opcode in the code (what the trace records).
    pc: usize,
    /// Pre-materialised immediate for `PUSH*` (zero otherwise).
    imm: U256,
    /// Cursor of the next sequential unit.
    next: usize,
    /// Set when this unit starts a basic block (block view only): the
    /// block's pre-summed static gas and stack envelope to settle at entry.
    block: Option<&'a BlockInfo>,
    /// Static-gas residual of the block's remaining instructions (block view
    /// only, non-zero only for gas-exact ops): un-charged around the arm so
    /// it observes and bills against the exact per-instruction counter.
    tail: u64,
    /// Static-gas residual of the block from this unit (inclusive) to the
    /// block's end (block view only): re-charged when a fused arm bails
    /// before touching any state and deopts from the unit's start.
    head: u64,
    /// Instruction index one past this unit (block view only) — the cursor a
    /// mid-block deopt hands to the per-instruction view.
    instr_next: u32,
    /// Opcode-presence mask of the unit's constituents, precomputed at
    /// lowering time (block view only): fused arms record the whole unit
    /// into the trace with one bulk OR instead of one insert per
    /// constituent.
    mask: OpcodeSet,
    /// Set for superinstructions (block view only): the fused tag and the
    /// constituent instructions, in code order.
    fused: Option<(Fused, &'a [DecodedInstr])>,
}

/// How the dispatch loop reads a code blob. Cursor values are opaque to the
/// loop: the raw view uses byte offsets, the decoded view instruction
/// indices, the block view unit indices. All views must decode identically —
/// the loop body is shared, so any divergence is a decode bug (caught by the
/// differential suite).
trait CodeView {
    /// Whether gas and the stack envelope are settled once per basic block
    /// (with deopt on failure) instead of charged per instruction.
    const BLOCK_BILLED: bool = false;
    /// Byte length of the underlying code (`CODESIZE`).
    fn code_len(&self) -> usize;
    /// Dispatch unit at `cursor`, or `None` once execution runs off the end
    /// of the code (implicit `STOP`).
    fn fetch(&self, cursor: usize) -> Option<Fetched<'_>>;
    /// Cursor for a jump destination, if `dest` is a valid `JUMPDEST`.
    fn jump_cursor(&self, dest: usize) -> Option<usize>;
}

/// The legacy byte-at-a-time decoder: one opcode match per fetch and a
/// `JUMPDEST` scan per frame.
struct RawCode<'a> {
    code: &'a [u8],
    jumpdests: HashSet<usize>,
}

impl<'a> RawCode<'a> {
    fn new(code: &'a [u8]) -> Self {
        // Valid JUMPDEST positions of the blob (not inside push data).
        let mut jumpdests = HashSet::new();
        let mut pc = 0usize;
        while pc < code.len() {
            let op = Opcode::from_byte(code[pc]);
            if op == Opcode::JumpDest {
                jumpdests.insert(pc);
            }
            pc += 1 + op.immediate_size();
        }
        RawCode { code, jumpdests }
    }
}

impl CodeView for RawCode<'_> {
    fn code_len(&self) -> usize {
        self.code.len()
    }

    #[inline]
    fn fetch(&self, pc: usize) -> Option<Fetched<'_>> {
        if pc >= self.code.len() {
            return None;
        }
        let op = Opcode::from_byte(self.code[pc]);
        let imm_len = op.immediate_size();
        let imm = if imm_len > 0 {
            let end = (pc + 1 + imm_len).min(self.code.len());
            U256::from_be_slice(&self.code[pc + 1..end])
        } else {
            U256::ZERO
        };
        Some(Fetched {
            op,
            pc,
            imm,
            next: pc + 1 + imm_len,
            block: None,
            tail: 0,
            head: 0,
            instr_next: 0,
            mask: OpcodeSet::default(),
            fused: None,
        })
    }

    #[inline]
    fn jump_cursor(&self, dest: usize) -> Option<usize> {
        self.jumpdests.contains(&dest).then_some(dest)
    }
}

/// The pre-decoded fast path: cursors are instruction indices into a
/// [`DecodedProgram`].
struct PredecodedCode<'a>(&'a DecodedProgram);

impl CodeView for PredecodedCode<'_> {
    fn code_len(&self) -> usize {
        self.0.code_len()
    }

    #[inline]
    fn fetch(&self, cursor: usize) -> Option<Fetched<'_>> {
        self.0.instructions().get(cursor).map(|i| Fetched {
            op: i.op,
            pc: i.pc as usize,
            imm: i.imm,
            next: cursor + 1,
            block: None,
            tail: 0,
            head: 0,
            instr_next: 0,
            mask: OpcodeSet::default(),
            fused: None,
        })
    }

    #[inline]
    fn jump_cursor(&self, dest: usize) -> Option<usize> {
        self.0.jump_cursor(dest)
    }
}

/// The block-lowered fast path: cursors are unit indices into a
/// [`BlockProgram`]. Static gas and the stack envelope are settled once per
/// block; fused units carry their superinstruction tag and constituents.
struct BlockCode<'a>(&'a BlockProgram);

impl CodeView for BlockCode<'_> {
    const BLOCK_BILLED: bool = true;

    fn code_len(&self) -> usize {
        self.0.base().code_len()
    }

    #[inline]
    fn fetch(&self, cursor: usize) -> Option<Fetched<'_>> {
        let unit = self.0.units().get(cursor)?;
        let fused = if matches!(unit.fused, Fused::None) {
            None
        } else {
            let start = unit.instr_start as usize;
            let end = start + unit.instr_count as usize;
            Some((unit.fused, &self.0.base().instructions()[start..end]))
        };
        Some(Fetched {
            op: unit.op,
            pc: unit.pc as usize,
            imm: unit.imm,
            next: cursor + 1,
            block: if unit.leader == u32::MAX {
                None
            } else {
                Some(&self.0.blocks()[unit.leader as usize])
            },
            tail: unit.tail,
            head: unit.head,
            instr_next: unit.instr_start + unit.instr_count,
            mask: unit.mask,
            fused,
        })
    }

    #[inline]
    fn jump_cursor(&self, dest: usize) -> Option<usize> {
        self.0.jump_unit(dest)
    }
}

/// Per-call-depth scratch buffers.
#[derive(Debug, Default)]
pub(crate) struct DepthScratch {
    pub(crate) stack: Vec<(U256, Taint)>,
    pub(crate) memory: Vec<u8>,
    /// Staging buffer for the argument bytes of an outgoing call.
    pub(crate) args: Vec<u8>,
}

/// Reusable per-execution scratch space: operand stacks, memory buffers and
/// call-argument staging for every call depth, plus capacity hints for the
/// trace vectors.
///
/// The interpreter allocates nothing per execution when driven through a
/// long-lived `ExecFrame`: buffers are taken for the duration of a call
/// frame, cleared (capacity retained) and returned when it ends. The fuzzing
/// harness keeps one frame per worker and threads it through
/// `execute_sequence_with`; one-shot callers can ignore the type —
/// [`Evm::execute`] creates a transient frame internally.
///
/// ```
/// use mufuzz_evm::{Account, Address, BlockEnv, Evm, ExecFrame, Message, U256, WorldState};
///
/// let mut world = WorldState::new();
/// world.put_account(Address::from_low_u64(1), Account::eoa(U256::from_u64(10)));
/// world.put_account(
///     Address::from_low_u64(2),
///     Account::contract(vec![0x60, 0x01, 0x60, 0x00, 0x55, 0x00], U256::ZERO),
/// );
/// let mut frame = ExecFrame::new();
/// let msg = Message::new(Address::from_low_u64(1), Address::from_low_u64(2), U256::ZERO, vec![]);
/// for _ in 0..3 {
///     // Buffer reuse across executions; results are unaffected.
///     let result = Evm::new(&mut world, BlockEnv::default()).execute_in(&msg, &mut frame);
///     assert!(result.success);
/// }
/// ```
#[derive(Debug, Default)]
pub struct ExecFrame {
    depths: Vec<DepthScratch>,
    /// High-water mark of the branch vector, used to pre-reserve the next
    /// trace's capacity.
    branch_hint: usize,
    /// Per-transaction EIP-2929 warm/cold access sets and the EIP-3529
    /// refund counter, reset at the start of each top-level message.
    pub(crate) access: AccessSets,
}

impl ExecFrame {
    /// An empty frame. Buffers grow to the campaign's high-water marks over
    /// the first executions and are reused afterwards.
    pub fn new() -> ExecFrame {
        ExecFrame::default()
    }

    fn slot(&mut self, depth: usize) -> &mut DepthScratch {
        while self.depths.len() <= depth {
            self.depths.push(DepthScratch::default());
        }
        &mut self.depths[depth]
    }

    /// Borrow the scratch of a call depth by value for the duration of a
    /// frame (the slot is left empty, so re-entrant executions at deeper
    /// depths take their own buffers).
    fn take(&mut self, depth: usize) -> DepthScratch {
        std::mem::take(self.slot(depth))
    }

    /// Return a depth's scratch, cleared but with its capacity retained.
    fn put(&mut self, depth: usize, mut scratch: DepthScratch) {
        scratch.stack.clear();
        scratch.memory.clear();
        scratch.args.clear();
        *self.slot(depth) = scratch;
    }

    /// Pre-reserve a fresh trace's hot vectors from the high-water marks of
    /// previous executions through this frame.
    fn prime(&self, trace: &mut ExecutionTrace) {
        trace.branches.reserve(self.branch_hint);
    }

    /// Update the high-water marks after an execution.
    fn note(&mut self, trace: &ExecutionTrace) {
        self.branch_hint = self.branch_hint.max(trace.branches.len());
    }
}

/// The execution context of one call frame.
#[derive(Clone, Copy)]
pub(crate) struct FrameCtx<'a> {
    pub(crate) code_address: Address,
    pub(crate) storage_address: Address,
    pub(crate) caller: Address,
    pub(crate) origin: Address,
    pub(crate) value: U256,
    pub(crate) calldata: &'a [u8],
    /// The executing code blob (`CODECOPY`'s source; `CODESIZE` reads the
    /// view's length, which is the same bytes).
    pub(crate) code: &'a [u8],
    pub(crate) gas: u64,
    pub(crate) depth: usize,
}

/// The per-call mutable environment threaded through every dispatch tier:
/// the interpreter's internal call stack, the transaction trace, and the
/// reusable scratch frame (depth buffers plus the transaction's EIP-2929
/// access sets).
pub(crate) struct ExecEnv<'e> {
    pub(crate) frames: &'e mut Vec<FrameInfo>,
    pub(crate) trace: &'e mut ExecutionTrace,
    pub(crate) scratch: &'e mut ExecFrame,
}

/// Everything identifying one `CREATE2` site: who creates, with what value
/// and salt, from which depth.
pub(crate) struct CreateSite {
    pub(crate) creator: Address,
    pub(crate) origin: Address,
    pub(crate) value: U256,
    pub(crate) salt: U256,
    pub(crate) depth: usize,
}

/// The EVM: executes messages against a mutable world state.
pub struct Evm<'w> {
    /// World state mutated by execution (committed only on success).
    pub world: &'w mut WorldState,
    /// Block environment.
    pub block: BlockEnv,
    /// Configuration.
    pub config: EvmConfig,
    /// Pre-decoded programs for known code blobs (decode-once fast path).
    programs: Option<&'w ProgramCache>,
}

impl<'w> Evm<'w> {
    /// Create an interpreter over a world state with the given block env.
    pub fn new(world: &'w mut WorldState, block: BlockEnv) -> Self {
        Evm {
            world,
            block,
            config: EvmConfig::default(),
            programs: None,
        }
    }

    /// Attach a cache of pre-decoded programs. Code blobs found in the cache
    /// execute through their decoded instruction stream without re-decoding;
    /// everything else is decoded on the fly.
    pub fn with_programs(mut self, programs: &'w ProgramCache) -> Self {
        self.programs = Some(programs);
        self
    }

    /// Deploy a contract: create the account with `runtime_code`, endow it
    /// with `value` from the deployer and execute `constructor_code` in the
    /// context of the new account so storage initialisation takes effect.
    pub fn deploy(
        &mut self,
        deployer: Address,
        address: Address,
        constructor_code: &[u8],
        runtime_code: Vec<u8>,
        value: U256,
        constructor_args: Vec<u8>,
    ) -> ExecutionResult {
        let account = self.world.account_mut(address);
        account.code = Arc::new(runtime_code);
        if !self.world.transfer(deployer, address, value) {
            return ExecutionResult {
                success: false,
                output: vec![],
                gas_used: 0,
                halt: HaltReason::Fault("insufficient deployer balance".into()),
                trace: ExecutionTrace::new(),
            };
        }
        // Run the constructor against the freshly created account, but with
        // the constructor code rather than the runtime code.
        let msg = Message {
            caller: deployer,
            origin: deployer,
            to: address,
            value: U256::ZERO,
            data: constructor_args,
            gas: 10_000_000,
        };
        let mut scratch = ExecFrame::new();
        self.execute_with_code(&msg, Arc::new(constructor_code.to_vec()), &mut scratch)
    }

    /// Execute a top-level transaction. State changes are committed only if
    /// the outermost frame succeeds; otherwise the world is rolled back.
    pub fn execute(&mut self, msg: &Message) -> ExecutionResult {
        let mut scratch = ExecFrame::new();
        self.execute_in(msg, &mut scratch)
    }

    /// Like [`Evm::execute`], reusing the caller's [`ExecFrame`] scratch
    /// buffers instead of allocating fresh ones.
    pub fn execute_in(&mut self, msg: &Message, scratch: &mut ExecFrame) -> ExecutionResult {
        let code = self.world.code(msg.to);
        self.execute_with_code(msg, code, scratch)
    }

    fn execute_with_code(
        &mut self,
        msg: &Message,
        code: Arc<Vec<u8>>,
        scratch: &mut ExecFrame,
    ) -> ExecutionResult {
        let snapshot = self.world.snapshot();
        let mut trace = ExecutionTrace::new();
        scratch.prime(&mut trace);
        trace.entered_selector = msg.selector();

        // Fresh per-transaction access sets (EIP-2929): the sender and the
        // target are warm from the first instruction.
        scratch.access.reset();
        scratch.access.prewarm(msg.caller);
        scratch.access.prewarm(msg.to);

        // Value transfer first; a failed transfer aborts the transaction.
        if !self.world.transfer(msg.caller, msg.to, msg.value) {
            trace.halt = HaltReason::Fault("insufficient balance for value transfer".into());
            return ExecutionResult {
                success: false,
                output: vec![],
                gas_used: 0,
                halt: trace.halt.clone(),
                trace,
            };
        }

        let result = if code.is_empty() {
            // Plain transfer to an EOA.
            FrameResult {
                halt: HaltReason::Normal,
                output: vec![],
                gas_left: msg.gas,
            }
        } else {
            let mut frames = vec![FrameInfo {
                code_address: msg.to,
            }];
            let ctx = FrameCtx {
                code_address: msg.to,
                storage_address: msg.to,
                caller: msg.caller,
                origin: msg.origin,
                value: msg.value,
                calldata: &msg.data,
                code: &code,
                gas: msg.gas,
                depth: 0,
            };
            self.dispatch_frame(&code, ctx, &mut frames, &mut trace, scratch)
        };

        let mut gas_used = msg.gas.saturating_sub(result.gas_left);
        let success = result.halt.is_success();
        if success {
            // EIP-3529 settlement: refunds earned by `SSTORE` clears are
            // applied against the final bill, capped to a fifth of the gas
            // actually consumed. Failed transactions forfeit their refunds.
            let refund = scratch.access.refund().min(gas_used / MAX_REFUND_QUOTIENT);
            gas_used -= refund;
        }
        trace.gas_used = gas_used;
        trace.halt = result.halt.clone();
        if !success {
            *self.world = snapshot;
        }
        scratch.note(&trace);
        ExecutionResult {
            success,
            output: result.output,
            gas_used,
            halt: result.halt,
            trace,
        }
    }

    /// Run a call frame through the appropriate code view: the block-lowered
    /// program on a cache hit (default), the pre-decoded stream when block
    /// mode is off or the blob is uncached, or the legacy byte-at-a-time
    /// decoder when configured.
    fn dispatch_frame(
        &mut self,
        code: &Arc<Vec<u8>>,
        ctx: FrameCtx<'_>,
        frames: &mut Vec<FrameInfo>,
        trace: &mut ExecutionTrace,
        scratch: &mut ExecFrame,
    ) -> FrameResult {
        if self.config.legacy_decode {
            let view = RawCode::new(code);
            return self.run_frame(&view, ctx, frames, trace, scratch);
        }
        let programs = self.programs;
        if self.config.block_lowering {
            if let Some(blocks) = programs.and_then(|cache| cache.get_block(code)) {
                return self.run_block_frame(blocks.as_ref(), ctx, frames, trace, scratch);
            }
        } else if let Some(program) = programs.and_then(|cache| cache.get(code)) {
            return self.run_frame(
                &PredecodedCode(program.as_ref()),
                ctx,
                frames,
                trace,
                scratch,
            );
        }
        let program = DecodedProgram::decode(code);
        self.run_frame(&PredecodedCode(&program), ctx, frames, trace, scratch)
    }

    /// Execute one call frame: borrow the depth's scratch buffers, run the
    /// dispatch loop, and return the buffers for reuse whatever way the
    /// frame halts.
    fn run_frame<V: CodeView>(
        &mut self,
        view: &V,
        ctx: FrameCtx<'_>,
        frames: &mut Vec<FrameInfo>,
        trace: &mut ExecutionTrace,
        scratch: &mut ExecFrame,
    ) -> FrameResult {
        let mut owned = scratch.take(ctx.depth);
        if owned.stack.capacity() == 0 {
            owned.stack.reserve(64);
        }
        let env = ExecEnv {
            frames: &mut *frames,
            trace: &mut *trace,
            scratch: &mut *scratch,
        };
        let outcome = self.run_frame_inner(view, ctx, env, &mut owned, LoopState::start(ctx.gas));
        scratch.put(ctx.depth, owned);
        match outcome {
            FrameOutcome::Done(result) => result,
            FrameOutcome::Deopt(_) => unreachable!("only the block view deopts"),
        }
    }

    /// Execute one call frame through the block-billed fast path, falling
    /// back to per-instruction execution mid-frame if a block's envelope
    /// cannot be prevalidated. The scratch buffers are borrowed once around
    /// both passes (returning them in between would clear live frame state).
    fn run_block_frame(
        &mut self,
        program: &BlockProgram,
        ctx: FrameCtx<'_>,
        frames: &mut Vec<FrameInfo>,
        trace: &mut ExecutionTrace,
        scratch: &mut ExecFrame,
    ) -> FrameResult {
        let mut owned = scratch.take(ctx.depth);
        if owned.stack.capacity() == 0 {
            owned.stack.reserve(64);
        }
        // Two dispatch strategies drive the same block program: the
        // direct-threaded handler chain (default) and the `match` dispatcher
        // (`run_frame_inner` over `BlockCode`). They are semantically
        // identical by construction; the knob exists so the differential
        // suite can pin them against each other.
        let outcome = if self.config.direct_threaded {
            let env = ExecEnv {
                frames: &mut *frames,
                trace: &mut *trace,
                scratch: &mut *scratch,
            };
            crate::threaded::run(
                self,
                program,
                ctx,
                env,
                &mut owned,
                LoopState::start(ctx.gas),
            )
        } else {
            let env = ExecEnv {
                frames: &mut *frames,
                trace: &mut *trace,
                scratch: &mut *scratch,
            };
            self.run_frame_inner(
                &BlockCode(program),
                ctx,
                env,
                &mut owned,
                LoopState::start(ctx.gas),
            )
        };
        let result = match outcome {
            FrameOutcome::Done(result) => result,
            FrameOutcome::Deopt(state) => {
                // The deopt state points at the instruction where block
                // billing bailed — a leader whose envelope failed to settle,
                // or a mid-block unit whose pre-validation or dynamic
                // billing fell through. The per-instruction view replays
                // from there (through the rest of the frame), reproducing
                // the exact fault or out-of-gas point the block's envelope
                // could not rule out.
                let view = PredecodedCode(program.base().as_ref());
                let env = ExecEnv {
                    frames: &mut *frames,
                    trace: &mut *trace,
                    scratch: &mut *scratch,
                };
                match self.run_frame_inner(&view, ctx, env, &mut owned, state) {
                    FrameOutcome::Done(result) => result,
                    FrameOutcome::Deopt(_) => unreachable!("per-instruction view cannot deopt"),
                }
            }
        };
        scratch.put(ctx.depth, owned);
        result
    }

    /// The dispatch loop. `state` is fresh at frame entry and carries the
    /// live loop variables across a block-mode deopt (the cursor is a view
    /// cursor, so a deopt state's cursor addresses the per-instruction view).
    fn run_frame_inner<V: CodeView>(
        &mut self,
        view: &V,
        ctx: FrameCtx<'_>,
        env: ExecEnv<'_>,
        owned: &mut DepthScratch,
        state: LoopState,
    ) -> FrameOutcome {
        let ExecEnv {
            frames,
            trace,
            scratch,
        } = env;
        let FrameCtx {
            code_address,
            storage_address,
            caller,
            origin,
            value,
            calldata,
            code,
            gas: _,
            depth,
        } = ctx;
        trace.max_depth = trace.max_depth.max(depth);
        let DepthScratch {
            stack,
            memory,
            args: args_buf,
        } = owned;
        let LoopState {
            mut cursor,
            mut gas_left,
            mut last_cmp,
            mut caller_guard_seen,
            mut unchecked_calls,
            mut truncated_events,
            mut return_data,
        } = state;

        macro_rules! fault {
            ($msg:expr) => {
                return FrameOutcome::Done(FrameResult {
                    halt: HaltReason::Fault($msg.to_string()),
                    output: vec![],
                    gas_left,
                })
            };
        }

        macro_rules! out_of_gas {
            () => {
                return FrameOutcome::Done(FrameResult {
                    halt: HaltReason::OutOfGas,
                    output: vec![],
                    gas_left: 0,
                })
            };
        }

        // Unwrap a memory operation: expansion the remaining gas cannot pay
        // halts the frame with `OutOfGas`, structural violations fault.
        macro_rules! mem_try {
            ($res:expr) => {
                match $res {
                    Ok(value) => value,
                    Err(MemFail::Fault(msg)) => fault!(msg),
                    Err(MemFail::OutOfGas) => out_of_gas!(),
                }
            };
        }

        macro_rules! pop {
            () => {
                match stack.pop() {
                    Some(v) => v,
                    None => fault!("stack underflow"),
                }
            };
        }

        macro_rules! push {
            ($val:expr, $taint:expr) => {{
                if stack.len() >= 1024 {
                    fault!("stack overflow");
                }
                stack.push(($val, $taint));
            }};
        }

        loop {
            if trace.instr_count as usize >= self.config.max_instructions {
                return FrameOutcome::Done(FrameResult {
                    halt: HaltReason::OutOfGas,
                    output: vec![],
                    gas_left: 0,
                });
            }
            let Some(instr) = view.fetch(cursor) else {
                // Running off the end of the code is an implicit STOP.
                return FrameOutcome::Done(FrameResult {
                    halt: HaltReason::Normal,
                    output: vec![],
                    gas_left,
                });
            };
            if V::BLOCK_BILLED {
                if let Some(block) = instr.block {
                    // Settle the whole block at its leader: pre-summed
                    // static gas and the stack envelope, validated once. If
                    // any part could fail mid-block, deopt and let the
                    // per-instruction view reproduce the exact halt.
                    if gas_left < block.static_gas
                        || stack.len() < block.stack_needed as usize
                        || stack.len() + block.max_growth as usize > 1024
                    {
                        return FrameOutcome::Deopt(LoopState {
                            cursor: block.instr_start as usize,
                            gas_left,
                            last_cmp,
                            caller_guard_seen,
                            unchecked_calls,
                            truncated_events,
                            return_data,
                        });
                    }
                    gas_left -= block.static_gas;
                }
                if let Some((fused, parts)) = instr.fused {
                    // Bail out of the unit before anything mutates: re-charge
                    // the pre-paid statics of the block's unexecuted
                    // remainder (the unit's `head`) and hand the
                    // per-instruction tier the unit's first instruction, so
                    // it replays the cap hit / expansion / fault with an
                    // exact counter and trace.
                    macro_rules! deopt_unit {
                        () => {{
                            gas_left += instr.head;
                            return FrameOutcome::Deopt(LoopState {
                                cursor: instr.instr_next as usize - parts.len(),
                                gas_left,
                                last_cmp,
                                caller_guard_seen,
                                unchecked_calls,
                                truncated_events,
                                return_data,
                            });
                        }};
                    }
                    // Superinstruction dispatch. The instruction cap is
                    // checked once for the whole unit — if any constituent
                    // would cross it, deopt untouched and let the
                    // per-instruction tier halt at the exact instruction.
                    if trace.instr_count as usize + parts.len() > self.config.max_instructions {
                        deopt_unit!();
                    }
                    // Fused units ending in a gas-exact op (MLOAD/MSTORE/
                    // SHA3) carry a tail residual just like plain units: the
                    // arm un-charges it up front so dynamic billing sees the
                    // exact counter, then re-charges it here — deopting to
                    // the next instruction if the dynamic cost consumed the
                    // budget the rest of the block had pre-paid.
                    macro_rules! recharge_tail {
                        () => {{
                            if gas_left < instr.tail {
                                return FrameOutcome::Deopt(LoopState {
                                    cursor: instr.instr_next as usize,
                                    gas_left,
                                    last_cmp,
                                    caller_guard_seen,
                                    unchecked_calls,
                                    truncated_events,
                                    return_data,
                                });
                            }
                            gas_left -= instr.tail;
                        }};
                    }
                    // The binop core shared by every fused pattern ending in
                    // an arithmetic/comparison/bitwise op — delegates to
                    // `fused_binop_eval`, the same function the
                    // direct-threaded handlers call.
                    macro_rules! fused_binop {
                        ($op:expr, $pc:expr, $a:expr, $b:expr, $taint:expr) => {
                            fused_binop_eval(
                                $op,
                                $a,
                                $b,
                                $taint,
                                BinopSite {
                                    pc: $pc,
                                    depth,
                                    trace: &mut *trace,
                                    last_cmp: &mut last_cmp,
                                    truncated_events: &mut truncated_events,
                                },
                            )
                        };
                    }
                    // Record the whole unit's constituents at once: the
                    // per-unit opcode mask and count were precomputed at
                    // lowering time, so this is one counter bump plus four
                    // word ORs however long the pattern is. Used on every
                    // path where all constituents execute (or where the
                    // faulting constituent is the unit's last — the
                    // per-instruction tier records an instruction *before*
                    // its arm can fault, so the full unit is recorded there
                    // too).
                    macro_rules! bulk {
                        () => {
                            trace.record_unit(instr.mask, parts.len() as u32)
                        };
                    }
                    // A fault/OOG at constituent `$k` with later constituents
                    // never reached: record exactly the prefix the
                    // per-instruction tier would have recorded (each
                    // instruction up to and including the faulting one).
                    macro_rules! prefix {
                        ($k:expr) => {
                            for di in &parts[..=$k] {
                                trace.record_instr(di.op);
                            }
                        };
                    }
                    macro_rules! unit_fault {
                        ($k:expr, $msg:expr) => {{
                            prefix!($k);
                            fault!($msg);
                        }};
                    }
                    // Memory operation at constituent `$k` of a pattern with
                    // constituents after it: fault/OOG paths record the
                    // prefix before halting.
                    macro_rules! unit_mem {
                        ($k:expr, $res:expr) => {
                            match $res {
                                Ok(value) => value,
                                Err(MemFail::Fault(msg)) => {
                                    prefix!($k);
                                    fault!(msg)
                                }
                                Err(MemFail::OutOfGas) => {
                                    prefix!($k);
                                    out_of_gas!()
                                }
                            }
                        };
                    }
                    // Per-constituent static charge for arms that replay
                    // billing exactly from the unit's `head` (the `MapSlot*`
                    // family): by the time a charge can fail, an earlier
                    // dynamic bill has drained the counter, and the
                    // per-instruction tier would record constituent `$k` and
                    // halt out-of-gas exactly here.
                    macro_rules! charge {
                        ($k:expr) => {{
                            let cost = static_gas(parts[$k].op);
                            if gas_left < cost {
                                prefix!($k);
                                out_of_gas!();
                            }
                            gas_left -= cost;
                        }};
                    }
                    match fused {
                        Fused::None => unreachable!("plain units carry no fused tag"),
                        Fused::PushPushBinop => {
                            bulk!();
                            let (result, taint) = fused_binop!(
                                parts[2].op,
                                parts[2].pc as usize,
                                parts[1].imm,
                                parts[0].imm,
                                Taint::empty()
                            );
                            push!(result, taint);
                            cursor = instr.next;
                        }
                        Fused::PushJump { target } => {
                            bulk!();
                            // The push/pop pair cancels: no stack traffic.
                            if target == u32::MAX {
                                fault!("invalid jump destination");
                            }
                            cursor = target as usize;
                        }
                        Fused::PushJumpI { target } => {
                            bulk!();
                            let (cond, tc) = pop!();
                            let taken = !cond.is_zero();
                            let pc = parts[1].pc as usize;
                            let dest_usize = parts[0].imm.to_usize().unwrap_or(usize::MAX);
                            if tc.intersects(Taint::CALLER | Taint::ORIGIN) {
                                caller_guard_seen = true;
                            }
                            if tc.contains(Taint::CALL_RESULT) {
                                if let Some(idx) = unchecked_calls.pop() {
                                    if let Some(ev) = trace.calls.get_mut(idx) {
                                        ev.result_checked = true;
                                    }
                                }
                            }
                            let record = BranchRecord {
                                pc,
                                dest: dest_usize,
                                taken,
                                cond_taint: tc,
                                comparison: last_cmp,
                                depth,
                                code_address,
                            };
                            trace.covered_edges.insert(record.edge());
                            trace.branches.push(record);
                            last_cmp = None;
                            if taken {
                                if target == u32::MAX {
                                    fault!("invalid jump destination");
                                }
                                cursor = target as usize;
                            } else {
                                cursor = instr.next;
                            }
                        }
                        Fused::IsZeroPushJumpI { target } => {
                            bulk!();
                            let (x, tx) = pop!();
                            // ISZERO's comparison bookkeeping, at its own pc.
                            let is_bool = x.is_zero() || x == U256::ONE;
                            if !(is_bool && last_cmp.is_some()) {
                                last_cmp = Some(Comparison {
                                    pc: parts[0].pc as usize,
                                    kind: CmpKind::IsZero,
                                    lhs: x,
                                    rhs: U256::ZERO,
                                    taint: tx,
                                });
                            }
                            // The JUMPI condition is ISZERO's output: taken
                            // iff x is zero, tainted like x.
                            let taken = x.is_zero();
                            let tc = tx;
                            let pc = parts[2].pc as usize;
                            let dest_usize = parts[1].imm.to_usize().unwrap_or(usize::MAX);
                            if tc.intersects(Taint::CALLER | Taint::ORIGIN) {
                                caller_guard_seen = true;
                            }
                            if tc.contains(Taint::CALL_RESULT) {
                                if let Some(idx) = unchecked_calls.pop() {
                                    if let Some(ev) = trace.calls.get_mut(idx) {
                                        ev.result_checked = true;
                                    }
                                }
                            }
                            let record = BranchRecord {
                                pc,
                                dest: dest_usize,
                                taken,
                                cond_taint: tc,
                                comparison: last_cmp,
                                depth,
                                code_address,
                            };
                            trace.covered_edges.insert(record.edge());
                            trace.branches.push(record);
                            last_cmp = None;
                            if taken {
                                if target == u32::MAX {
                                    fault!("invalid jump destination");
                                }
                                cursor = target as usize;
                            } else {
                                cursor = instr.next;
                            }
                        }
                        Fused::DupSwap => {
                            let n = match parts[0].op {
                                Opcode::Dup(n) => n as usize,
                                _ => unreachable!("DupSwap starts with DUP"),
                            };
                            if stack.len() < n {
                                unit_fault!(0, "stack underflow");
                            }
                            if stack.len() >= 1024 {
                                unit_fault!(0, "stack overflow");
                            }
                            let item = stack[stack.len() - n];
                            stack.push(item);
                            let m = match parts[1].op {
                                Opcode::Swap(m) => m as usize,
                                _ => unreachable!("DupSwap ends with SWAP"),
                            };
                            if stack.len() < m + 1 {
                                unit_fault!(1, "stack underflow");
                            }
                            bulk!();
                            let top = stack.len() - 1;
                            stack.swap(top, top - m);
                            cursor = instr.next;
                        }
                        Fused::PushPush => {
                            bulk!();
                            push!(parts[0].imm, Taint::empty());
                            push!(parts[1].imm, Taint::empty());
                            cursor = instr.next;
                        }
                        Fused::PushMLoad => {
                            bulk!();
                            gas_left += instr.tail;
                            let offset = match parts[0].imm.to_usize() {
                                Some(o) => o,
                                None => fault!("mload out of bounds"),
                            };
                            let span = match mem_span(offset, 32) {
                                Ok(s) => s,
                                Err(e) => fault!(e),
                            };
                            mem_try!(ensure_memory(
                                memory,
                                span,
                                self.config.max_memory,
                                &mut gas_left
                            ));
                            let mut word = [0u8; 32];
                            word.copy_from_slice(&memory[offset..offset + 32]);
                            // The offset taint is the push's: empty.
                            push!(U256::from_be_bytes(word), Taint::empty());
                            recharge_tail!();
                            cursor = instr.next;
                        }
                        Fused::PushMStore => {
                            bulk!();
                            gas_left += instr.tail;
                            // The pushed offset cancels against MSTORE's
                            // first pop; only the value crosses the stack.
                            let (val, _tv) = pop!();
                            let offset = match parts[0].imm.to_usize() {
                                Some(o) => o,
                                None => fault!("mstore out of bounds"),
                            };
                            let span = match mem_span(offset, 32) {
                                Ok(s) => s,
                                Err(e) => fault!(e),
                            };
                            mem_try!(ensure_memory(
                                memory,
                                span,
                                self.config.max_memory,
                                &mut gas_left
                            ));
                            memory[offset..offset + 32].copy_from_slice(&val.to_be_bytes());
                            recharge_tail!();
                            cursor = instr.next;
                        }
                        Fused::PushCallDataLoad => {
                            bulk!();
                            let word = calldata_word(calldata, parts[0].imm);
                            push!(word, Taint::CALLDATA);
                            cursor = instr.next;
                        }
                        Fused::PushPushSha3 => {
                            bulk!();
                            gas_left += instr.tail;
                            // Pop order mirrors the generic arm: offset is
                            // the later push, length the earlier one.
                            let (offset, len) = (parts[1].imm, parts[0].imm);
                            let (offset, len) = match (offset.to_usize(), len.to_usize()) {
                                (Some(o), Some(l)) if l <= self.config.max_memory => (o, l),
                                _ => fault!("sha3 out of bounds"),
                            };
                            let span = match mem_span(offset, len) {
                                Ok(s) => s,
                                Err(e) => fault!(e),
                            };
                            mem_try!(ensure_memory(
                                memory,
                                span,
                                self.config.max_memory,
                                &mut gas_left
                            ));
                            let digest = keccak256(&memory[offset..offset + len]);
                            push!(U256::from_be_bytes(digest), Taint::empty());
                            recharge_tail!();
                            cursor = instr.next;
                        }
                        Fused::PushPushMLoadBinop => {
                            gas_left += instr.tail;
                            let offset = match parts[1].imm.to_usize() {
                                Some(o) => o,
                                None => unit_fault!(2, "mload out of bounds"),
                            };
                            let span = match mem_span(offset, 32) {
                                Ok(s) => s,
                                Err(e) => unit_fault!(2, e),
                            };
                            unit_mem!(
                                2,
                                ensure_memory(memory, span, self.config.max_memory, &mut gas_left)
                            );
                            bulk!();
                            let mut word = [0u8; 32];
                            word.copy_from_slice(&memory[offset..offset + 32]);
                            // `a` is the loaded local (taint: the pushed
                            // offset's, empty), `b` the pushed constant.
                            let (result, taint) = fused_binop!(
                                parts[3].op,
                                parts[3].pc as usize,
                                U256::from_be_bytes(word),
                                parts[0].imm,
                                Taint::empty()
                            );
                            push!(result, taint);
                            recharge_tail!();
                            cursor = instr.next;
                        }
                        Fused::PushMLoadBinop => {
                            gas_left += instr.tail;
                            let offset = match parts[0].imm.to_usize() {
                                Some(o) => o,
                                None => unit_fault!(1, "mload out of bounds"),
                            };
                            let span = match mem_span(offset, 32) {
                                Ok(s) => s,
                                Err(e) => unit_fault!(1, e),
                            };
                            unit_mem!(
                                1,
                                ensure_memory(memory, span, self.config.max_memory, &mut gas_left)
                            );
                            bulk!();
                            let mut word = [0u8; 32];
                            word.copy_from_slice(&memory[offset..offset + 32]);
                            // The loaded local is the binop's first pop; the
                            // second operand was already on the stack.
                            let (b, tb) = pop!();
                            let (result, taint) = fused_binop!(
                                parts[2].op,
                                parts[2].pc as usize,
                                U256::from_be_bytes(word),
                                b,
                                tb
                            );
                            push!(result, taint);
                            recharge_tail!();
                            cursor = instr.next;
                        }
                        Fused::PushMLoadPushBinop => {
                            gas_left += instr.tail;
                            let offset = match parts[0].imm.to_usize() {
                                Some(o) => o,
                                None => unit_fault!(1, "mload out of bounds"),
                            };
                            let span = match mem_span(offset, 32) {
                                Ok(s) => s,
                                Err(e) => unit_fault!(1, e),
                            };
                            unit_mem!(
                                1,
                                ensure_memory(memory, span, self.config.max_memory, &mut gas_left)
                            );
                            bulk!();
                            let mut word = [0u8; 32];
                            word.copy_from_slice(&memory[offset..offset + 32]);
                            // `a` is the pushed constant (the later push),
                            // `b` the loaded local.
                            let (result, taint) = fused_binop!(
                                parts[3].op,
                                parts[3].pc as usize,
                                parts[2].imm,
                                U256::from_be_bytes(word),
                                Taint::empty()
                            );
                            push!(result, taint);
                            recharge_tail!();
                            cursor = instr.next;
                        }
                        Fused::PushBinopPushMStore => {
                            bulk!();
                            let (b, tb) = pop!();
                            let (val, _tv) = fused_binop!(
                                parts[1].op,
                                parts[1].pc as usize,
                                parts[0].imm,
                                b,
                                tb
                            );
                            gas_left += instr.tail;
                            let offset = match parts[2].imm.to_usize() {
                                Some(o) => o,
                                None => fault!("mstore out of bounds"),
                            };
                            let span = match mem_span(offset, 32) {
                                Ok(s) => s,
                                Err(e) => fault!(e),
                            };
                            mem_try!(ensure_memory(
                                memory,
                                span,
                                self.config.max_memory,
                                &mut gas_left
                            ));
                            memory[offset..offset + 32].copy_from_slice(&val.to_be_bytes());
                            recharge_tail!();
                            cursor = instr.next;
                        }
                        Fused::PushBinop => {
                            bulk!();
                            let (b, tb) = pop!();
                            let (result, taint) = fused_binop!(
                                parts[1].op,
                                parts[1].pc as usize,
                                parts[0].imm,
                                b,
                                tb
                            );
                            push!(result, taint);
                            cursor = instr.next;
                        }
                        Fused::BinopPushMStore => {
                            bulk!();
                            let (a, ta) = pop!();
                            let (b, tb) = pop!();
                            let (val, _tv) =
                                fused_binop!(parts[0].op, parts[0].pc as usize, a, b, ta | tb);
                            gas_left += instr.tail;
                            let offset = match parts[1].imm.to_usize() {
                                Some(o) => o,
                                None => fault!("mstore out of bounds"),
                            };
                            let span = match mem_span(offset, 32) {
                                Ok(s) => s,
                                Err(e) => fault!(e),
                            };
                            mem_try!(ensure_memory(
                                memory,
                                span,
                                self.config.max_memory,
                                &mut gas_left
                            ));
                            memory[offset..offset + 32].copy_from_slice(&val.to_be_bytes());
                            recharge_tail!();
                            cursor = instr.next;
                        }
                        Fused::LocalExprStore => {
                            // A whole `local = (local ⊕ c1) ⊕ c2` statement:
                            // load, fold two constants, store — no stack
                            // traffic. The mid-unit MLOAD is pre-validated
                            // before anything mutates: unless its offset is
                            // statically inside already-expanded memory,
                            // deopt untouched and let the per-instruction
                            // tier replay the expansion or fault with its
                            // exact counter. Compiled preambles expand the
                            // locals region before any statement runs, so
                            // that deopt is cold.
                            let load_off = match parts[2].imm.to_usize() {
                                Some(o) if memory.len() >= 32 && o <= memory.len() - 32 => o,
                                _ => deopt_unit!(),
                            };
                            bulk!();
                            let mut word = [0u8; 32];
                            word.copy_from_slice(&memory[load_off..load_off + 32]);
                            // Operand roles mirror the unfused 3-unit chain:
                            // binop1 folds c1 (the later push) into the
                            // loaded local, binop2 folds c2 into the result.
                            let (mid, mid_taint) = fused_binop!(
                                parts[4].op,
                                parts[4].pc as usize,
                                U256::from_be_bytes(word),
                                parts[1].imm,
                                Taint::empty()
                            );
                            let (val, _tv) = fused_binop!(
                                parts[5].op,
                                parts[5].pc as usize,
                                mid,
                                parts[0].imm,
                                mid_taint
                            );
                            gas_left += instr.tail;
                            let offset = match parts[6].imm.to_usize() {
                                Some(o) => o,
                                None => fault!("mstore out of bounds"),
                            };
                            let span = match mem_span(offset, 32) {
                                Ok(s) => s,
                                Err(e) => fault!(e),
                            };
                            mem_try!(ensure_memory(
                                memory,
                                span,
                                self.config.max_memory,
                                &mut gas_left
                            ));
                            memory[offset..offset + 32].copy_from_slice(&val.to_be_bytes());
                            recharge_tail!();
                            cursor = instr.next;
                        }
                        Fused::LocalPairStore => {
                            // A whole `local = local_a ⊕ local_b` statement.
                            // Both mid-unit MLOADs are pre-validated like
                            // `LocalExprStore`'s: any offset not statically
                            // inside already-expanded memory deopts untouched
                            // to the per-instruction tier.
                            let (off_b, off_a) =
                                match (parts[0].imm.to_usize(), parts[2].imm.to_usize()) {
                                    (Some(b), Some(a))
                                        if memory.len() >= 32
                                            && b <= memory.len() - 32
                                            && a <= memory.len() - 32 =>
                                    {
                                        (b, a)
                                    }
                                    _ => deopt_unit!(),
                                };
                            bulk!();
                            let mut word = [0u8; 32];
                            word.copy_from_slice(&memory[off_b..off_b + 32]);
                            let b = U256::from_be_bytes(word);
                            word.copy_from_slice(&memory[off_a..off_a + 32]);
                            let a = U256::from_be_bytes(word);
                            // `a` is the later load (the binop's first pop),
                            // `b` the earlier one; both carry their offset
                            // pushes' empty taint.
                            let (val, _tv) = fused_binop!(
                                parts[4].op,
                                parts[4].pc as usize,
                                a,
                                b,
                                Taint::empty()
                            );
                            gas_left += instr.tail;
                            let offset = match parts[5].imm.to_usize() {
                                Some(o) => o,
                                None => fault!("mstore out of bounds"),
                            };
                            let span = match mem_span(offset, 32) {
                                Ok(s) => s,
                                Err(e) => fault!(e),
                            };
                            mem_try!(ensure_memory(
                                memory,
                                span,
                                self.config.max_memory,
                                &mut gas_left
                            ));
                            memory[offset..offset + 32].copy_from_slice(&val.to_be_bytes());
                            recharge_tail!();
                            cursor = instr.next;
                        }
                        Fused::PushSLoad => {
                            bulk!();
                            gas_left += instr.tail;
                            let slot = parts[0].imm;
                            // EIP-2929: the first touch of the slot this
                            // transaction pays the cold surcharge, billed on
                            // the exact counter the tail anchor exposes.
                            let surcharge = scratch.access.slot_surcharge(storage_address, slot);
                            if gas_left < surcharge {
                                out_of_gas!();
                            }
                            gas_left -= surcharge;
                            let val = self.world.storage(storage_address, slot);
                            let stored_taint = self.world.storage_taint(storage_address, slot);
                            push!(val, Taint::STORAGE | stored_taint);
                            recharge_tail!();
                            cursor = instr.next;
                        }
                        Fused::PushSStore => {
                            bulk!();
                            gas_left += instr.tail;
                            let slot = parts[0].imm;
                            let (val, tv) = pop!();
                            let surcharge = scratch.access.slot_surcharge(storage_address, slot);
                            if gas_left < surcharge {
                                out_of_gas!();
                            }
                            gas_left -= surcharge;
                            let old = self.world.storage(storage_address, slot);
                            if !old.is_zero() && val.is_zero() {
                                // EIP-3529: clearing a slot earns a refund,
                                // journaled so a reverting frame forfeits it.
                                scratch.access.add_refund(SSTORE_CLEAR_REFUND);
                            }
                            trace.storage_writes.push(StorageWrite {
                                pc: parts[1].pc as usize,
                                contract: storage_address,
                                slot,
                                old,
                                new: val,
                                taint: tv,
                            });
                            if tv.contains(Taint::TRUNCATED) {
                                for &idx in &truncated_events {
                                    if let Some(ev) = trace.arith_events.get_mut(idx) {
                                        ev.reached_storage = true;
                                    }
                                }
                            }
                            self.world.set_storage(storage_address, slot, val, tv);
                            recharge_tail!();
                            cursor = instr.next;
                        }
                        Fused::StorageExprStore => {
                            // A whole `storage_var = storage_var ⊕ c`
                            // statement: load, fold, store back with no
                            // stack traffic. Both storage ops carry a
                            // dynamic EIP-2929 surcharge, so (like the
                            // `MapSlot*` family) the arm rewinds to the
                            // exact per-instruction counter at the unit's
                            // start and replays every constituent's billing
                            // in order.
                            gas_left += instr.head;
                            charge!(0);
                            charge!(1);
                            charge!(2);
                            let slot = parts[1].imm;
                            let surcharge = scratch.access.slot_surcharge(storage_address, slot);
                            if gas_left < surcharge {
                                prefix!(2);
                                out_of_gas!();
                            }
                            gas_left -= surcharge;
                            let loaded = self.world.storage(storage_address, slot);
                            let stored_taint = self.world.storage_taint(storage_address, slot);
                            charge!(3);
                            let (val, tv) = fused_binop!(
                                parts[3].op,
                                parts[3].pc as usize,
                                loaded,
                                parts[0].imm,
                                Taint::STORAGE | stored_taint
                            );
                            charge!(4);
                            charge!(5);
                            let out_slot = parts[4].imm;
                            let surcharge =
                                scratch.access.slot_surcharge(storage_address, out_slot);
                            if gas_left < surcharge {
                                prefix!(5);
                                out_of_gas!();
                            }
                            gas_left -= surcharge;
                            let old = self.world.storage(storage_address, out_slot);
                            if !old.is_zero() && val.is_zero() {
                                scratch.access.add_refund(SSTORE_CLEAR_REFUND);
                            }
                            trace.storage_writes.push(StorageWrite {
                                pc: parts[5].pc as usize,
                                contract: storage_address,
                                slot: out_slot,
                                old,
                                new: val,
                                taint: tv,
                            });
                            if tv.contains(Taint::TRUNCATED) {
                                for &idx in &truncated_events {
                                    if let Some(ev) = trace.arith_events.get_mut(idx) {
                                        ev.reached_storage = true;
                                    }
                                }
                            }
                            self.world.set_storage(storage_address, out_slot, val, tv);
                            bulk!();
                            // Restore block billing exactly as `MapSlot*`
                            // does: re-charge the statics of the block's
                            // instructions after this unit, deopting with
                            // the exact counter if the surcharges drained
                            // what the block had pre-paid.
                            let unit_statics: u64 = parts.iter().map(|di| static_gas(di.op)).sum();
                            let after = instr.head - unit_statics;
                            if gas_left < after {
                                return FrameOutcome::Deopt(LoopState {
                                    cursor: instr.instr_next as usize,
                                    gas_left,
                                    last_cmp,
                                    caller_guard_seen,
                                    unchecked_calls,
                                    truncated_events,
                                    return_data,
                                });
                            }
                            gas_left -= after;
                            cursor = instr.next;
                        }
                        Fused::MapSlotSha3 | Fused::MapSlotSLoad | Fused::MapSlotSStore => {
                            // Mapping-slot addressing: stage the key and the
                            // mapping's slot constant in memory, hash the
                            // window, then (optionally) read or write the
                            // derived slot. The pattern carries several
                            // dynamic bills (two MSTORE expansions plus the
                            // SHA3 span), so one tail anchor cannot make them
                            // all exact: instead the arm rewinds to the exact
                            // per-instruction counter at the unit's start
                            // (re-charging `head`) and replays every
                            // constituent's billing in order, recording the
                            // executed prefix on any mid-pattern halt.
                            gas_left += instr.head;
                            charge!(0);
                            charge!(1);
                            let (key, _tk) = pop!();
                            let off1 = match parts[0].imm.to_usize() {
                                Some(o) => o,
                                None => unit_fault!(1, "mstore out of bounds"),
                            };
                            let span = match mem_span(off1, 32) {
                                Ok(s) => s,
                                Err(e) => unit_fault!(1, e),
                            };
                            unit_mem!(
                                1,
                                ensure_memory(memory, span, self.config.max_memory, &mut gas_left)
                            );
                            memory[off1..off1 + 32].copy_from_slice(&key.to_be_bytes());
                            charge!(2);
                            charge!(3);
                            charge!(4);
                            let off2 = match parts[3].imm.to_usize() {
                                Some(o) => o,
                                None => unit_fault!(4, "mstore out of bounds"),
                            };
                            let span = match mem_span(off2, 32) {
                                Ok(s) => s,
                                Err(e) => unit_fault!(4, e),
                            };
                            unit_mem!(
                                4,
                                ensure_memory(memory, span, self.config.max_memory, &mut gas_left)
                            );
                            memory[off2..off2 + 32].copy_from_slice(&parts[2].imm.to_be_bytes());
                            charge!(5);
                            charge!(6);
                            charge!(7);
                            let (sha_off, sha_len) =
                                match (parts[6].imm.to_usize(), parts[5].imm.to_usize()) {
                                    (Some(o), Some(l)) if l <= self.config.max_memory => (o, l),
                                    _ => unit_fault!(7, "sha3 out of bounds"),
                                };
                            let span = match mem_span(sha_off, sha_len) {
                                Ok(s) => s,
                                Err(e) => unit_fault!(7, e),
                            };
                            unit_mem!(
                                7,
                                ensure_memory(memory, span, self.config.max_memory, &mut gas_left)
                            );
                            let digest =
                                U256::from_be_bytes(keccak256(&memory[sha_off..sha_off + sha_len]));
                            match fused {
                                Fused::MapSlotSha3 => {
                                    // SHA3's push: both popped offsets carry
                                    // the pushes' empty taint.
                                    push!(digest, Taint::empty());
                                }
                                Fused::MapSlotSLoad => {
                                    charge!(8);
                                    let surcharge =
                                        scratch.access.slot_surcharge(storage_address, digest);
                                    if gas_left < surcharge {
                                        prefix!(8);
                                        out_of_gas!();
                                    }
                                    gas_left -= surcharge;
                                    let val = self.world.storage(storage_address, digest);
                                    let stored_taint =
                                        self.world.storage_taint(storage_address, digest);
                                    push!(val, Taint::STORAGE | stored_taint);
                                }
                                _ => {
                                    charge!(8);
                                    let (val, tv) = pop!();
                                    let surcharge =
                                        scratch.access.slot_surcharge(storage_address, digest);
                                    if gas_left < surcharge {
                                        prefix!(8);
                                        out_of_gas!();
                                    }
                                    gas_left -= surcharge;
                                    let old = self.world.storage(storage_address, digest);
                                    if !old.is_zero() && val.is_zero() {
                                        scratch.access.add_refund(SSTORE_CLEAR_REFUND);
                                    }
                                    trace.storage_writes.push(StorageWrite {
                                        pc: parts[8].pc as usize,
                                        contract: storage_address,
                                        slot: digest,
                                        old,
                                        new: val,
                                        taint: tv,
                                    });
                                    if tv.contains(Taint::TRUNCATED) {
                                        for &idx in &truncated_events {
                                            if let Some(ev) = trace.arith_events.get_mut(idx) {
                                                ev.reached_storage = true;
                                            }
                                        }
                                    }
                                    self.world.set_storage(storage_address, digest, val, tv);
                                }
                            }
                            bulk!();
                            // Restore block billing: re-charge the statics of
                            // the block's instructions after this unit. If
                            // the dynamic bills drained what the block had
                            // pre-paid, the per-instruction tier would halt a
                            // few instructions later — hand it the exact
                            // counter at the next instruction.
                            let unit_statics: u64 = parts.iter().map(|di| static_gas(di.op)).sum();
                            let after = instr.head - unit_statics;
                            if gas_left < after {
                                return FrameOutcome::Deopt(LoopState {
                                    cursor: instr.instr_next as usize,
                                    gas_left,
                                    last_cmp,
                                    caller_guard_seen,
                                    unchecked_calls,
                                    truncated_events,
                                    return_data,
                                });
                            }
                            gas_left -= after;
                            cursor = instr.next;
                        }
                    }
                    continue;
                }
            }
            let op = instr.op;
            let pc = instr.pc;
            trace.record_instr(op);
            if !V::BLOCK_BILLED {
                let cost = static_gas(op);
                if gas_left < cost {
                    return FrameOutcome::Done(FrameResult {
                        halt: HaltReason::OutOfGas,
                        output: vec![],
                        gas_left: 0,
                    });
                }
                gas_left -= cost;
            } else if instr.tail > 0 {
                // Gas-exact op mid-block: un-charge the pre-paid static gas
                // of the block's remaining instructions, so the arm below
                // observes, bills and faults against the exact counter the
                // per-instruction tiers would hold here.
                gas_left += instr.tail;
            }

            match op {
                Opcode::Stop => {
                    return FrameOutcome::Done(FrameResult {
                        halt: HaltReason::Normal,
                        output: vec![],
                        gas_left,
                    })
                }
                Opcode::Add | Opcode::Sub | Opcode::Mul | Opcode::Exp => {
                    let (a, ta) = pop!();
                    let (b, tb) = pop!();
                    let taint = ta | tb;
                    if op == Opcode::Exp {
                        // Dynamic EXP pricing: 50 gas per significant byte of
                        // the exponent on top of the static base, so the cost
                        // scales with the exponent's magnitude as in the EVM.
                        let exp_bytes = u64::from(b.bits().div_ceil(8));
                        let dynamic = EXP_BYTE_GAS * exp_bytes;
                        if gas_left < dynamic {
                            out_of_gas!();
                        }
                        gas_left -= dynamic;
                    }
                    let (result, truncated) = match op {
                        Opcode::Add => a.overflowing_add(b),
                        Opcode::Sub => a.overflowing_sub(b),
                        Opcode::Mul => a.overflowing_mul(b),
                        Opcode::Exp => exp_u256(a, b),
                        _ => unreachable!(),
                    };
                    if truncated {
                        truncated_events.push(trace.arith_events.len());
                        trace.arith_events.push(ArithEvent {
                            pc,
                            opcode: op,
                            truncated: true,
                            taint,
                            reached_storage: false,
                            depth,
                        });
                    }
                    let result_taint = if truncated {
                        taint | Taint::TRUNCATED
                    } else {
                        taint
                    };
                    push!(result, result_taint);
                }
                Opcode::Div | Opcode::Mod => {
                    let (a, ta) = pop!();
                    let (b, tb) = pop!();
                    let (q, r) = a.div_rem(b);
                    push!(if op == Opcode::Div { q } else { r }, ta | tb);
                }
                Opcode::Sdiv | Opcode::Smod => {
                    let (a, ta) = pop!();
                    let (b, tb) = pop!();
                    let (q, r) = a.signed_div_rem(b);
                    push!(if op == Opcode::Sdiv { q } else { r }, ta | tb);
                }
                Opcode::AddMod => {
                    let (a, ta) = pop!();
                    let (b, tb) = pop!();
                    let (n, tn) = pop!();
                    push!(a.add_mod(b, n), ta | tb | tn);
                }
                Opcode::MulMod => {
                    let (a, ta) = pop!();
                    let (b, tb) = pop!();
                    let (n, tn) = pop!();
                    push!(a.mul_mod(b, n), ta | tb | tn);
                }
                Opcode::SignExtend => {
                    let (b, tb) = pop!();
                    let (x, tx) = pop!();
                    // Byte indices >= 31 (or beyond usize) leave x unchanged.
                    let extended = match b.to_usize() {
                        Some(i) => x.sign_extend(i),
                        None => x,
                    };
                    push!(extended, tb | tx);
                }
                Opcode::Lt | Opcode::Gt | Opcode::Slt | Opcode::Sgt | Opcode::Eq => {
                    let (a, ta) = pop!();
                    let (b, tb) = pop!();
                    let taint = ta | tb;
                    let result = match op {
                        Opcode::Lt => a < b,
                        Opcode::Gt => a > b,
                        Opcode::Slt => a.signed_cmp(&b) == std::cmp::Ordering::Less,
                        Opcode::Sgt => a.signed_cmp(&b) == std::cmp::Ordering::Greater,
                        Opcode::Eq => a == b,
                        _ => unreachable!(),
                    };
                    let kind = match op {
                        Opcode::Lt | Opcode::Slt => CmpKind::Lt,
                        Opcode::Gt | Opcode::Sgt => CmpKind::Gt,
                        _ => CmpKind::Eq,
                    };
                    last_cmp = Some(Comparison {
                        pc,
                        kind,
                        lhs: a,
                        rhs: b,
                        taint,
                    });
                    push!(U256::from(result), taint);
                }
                Opcode::IsZero => {
                    let (a, ta) = pop!();
                    // Keep the previous comparison if the operand is already a
                    // boolean produced by it (ISZERO is just a negation then);
                    // otherwise treat ISZERO itself as the comparison.
                    let is_bool = a.is_zero() || a == U256::ONE;
                    if !(is_bool && last_cmp.is_some()) {
                        last_cmp = Some(Comparison {
                            pc,
                            kind: CmpKind::IsZero,
                            lhs: a,
                            rhs: U256::ZERO,
                            taint: ta,
                        });
                    }
                    push!(U256::from(a.is_zero()), ta);
                }
                Opcode::And => {
                    let (a, ta) = pop!();
                    let (b, tb) = pop!();
                    push!(a & b, ta | tb);
                }
                Opcode::Or => {
                    let (a, ta) = pop!();
                    let (b, tb) = pop!();
                    push!(a | b, ta | tb);
                }
                Opcode::Xor => {
                    let (a, ta) = pop!();
                    let (b, tb) = pop!();
                    push!(a ^ b, ta | tb);
                }
                Opcode::Not => {
                    let (a, ta) = pop!();
                    push!(!a, ta);
                }
                Opcode::Byte => {
                    let (i, ti) = pop!();
                    let (x, tx) = pop!();
                    let byte = i
                        .to_usize()
                        .filter(|&i| i < 32)
                        .map(|i| U256::from_u64(x.to_be_bytes()[i] as u64))
                        .unwrap_or(U256::ZERO);
                    push!(byte, ti | tx);
                }
                Opcode::Shl => {
                    let (shift, ts) = pop!();
                    let (x, tx) = pop!();
                    let shifted = shift
                        .to_u64()
                        .map(|s| x.shl_bits(s.min(256) as u32))
                        .unwrap_or(U256::ZERO);
                    push!(shifted, ts | tx);
                }
                Opcode::Shr => {
                    let (shift, ts) = pop!();
                    let (x, tx) = pop!();
                    let shifted = shift
                        .to_u64()
                        .map(|s| x.shr_bits(s.min(256) as u32))
                        .unwrap_or(U256::ZERO);
                    push!(shifted, ts | tx);
                }
                Opcode::Sar => {
                    let (shift, ts) = pop!();
                    let (x, tx) = pop!();
                    // Shift amounts >= 256 (or beyond u64) saturate to the
                    // sign: zero for non-negative values, -1 for negative.
                    let shifted = match shift.to_u64() {
                        Some(s) => x.sar_bits(s.min(256) as u32),
                        None if x.is_negative_signed() => U256::MAX,
                        None => U256::ZERO,
                    };
                    push!(shifted, ts | tx);
                }
                Opcode::Sha3 => {
                    let (offset, to) = pop!();
                    let (len, tl) = pop!();
                    let (offset, len) = match (offset.to_usize(), len.to_usize()) {
                        (Some(o), Some(l)) if l <= self.config.max_memory => (o, l),
                        _ => fault!("sha3 out of bounds"),
                    };
                    let span = match mem_span(offset, len) {
                        Ok(s) => s,
                        Err(e) => fault!(e),
                    };
                    mem_try!(ensure_memory(
                        memory,
                        span,
                        self.config.max_memory,
                        &mut gas_left
                    ));
                    let digest = keccak256(&memory[offset..offset + len]);
                    push!(U256::from_be_bytes(digest), to | tl);
                }
                Opcode::Address => push!(code_address.to_u256(), Taint::empty()),
                Opcode::Balance => {
                    let (who, _t) = pop!();
                    let who = Address::from_u256(who);
                    // EIP-2929: the first touch of the account this
                    // transaction pays the cold surcharge.
                    let surcharge = scratch.access.address_surcharge(who);
                    if gas_left < surcharge {
                        out_of_gas!();
                    }
                    gas_left -= surcharge;
                    let bal = self.world.balance(who);
                    push!(bal, Taint::BALANCE);
                }
                Opcode::ExtCodeSize => {
                    let (who, _t) = pop!();
                    let who = Address::from_u256(who);
                    let surcharge = scratch.access.address_surcharge(who);
                    if gas_left < surcharge {
                        out_of_gas!();
                    }
                    gas_left -= surcharge;
                    let size = self.world.code(who).len();
                    push!(U256::from_u64(size as u64), Taint::empty());
                }
                Opcode::ExtCodeHash => {
                    let (who, _t) = pop!();
                    let who = Address::from_u256(who);
                    let surcharge = scratch.access.address_surcharge(who);
                    if gas_left < surcharge {
                        out_of_gas!();
                    }
                    gas_left -= surcharge;
                    // Zero for a non-existent account, the code hash (of the
                    // empty blob for an EOA) otherwise.
                    let hash = match self.world.account(who) {
                        None => U256::ZERO,
                        Some(account) => U256::from_be_bytes(keccak256(&account.code)),
                    };
                    push!(hash, Taint::empty());
                }
                Opcode::ExtCodeCopy => {
                    let (who, _t) = pop!();
                    let (dst, _) = pop!();
                    let (src, _) = pop!();
                    let (len, _) = pop!();
                    let who = Address::from_u256(who);
                    let surcharge = scratch.access.address_surcharge(who);
                    if gas_left < surcharge {
                        out_of_gas!();
                    }
                    gas_left -= surcharge;
                    let (dst, src, len) = match (dst.to_usize(), src.to_usize(), len.to_usize()) {
                        (Some(d), Some(s), Some(l)) if l <= self.config.max_memory => (d, s, l),
                        _ => fault!("extcodecopy out of bounds"),
                    };
                    let dynamic = COPY_WORD_GAS * (len as u64).div_ceil(32);
                    if gas_left < dynamic {
                        out_of_gas!();
                    }
                    gas_left -= dynamic;
                    let span = match mem_span(dst, len) {
                        Ok(s) => s,
                        Err(e) => fault!(e),
                    };
                    mem_try!(ensure_memory(
                        memory,
                        span,
                        self.config.max_memory,
                        &mut gas_left
                    ));
                    let ext = self.world.code(who);
                    for i in 0..len {
                        memory[dst + i] = ext.get(src.saturating_add(i)).copied().unwrap_or(0);
                    }
                }
                Opcode::SelfBalance => {
                    push!(self.world.balance(storage_address), Taint::BALANCE);
                }
                Opcode::Origin => push!(origin.to_u256(), Taint::ORIGIN),
                Opcode::Caller => push!(caller.to_u256(), Taint::CALLER),
                Opcode::CallValue => push!(value, Taint::CALLVALUE),
                Opcode::CallDataLoad => {
                    let (offset, _t) = pop!();
                    let word = calldata_word(calldata, offset);
                    push!(word, Taint::CALLDATA);
                }
                Opcode::CallDataSize => {
                    push!(U256::from_u64(calldata.len() as u64), Taint::CALLDATA)
                }
                Opcode::CallDataCopy => {
                    let (dst, _td) = pop!();
                    let (src, _ts) = pop!();
                    let (len, _tl) = pop!();
                    let (dst, src, len) = match (dst.to_usize(), src.to_usize(), len.to_usize()) {
                        (Some(d), Some(s), Some(l)) if l <= self.config.max_memory => (d, s, l),
                        _ => fault!("calldatacopy out of bounds"),
                    };
                    let span = match mem_span(dst, len) {
                        Ok(s) => s,
                        Err(e) => fault!(e),
                    };
                    mem_try!(ensure_memory(
                        memory,
                        span,
                        self.config.max_memory,
                        &mut gas_left
                    ));
                    for i in 0..len {
                        memory[dst + i] = calldata.get(src + i).copied().unwrap_or(0);
                    }
                }
                Opcode::CodeSize => push!(U256::from_u64(view.code_len() as u64), Taint::empty()),
                Opcode::CodeCopy => {
                    let (dst, _) = pop!();
                    let (src, _) = pop!();
                    let (len, _) = pop!();
                    let (dst, src, len) = match (dst.to_usize(), src.to_usize(), len.to_usize()) {
                        (Some(d), Some(s), Some(l)) if l <= self.config.max_memory => (d, s, l),
                        _ => fault!("codecopy out of bounds"),
                    };
                    let dynamic = COPY_WORD_GAS * (len as u64).div_ceil(32);
                    if gas_left < dynamic {
                        out_of_gas!();
                    }
                    gas_left -= dynamic;
                    let span = match mem_span(dst, len) {
                        Ok(s) => s,
                        Err(e) => fault!(e),
                    };
                    mem_try!(ensure_memory(
                        memory,
                        span,
                        self.config.max_memory,
                        &mut gas_left
                    ));
                    // Reads past the end of the code are zero-padded (the
                    // EVM's implicit trailing STOP region).
                    for i in 0..len {
                        memory[dst + i] = code.get(src.saturating_add(i)).copied().unwrap_or(0);
                    }
                }
                Opcode::ReturnDataSize => {
                    push!(U256::from_u64(return_data.len() as u64), Taint::empty())
                }
                Opcode::ReturnDataCopy => {
                    let (dst, _) = pop!();
                    let (src, _) = pop!();
                    let (len, _) = pop!();
                    let (dst, src, len) = match (dst.to_usize(), src.to_usize(), len.to_usize()) {
                        (Some(d), Some(s), Some(l)) if l <= self.config.max_memory => (d, s, l),
                        _ => fault!("returndatacopy out of bounds"),
                    };
                    // Unlike CALLDATACOPY's zero padding, reading past the
                    // end of the return buffer is an exceptional halt
                    // (EIP-211).
                    match src.checked_add(len) {
                        Some(end) if end <= return_data.len() => {}
                        _ => fault!("returndatacopy out of bounds"),
                    }
                    let dynamic = COPY_WORD_GAS * (len as u64).div_ceil(32);
                    if gas_left < dynamic {
                        out_of_gas!();
                    }
                    gas_left -= dynamic;
                    let span = match mem_span(dst, len) {
                        Ok(s) => s,
                        Err(e) => fault!(e),
                    };
                    mem_try!(ensure_memory(
                        memory,
                        span,
                        self.config.max_memory,
                        &mut gas_left
                    ));
                    memory[dst..dst + len].copy_from_slice(&return_data[src..src + len]);
                }
                Opcode::GasPrice => push!(U256::from_u64(1_000_000_000), Taint::empty()),
                Opcode::BlockHash => {
                    let (n, _t) = pop!();
                    let hash = keccak256(&n.to_be_bytes());
                    push!(U256::from_be_bytes(hash), Taint::BLOCK);
                }
                Opcode::Coinbase => push!(self.block.coinbase.to_u256(), Taint::BLOCK),
                Opcode::Timestamp => push!(U256::from_u64(self.block.timestamp), Taint::BLOCK),
                Opcode::Number => push!(U256::from_u64(self.block.number), Taint::BLOCK),
                Opcode::Difficulty => push!(self.block.difficulty, Taint::BLOCK),
                Opcode::GasLimit => push!(U256::from_u64(self.block.gas_limit), Taint::empty()),
                Opcode::ChainId => push!(U256::from_u64(self.block.chain_id), Taint::BLOCK),
                Opcode::BaseFee => push!(self.block.base_fee, Taint::BLOCK),
                Opcode::Pop => {
                    pop!();
                }
                Opcode::MLoad => {
                    let (offset, to) = pop!();
                    let offset = match offset.to_usize() {
                        Some(o) => o,
                        None => fault!("mload out of bounds"),
                    };
                    let span = match mem_span(offset, 32) {
                        Ok(s) => s,
                        Err(e) => fault!(e),
                    };
                    mem_try!(ensure_memory(
                        memory,
                        span,
                        self.config.max_memory,
                        &mut gas_left
                    ));
                    let mut word = [0u8; 32];
                    word.copy_from_slice(&memory[offset..offset + 32]);
                    push!(U256::from_be_bytes(word), to);
                }
                Opcode::MStore => {
                    let (offset, _to) = pop!();
                    let (val, _tv) = pop!();
                    let offset = match offset.to_usize() {
                        Some(o) => o,
                        None => fault!("mstore out of bounds"),
                    };
                    let span = match mem_span(offset, 32) {
                        Ok(s) => s,
                        Err(e) => fault!(e),
                    };
                    mem_try!(ensure_memory(
                        memory,
                        span,
                        self.config.max_memory,
                        &mut gas_left
                    ));
                    memory[offset..offset + 32].copy_from_slice(&val.to_be_bytes());
                }
                Opcode::MStore8 => {
                    let (offset, _to) = pop!();
                    let (val, _tv) = pop!();
                    let offset = match offset.to_usize() {
                        Some(o) => o,
                        None => fault!("mstore8 out of bounds"),
                    };
                    let span = match mem_span(offset, 1) {
                        Ok(s) => s,
                        Err(e) => fault!(e),
                    };
                    mem_try!(ensure_memory(
                        memory,
                        span,
                        self.config.max_memory,
                        &mut gas_left
                    ));
                    memory[offset] = val.low_u64() as u8;
                }
                Opcode::SLoad => {
                    let (slot, _ts) = pop!();
                    // EIP-2929: cold slots pay the surcharge on first touch.
                    let surcharge = scratch.access.slot_surcharge(storage_address, slot);
                    if gas_left < surcharge {
                        out_of_gas!();
                    }
                    gas_left -= surcharge;
                    let val = self.world.storage(storage_address, slot);
                    let stored_taint = self.world.storage_taint(storage_address, slot);
                    push!(val, Taint::STORAGE | stored_taint);
                }
                Opcode::SStore => {
                    let (slot, _ts) = pop!();
                    let (val, tv) = pop!();
                    let surcharge = scratch.access.slot_surcharge(storage_address, slot);
                    if gas_left < surcharge {
                        out_of_gas!();
                    }
                    gas_left -= surcharge;
                    let old = self.world.storage(storage_address, slot);
                    if !old.is_zero() && val.is_zero() {
                        // EIP-3529: clearing a slot earns a (journaled,
                        // settlement-capped) refund.
                        scratch.access.add_refund(SSTORE_CLEAR_REFUND);
                    }
                    trace.storage_writes.push(StorageWrite {
                        pc,
                        contract: storage_address,
                        slot,
                        old,
                        new: val,
                        taint: tv,
                    });
                    if tv.contains(Taint::TRUNCATED) {
                        for &idx in &truncated_events {
                            if let Some(ev) = trace.arith_events.get_mut(idx) {
                                ev.reached_storage = true;
                            }
                        }
                    }
                    self.world.set_storage(storage_address, slot, val, tv);
                }
                Opcode::Jump => {
                    let (dest, _t) = pop!();
                    let target = dest.to_usize().and_then(|d| view.jump_cursor(d));
                    match target {
                        Some(t) => {
                            cursor = t;
                            continue;
                        }
                        None => fault!("invalid jump destination"),
                    }
                }
                Opcode::JumpI => {
                    let (dest, _td) = pop!();
                    let (cond, tc) = pop!();
                    let taken = !cond.is_zero();
                    let dest_usize = dest.to_usize().unwrap_or(usize::MAX);
                    if tc.intersects(Taint::CALLER | Taint::ORIGIN) {
                        caller_guard_seen = true;
                    }
                    if tc.contains(Taint::CALL_RESULT) {
                        if let Some(idx) = unchecked_calls.pop() {
                            if let Some(ev) = trace.calls.get_mut(idx) {
                                ev.result_checked = true;
                            }
                        }
                    }
                    let record = BranchRecord {
                        pc,
                        dest: dest_usize,
                        taken,
                        cond_taint: tc,
                        comparison: last_cmp,
                        depth,
                        code_address,
                    };
                    trace.covered_edges.insert(record.edge());
                    trace.branches.push(record);
                    last_cmp = None;
                    if taken {
                        match view.jump_cursor(dest_usize) {
                            Some(t) => {
                                cursor = t;
                                continue;
                            }
                            None => fault!("invalid jump destination"),
                        }
                    }
                }
                Opcode::Pc => push!(U256::from_u64(pc as u64), Taint::empty()),
                Opcode::MSize => push!(U256::from_u64(memory.len() as u64), Taint::empty()),
                Opcode::Gas => push!(U256::from_u64(gas_left), Taint::empty()),
                Opcode::JumpDest => {}
                Opcode::Push(_) => {
                    push!(instr.imm, Taint::empty());
                }
                Opcode::Dup(n) => {
                    let n = n as usize;
                    if stack.len() < n {
                        fault!("stack underflow");
                    }
                    let item = stack[stack.len() - n];
                    push!(item.0, item.1);
                }
                Opcode::Swap(n) => {
                    let n = n as usize;
                    if stack.len() < n + 1 {
                        fault!("stack underflow");
                    }
                    let top = stack.len() - 1;
                    stack.swap(top, top - n);
                }
                Opcode::Log(n) => {
                    // Topics and data are popped and discarded; logs are not
                    // needed by the oracles.
                    let (_offset, _) = pop!();
                    let (_len, _) = pop!();
                    for _ in 0..n {
                        pop!();
                    }
                }
                Opcode::Call | Opcode::CallCode | Opcode::DelegateCall | Opcode::StaticCall => {
                    let (gas_req, _tg) = pop!();
                    let (to_word, t_to) = pop!();
                    let (call_value, tv) = if matches!(op, Opcode::Call | Opcode::CallCode) {
                        pop!()
                    } else {
                        (U256::ZERO, Taint::empty())
                    };
                    let (args_offset, _) = pop!();
                    let (args_len, _) = pop!();
                    let (ret_offset, _) = pop!();
                    let (ret_len, _) = pop!();

                    let to = Address::from_u256(to_word);
                    let kind = match op {
                        Opcode::Call => CallKind::Call,
                        Opcode::CallCode => CallKind::CallCode,
                        Opcode::DelegateCall => CallKind::DelegateCall,
                        _ => CallKind::StaticCall,
                    };
                    args_buf.clear();
                    mem_try!(read_memory_into(
                        memory,
                        args_offset,
                        args_len,
                        self.config.max_memory,
                        &mut gas_left,
                        args_buf,
                    ));
                    // EIP-2929: the first touch of the callee account this
                    // transaction pays the cold surcharge, before any gas is
                    // forwarded.
                    let surcharge = scratch.access.address_surcharge(to);
                    if gas_left < surcharge {
                        out_of_gas!();
                    }
                    gas_left -= surcharge;
                    // EIP-150 all-but-one-64th: the caller always retains at
                    // least 1/64 of its remaining gas, so an outer frame can
                    // finish (and e.g. persist state) even when the callee
                    // burns everything it was forwarded.
                    let available = gas_left - gas_left / 64;
                    let forwarded_gas = gas_req.to_u64().unwrap_or(u64::MAX).min(available);

                    let call_idx = trace.calls.len();
                    trace.calls.push(CallEvent {
                        pc,
                        kind,
                        from: code_address,
                        to,
                        value: call_value,
                        gas: forwarded_gas,
                        success: false,
                        callee_exception: false,
                        result_checked: false,
                        depth,
                        caller_selector: trace.entered_selector,
                        arg_taint: t_to | tv,
                        caller_guarded: caller_guard_seen,
                    });

                    // Re-entrancy detection: callee already on the frame stack.
                    if frames.iter().any(|f| f.code_address == to) {
                        trace.reentered = true;
                    }

                    let (success, callee_exception, output, gas_spent) = self.do_call(
                        CallContext {
                            kind,
                            code_address,
                            storage_address,
                            caller,
                            origin,
                            current_value: value,
                            to,
                            call_value,
                            gas: forwarded_gas,
                            depth,
                        },
                        args_buf,
                        frames,
                        trace,
                        scratch,
                    );
                    // The caller pays what the callee actually consumed;
                    // unspent forwarded gas is refunded. Combined with the
                    // 63/64 forwarding cap above this bounds the damage a
                    // draining callee can do to `gas_left / 64`.
                    gas_left = gas_left.saturating_sub(gas_spent);
                    if let Some(ev) = trace.calls.get_mut(call_idx) {
                        ev.success = success;
                        ev.callee_exception = callee_exception;
                    }
                    unchecked_calls.push(call_idx);
                    // The callee's output becomes this frame's RETURNDATA
                    // buffer (empty after an exceptional halt), and the part
                    // that fits is copied into the caller's return region.
                    return_data = output;
                    let ret_n = ret_len.to_usize().unwrap_or(0).min(return_data.len());
                    if ret_n > 0 {
                        let offset = match ret_offset.to_usize() {
                            Some(o) => o,
                            None => fault!("return region out of bounds"),
                        };
                        let span = match mem_span(offset, ret_n) {
                            Ok(s) => s,
                            Err(e) => fault!(e),
                        };
                        mem_try!(ensure_memory(
                            memory,
                            span,
                            self.config.max_memory,
                            &mut gas_left
                        ));
                        memory[offset..offset + ret_n].copy_from_slice(&return_data[..ret_n]);
                    }
                    push!(U256::from(success), Taint::CALL_RESULT);
                }
                Opcode::Create => {
                    // Contract creation from within contracts is not emitted
                    // by the compiler; treat it as pushing a zero address.
                    let (_value, _) = pop!();
                    let (_offset, _) = pop!();
                    let (_len, _) = pop!();
                    push!(U256::ZERO, Taint::empty());
                }
                Opcode::Create2 => {
                    let (create_value, _tv) = pop!();
                    let (offset, _) = pop!();
                    let (len, _) = pop!();
                    let (salt, _) = pop!();
                    let init = mem_try!(read_memory_range(
                        memory,
                        offset,
                        len,
                        self.config.max_memory,
                        &mut gas_left
                    ));
                    // Hashing the init code for the deterministic address
                    // derivation costs the Keccak word price.
                    let dynamic = SHA3_WORD_GAS * (init.len() as u64).div_ceil(32);
                    if gas_left < dynamic {
                        out_of_gas!();
                    }
                    gas_left -= dynamic;
                    let site = CreateSite {
                        creator: storage_address,
                        origin,
                        value: create_value,
                        salt,
                        depth,
                    };
                    let (created, out) =
                        self.do_create2(site, &init, frames, trace, scratch, &mut gas_left);
                    return_data = out;
                    push!(created, Taint::CALL_RESULT);
                }
                Opcode::Return => {
                    let (offset, _) = pop!();
                    let (len, _) = pop!();
                    let out = mem_try!(read_memory_range(
                        memory,
                        offset,
                        len,
                        self.config.max_memory,
                        &mut gas_left
                    ));
                    return FrameOutcome::Done(FrameResult {
                        halt: HaltReason::Normal,
                        output: out,
                        gas_left,
                    });
                }
                Opcode::Revert => {
                    let (offset, _) = pop!();
                    let (len, _) = pop!();
                    let out = mem_try!(read_memory_range(
                        memory,
                        offset,
                        len,
                        self.config.max_memory,
                        &mut gas_left
                    ));
                    return FrameOutcome::Done(FrameResult {
                        halt: HaltReason::Revert,
                        output: out,
                        gas_left,
                    });
                }
                Opcode::Invalid => {
                    return FrameOutcome::Done(FrameResult {
                        halt: HaltReason::Invalid,
                        output: vec![],
                        gas_left: 0,
                    });
                }
                Opcode::SelfDestruct => {
                    let (beneficiary_word, tb) = pop!();
                    let beneficiary = Address::from_u256(beneficiary_word);
                    let balance = self.world.balance(storage_address);
                    self.world.transfer(storage_address, beneficiary, balance);
                    self.world.account_mut(storage_address).destroyed = true;
                    trace.self_destructs.push(SelfDestructEvent {
                        pc,
                        contract: storage_address,
                        beneficiary,
                        caller_guarded: caller_guard_seen,
                        beneficiary_taint: tb,
                    });
                    return FrameOutcome::Done(FrameResult {
                        halt: HaltReason::Normal,
                        output: vec![],
                        gas_left,
                    });
                }
                Opcode::Unknown(b) => {
                    // Conformance-tagged exceptional halt: record which byte
                    // at which pc fell outside the implemented surface, so
                    // vector runs and ingested-blob campaigns can separate
                    // "unsupported opcode" from "interpreter bug".
                    trace
                        .conformance
                        .push(ConformanceEvent { pc, byte: b, depth });
                    fault!(format!("unknown opcode 0x{b:02x}"));
                }
            }
            if V::BLOCK_BILLED && instr.tail > 0 {
                // Re-charge the residual. If a dynamic bill ate into it, the
                // per-instruction tiers would run a few more instructions and
                // halt mid-block; hand the exact state over at the next
                // instruction and let the pre-decoded view reproduce that.
                if gas_left < instr.tail {
                    return FrameOutcome::Deopt(LoopState {
                        cursor: instr.instr_next as usize,
                        gas_left,
                        last_cmp,
                        caller_guard_seen,
                        unchecked_calls,
                        truncated_events,
                        return_data,
                    });
                }
                gas_left -= instr.tail;
            }
            cursor = instr.next;
        }
    }

    /// Perform a nested message call (CALL/CALLCODE/DELEGATECALL/STATICCALL).
    /// Returns `(success, callee_exception, output, gas_spent)`, where
    /// `gas_spent` is how much of the forwarded gas the callee consumed (all
    /// of it on an exceptional halt, the used portion on success or revert,
    /// nothing for EOA transfers and host-behaviour stubs).
    pub(crate) fn do_call(
        &mut self,
        call: CallContext,
        args: &[u8],
        frames: &mut Vec<FrameInfo>,
        trace: &mut ExecutionTrace,
        scratch: &mut ExecFrame,
    ) -> (bool, bool, Vec<u8>, u64) {
        let CallContext {
            kind,
            code_address,
            storage_address,
            caller,
            origin,
            current_value,
            to,
            call_value,
            gas,
            depth,
        } = call;
        if depth + 1 >= self.config.max_call_depth {
            return (false, false, vec![], 0);
        }

        // Value transfer for plain CALLs.
        if kind == CallKind::Call && !call_value.is_zero() {
            let from = storage_address;
            if !self.world.transfer(from, to, call_value) {
                return (false, false, vec![], 0);
            }
        }

        let behaviour = self
            .world
            .account(to)
            .map(|a| a.behaviour.clone())
            .unwrap_or_default();

        match behaviour {
            HostBehaviour::RejectingSink => {
                // The sink rejects: undo the transfer and report failure with
                // an exception in the callee.
                if kind == CallKind::Call && !call_value.is_zero() {
                    self.world.transfer(to, storage_address, call_value);
                }
                (false, true, vec![], 0)
            }
            HostBehaviour::ReentrantAttacker {
                callback_data,
                max_depth,
            } => {
                // The attacker immediately calls back into the calling
                // contract, provided it still has gas and depth budget.
                let mut gas_spent = 0u64;
                if depth + 2 < self.config.max_call_depth && depth < max_depth && gas > 10_000 {
                    trace.reentered = true;
                    let callee_code = self.world.code(code_address);
                    if !callee_code.is_empty() {
                        frames.push(FrameInfo { code_address: to });
                        let callback_gas = gas.saturating_sub(5_000);
                        let ctx = FrameCtx {
                            code_address,
                            storage_address,
                            caller: to,
                            origin,
                            value: U256::ZERO,
                            calldata: &callback_data,
                            code: &callee_code,
                            gas: callback_gas,
                            depth: depth + 2,
                        };
                        let cp = scratch.access.checkpoint();
                        let result = self.dispatch_frame(&callee_code, ctx, frames, trace, scratch);
                        if !result.halt.is_success() {
                            scratch.access.revert_to(cp);
                        }
                        gas_spent = callback_gas.saturating_sub(result.gas_left);
                        frames.pop();
                    }
                }
                (true, false, vec![], gas_spent)
            }
            HostBehaviour::None => {
                let code = self.world.code(to);
                if code.is_empty() {
                    // Plain transfer to an EOA succeeds.
                    return (true, false, vec![], 0);
                }
                // Determine execution context per call kind.
                let (exec_code_addr, exec_storage_addr, exec_caller, exec_value) = match kind {
                    CallKind::Call | CallKind::StaticCall => (to, to, code_address, call_value),
                    CallKind::CallCode => (to, storage_address, code_address, call_value),
                    CallKind::DelegateCall => (to, storage_address, caller, current_value),
                };
                frames.push(FrameInfo { code_address: to });
                let ctx = FrameCtx {
                    code_address: exec_code_addr,
                    storage_address: exec_storage_addr,
                    caller: exec_caller,
                    origin,
                    value: exec_value,
                    calldata: args,
                    code: &code,
                    gas,
                    depth: depth + 1,
                };
                // Journal checkpoint: a reverting callee must not leave warm
                // access entries or refunds behind (EIP-2929/3529 semantics).
                let cp = scratch.access.checkpoint();
                let result = self.dispatch_frame(&code, ctx, frames, trace, scratch);
                frames.pop();
                let success = result.halt.is_success();
                if !success {
                    scratch.access.revert_to(cp);
                }
                let exception = matches!(
                    result.halt,
                    HaltReason::Invalid | HaltReason::Fault(_) | HaltReason::OutOfGas
                );
                if !success && kind == CallKind::Call && !call_value.is_zero() {
                    // Undo the value transfer of a failed call.
                    self.world.transfer(to, storage_address, call_value);
                }
                // Exceptional halts consume everything that was forwarded;
                // success and revert refund the unused remainder.
                let gas_spent = if exception {
                    gas
                } else {
                    gas.saturating_sub(result.gas_left)
                };
                (success, exception, result.output, gas_spent)
            }
        }
    }

    /// Deploy a contract via `CREATE2`: derive the deterministic address
    /// (`keccak(0xff ‖ creator ‖ salt ‖ keccak(init))[12..]`), run the init
    /// code, and install its return data as the new account's runtime code.
    ///
    /// Returns `(created_address_or_zero, return_data)`; `gas_left` is
    /// debited in place for the child frame's consumption (all forwarded gas
    /// on an exceptional halt, EIP-150 style). Depth exhaustion, an
    /// unpayable endowment and address collisions push zero without spending
    /// gas, like a failed call. No [`CallEvent`](crate::trace::CallEvent) is
    /// recorded: creations are not message calls, and the reentrancy oracle
    /// keys off call events.
    pub(crate) fn do_create2(
        &mut self,
        site: CreateSite,
        init: &[u8],
        frames: &mut Vec<FrameInfo>,
        trace: &mut ExecutionTrace,
        scratch: &mut ExecFrame,
        gas_left: &mut u64,
    ) -> (U256, Vec<u8>) {
        let CreateSite {
            creator,
            origin,
            value,
            salt,
            depth,
        } = site;
        if depth + 1 >= self.config.max_call_depth {
            return (U256::ZERO, vec![]);
        }

        let mut preimage = Vec::with_capacity(1 + 20 + 32 + 32);
        preimage.push(0xff);
        preimage.extend_from_slice(&creator.0);
        preimage.extend_from_slice(&salt.to_be_bytes());
        preimage.extend_from_slice(&keccak256(init));
        let digest = keccak256(&preimage);
        let mut raw = [0u8; 20];
        raw.copy_from_slice(&digest[12..32]);
        let created = Address(raw);

        // Address collision (an account with code or a used nonce already
        // lives there) fails the creation outright.
        if let Some(acct) = self.world.account(created) {
            if !acct.code.is_empty() || acct.nonce != 0 {
                return (U256::ZERO, vec![]);
            }
        }

        // The journal checkpoint is taken *before* the new account is
        // touched, so a failed creation leaves it cold again.
        let cp = scratch.access.checkpoint();
        scratch.access.touch_address(created);

        // Endowment transfer; an unpayable value fails the creation.
        if !self.world.transfer(creator, created, value) {
            scratch.access.revert_to(cp);
            return (U256::ZERO, vec![]);
        }

        // EIP-150: forward all but one 64th of the remaining gas.
        let forwarded = *gas_left - *gas_left / 64;
        let init_arc = Arc::new(init.to_vec());
        frames.push(FrameInfo {
            code_address: created,
        });
        let ctx = FrameCtx {
            code_address: created,
            storage_address: created,
            caller: creator,
            origin,
            value,
            calldata: &[],
            code: &init_arc,
            gas: forwarded,
            depth: depth + 1,
        };
        let result = self.dispatch_frame(&init_arc, ctx, frames, trace, scratch);
        frames.pop();
        let success = result.halt.is_success();
        let exception = matches!(
            result.halt,
            HaltReason::Invalid | HaltReason::Fault(_) | HaltReason::OutOfGas
        );
        let gas_spent = if exception {
            forwarded
        } else {
            forwarded.saturating_sub(result.gas_left)
        };
        *gas_left = gas_left.saturating_sub(gas_spent);
        if success {
            let acct = self.world.account_mut(created);
            acct.code = Arc::new(result.output);
            acct.nonce = 1;
            (created.to_u256(), vec![])
        } else {
            // Undo the endowment, the access-set entries and any refunds the
            // init frame earned; a REVERT's output becomes the caller's
            // RETURNDATA buffer.
            self.world.transfer(created, creator, value);
            scratch.access.revert_to(cp);
            let output = if exception { vec![] } else { result.output };
            (U256::ZERO, output)
        }
    }
}

/// Everything identifying one outgoing message call.
pub(crate) struct CallContext {
    pub(crate) kind: CallKind,
    pub(crate) code_address: Address,
    pub(crate) storage_address: Address,
    pub(crate) caller: Address,
    pub(crate) origin: Address,
    pub(crate) current_value: U256,
    pub(crate) to: Address,
    pub(crate) call_value: U256,
    pub(crate) gas: u64,
    pub(crate) depth: usize,
}

/// Read a 32-byte word from calldata with zero padding.
pub(crate) fn calldata_word(calldata: &[u8], offset: U256) -> U256 {
    let offset = match offset.to_usize() {
        Some(o) => o,
        None => return U256::ZERO,
    };
    let mut word = [0u8; 32];
    for (i, byte) in word.iter_mut().enumerate() {
        *byte = calldata.get(offset + i).copied().unwrap_or(0);
    }
    U256::from_be_bytes(word)
}

/// End offset of a `[offset, offset + len)` memory span, rejecting
/// address-space overflow (the memory cap would reject any such span anyway;
/// this keeps the arithmetic well-defined instead of panicking).
pub(crate) fn mem_span(offset: usize, len: usize) -> Result<usize, &'static str> {
    offset.checked_add(len).ok_or("memory span overflows")
}

/// Why a memory request was rejected.
#[derive(Debug)]
pub(crate) enum MemFail {
    /// Structurally invalid or above the configured hard cap — a frame fault.
    Fault(&'static str),
    /// The quadratic expansion cost exceeds the remaining gas.
    OutOfGas,
}

impl From<&'static str> for MemFail {
    fn from(msg: &'static str) -> MemFail {
        MemFail::Fault(msg)
    }
}

/// Total gas cost of a memory footprint of `words` 32-byte words (the EVM's
/// `C_mem`): `3·w + w²/512`. Computed in `u128` so absurd word counts
/// saturate into a guaranteed out-of-gas instead of wrapping.
fn memory_cost(words: u64) -> u128 {
    3 * words as u128 + (words as u128 * words as u128) / 512
}

/// Grow memory to hold `size` bytes, charging the quadratic word cost of the
/// expansion against `gas_left` and enforcing the configured cap. Growth is
/// word-granular (32-byte multiples, the EVM's `MSIZE` unit); the `resize`
/// performs a single amortised reservation followed by one zero-fill, so
/// each growth event is at most one allocation — and none at all once a
/// reused [`ExecFrame`] buffer has reached its high-water capacity.
///
/// Gas is charged before the cap is checked, mirroring the EVM (where the
/// expansion charge is what stops huge offsets): a request the remaining gas
/// cannot pay halts with `OutOfGas`, while a payable request above the
/// simulator's hard cap faults.
pub(crate) fn ensure_memory(
    memory: &mut Vec<u8>,
    size: usize,
    max: usize,
    gas_left: &mut u64,
) -> Result<(), MemFail> {
    if memory.len() < size {
        let old_words = (memory.len() / 32) as u64;
        let new_words = (size as u64).div_ceil(32);
        let cost = memory_cost(new_words) - memory_cost(old_words);
        if cost > *gas_left as u128 {
            return Err(MemFail::OutOfGas);
        }
        if size > max {
            return Err(MemFail::Fault("memory limit exceeded"));
        }
        *gas_left -= cost as u64;
        memory.resize(size.next_multiple_of(32), 0);
    } else if size > max {
        // No growth needed (the request lands in the word-granular padding
        // of an earlier expansion), but the hard cap still applies: with a
        // non-32-multiple cap the padding bytes are not addressable.
        return Err(MemFail::Fault("memory limit exceeded"));
    }
    Ok(())
}

/// Read a `[offset, offset+len)` range of memory, growing (and charging for)
/// it as needed.
pub(crate) fn read_memory_range(
    memory: &mut Vec<u8>,
    offset: U256,
    len: U256,
    max: usize,
    gas_left: &mut u64,
) -> Result<Vec<u8>, MemFail> {
    let offset = offset.to_usize().ok_or("memory offset out of range")?;
    let len = len.to_usize().ok_or("memory length out of range")?;
    if len == 0 {
        return Ok(vec![]);
    }
    ensure_memory(memory, mem_span(offset, len)?, max, gas_left)?;
    Ok(memory[offset..offset + len].to_vec())
}

/// Like [`read_memory_range`], but appending into a reusable buffer instead
/// of allocating (the call-argument staging path).
pub(crate) fn read_memory_into(
    memory: &mut Vec<u8>,
    offset: U256,
    len: U256,
    max: usize,
    gas_left: &mut u64,
    out: &mut Vec<u8>,
) -> Result<(), MemFail> {
    let offset = offset.to_usize().ok_or("memory offset out of range")?;
    let len = len.to_usize().ok_or("memory length out of range")?;
    if len == 0 {
        return Ok(());
    }
    ensure_memory(memory, mem_span(offset, len)?, max, gas_left)?;
    out.extend_from_slice(&memory[offset..offset + len]);
    Ok(())
}

/// 256-bit exponentiation by squaring, reporting whether any intermediate
/// multiplication truncated.
pub(crate) fn exp_u256(base: U256, exponent: U256) -> (U256, bool) {
    let mut result = U256::ONE;
    let mut overflowed = false;
    let mut base_acc = base;
    let bits = exponent.bits();
    for i in 0..bits {
        if exponent.bit(i as usize) {
            let (r, o) = result.overflowing_mul(base_acc);
            result = r;
            overflowed |= o;
        }
        if i + 1 < bits {
            let (b, o) = base_acc.overflowing_mul(base_acc);
            base_acc = b;
            overflowed |= o;
        }
    }
    (result, overflowed)
}

/// The frame-local bookkeeping a fused binop mutates: where the op sits
/// (pc/depth, for events) and the trace / comparison / truncation state it
/// writes into. Bundled so [`fused_binop_eval`] can be shared between the
/// `match` dispatcher and the direct-threaded handlers.
pub(crate) struct BinopSite<'a> {
    pub(crate) pc: usize,
    pub(crate) depth: usize,
    pub(crate) trace: &'a mut ExecutionTrace,
    pub(crate) last_cmp: &'a mut Option<Comparison>,
    pub(crate) truncated_events: &'a mut Vec<usize>,
}

/// The binop core shared by every fused pattern ending in an arithmetic /
/// comparison / bitwise op: replicates the generic arms' truncation events
/// and comparison bookkeeping and evaluates to `(result, taint)`. Operand
/// roles mirror the generic arms: `a` is the first pop (the later push),
/// `b` the second.
#[inline(always)]
pub(crate) fn fused_binop_eval(
    op: Opcode,
    a: U256,
    b: U256,
    taint: Taint,
    site: BinopSite<'_>,
) -> (U256, Taint) {
    match op {
        Opcode::Add | Opcode::Sub | Opcode::Mul => {
            let (result, truncated) = match op {
                Opcode::Add => a.overflowing_add(b),
                Opcode::Sub => a.overflowing_sub(b),
                _ => a.overflowing_mul(b),
            };
            if truncated {
                site.truncated_events.push(site.trace.arith_events.len());
                site.trace.arith_events.push(ArithEvent {
                    pc: site.pc,
                    opcode: op,
                    truncated: true,
                    taint,
                    reached_storage: false,
                    depth: site.depth,
                });
            }
            let result_taint = if truncated {
                taint | Taint::TRUNCATED
            } else {
                taint
            };
            (result, result_taint)
        }
        Opcode::Div | Opcode::Mod => {
            let (q, r) = a.div_rem(b);
            (if op == Opcode::Div { q } else { r }, taint)
        }
        Opcode::Sdiv | Opcode::Smod => {
            let (q, r) = a.signed_div_rem(b);
            (if op == Opcode::Sdiv { q } else { r }, taint)
        }
        Opcode::Lt | Opcode::Gt | Opcode::Slt | Opcode::Sgt | Opcode::Eq => {
            let result = match op {
                Opcode::Lt => a < b,
                Opcode::Gt => a > b,
                Opcode::Slt => a.signed_cmp(&b) == std::cmp::Ordering::Less,
                Opcode::Sgt => a.signed_cmp(&b) == std::cmp::Ordering::Greater,
                _ => a == b,
            };
            let kind = match op {
                Opcode::Lt | Opcode::Slt => CmpKind::Lt,
                Opcode::Gt | Opcode::Sgt => CmpKind::Gt,
                _ => CmpKind::Eq,
            };
            *site.last_cmp = Some(Comparison {
                pc: site.pc,
                kind,
                lhs: a,
                rhs: b,
                taint,
            });
            (U256::from(result), taint)
        }
        Opcode::And => (a & b, taint),
        Opcode::Or => (a | b, taint),
        Opcode::Xor => (a ^ b, taint),
        _ => unreachable!("non-fusable binop"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Account;

    fn addr(n: u64) -> Address {
        Address::from_low_u64(n)
    }

    /// Build a world with a single contract at address 0x100 and a funded
    /// sender at 0x1.
    fn world_with_code(code: Vec<u8>) -> WorldState {
        let mut world = WorldState::new();
        world.put_account(addr(1), Account::eoa(U256::from_u128(1u128 << 100)));
        world.put_account(addr(0x100), Account::contract(code, U256::ZERO));
        world
    }

    fn run(code: Vec<u8>, data: Vec<u8>, value: U256) -> ExecutionResult {
        let mut world = world_with_code(code);
        let mut evm = Evm::new(&mut world, BlockEnv::default());
        evm.execute(&Message::new(addr(1), addr(0x100), value, data))
    }

    /// Assemble: push a constant and return it as a 32-byte word.
    fn return_word_program(ops: &[u8]) -> Vec<u8> {
        // ops should leave one value on stack; then MSTORE at 0, RETURN 32.
        let mut code = ops.to_vec();
        code.extend_from_slice(&[
            0x60, 0x00, // PUSH1 0
            0x52, // MSTORE
            0x60, 0x20, // PUSH1 32
            0x60, 0x00, // PUSH1 0
            0xf3, // RETURN
        ]);
        code
    }

    fn output_as_u256(result: &ExecutionResult) -> U256 {
        U256::from_be_slice(&result.output)
    }

    #[test]
    fn add_and_return() {
        // PUSH1 2, PUSH1 3, ADD
        let result = run(
            return_word_program(&[0x60, 0x02, 0x60, 0x03, 0x01]),
            vec![],
            U256::ZERO,
        );
        assert!(result.success);
        assert_eq!(output_as_u256(&result), U256::from_u64(5));
    }

    #[test]
    fn overflow_recorded_in_trace() {
        // PUSH1 1, PUSH32 MAX, ADD -> wraps to 0 and records an arith event.
        let mut ops = vec![0x60, 0x01, 0x7f];
        ops.extend_from_slice(&[0xff; 32]);
        ops.push(0x01);
        let result = run(return_word_program(&ops), vec![], U256::ZERO);
        assert!(result.success);
        assert_eq!(output_as_u256(&result), U256::ZERO);
        assert_eq!(result.trace.arith_events.len(), 1);
        assert!(result.trace.arith_events[0].truncated);
    }

    #[test]
    fn storage_roundtrip_through_sstore_sload() {
        // PUSH1 42, PUSH1 7, SSTORE, PUSH1 7, SLOAD, return
        let code = return_word_program(&[0x60, 0x2a, 0x60, 0x07, 0x55, 0x60, 0x07, 0x54]);
        let result = run(code, vec![], U256::ZERO);
        assert!(result.success);
        assert_eq!(output_as_u256(&result), U256::from_u64(42));
        assert_eq!(result.trace.storage_writes.len(), 1);
        assert_eq!(result.trace.storage_writes[0].slot, U256::from_u64(7));
    }

    #[test]
    fn jumpi_taken_and_branch_recorded() {
        // PUSH1 1, PUSH1 7, JUMPI, INVALID, JUMPDEST, STOP
        // pc: 0:PUSH1, 2:PUSH1, 4:JUMPI, 5:INVALID, 6:JUMPDEST, 7:STOP
        let code = vec![0x60, 0x01, 0x60, 0x06, 0x57, 0xfe, 0x5b, 0x00];
        let result = run(code, vec![], U256::ZERO);
        assert!(result.success, "halt: {:?}", result.halt);
        assert_eq!(result.trace.branches.len(), 1);
        assert!(result.trace.branches[0].taken);
        assert_eq!(result.trace.covered_edges.len(), 1);
    }

    #[test]
    fn jumpi_not_taken_falls_through_to_invalid() {
        let code = vec![0x60, 0x00, 0x60, 0x06, 0x57, 0xfe, 0x5b, 0x00];
        let result = run(code, vec![], U256::ZERO);
        assert!(!result.success);
        assert_eq!(result.halt, HaltReason::Invalid);
        assert!(!result.trace.branches[0].taken);
    }

    #[test]
    fn invalid_jump_destination_faults() {
        // JUMP to a non-JUMPDEST position.
        let code = vec![0x60, 0x00, 0x56];
        let result = run(code, vec![], U256::ZERO);
        assert!(!result.success);
        assert!(matches!(result.halt, HaltReason::Fault(_)));
    }

    #[test]
    fn jump_into_push_data_faults() {
        // PUSH1 0x03, JUMP — pc 3 would be inside the PUSH2 immediate that
        // follows, where a 0x5b byte is data, not a JUMPDEST.
        let code = vec![0x60, 0x03, 0x56, 0x61, 0x5b, 0x5b, 0x00];
        let result = run(code, vec![], U256::ZERO);
        assert!(!result.success);
        assert!(matches!(result.halt, HaltReason::Fault(_)));
    }

    #[test]
    fn revert_rolls_back_state() {
        // Store then revert: the storage write must not persist.
        // PUSH1 1, PUSH1 0, SSTORE, PUSH1 0, PUSH1 0, REVERT
        let code = vec![0x60, 0x01, 0x60, 0x00, 0x55, 0x60, 0x00, 0x60, 0x00, 0xfd];
        let mut world = world_with_code(code);
        let mut evm = Evm::new(&mut world, BlockEnv::default());
        let result = evm.execute(&Message::new(addr(1), addr(0x100), U256::ZERO, vec![]));
        assert!(!result.success);
        assert_eq!(result.halt, HaltReason::Revert);
        assert_eq!(world.storage(addr(0x100), U256::ZERO), U256::ZERO);
    }

    #[test]
    fn successful_execution_commits_state() {
        let code = vec![0x60, 0x01, 0x60, 0x00, 0x55, 0x00];
        let mut world = world_with_code(code);
        let mut evm = Evm::new(&mut world, BlockEnv::default());
        let result = evm.execute(&Message::new(addr(1), addr(0x100), U256::ZERO, vec![]));
        assert!(result.success);
        assert_eq!(world.storage(addr(0x100), U256::ZERO), U256::ONE);
    }

    #[test]
    fn value_transfer_updates_balances() {
        let code = vec![0x00];
        let mut world = world_with_code(code);
        let mut evm = Evm::new(&mut world, BlockEnv::default());
        let result = evm.execute(&Message::new(
            addr(1),
            addr(0x100),
            U256::from_u64(1234),
            vec![],
        ));
        assert!(result.success);
        assert_eq!(world.balance(addr(0x100)), U256::from_u64(1234));
    }

    #[test]
    fn insufficient_balance_rejected() {
        let code = vec![0x00];
        let mut world = WorldState::new();
        world.put_account(addr(1), Account::eoa(U256::from_u64(10)));
        world.put_account(addr(0x100), Account::contract(code, U256::ZERO));
        let mut evm = Evm::new(&mut world, BlockEnv::default());
        let result = evm.execute(&Message::new(
            addr(1),
            addr(0x100),
            U256::from_u64(100),
            vec![],
        ));
        assert!(!result.success);
        assert_eq!(world.balance(addr(0x100)), U256::ZERO);
    }

    #[test]
    fn calldataload_reads_arguments() {
        // PUSH1 0, CALLDATALOAD, return it
        let code = return_word_program(&[0x60, 0x00, 0x35]);
        let mut data = vec![0u8; 32];
        data[31] = 0x99;
        let result = run(code, data, U256::ZERO);
        assert!(result.success);
        assert_eq!(output_as_u256(&result), U256::from_u64(0x99));
    }

    #[test]
    fn caller_taint_reaches_branch_guard() {
        // CALLER, PUSH1 0, EQ, PUSH1 dest, JUMPI ... (the comparison taints the condition)
        // Layout: 0:CALLER 1:PUSH1 0 3:EQ 4:PUSH1 8 6:JUMPI 7:STOP 8:JUMPDEST 9:STOP
        let code = vec![0x33, 0x60, 0x00, 0x14, 0x60, 0x08, 0x57, 0x00, 0x5b, 0x00];
        let result = run(code, vec![], U256::ZERO);
        assert!(result.success);
        let branch = &result.trace.branches[0];
        assert!(branch.cond_taint.contains(Taint::CALLER));
        assert!(branch.comparison.is_some());
    }

    #[test]
    fn timestamp_taint_propagates() {
        // TIMESTAMP, PUSH1 0, GT, push dest, JUMPI
        let code = vec![0x42, 0x60, 0x00, 0x11, 0x60, 0x08, 0x57, 0x00, 0x5b, 0x00];
        let result = run(code, vec![], U256::ZERO);
        assert!(result.success);
        assert!(result.trace.branches[0].cond_taint.contains(Taint::BLOCK));
    }

    #[test]
    fn call_to_eoa_succeeds_and_moves_value() {
        // Contract sends 5 wei to address 0x2 via CALL.
        // PUSH1 0 (retLen) PUSH1 0 (retOff) PUSH1 0 (argLen) PUSH1 0 (argOff)
        // PUSH1 5 (value) PUSH1 0x02 (to) PUSH2 0x0fff (gas) CALL, POP, STOP
        let code = vec![
            0x60, 0x00, 0x60, 0x00, 0x60, 0x00, 0x60, 0x00, 0x60, 0x05, 0x60, 0x02, 0x61, 0x0f,
            0xff, 0xf1, 0x50, 0x00,
        ];
        let mut world = world_with_code(code);
        world.account_mut(addr(0x100)).balance = U256::from_u64(100);
        let mut evm = Evm::new(&mut world, BlockEnv::default());
        let result = evm.execute(&Message::new(addr(1), addr(0x100), U256::ZERO, vec![]));
        assert!(result.success);
        assert_eq!(result.trace.calls.len(), 1);
        assert!(result.trace.calls[0].success);
        assert_eq!(world.balance(addr(2)), U256::from_u64(5));
        assert_eq!(world.balance(addr(0x100)), U256::from_u64(95));
    }

    #[test]
    fn call_to_rejecting_sink_fails() {
        let code = vec![
            0x60, 0x00, 0x60, 0x00, 0x60, 0x00, 0x60, 0x00, 0x60, 0x05, 0x60, 0x02, 0x61, 0x0f,
            0xff, 0xf1, 0x50, 0x00,
        ];
        let mut world = world_with_code(code);
        world.account_mut(addr(0x100)).balance = U256::from_u64(100);
        world.account_mut(addr(2)).behaviour = HostBehaviour::RejectingSink;
        let mut evm = Evm::new(&mut world, BlockEnv::default());
        let result = evm.execute(&Message::new(addr(1), addr(0x100), U256::ZERO, vec![]));
        assert!(result.success);
        assert!(!result.trace.calls[0].success);
        assert!(result.trace.calls[0].callee_exception);
        assert_eq!(world.balance(addr(2)), U256::ZERO);
        assert_eq!(world.balance(addr(0x100)), U256::from_u64(100));
    }

    #[test]
    fn selfdestruct_transfers_balance_and_records_event() {
        // PUSH1 0x02, SELFDESTRUCT
        let code = vec![0x60, 0x02, 0xff];
        let mut world = world_with_code(code);
        world.account_mut(addr(0x100)).balance = U256::from_u64(77);
        let mut evm = Evm::new(&mut world, BlockEnv::default());
        let result = evm.execute(&Message::new(addr(1), addr(0x100), U256::ZERO, vec![]));
        assert!(result.success);
        assert_eq!(result.trace.self_destructs.len(), 1);
        assert!(!result.trace.self_destructs[0].caller_guarded);
        assert_eq!(world.balance(addr(2)), U256::from_u64(77));
        assert!(world.account(addr(0x100)).unwrap().destroyed);
    }

    #[test]
    fn out_of_gas_halts() {
        // Infinite loop: JUMPDEST, PUSH1 0, JUMP
        let code = vec![0x5b, 0x60, 0x00, 0x56];
        let mut world = world_with_code(code);
        let mut evm = Evm::new(&mut world, BlockEnv::default());
        let mut msg = Message::new(addr(1), addr(0x100), U256::ZERO, vec![]);
        msg.gas = 10_000;
        let result = evm.execute(&msg);
        assert!(!result.success);
        assert_eq!(result.halt, HaltReason::OutOfGas);
    }

    #[test]
    fn stack_underflow_faults() {
        let code = vec![0x01]; // ADD on empty stack
        let result = run(code, vec![], U256::ZERO);
        assert!(!result.success);
        assert!(matches!(result.halt, HaltReason::Fault(_)));
    }

    #[test]
    fn sha3_hashes_memory() {
        // MSTORE 0 <- 0x01, SHA3(31,1) should hash the byte 0x01.
        // PUSH1 1, PUSH1 0, MSTORE, PUSH1 1, PUSH1 31, SHA3, return
        let code =
            return_word_program(&[0x60, 0x01, 0x60, 0x00, 0x52, 0x60, 0x01, 0x60, 0x1f, 0x20]);
        let result = run(code, vec![], U256::ZERO);
        assert!(result.success);
        let expected = U256::from_be_bytes(keccak256(&[0x01]));
        assert_eq!(output_as_u256(&result), expected);
    }

    #[test]
    fn exp_helper_detects_overflow() {
        let (v, o) = exp_u256(U256::from_u64(2), U256::from_u64(10));
        assert_eq!(v, U256::from_u64(1024));
        assert!(!o);
        let (_, o2) = exp_u256(U256::from_u64(2), U256::from_u64(300));
        assert!(o2);
        let (one, o3) = exp_u256(U256::from_u64(9), U256::ZERO);
        assert_eq!(one, U256::ONE);
        assert!(!o3);
    }

    #[test]
    fn deploy_runs_constructor_against_new_account() {
        // Constructor: store 11 at slot 0.
        let ctor = vec![0x60, 0x0b, 0x60, 0x00, 0x55, 0x00];
        let runtime = vec![0x00];
        let mut world = WorldState::new();
        world.put_account(addr(1), Account::eoa(U256::from_u64(1000)));
        let mut evm = Evm::new(&mut world, BlockEnv::default());
        let result = evm.deploy(
            addr(1),
            addr(0x200),
            &ctor,
            runtime.clone(),
            U256::ZERO,
            vec![],
        );
        assert!(result.success);
        assert_eq!(world.storage(addr(0x200), U256::ZERO), U256::from_u64(11));
        assert_eq!(*world.code(addr(0x200)), runtime);
    }

    #[test]
    fn reentrant_attacker_reenters_caller() {
        // Victim: CALL to attacker (0x2) with value 5, then STOP.
        let code = vec![
            0x60, 0x00, 0x60, 0x00, 0x60, 0x00, 0x60, 0x00, 0x60, 0x05, 0x60, 0x02, 0x62, 0x0f,
            0xff, 0xff, 0xf1, 0x50, 0x00,
        ];
        let mut world = world_with_code(code);
        world.account_mut(addr(0x100)).balance = U256::from_u64(100);
        world.account_mut(addr(2)).behaviour = HostBehaviour::ReentrantAttacker {
            callback_data: vec![],
            max_depth: 3,
        };
        let mut evm = Evm::new(&mut world, BlockEnv::default());
        let result = evm.execute(&Message::new(addr(1), addr(0x100), U256::ZERO, vec![]));
        assert!(result.success);
        assert!(result.trace.reentered);
        // The victim was re-entered, so more than one call event exists.
        assert!(result.trace.calls.len() > 1);
    }

    #[test]
    fn legacy_decoder_produces_identical_results() {
        // A program exercising pushes, jumps, storage, memory and a call.
        let code = vec![
            0x60, 0x2a, 0x60, 0x01, 0x55, // SSTORE slot 1 <- 42
            0x60, 0x01, 0x60, 0x0b, 0x57, // JUMPI taken to 0x0b
            0xfe, // INVALID (skipped)
            0x5b, // JUMPDEST
            0x60, 0x01, 0x54, // SLOAD slot 1
            0x60, 0x00, 0x52, // MSTORE
            0x60, 0x20, 0x60, 0x00, 0xf3, // RETURN 32 bytes
        ];
        let exec = |legacy: bool| {
            let mut world = world_with_code(code.clone());
            let mut evm = Evm::new(&mut world, BlockEnv::default());
            evm.config.legacy_decode = legacy;
            let result = evm.execute(&Message::new(addr(1), addr(0x100), U256::ZERO, vec![]));
            (result, world)
        };
        let (decoded, world_decoded) = exec(false);
        let (legacy, world_legacy) = exec(true);
        assert_eq!(decoded, legacy);
        assert_eq!(world_decoded, world_legacy);
        assert!(decoded.success);
        assert_eq!(output_as_u256(&decoded), U256::from_u64(42));
    }

    #[test]
    fn exec_frame_reuse_is_transparent() {
        let code = return_word_program(&[0x60, 0x02, 0x60, 0x03, 0x01]);
        let mut frame = ExecFrame::new();
        let fresh = run(code.clone(), vec![], U256::ZERO);
        for _ in 0..3 {
            let mut world = world_with_code(code.clone());
            let mut evm = Evm::new(&mut world, BlockEnv::default());
            let reused = evm.execute_in(
                &Message::new(addr(1), addr(0x100), U256::ZERO, vec![]),
                &mut frame,
            );
            assert_eq!(reused, fresh);
        }
    }

    #[test]
    fn program_cache_fast_path_matches_uncached_execution() {
        let code = return_word_program(&[0x60, 0x07, 0x60, 0x06, 0x02]);
        let uncached = run(code.clone(), vec![], U256::ZERO);

        let mut world = world_with_code(code);
        let blob = world.code(addr(0x100));
        let mut cache = ProgramCache::new();
        cache.insert(Arc::clone(&blob), Arc::new(DecodedProgram::decode(&blob)));
        let mut evm = Evm::new(&mut world, BlockEnv::default()).with_programs(&cache);
        let cached = evm.execute(&Message::new(addr(1), addr(0x100), U256::ZERO, vec![]));
        assert_eq!(cached, uncached);
        assert_eq!(output_as_u256(&cached), U256::from_u64(42));
    }

    #[test]
    fn ensure_memory_grows_in_words_with_a_single_reservation() {
        let mut memory = Vec::new();
        let mut gas = u64::MAX;
        ensure_memory(&mut memory, 1, 1 << 20, &mut gas).unwrap();
        assert_eq!(memory.len(), 32);
        ensure_memory(&mut memory, 33, 1 << 20, &mut gas).unwrap();
        assert_eq!(memory.len(), 64);
        // No shrink on smaller requests.
        ensure_memory(&mut memory, 5, 1 << 20, &mut gas).unwrap();
        assert_eq!(memory.len(), 64);
        // The quadratic schedule charged exactly C(2) = 3·2 + 2²/512 = 6.
        assert_eq!(u64::MAX - gas, 6);
    }

    #[test]
    fn ensure_memory_rejects_exactly_above_the_cap() {
        let max = 1 << 20; // the default cap, a 32-byte multiple
        let mut memory = Vec::new();
        let mut gas = u64::MAX;
        assert!(ensure_memory(&mut memory, max, max, &mut gas).is_ok());
        assert_eq!(memory.len(), max);
        let mut memory = Vec::new();
        let mut gas = u64::MAX;
        assert!(matches!(
            ensure_memory(&mut memory, max + 1, max, &mut gas),
            Err(MemFail::Fault("memory limit exceeded"))
        ));
        assert!(memory.is_empty(), "a rejected request must not grow memory");
        assert_eq!(gas, u64::MAX, "a rejected request must not charge gas");
    }

    #[test]
    fn cap_applies_even_inside_word_padding() {
        // A non-32-multiple cap: growing to 100 bytes pads memory to 128,
        // but requests for 101..=128 must still fault — the padding is not
        // addressable space.
        let mut memory = Vec::new();
        let mut gas = u64::MAX;
        assert!(ensure_memory(&mut memory, 100, 100, &mut gas).is_ok());
        assert_eq!(memory.len(), 128);
        assert!(matches!(
            ensure_memory(&mut memory, 101, 100, &mut gas),
            Err(MemFail::Fault("memory limit exceeded"))
        ));
    }

    #[test]
    fn ensure_memory_charges_the_expansion_before_the_cap() {
        // A request the remaining gas cannot pay is out-of-gas even when it
        // also exceeds the cap (huge offsets OOG rather than fault), and it
        // neither grows memory nor consumes the insufficient gas here (the
        // dispatch loop zeroes the frame's gas on the OutOfGas halt path).
        let mut memory = Vec::new();
        let mut gas = 100;
        assert!(matches!(
            ensure_memory(&mut memory, usize::MAX - 31, 1 << 20, &mut gas),
            Err(MemFail::OutOfGas)
        ));
        assert!(memory.is_empty());
        assert_eq!(gas, 100);
    }

    #[test]
    fn huge_mload_offset_faults_instead_of_panicking() {
        // PUSH8 0xffffffffffffffff, MLOAD: offset + 32 would overflow the
        // address space; the frame must fault, not crash.
        let mut code = vec![0x67];
        code.extend_from_slice(&[0xff; 8]);
        code.push(0x51);
        let result = run(code, vec![], U256::ZERO);
        assert!(!result.success);
        assert!(matches!(result.halt, HaltReason::Fault(_)));
    }
}
