//! Regenerates Table I: the bug-class support matrix of the surveyed tools.

use mufuzz_baselines::table1_matrix;
use mufuzz_bench::table;
use mufuzz_oracles::BugClass;

fn main() {
    let matrix = table1_matrix();
    let mut headers = vec!["Tool", "Type", "Public"];
    let class_labels: Vec<&str> = BugClass::ALL.iter().map(|c| c.abbrev()).collect();
    headers.extend(class_labels.iter().copied());

    let rows: Vec<Vec<String>> = matrix
        .iter()
        .map(|tool| {
            let mut row = vec![
                tool.name.to_string(),
                tool.kind.label().to_string(),
                if tool.public { "yes" } else { "no" }.to_string(),
            ];
            for class in BugClass::ALL {
                row.push(if tool.supports(class) { "X" } else { "-" }.to_string());
            }
            row
        })
        .collect();

    println!("Table I — bug classes supported by each tool");
    println!("(X = supported, - = not supported; abbreviations as in the paper)");
    println!();
    print!("{}", table::render(&headers, &rows));
}
