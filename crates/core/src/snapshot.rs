//! Versioned campaign checkpoints.
//!
//! A [`CampaignSnapshot`] freezes a paused campaign — corpus, coverage
//! bitmap, timeline, per-lane RNG streams and oracle monitors, and the
//! execution/time budget already spent — into a self-contained value that
//! round-trips through a compact binary encoding ([`CampaignSnapshot::to_bytes`]
//! / [`CampaignSnapshot::from_bytes`]). Resuming a single-lane snapshot on the
//! same contract and configuration continues the campaign bit-for-bit where it
//! left off (see `tests/fleet_service.rs`).
//!
//! The encoding is deliberately hand-rolled: a `b"MUFZ"` magic, a `u32`
//! format version, then length-prefixed little-endian fields. Every read is
//! bounds-checked, unknown versions are rejected outright, and the snapshot
//! carries an FNV-1a fingerprint of the contract's runtime bytecode and name
//! so a snapshot cannot silently resume against the wrong contract.

use crate::campaign::CoveragePoint;
use crate::executor::HarnessError;
use crate::input::{Seed, Sequence, TxInput};
use crate::mutation::MutationMask;
use crate::replay::FindingRecord;
use mufuzz_lang::CompiledContract;
use mufuzz_oracles::{BugClass, BugFinding, MonitorState};
use std::error::Error;
use std::fmt;

/// Magic bytes opening every serialized snapshot.
const MAGIC: [u8; 4] = *b"MUFZ";
/// Current snapshot format version. Version 2 added the determinism profile
/// tag and the round counter; version-1 streams (pre-round-mode) are rejected
/// rather than guessed at.
const VERSION: u32 = 2;

/// Wire tag for [`DeterminismProfile::FreeRunning`](crate::DeterminismProfile).
pub(crate) const PROFILE_FREE_RUNNING: u8 = 0;
/// Wire tag for [`DeterminismProfile::Round`](crate::DeterminismProfile).
pub(crate) const PROFILE_ROUND: u8 = 1;

/// Everything needed to resume a paused campaign.
///
/// Produced by `CampaignHandle::checkpoint` on a paused campaign and consumed
/// by `CampaignService::resume`. The struct is opaque; use
/// [`CampaignSnapshot::to_bytes`] to persist it and
/// [`CampaignSnapshot::from_bytes`] to load it back.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSnapshot {
    pub(crate) contract_hash: u64,
    pub(crate) rng_seed: u64,
    pub(crate) lanes: u32,
    pub(crate) profile: u8,
    pub(crate) round: u64,
    pub(crate) max_executions: u64,
    pub(crate) executions: u64,
    pub(crate) elapsed_ms: u64,
    pub(crate) coverage_edges: u64,
    pub(crate) coverage_words: Vec<u64>,
    pub(crate) next_uid: u64,
    pub(crate) admitted_since_cull: u64,
    pub(crate) culled: u64,
    pub(crate) corpus: Vec<Seed>,
    pub(crate) timeline: Vec<CoveragePoint>,
    pub(crate) shapes: Vec<String>,
    pub(crate) lane_states: Vec<LaneState>,
    /// Replayable finding records accumulated so far (round mode only;
    /// empty under the free-running profile). Carried so a resumed round
    /// campaign finishes with the same record list as an uninterrupted one.
    pub(crate) records: Vec<FindingRecord>,
}

/// Frozen per-lane state: the lane's RNG stream and oracle monitor.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct LaneState {
    pub(crate) rng: [u64; 4],
    pub(crate) monitor: MonitorState,
}

impl CampaignSnapshot {
    /// Executions already spent when the snapshot was taken.
    pub fn executions(&self) -> usize {
        self.executions as usize
    }

    /// Number of campaign lanes frozen in the snapshot. Resume requires the
    /// same lane count (`config.workers`).
    pub fn lanes(&self) -> usize {
        self.lanes as usize
    }

    /// Corpus size at the pause point.
    pub fn corpus_size(&self) -> usize {
        self.corpus.len()
    }

    /// Wall-clock milliseconds already spent when the snapshot was taken
    /// (resumed campaigns count their time budget from here).
    pub fn elapsed_ms(&self) -> u64 {
        self.elapsed_ms
    }

    /// Serialize to the versioned binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Vec::with_capacity(256 + self.coverage_words.len() * 8);
        w.extend_from_slice(&MAGIC);
        put_u32(&mut w, VERSION);
        put_u64(&mut w, self.contract_hash);
        put_u64(&mut w, self.rng_seed);
        put_u32(&mut w, self.lanes);
        w.push(self.profile);
        put_u64(&mut w, self.round);
        put_u64(&mut w, self.max_executions);
        put_u64(&mut w, self.executions);
        put_u64(&mut w, self.elapsed_ms);
        put_u64(&mut w, self.coverage_edges);
        put_u64(&mut w, self.coverage_words.len() as u64);
        for word in &self.coverage_words {
            put_u64(&mut w, *word);
        }
        put_u64(&mut w, self.next_uid);
        put_u64(&mut w, self.admitted_since_cull);
        put_u64(&mut w, self.culled);
        put_u64(&mut w, self.corpus.len() as u64);
        for seed in &self.corpus {
            put_seed(&mut w, seed);
        }
        put_u64(&mut w, self.timeline.len() as u64);
        for point in &self.timeline {
            put_u64(&mut w, point.executions as u64);
            put_u64(&mut w, point.elapsed_ms);
            put_u64(&mut w, point.covered_edges as u64);
            put_u64(&mut w, point.coverage.to_bits());
        }
        put_u64(&mut w, self.shapes.len() as u64);
        for shape in &self.shapes {
            put_str(&mut w, shape);
        }
        put_u64(&mut w, self.lane_states.len() as u64);
        for lane in &self.lane_states {
            for word in lane.rng {
                put_u64(&mut w, word);
            }
            put_monitor(&mut w, &lane.monitor);
        }
        put_u64(&mut w, self.records.len() as u64);
        for record in &self.records {
            put_bytes(&mut w, &record.to_bytes());
        }
        w
    }

    /// Parse a snapshot from its binary form, rejecting bad magic, unknown
    /// versions, truncated or otherwise corrupt input.
    pub fn from_bytes(bytes: &[u8]) -> Result<CampaignSnapshot, SnapshotError> {
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take(4)?;
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let contract_hash = r.u64()?;
        let rng_seed = r.u64()?;
        let lanes = r.u32()?;
        let profile = r.u8()?;
        if profile > PROFILE_ROUND {
            return Err(SnapshotError::Corrupt(format!(
                "bad determinism profile tag {profile}"
            )));
        }
        let round = r.u64()?;
        let max_executions = r.u64()?;
        let executions = r.u64()?;
        let elapsed_ms = r.u64()?;
        let coverage_edges = r.u64()?;
        let n_words = r.len()?;
        let mut coverage_words = Vec::with_capacity(n_words);
        for _ in 0..n_words {
            coverage_words.push(r.u64()?);
        }
        let next_uid = r.u64()?;
        let admitted_since_cull = r.u64()?;
        let culled = r.u64()?;
        let n_seeds = r.len()?;
        let mut corpus = Vec::with_capacity(n_seeds);
        for _ in 0..n_seeds {
            corpus.push(take_seed(&mut r)?);
        }
        let n_points = r.len()?;
        let mut timeline = Vec::with_capacity(n_points);
        for _ in 0..n_points {
            timeline.push(CoveragePoint {
                executions: r.u64()? as usize,
                elapsed_ms: r.u64()?,
                covered_edges: r.u64()? as usize,
                coverage: f64::from_bits(r.u64()?),
            });
        }
        let n_shapes = r.len()?;
        let mut shapes = Vec::with_capacity(n_shapes);
        for _ in 0..n_shapes {
            shapes.push(r.string()?);
        }
        let n_lanes = r.len()?;
        let mut lane_states = Vec::with_capacity(n_lanes);
        for _ in 0..n_lanes {
            let rng = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
            let monitor = take_monitor(&mut r)?;
            lane_states.push(LaneState { rng, monitor });
        }
        let n_records = r.len()?;
        let mut records = Vec::with_capacity(n_records);
        for _ in 0..n_records {
            let raw = r.byte_vec()?;
            records.push(
                FindingRecord::from_bytes(&raw)
                    .map_err(|e| SnapshotError::Corrupt(format!("bad finding record: {e}")))?,
            );
        }
        if r.pos != bytes.len() {
            return Err(SnapshotError::Corrupt("trailing bytes".into()));
        }
        Ok(CampaignSnapshot {
            contract_hash,
            rng_seed,
            lanes,
            profile,
            round,
            max_executions,
            executions,
            elapsed_ms,
            coverage_edges,
            coverage_words,
            next_uid,
            admitted_since_cull,
            culled,
            corpus,
            timeline,
            shapes,
            lane_states,
            records,
        })
    }
}

/// Why a snapshot could not be taken, parsed, or resumed.
#[derive(Debug)]
pub enum SnapshotError {
    /// The byte stream ended before the encoded fields did.
    Truncated,
    /// The stream does not open with the `MUFZ` magic.
    BadMagic,
    /// The stream's format version is not one this build can read.
    UnsupportedVersion(u32),
    /// The snapshot was taken from a different contract than the one
    /// offered for resume.
    ContractMismatch,
    /// The snapshot was taken under a different determinism profile than
    /// the resume configuration selects.
    ProfileMismatch {
        /// Profile tag frozen in the snapshot (`0` free-running, `1` round).
        snapshot: u8,
        /// Profile tag the resume configuration selects.
        config: u8,
    },
    /// The resume configuration's lane count differs from the snapshot's.
    LaneMismatch {
        /// Lanes frozen in the snapshot.
        snapshot: usize,
        /// Lanes requested by `config.workers`.
        config: usize,
    },
    /// The campaign's coverage bitmap saturated its overflow bucket; the
    /// bitmap can no longer be restored exactly.
    OverflowCoverage,
    /// Checkpoint was requested while the campaign was not paused.
    NotPaused,
    /// The contract failed to deploy while rebuilding the campaign.
    Harness(HarnessError),
    /// The stream decoded to structurally invalid data.
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a campaign snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (this build reads {VERSION})"
                )
            }
            SnapshotError::ContractMismatch => {
                write!(f, "snapshot was taken from a different contract")
            }
            SnapshotError::ProfileMismatch { snapshot, config } => {
                let name = |tag: &u8| match *tag {
                    PROFILE_ROUND => "round",
                    _ => "free-running",
                };
                write!(
                    f,
                    "snapshot was taken under the {} profile but the config selects {}",
                    name(snapshot),
                    name(config)
                )
            }
            SnapshotError::LaneMismatch { snapshot, config } => write!(
                f,
                "snapshot has {snapshot} lane(s) but the config asks for {config} worker(s)"
            ),
            SnapshotError::OverflowCoverage => {
                write!(
                    f,
                    "coverage bitmap overflowed; campaign cannot be checkpointed exactly"
                )
            }
            SnapshotError::NotPaused => {
                write!(f, "campaign is not paused; pause it before checkpointing")
            }
            SnapshotError::Harness(e) => write!(f, "harness error during resume: {e}"),
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
        }
    }
}

impl Error for SnapshotError {}

impl From<HarnessError> for SnapshotError {
    fn from(e: HarnessError) -> SnapshotError {
        SnapshotError::Harness(e)
    }
}

/// FNV-1a fingerprint of a contract's runtime bytecode and name — the
/// identity a snapshot is bound to.
pub(crate) fn contract_fingerprint(compiled: &CompiledContract) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&compiled.runtime);
    eat(compiled.name.as_bytes());
    hash
}

/// An incremental FNV-1a hasher over the snapshot wire encoding — the digest
/// primitive behind `CampaignReport`'s corpus/coverage digests and the
/// finding-record integrity hash. Same offset basis and prime as
/// [`contract_fingerprint`], kept tiny and dependency-free on purpose.
#[derive(Debug, Clone)]
pub(crate) struct Digest(u64);

impl Digest {
    pub(crate) fn new() -> Digest {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn eat_u64(&mut self, v: u64) {
        self.eat(&v.to_le_bytes());
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

// ---------------------------------------------------------------------------
// writer helpers (shared with the finding-record encoding in `replay`)
// ---------------------------------------------------------------------------

pub(crate) fn put_u32(w: &mut Vec<u8>, v: u32) {
    w.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(w: &mut Vec<u8>, v: u64) {
    w.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_bytes(w: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(w, bytes.len() as u64);
    w.extend_from_slice(bytes);
}

pub(crate) fn put_str(w: &mut Vec<u8>, s: &str) {
    put_bytes(w, s.as_bytes());
}

pub(crate) fn put_seed(w: &mut Vec<u8>, seed: &Seed) {
    put_u64(w, seed.uid);
    put_u64(w, seed.sequence.txs.len() as u64);
    for tx in &seed.sequence.txs {
        put_str(w, &tx.function);
        put_u64(w, tx.sender_index as u64);
        put_bytes(w, &tx.stream);
    }
    put_u64(w, seed.covered_edge_ids.len() as u64);
    for id in &seed.covered_edge_ids {
        put_u32(w, *id);
    }
    put_u64(w, seed.new_edges as u64);
    w.push(seed.hits_nested_branch as u8);
    put_u64(w, seed.weight.to_bits());
    match seed.best_distance {
        Some(d) => {
            w.push(1);
            put_u64(w, d.to_bits());
        }
        None => w.push(0),
    }
    put_u64(w, seed.selections as u64);
    match &seed.masks {
        Some(masks) => {
            w.push(1);
            put_u64(w, masks.len() as u64);
            for mask in masks {
                put_bytes(w, mask.as_bytes());
            }
        }
        None => w.push(0),
    }
    w.push(seed.masks_pending as u8);
}

fn put_monitor(w: &mut Vec<u8>, state: &MonitorState) {
    put_u64(w, state.findings.len() as u64);
    for finding in &state.findings {
        let class_index = BugClass::ALL
            .iter()
            .position(|c| *c == finding.class)
            .expect("bug class missing from BugClass::ALL") as u8;
        w.push(class_index);
        match &finding.function {
            Some(name) => {
                w.push(1);
                put_str(w, name);
            }
            None => w.push(0),
        }
        put_u64(w, finding.pc as u64);
        put_str(w, &finding.detail);
    }
    put_u64(w, state.call_value_invocations.len() as u64);
    for (function, count) in &state.call_value_invocations {
        put_str(w, function);
        put_u64(w, *count as u64);
    }
    w.push(state.held_balance as u8);
}

// ---------------------------------------------------------------------------
// reader helpers
// ---------------------------------------------------------------------------

pub(crate) struct Reader<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    pub(crate) fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::Corrupt(format!("bad bool tag {other}"))),
        }
    }

    /// A length prefix, sanity-bounded by the bytes actually remaining so a
    /// corrupt length cannot drive a huge allocation.
    pub(crate) fn len(&mut self) -> Result<usize, SnapshotError> {
        let n = self.u64()? as usize;
        if n > self.bytes.len().saturating_sub(self.pos) {
            return Err(SnapshotError::Truncated);
        }
        Ok(n)
    }

    pub(crate) fn byte_vec(&mut self) -> Result<Vec<u8>, SnapshotError> {
        let n = self.len()?;
        Ok(self.take(n)?.to_vec())
    }

    pub(crate) fn string(&mut self) -> Result<String, SnapshotError> {
        let raw = self.byte_vec()?;
        String::from_utf8(raw).map_err(|_| SnapshotError::Corrupt("invalid utf-8".into()))
    }
}

pub(crate) fn take_seed(r: &mut Reader<'_>) -> Result<Seed, SnapshotError> {
    let uid = r.u64()?;
    let n_txs = r.len()?;
    let mut txs = Vec::with_capacity(n_txs);
    for _ in 0..n_txs {
        let function = r.string()?;
        let sender_index = r.u64()? as usize;
        let stream = r.byte_vec()?;
        txs.push(TxInput {
            function,
            sender_index,
            stream,
        });
    }
    let n_ids = r.len()?;
    let mut covered_edge_ids = Vec::with_capacity(n_ids);
    for _ in 0..n_ids {
        covered_edge_ids.push(r.u32()?);
    }
    let new_edges = r.u64()? as usize;
    let hits_nested_branch = r.bool()?;
    let weight = f64::from_bits(r.u64()?);
    let best_distance = if r.bool()? {
        Some(f64::from_bits(r.u64()?))
    } else {
        None
    };
    let selections = r.u64()? as usize;
    let masks = if r.bool()? {
        let n_masks = r.len()?;
        let mut masks = Vec::with_capacity(n_masks);
        for _ in 0..n_masks {
            masks.push(MutationMask::from_bytes(r.byte_vec()?));
        }
        Some(masks)
    } else {
        None
    };
    let masks_pending = r.bool()?;
    Ok(Seed {
        uid,
        sequence: Sequence { txs },
        covered_edge_ids,
        new_edges,
        hits_nested_branch,
        weight,
        best_distance,
        selections,
        masks,
        masks_pending,
    })
}

fn take_monitor(r: &mut Reader<'_>) -> Result<MonitorState, SnapshotError> {
    let n_findings = r.len()?;
    let mut findings = Vec::with_capacity(n_findings);
    for _ in 0..n_findings {
        let class_index = r.u8()? as usize;
        let class = *BugClass::ALL
            .get(class_index)
            .ok_or_else(|| SnapshotError::Corrupt(format!("bad bug class {class_index}")))?;
        let function = if r.bool()? { Some(r.string()?) } else { None };
        let pc = r.u64()? as usize;
        let detail = r.string()?;
        findings.push(BugFinding {
            class,
            function,
            pc,
            detail,
        });
    }
    let n_invocations = r.len()?;
    let mut call_value_invocations = Vec::with_capacity(n_invocations);
    for _ in 0..n_invocations {
        let function = r.string()?;
        let count = r.u64()? as usize;
        call_value_invocations.push((function, count));
    }
    let held_balance = r.bool()?;
    Ok(MonitorState {
        findings,
        call_value_invocations,
        held_balance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> CampaignSnapshot {
        let seed = Seed {
            uid: 7,
            sequence: Sequence {
                txs: vec![TxInput {
                    function: "invest".into(),
                    sender_index: 2,
                    stream: vec![1, 2, 3, 4],
                }],
            },
            covered_edge_ids: vec![3, 9, 11],
            new_edges: 2,
            hits_nested_branch: true,
            weight: 2.25,
            best_distance: Some(17.5),
            selections: 4,
            masks: Some(vec![MutationMask::allow_all(4)]),
            masks_pending: false,
        };
        CampaignSnapshot {
            contract_hash: 0xDEAD_BEEF,
            rng_seed: 11,
            lanes: 1,
            profile: PROFILE_ROUND,
            round: 5,
            max_executions: 400,
            executions: 150,
            elapsed_ms: 1234,
            coverage_edges: 20,
            coverage_words: vec![0b1011, 0],
            next_uid: 8,
            admitted_since_cull: 3,
            culled: 1,
            corpus: vec![seed],
            timeline: vec![CoveragePoint {
                executions: 100,
                elapsed_ms: 900,
                covered_edges: 12,
                coverage: 0.6,
            }],
            shapes: vec!["invest->refund->withdraw".into()],
            lane_states: vec![LaneState {
                rng: [1, 2, 3, 4],
                monitor: MonitorState {
                    findings: vec![BugFinding {
                        class: BugClass::ALL[0],
                        function: Some("withdraw".into()),
                        pc: 42,
                        detail: "sample".into(),
                    }],
                    call_value_invocations: vec![("invest".into(), 5)],
                    held_balance: true,
                },
            }],
            records: vec![FindingRecord {
                contract_hash: 0xDEAD_BEEF,
                seed_uid: 7,
                round: 4,
                slot: 2,
                workers: 4,
                finding: BugFinding {
                    class: BugClass::ALL[1],
                    function: None,
                    pc: 7,
                    detail: "sample record".into(),
                },
                sequence: Sequence {
                    txs: vec![TxInput {
                        function: "invest".into(),
                        sender_index: 0,
                        stream: vec![9, 9],
                    }],
                },
                outcome_digest: 0x0123_4567_89AB_CDEF,
            }],
        }
    }

    #[test]
    fn snapshot_round_trips_through_bytes() {
        let snapshot = sample_snapshot();
        let bytes = snapshot.to_bytes();
        let restored = CampaignSnapshot::from_bytes(&bytes).expect("round trip");
        assert_eq!(restored, snapshot);
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut bytes = sample_snapshot().to_bytes();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            CampaignSnapshot::from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn bad_profile_tag_is_rejected() {
        let mut snapshot = sample_snapshot();
        snapshot.profile = 7;
        assert!(matches!(
            CampaignSnapshot::from_bytes(&snapshot.to_bytes()),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn digest_is_order_sensitive_and_matches_the_fingerprint_basis() {
        let mut a = Digest::new();
        a.eat(b"ab");
        let mut b = Digest::new();
        b.eat(b"ba");
        assert_ne!(a.finish(), b.finish());
        let mut c = Digest::new();
        c.eat_u64(0x0102_0304_0506_0708);
        let mut d = Digest::new();
        d.eat(&[8, 7, 6, 5, 4, 3, 2, 1]); // little-endian byte order
        assert_eq!(c.finish(), d.finish());
        assert_eq!(Digest::new().finish(), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample_snapshot().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            CampaignSnapshot::from_bytes(&bytes),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        let bytes = sample_snapshot().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                CampaignSnapshot::from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes should not parse"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample_snapshot().to_bytes();
        bytes.push(0);
        assert!(matches!(
            CampaignSnapshot::from_bytes(&bytes),
            Err(SnapshotError::Corrupt(_))
        ));
    }
}
