//! Fleet smoke test: several campaigns share ONE work-stealing pool.
//!
//! This file holds exactly one `#[test]` on purpose: the assertion below
//! reads the process-global pool-thread counter, and a sibling test spawning
//! its own pool in parallel would race the delta.

use mufuzz::{pool_threads_spawned, CampaignService, FuzzerConfig};
use mufuzz_corpus::contracts;
use mufuzz_lang::compile_source;

/// The acceptance check for fleet mode: submitting a whole sweep of
/// contracts to a 4-thread service spawns exactly 4 OS threads — campaigns
/// are scheduled as `(campaign, mutant-batch)` tasks on the shared pool, not
/// as nested per-campaign worker threads.
#[test]
fn sweep_runs_on_one_shared_pool_with_no_nested_spawns() {
    let before = pool_threads_spawned();
    let service = CampaignService::new(4);
    assert_eq!(service.thread_count(), 4);

    let budget = 300;
    let handles: Vec<_> = [
        contracts::crowdsale().source,
        contracts::game().source,
        contracts::reentrant_bank().source,
    ]
    .iter()
    .map(|source| {
        let compiled = compile_source(source).expect("corpus contract compiles");
        service
            .submit(compiled, FuzzerConfig::mufuzz(budget).with_rng_seed(11))
            .expect("deployment succeeds")
    })
    .collect();

    for handle in handles {
        let report = handle.wait();
        assert_eq!(
            report.executions, budget,
            "{}: budget not consumed exactly",
            report.contract
        );
        assert!(report.covered_edges > 0, "{}: no coverage", report.contract);
    }

    assert_eq!(
        pool_threads_spawned() - before,
        4,
        "campaigns must run on the service's pool threads only — \
         a larger delta means a nested thread spawn survived the redesign"
    );
}
