//! Abstract syntax tree for the mini-Solidity language.
//!
//! The language is the subset of Solidity that the MuFuzz paper's analyses
//! rely on: contracts with typed state variables (including mappings),
//! constructors, public functions with value parameters, `require`, `if`,
//! `while`, compound assignment, ether transfer primitives
//! (`transfer`/`send`/`call.value`), `delegatecall`, `selfdestruct`,
//! `keccak256`, and the `msg`/`tx`/`block` environment objects.

use std::fmt;

/// A value or storage type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Type {
    /// 256-bit unsigned integer.
    Uint256,
    /// 160-bit address.
    Address,
    /// Boolean.
    Bool,
    /// `mapping(key => value)`.
    Mapping(Box<Type>, Box<Type>),
}

impl Type {
    /// True if the type can be passed as a function argument (mappings can't).
    pub fn is_value_type(&self) -> bool {
        !matches!(self, Type::Mapping(_, _))
    }

    /// Canonical ABI name used in function signatures.
    pub fn abi_name(&self) -> &'static str {
        match self {
            Type::Uint256 => "uint256",
            Type::Address => "address",
            Type::Bool => "bool",
            Type::Mapping(_, _) => "mapping",
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Mapping(k, v) => write!(f, "mapping({k} => {v})"),
            other => write!(f, "{}", other.abi_name()),
        }
    }
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// True for comparison operators (producing booleans).
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// True for arithmetic operators that can overflow or underflow.
    pub fn is_arithmetic(&self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul)
    }
}

/// Built-in environment values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnvValue {
    /// `msg.sender`
    MsgSender,
    /// `msg.value`
    MsgValue,
    /// `tx.origin`
    TxOrigin,
    /// `block.timestamp` / `now`
    BlockTimestamp,
    /// `block.number`
    BlockNumber,
    /// `address(this)` — the executing contract's address.
    This,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Unsigned integer literal (already scaled by `ether`/`finney` units).
    Number(u128),
    /// Boolean literal.
    Bool(bool),
    /// Reference to a state variable, local variable or parameter.
    Ident(String),
    /// Environment value such as `msg.sender`.
    Env(EnvValue),
    /// `mapping[key]` access.
    Index(Box<Expr>, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Logical negation `!e`.
    Not(Box<Expr>),
    /// `keccak256(a, b, ...)` (also produced for
    /// `keccak256(abi.encodePacked(a, b, ...))`).
    Keccak(Vec<Expr>),
    /// `<address expr>.balance`.
    BalanceOf(Box<Expr>),
    /// `<address expr>.send(amount)` — returns a bool, does not revert.
    Send(Box<Expr>, Box<Expr>),
    /// `<address expr>.call.value(amount)()` — forwards all gas, returns bool.
    CallValue(Box<Expr>, Box<Expr>),
    /// `<address expr>.delegatecall(data...)` — returns bool.
    DelegateCall(Box<Expr>, Vec<Expr>),
    /// Explicit cast such as `uint256(e)` or `address(e)` (identity at runtime).
    Cast(Type, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for a number literal.
    pub fn num(v: u128) -> Expr {
        Expr::Number(v)
    }

    /// Convenience constructor for an identifier.
    pub fn ident(name: &str) -> Expr {
        Expr::Ident(name.to_string())
    }

    /// Convenience constructor for a binary operation.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Convenience constructor for a mapping access.
    pub fn index(map: &str, key: Expr) -> Expr {
        Expr::Index(Box::new(Expr::ident(map)), Box::new(key))
    }
}

/// Assignable locations.
#[derive(Clone, Debug, PartialEq)]
pub enum LValue {
    /// A named state variable, local or parameter.
    Ident(String),
    /// A mapping element `m[key]`.
    Index(String, Expr),
}

impl LValue {
    /// Name of the underlying variable.
    pub fn base_name(&self) -> &str {
        match self {
            LValue::Ident(n) => n,
            LValue::Index(n, _) => n,
        }
    }
}

/// Compound-assignment operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=`
    AddAssign,
    /// `-=`
    SubAssign,
    /// `*=`
    MulAssign,
}

/// Statements.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// Local variable declaration with initialiser.
    Local(String, Type, Expr),
    /// Assignment (possibly compound) to a state variable, local or mapping
    /// element.
    Assign(LValue, AssignOp, Expr),
    /// `if (cond) { then } else { otherwise }`.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (cond) { body }`.
    While(Expr, Vec<Stmt>),
    /// `require(cond);`
    Require(Expr),
    /// `<address>.transfer(amount);` — reverts the transaction on failure.
    Transfer(Expr, Expr),
    /// An expression evaluated for its side effects, result discarded
    /// (`send`, `call.value`, `delegatecall` used as statements).
    ExprStmt(Expr),
    /// `selfdestruct(beneficiary);`
    SelfDestruct(Expr),
    /// `return expr;`
    Return(Option<Expr>),
    /// `bug();` — ground-truth marker emitted by benchmark contracts; compiled
    /// to a `LOG0` so reaching it is observable in the trace.
    BugMarker,
}

/// Function visibility. Only `public`/`external` functions are callable by the
/// fuzzer; `internal`/`private` ones are kept for completeness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Visibility {
    /// Callable from outside.
    #[default]
    Public,
    /// Callable from outside (no difference in this subset).
    External,
    /// Not dispatched.
    Internal,
    /// Not dispatched.
    Private,
}

impl Visibility {
    /// True if the function is reachable via the dispatcher.
    pub fn is_callable(&self) -> bool {
        matches!(self, Visibility::Public | Visibility::External)
    }
}

/// A function parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type (value types only).
    pub ty: Type,
}

/// A contract function.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    /// Function name (empty string for the fallback function).
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Visibility.
    pub visibility: Visibility,
    /// Whether the function accepts ether.
    pub payable: bool,
    /// Return type, if any.
    pub returns: Option<Type>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

impl Function {
    /// Canonical signature, e.g. `invest(uint256)`.
    pub fn signature(&self) -> String {
        let params: Vec<&str> = self.params.iter().map(|p| p.ty.abi_name()).collect();
        format!("{}({})", self.name, params.join(","))
    }
}

/// A state variable declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct StateVar {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Optional initialiser evaluated in the constructor prologue.
    pub initial: Option<Expr>,
}

/// A contract definition.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Contract {
    /// Contract name.
    pub name: String,
    /// State variables in declaration order (defines the storage layout).
    pub state_vars: Vec<StateVar>,
    /// Constructor body (runs once at deployment).
    pub constructor: Vec<Stmt>,
    /// Whether the constructor accepts ether.
    pub constructor_payable: bool,
    /// Constructor parameters.
    pub constructor_params: Vec<Param>,
    /// Functions.
    pub functions: Vec<Function>,
}

impl Contract {
    /// Look up a state variable by name.
    pub fn state_var(&self, name: &str) -> Option<&StateVar> {
        self.state_vars.iter().find(|v| v.name == name)
    }

    /// Look up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Functions reachable through the dispatcher.
    pub fn callable_functions(&self) -> impl Iterator<Item = &Function> {
        self.functions.iter().filter(|f| f.visibility.is_callable())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_properties() {
        assert!(Type::Uint256.is_value_type());
        assert!(!Type::Mapping(Box::new(Type::Address), Box::new(Type::Uint256)).is_value_type());
        assert_eq!(Type::Address.abi_name(), "address");
        assert_eq!(
            Type::Mapping(Box::new(Type::Address), Box::new(Type::Uint256)).to_string(),
            "mapping(address => uint256)"
        );
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::Mul.is_arithmetic());
        assert!(!BinOp::Eq.is_arithmetic());
    }

    #[test]
    fn function_signature() {
        let f = Function {
            name: "invest".into(),
            params: vec![Param {
                name: "donations".into(),
                ty: Type::Uint256,
            }],
            visibility: Visibility::Public,
            payable: true,
            returns: None,
            body: vec![],
        };
        assert_eq!(f.signature(), "invest(uint256)");
    }

    #[test]
    fn contract_lookups() {
        let c = Contract {
            name: "C".into(),
            state_vars: vec![StateVar {
                name: "x".into(),
                ty: Type::Uint256,
                initial: None,
            }],
            functions: vec![Function {
                name: "f".into(),
                params: vec![],
                visibility: Visibility::Internal,
                payable: false,
                returns: None,
                body: vec![],
            }],
            ..Default::default()
        };
        assert!(c.state_var("x").is_some());
        assert!(c.state_var("y").is_none());
        assert!(c.function("f").is_some());
        assert_eq!(c.callable_functions().count(), 0);
    }

    #[test]
    fn lvalue_base_name() {
        assert_eq!(LValue::Ident("a".into()).base_name(), "a");
        assert_eq!(LValue::Index("m".into(), Expr::num(1)).base_name(), "m");
    }
}
