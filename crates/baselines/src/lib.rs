//! # mufuzz-baselines
//!
//! Re-implementations of the baseline tools the MuFuzz paper compares against,
//! built on the shared EVM/compiler substrate so that every observed
//! difference isolates the algorithmic strategy rather than engineering
//! details:
//!
//! * [`fuzzers`] — sFuzz-, ConFuzzius-, Smartian- and IR-Fuzz-style fuzzing
//!   strategies (plus full MuFuzz) behind a common [`FuzzingStrategy`] trait;
//! * [`static_tools`] — pattern-based static analyzers standing in for
//!   Oyente, Mythril, Osiris, Securify and Slither, with the bug-class
//!   support sets of Table I;
//! * [`support_matrix`] — the Table I tool/bug-class support matrix as data.

#![warn(missing_docs)]

pub mod fuzzers;
pub mod static_tools;
pub mod support_matrix;

pub use fuzzers::{
    all_fuzzers, coverage_baselines, ConFuzziusStrategy, FuzzRequest, FuzzingStrategy,
    IrFuzzStrategy, MuFuzzStrategy, SFuzzStrategy, SmartianStrategy,
};
pub use static_tools::{
    all_static_analyzers, MythrilLike, OsirisLike, OyenteLike, SecurifyLike, SlitherLike,
    StaticAnalyzer,
};
pub use support_matrix::{table1_matrix, ToolKind, ToolSupport};
