//! Ingestion quickstart: fuzz a contract that exists only as deployment
//! artefacts — an ABI JSON array plus a runtime-bytecode hex blob — with no
//! toy-language source at all.
//!
//! Run with:
//! ```text
//! cargo run --example ingest_abi [abi.json] [bytecode.hex]
//! ```
//!
//! With no arguments it fuzzes the committed `tests/fixtures/vault_token`
//! pair: a hand-assembled 164-byte runtime with a 4-function dispatcher
//! (`set(uint256)`, `get()`, `sum(uint256[])`, `echo(bytes)`) whose
//! data-dependent branches only open for well-typed calldata — which is
//! exactly what the lane-shaped mutation layer produces for dynamic
//! `uint256[]`/`bytes` parameters.

use mufuzz::{Fuzzer, FuzzerConfig};
use mufuzz_corpus::ingest;

fn main() {
    let mut args = std::env::args().skip(1);
    let abi_path = args
        .next()
        .unwrap_or_else(|| "tests/fixtures/vault_token.abi.json".into());
    let hex_path = args
        .next()
        .unwrap_or_else(|| "tests/fixtures/vault_token.hex".into());

    // 1. Ingest: ABI JSON + bytecode hex -> the same `CompiledContract`
    //    shape the toy-language compiler emits.
    let abi_json = std::fs::read_to_string(&abi_path)
        .unwrap_or_else(|e| panic!("cannot read {abi_path}: {e}"));
    let bytecode_hex = std::fs::read_to_string(&hex_path)
        .unwrap_or_else(|e| panic!("cannot read {hex_path}: {e}"));
    let ingested =
        ingest("Ingested", &abi_json, &bytecode_hex).expect("ABI + bytecode should ingest");
    println!(
        "ingested `{}`: {} bytecode bytes, {} callable functions ({} skipped)",
        ingested.compiled.name,
        ingested.compiled.runtime.len(),
        ingested.compiled.abi.functions.len(),
        ingested.skipped.len(),
    );
    for f in &ingested.compiled.abi.functions {
        let sel: String = f.selector.iter().map(|b| format!("{b:02x}")).collect();
        println!("  0x{sel} {}", f.signature());
    }
    for skipped in &ingested.skipped {
        println!("  (skipped {skipped}: unsupported parameter type)");
    }

    // 2. Fuzz exactly like a compiled contract: the ingested blob feeds the
    //    same edge index, program cache and block-lowered interpreter.
    let mut config = FuzzerConfig::mufuzz(1_000).with_rng_seed(42);
    if let Some(workers) = std::env::var("MUFUZZ_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        config = config.with_workers(workers);
    }
    let mut fuzzer = Fuzzer::new(ingested.compiled, config).expect("deployment should succeed");
    let report = fuzzer.run();

    // 3. Inspect the results.
    println!(
        "coverage: {:.1}% ({} of {} branch edges) after {} executions in {} ms \
         ({:.0} execs/sec on {} worker(s))",
        report.coverage_percent(),
        report.covered_edges,
        report.total_edges,
        report.executions,
        report.elapsed_ms,
        report.execs_per_sec(),
        report.workers
    );
    println!("corpus size: {} seeds", report.corpus_size);
    if report.findings.is_empty() {
        println!("no vulnerabilities reported");
    } else {
        println!("findings:");
        for finding in &report.findings {
            println!("  - {finding}");
        }
    }
    assert!(
        report.covered_edges > 0,
        "an ingested campaign must cover at least one branch edge"
    );
}
