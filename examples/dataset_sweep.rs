//! Sweep a generated D1-style dataset with all fuzzing strategies and print a
//! miniature version of Figure 6 (overall coverage per tool).
//!
//! Run with:
//! ```text
//! cargo run --example dataset_sweep
//! ```
//! Scale up with `MUFUZZ_CONTRACTS` / `MUFUZZ_EXECS`; size the shared fleet
//! pool with `--workers N` (or `MUFUZZ_WORKERS`; 0 = auto).

use mufuzz_bench::{env_param, fleet_threads, overall_coverage, workers_param};
use mufuzz_corpus::{d1_large, d1_small};

fn main() {
    let contracts = env_param("MUFUZZ_CONTRACTS", 6);
    let execs = env_param("MUFUZZ_EXECS", 250);
    let workers = workers_param();

    let small = d1_small(contracts);
    let large = d1_large(contracts.div_ceil(2));
    println!(
        "sweeping {} small and {} large generated contracts, {} executions each, on a fleet pool of {} thread(s)...\n",
        small.len(),
        large.len(),
        execs,
        fleet_threads(workers)
    );

    let result = overall_coverage(&small.contracts, &large.contracts, execs, 3, workers);
    println!(
        "{:<12} {:>14} {:>14}",
        "tool", "small coverage", "large coverage"
    );
    for (tool, small_cov, large_cov) in &result.rows {
        println!(
            "{:<12} {:>13.1}% {:>13.1}%",
            tool,
            small_cov * 100.0,
            large_cov * 100.0
        );
    }
    println!("\nexpected shape: MuFuzz >= IR-Fuzz >= ConFuzzius >= sFuzz on both columns.");
}
