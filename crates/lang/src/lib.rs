//! # mufuzz-lang
//!
//! A mini-Solidity language substrate for the MuFuzz reproduction.
//!
//! The MuFuzz pipeline (paper §IV-A) starts from contract source code and
//! compiles it into the three artefacts the fuzzer consumes: EVM **bytecode**,
//! the **ABI**, and the **AST**. This crate provides exactly that: a lexer,
//! recursive-descent parser, ABI generator and bytecode compiler for the
//! Solidity subset the paper's benchmark contracts use (state variables,
//! mappings, `require`, branches, loops, ether transfer primitives,
//! `delegatecall`, `selfdestruct`, `keccak256` and the `msg`/`tx`/`block`
//! environment).
//!
//! ## Example
//!
//! ```
//! use mufuzz_lang::compile_source;
//!
//! let compiled = compile_source(
//!     "contract Counter {
//!          uint256 count;
//!          function bump(uint256 by) public { count += by; }
//!      }",
//! )
//! .unwrap();
//! assert_eq!(compiled.name, "Counter");
//! assert_eq!(compiled.abi.functions.len(), 1);
//! assert!(compiled.runtime.len() > 10);
//! ```

#![warn(missing_docs)]

pub mod abi;
pub mod asm;
pub mod ast;
pub mod compiler;
pub mod lexer;
pub mod parser;

pub use abi::{compute_selector, AbiValue, ContractAbi, FunctionAbi, ParamType};
pub use asm::{Assembler, Label};
pub use ast::{
    AssignOp, BinOp, Contract, EnvValue, Expr, Function, LValue, Param, StateVar, Stmt, Type,
    Visibility,
};
pub use compiler::{compile_contract, CompileError, CompiledContract, FunctionInfo, StorageLayout};
pub use parser::{parse_contract_source, parse_source, ParseError};

/// Errors from the full source-to-bytecode pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LangError {
    /// Lexing or parsing failed.
    Parse(ParseError),
    /// Code generation failed.
    Compile(CompileError),
}

impl std::fmt::Display for LangError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LangError::Parse(e) => write!(f, "{e}"),
            LangError::Compile(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LangError {}

impl From<ParseError> for LangError {
    fn from(e: ParseError) -> Self {
        LangError::Parse(e)
    }
}

impl From<CompileError> for LangError {
    fn from(e: CompileError) -> Self {
        LangError::Compile(e)
    }
}

/// Parse and compile the first contract in a source file.
pub fn compile_source(source: &str) -> Result<CompiledContract, LangError> {
    let contract = parse_contract_source(source)?;
    Ok(compile_contract(&contract)?)
}

/// Parse and compile every contract in a source file.
pub fn compile_all(source: &str) -> Result<Vec<CompiledContract>, LangError> {
    let contracts = parse_source(source)?;
    contracts
        .iter()
        .map(|c| compile_contract(c).map_err(LangError::from))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_source_end_to_end() {
        let compiled =
            compile_source("contract T { uint256 x; function set(uint256 v) public { x = v; } }")
                .unwrap();
        assert_eq!(compiled.abi.functions[0].name, "set");
    }

    #[test]
    fn compile_all_handles_multiple_contracts() {
        let compiled = compile_all(
            "contract A { uint256 x; } contract B { uint256 y; function f() public { y = 1; } }",
        )
        .unwrap();
        assert_eq!(compiled.len(), 2);
        assert_eq!(compiled[1].abi.functions.len(), 1);
    }

    #[test]
    fn errors_are_propagated() {
        assert!(matches!(
            compile_source("not a contract"),
            Err(LangError::Parse(_))
        ));
        assert!(matches!(
            compile_source("contract C { function f() public { ghost = 1; } }"),
            Err(LangError::Compile(_))
        ));
    }
}
