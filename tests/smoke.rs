//! Fast CI smoke test: one bounded fuzzing campaign through the whole
//! pipeline — compile → deploy → sequence generation → mutation → oracles —
//! in a couple of seconds. CI runs this first (`cargo test --test smoke`) so
//! a broken pipeline fails in seconds rather than after the full suite.

use mufuzz::{Fuzzer, FuzzerConfig};
use mufuzz_analysis::{analyze_contract, plan_sequence};
use mufuzz_corpus::contracts;
use mufuzz_lang::compile_source;

#[test]
fn bounded_campaign_exercises_the_whole_pipeline() {
    // Compile the paper's Figure 1 running example (Crowdsale).
    let crowdsale = contracts::crowdsale();
    let compiled = compile_source(&crowdsale.source).expect("crowdsale should compile");
    assert!(
        !compiled.runtime.is_empty(),
        "compiler produced empty runtime bytecode"
    );
    assert!(
        !compiled.abi.functions.is_empty(),
        "ABI should expose public functions"
    );

    // The sequence planner must produce an ordering over the public functions.
    let flow = analyze_contract(&compiled.contract);
    let plan = plan_sequence(&flow);
    assert!(
        !plan.base_order.is_empty(),
        "sequence plan should order at least one function"
    );

    // A small, seeded campaign: deploy + mutate + execute + oracle checks.
    // `MUFUZZ_WORKERS` lets CI exercise the concurrent engine (a dedicated
    // job runs this test with 4 workers); the default stays deterministic.
    let workers = std::env::var("MUFUZZ_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let config = FuzzerConfig::mufuzz(200)
        .with_rng_seed(7)
        .with_workers(workers);
    let mut fuzzer = Fuzzer::new(compiled, config).expect("deployment should succeed");
    let report = fuzzer.run();
    assert_eq!(report.workers, workers.max(1));

    assert!(report.executions > 0, "campaign executed no sequences");
    assert!(
        report.covered_edges > 0,
        "campaign covered no branch edges out of {}",
        report.total_edges
    );
    assert!(report.corpus_size > 0, "campaign retained no seeds");
}
