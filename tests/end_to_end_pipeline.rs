//! End-to-end pipeline tests over the whole hand-written corpus: every
//! contract compiles, deploys, fuzzes, and the oracles detect the annotated
//! vulnerability classes for the canonical representatives.

use mufuzz::{Fuzzer, FuzzerConfig};
use mufuzz_corpus::{all_handwritten, contracts};
use mufuzz_lang::compile_source;
use mufuzz_oracles::BugClass;

fn detected_classes(
    source: &str,
    budget: usize,
    seed: u64,
) -> std::collections::BTreeSet<BugClass> {
    let compiled = compile_source(source).unwrap();
    let mut fuzzer = Fuzzer::new(
        compiled,
        FuzzerConfig::mufuzz(budget)
            .with_rng_seed(seed)
            .with_workers(1),
    )
    .unwrap();
    fuzzer.run().detected_classes()
}

#[test]
fn every_handwritten_contract_survives_a_short_campaign() {
    for contract in all_handwritten() {
        let compiled = compile_source(&contract.source).unwrap();
        let mut fuzzer = Fuzzer::new(
            compiled,
            FuzzerConfig::mufuzz(80).with_rng_seed(1).with_workers(1),
        )
        .unwrap();
        let report = fuzzer.run();
        assert!(
            report.covered_edges > 0,
            "{} covered nothing",
            contract.name
        );
        assert!(report.executions >= 80, "{}", contract.name);
    }
}

#[test]
fn reentrancy_bank_detected() {
    let classes = detected_classes(&contracts::reentrant_bank().source, 500, 3);
    assert!(classes.contains(&BugClass::Reentrancy), "{classes:?}");
}

#[test]
fn timestamp_lottery_detected_as_block_dependency() {
    let classes = detected_classes(&contracts::timestamp_lottery().source, 300, 3);
    assert!(classes.contains(&BugClass::BlockDependency), "{classes:?}");
}

#[test]
fn delegatecall_proxy_detected_only_for_the_unguarded_function() {
    let compiled = compile_source(&contracts::delegatecall_proxy().source).unwrap();
    let mut fuzzer = Fuzzer::new(
        compiled,
        FuzzerConfig::mufuzz(400).with_rng_seed(3).with_workers(1),
    )
    .unwrap();
    let report = fuzzer.run();
    let ud: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.class == BugClass::UnprotectedDelegatecall)
        .collect();
    assert!(!ud.is_empty());
    assert!(ud.iter().all(|f| f.function.as_deref() == Some("forward")));
}

#[test]
fn suicidal_wallet_and_frozen_vault_detected() {
    let classes = detected_classes(&contracts::suicidal_wallet().source, 300, 5);
    assert!(
        classes.contains(&BugClass::UnprotectedSelfDestruct),
        "{classes:?}"
    );
    let classes = detected_classes(&contracts::frozen_vault().source, 200, 5);
    assert!(classes.contains(&BugClass::EtherFreezing), "{classes:?}");
}

#[test]
fn strict_equality_and_tx_origin_detected() {
    let classes = detected_classes(&contracts::strict_equality_game().source, 300, 7);
    assert!(
        classes.contains(&BugClass::StrictEtherEquality),
        "{classes:?}"
    );
    let classes = detected_classes(&contracts::tx_origin_auth().source, 300, 7);
    assert!(classes.contains(&BugClass::TxOriginUse), "{classes:?}");
}

#[test]
fn unchecked_send_detected_as_unhandled_exception() {
    let classes = detected_classes(&contracts::unchecked_send().source, 400, 9);
    assert!(
        classes.contains(&BugClass::UnhandledException),
        "{classes:?}"
    );
}

#[test]
fn overflow_token_detected_as_integer_overflow() {
    let classes = detected_classes(&contracts::overflow_token().source, 600, 11);
    assert!(classes.contains(&BugClass::IntegerOverflow), "{classes:?}");
}

#[test]
fn benign_ledger_produces_no_spurious_findings_for_guarded_patterns() {
    let classes = detected_classes(&contracts::benign_ledger().source, 400, 13);
    // The guarded selfdestruct and the checked transfer must not be reported.
    assert!(
        !classes.contains(&BugClass::UnprotectedSelfDestruct),
        "{classes:?}"
    );
    assert!(
        !classes.contains(&BugClass::UnhandledException),
        "{classes:?}"
    );
    assert!(!classes.contains(&BugClass::Reentrancy), "{classes:?}");
}
