//! The interpreter's gas schedule and per-transaction access accounting.
//!
//! The *static* per-opcode costs live here so the dispatch loop, the
//! basic-block lowering (which pre-sums them per block, see
//! [`crate::program::BlockProgram`]) and the block-splitting tests all bill
//! from one table. Dynamic costs — memory expansion, the per-byte `EXP`
//! surcharge, call-gas forwarding, the EIP-2929 cold-access surcharges
//! tracked by [`AccessSets`] — are charged by the dispatch loop at the
//! instruction that incurs them and are *not* part of the static schedule.

use crate::opcode::Opcode;
use crate::types::Address;
use crate::u256::U256;
use std::collections::HashSet;

/// Gas added per significant byte of an `EXP` exponent (dynamic part of the
/// `EXP` price, charged on top of the static base cost).
pub const EXP_BYTE_GAS: u64 = 50;

/// Gas per 32-byte word copied by `CODECOPY` / `RETURNDATACOPY` /
/// `EXTCODECOPY` (the dynamic part of the copy price, charged on top of the
/// static base cost).
pub const COPY_WORD_GAS: u64 = 3;

/// Gas per 32-byte word hashed when `CREATE2` derives the deterministic
/// address from the init code (the Keccak word price).
pub const SHA3_WORD_GAS: u64 = 6;

/// EIP-2929 surcharge for the first `SLOAD`/`SSTORE` touch of a storage slot
/// in a transaction. Warm `SLOAD` stays at the schedule's 200, so a cold
/// load costs the canonical 2100.
pub const COLD_SLOAD_SURCHARGE: u64 = 1_900;

/// EIP-2929 surcharge for the first touch of an account in a transaction
/// (`BALANCE`, `EXTCODESIZE`/`EXTCODECOPY`/`EXTCODEHASH` and the call
/// family). Warm account reads stay at the schedule's 400, so a cold access
/// costs the canonical 2600.
pub const COLD_ACCOUNT_SURCHARGE: u64 = 2_200;

/// EIP-3529 refund granted when an `SSTORE` clears a non-zero slot to zero.
pub const SSTORE_CLEAR_REFUND: u64 = 4_800;

/// EIP-3529 refund cap: at most `gas_used / MAX_REFUND_QUOTIENT` is
/// refunded at transaction settlement.
pub const MAX_REFUND_QUOTIENT: u64 = 5;

/// The static gas cost of one opcode (the EVM-flavoured schedule every
/// execution path charges; dynamic surcharges come on top).
#[inline]
pub fn static_gas(op: Opcode) -> u64 {
    use Opcode::*;
    match op {
        Stop | JumpDest => 1,
        Push(_) | Dup(_) | Swap(_) | Pop | Pc | MSize | Gas | Address | Origin | Caller
        | CallValue | CallDataSize | CodeSize | GasPrice | Coinbase | Timestamp | Number
        | Difficulty | GasLimit | ChainId | SelfBalance | BaseFee | ReturnDataSize => 2,
        Add | Sub | Not | Lt | Gt | Slt | Sgt | Eq | IsZero | And | Or | Xor | Byte | Shl | Shr
        | Sar | CallDataLoad | MLoad | MStore | MStore8 | CodeCopy | ReturnDataCopy => 3,
        Mul | Div | Sdiv | Mod | Smod | SignExtend => 5,
        AddMod | MulMod | Jump => 8,
        JumpI => 10,
        // Base cost only: the dispatch loop adds 50 gas per significant
        // exponent byte once the operands are popped (EIP-160-style dynamic
        // pricing), so `2 EXP 2^255` costs 50 + 50·32 while `2 EXP 2` costs
        // 50 + 50·1.
        Exp => 50,
        Sha3 => 36,
        // Warm-access base cost; the dispatch loop adds
        // [`COLD_ACCOUNT_SURCHARGE`] on the first touch of the account in a
        // transaction (EIP-2929, tracked by [`AccessSets`]).
        Balance | ExtCodeSize | ExtCodeCopy | ExtCodeHash => 400,
        BlockHash => 400,
        SLoad => 200,
        SStore => 5_000,
        Log(n) => 375 * (n as u64 + 1),
        Call | CallCode | DelegateCall | StaticCall => 700,
        Create | Create2 => 32_000,
        Return | Revert => 0,
        Invalid | SelfDestruct | CallDataCopy | Unknown(_) => 2,
    }
}

/// One undoable entry in the [`AccessSets`] journal.
#[derive(Clone, Debug)]
enum JournalEntry {
    /// An address became warm.
    Address(Address),
    /// A storage slot became warm.
    Slot(Address, [u8; 32]),
    /// The refund counter grew by this much.
    Refund(u64),
}

/// An undo point into the [`AccessSets`] journal, taken before entering a
/// child frame and replayed backwards if that frame reverts.
#[derive(Clone, Copy, Debug)]
pub struct AccessCheckpoint(usize);

/// Per-transaction warm/cold access tracking (EIP-2929) plus the `SSTORE`
/// refund counter (EIP-3529).
///
/// Accesses recorded after a [`AccessSets::checkpoint`] can be undone with
/// [`AccessSets::revert_to`], so a reverted child frame leaves neither warm
/// entries nor refunds behind — exactly the journaled semantics real clients
/// implement. Pre-warmed addresses ([`AccessSets::prewarm`], used for the
/// transaction's sender and target) are not journaled: they stay warm for
/// the whole transaction.
#[derive(Clone, Debug, Default)]
pub struct AccessSets {
    warm_addresses: HashSet<Address>,
    warm_slots: HashSet<(Address, [u8; 32])>,
    journal: Vec<JournalEntry>,
    refund: u64,
}

impl AccessSets {
    /// Clear everything: called once at the start of each top-level
    /// transaction.
    pub fn reset(&mut self) {
        self.warm_addresses.clear();
        self.warm_slots.clear();
        self.journal.clear();
        self.refund = 0;
    }

    /// Mark an address warm without journaling (transaction-scope warmth:
    /// the sender and the target are warm from the first instruction).
    pub fn prewarm(&mut self, address: Address) {
        self.warm_addresses.insert(address);
    }

    /// Touch an address; returns `true` when this is the first (cold) touch.
    pub fn touch_address(&mut self, address: Address) -> bool {
        let cold = self.warm_addresses.insert(address);
        if cold {
            self.journal.push(JournalEntry::Address(address));
        }
        cold
    }

    /// Touch a storage slot of an address; returns `true` when cold.
    pub fn touch_slot(&mut self, address: Address, slot: U256) -> bool {
        let key = (address, slot.to_be_bytes());
        let cold = self.warm_slots.insert(key);
        if cold {
            self.journal.push(JournalEntry::Slot(key.0, key.1));
        }
        cold
    }

    /// The EIP-2929 surcharge for touching an account: the cold surcharge on
    /// the first touch of the transaction, zero afterwards.
    #[inline]
    pub fn address_surcharge(&mut self, address: Address) -> u64 {
        if self.touch_address(address) {
            COLD_ACCOUNT_SURCHARGE
        } else {
            0
        }
    }

    /// The EIP-2929 surcharge for touching a storage slot: the cold
    /// surcharge on the first touch of the transaction, zero afterwards.
    #[inline]
    pub fn slot_surcharge(&mut self, address: Address, slot: U256) -> u64 {
        if self.touch_slot(address, slot) {
            COLD_SLOAD_SURCHARGE
        } else {
            0
        }
    }

    /// Grow the refund counter (journaled, so a reverting frame cannot keep
    /// refunds it earned).
    pub fn add_refund(&mut self, amount: u64) {
        self.refund += amount;
        self.journal.push(JournalEntry::Refund(amount));
    }

    /// The accumulated (uncapped) refund counter.
    pub fn refund(&self) -> u64 {
        self.refund
    }

    /// Take an undo point before entering a child frame.
    pub fn checkpoint(&self) -> AccessCheckpoint {
        AccessCheckpoint(self.journal.len())
    }

    /// Undo every access and refund recorded after `cp` (the child frame
    /// reverted).
    pub fn revert_to(&mut self, cp: AccessCheckpoint) {
        while self.journal.len() > cp.0 {
            match self.journal.pop().expect("journal length checked") {
                JournalEntry::Address(address) => {
                    self.warm_addresses.remove(&address);
                }
                JournalEntry::Slot(address, slot) => {
                    self.warm_slots.remove(&(address, slot));
                }
                JournalEntry::Refund(amount) => {
                    self.refund -= amount;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_then_warm_accesses() {
        let mut access = AccessSets::default();
        let a = Address::from_low_u64(1);
        assert_eq!(access.address_surcharge(a), COLD_ACCOUNT_SURCHARGE);
        assert_eq!(access.address_surcharge(a), 0);
        assert_eq!(
            access.slot_surcharge(a, U256::from_u64(7)),
            COLD_SLOAD_SURCHARGE
        );
        assert_eq!(access.slot_surcharge(a, U256::from_u64(7)), 0);
        // Distinct slots are tracked independently.
        assert_eq!(
            access.slot_surcharge(a, U256::from_u64(8)),
            COLD_SLOAD_SURCHARGE
        );
    }

    #[test]
    fn prewarmed_addresses_are_never_cold() {
        let mut access = AccessSets::default();
        let a = Address::from_low_u64(2);
        access.prewarm(a);
        assert_eq!(access.address_surcharge(a), 0);
    }

    #[test]
    fn revert_undoes_warmth_and_refunds() {
        let mut access = AccessSets::default();
        let a = Address::from_low_u64(3);
        let pre = Address::from_low_u64(4);
        access.prewarm(pre);
        assert!(access.touch_address(a));
        let cp = access.checkpoint();
        let b = Address::from_low_u64(5);
        assert!(access.touch_address(b));
        assert!(access.touch_slot(a, U256::from_u64(1)));
        access.add_refund(SSTORE_CLEAR_REFUND);
        assert_eq!(access.refund(), SSTORE_CLEAR_REFUND);
        access.revert_to(cp);
        // Everything after the checkpoint is cold again and the refund is
        // gone; accesses before the checkpoint survive.
        assert_eq!(access.refund(), 0);
        assert!(access.touch_address(b));
        assert!(access.touch_slot(a, U256::from_u64(1)));
        assert!(!access.touch_address(a));
        assert!(!access.touch_address(pre));
    }

    #[test]
    fn reset_clears_all_state() {
        let mut access = AccessSets::default();
        let a = Address::from_low_u64(6);
        access.prewarm(a);
        access.add_refund(10);
        access.reset();
        assert!(access.touch_address(a));
        assert_eq!(access.refund(), 0);
    }

    #[test]
    fn schedule_spot_checks() {
        assert_eq!(static_gas(Opcode::Stop), 1);
        assert_eq!(static_gas(Opcode::Push(32)), 2);
        assert_eq!(static_gas(Opcode::Add), 3);
        assert_eq!(static_gas(Opcode::JumpI), 10);
        assert_eq!(static_gas(Opcode::Exp), 50);
        assert_eq!(static_gas(Opcode::SStore), 5_000);
        assert_eq!(static_gas(Opcode::Log(2)), 1_125);
        assert_eq!(static_gas(Opcode::Return), 0);
        assert_eq!(static_gas(Opcode::ChainId), 2);
        assert_eq!(static_gas(Opcode::BaseFee), 2);
        assert_eq!(static_gas(Opcode::ReturnDataSize), 2);
        assert_eq!(static_gas(Opcode::CodeCopy), 3);
        assert_eq!(static_gas(Opcode::ReturnDataCopy), 3);
        assert_eq!(static_gas(Opcode::ExtCodeSize), 400);
        assert_eq!(static_gas(Opcode::ExtCodeHash), 400);
        assert_eq!(static_gas(Opcode::Create2), 32_000);
        // Cold accesses land on the canonical EIP-2929 totals.
        assert_eq!(static_gas(Opcode::SLoad) + COLD_SLOAD_SURCHARGE, 2_100);
        assert_eq!(static_gas(Opcode::Balance) + COLD_ACCOUNT_SURCHARGE, 2_600);
    }
}
