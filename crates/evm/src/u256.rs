//! A 256-bit unsigned integer implemented from scratch.
//!
//! The EVM word size is 256 bits. All stack values, storage keys and storage
//! values are `U256`. The type is implemented as four little-endian `u64`
//! limbs and supports the wrapping semantics the EVM mandates, while also
//! exposing the overflow information the integer-overflow oracle needs
//! (`overflowing_*` variants).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, BitAnd, BitOr, BitXor, Div, Mul, Not, Rem, Shl, Shr, Sub};

/// 256-bit unsigned integer stored as four little-endian 64-bit limbs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256(pub [u64; 4]);

impl U256 {
    /// The value zero.
    pub const ZERO: U256 = U256([0, 0, 0, 0]);
    /// The value one.
    pub const ONE: U256 = U256([1, 0, 0, 0]);
    /// The maximum representable value (2^256 - 1).
    pub const MAX: U256 = U256([u64::MAX, u64::MAX, u64::MAX, u64::MAX]);

    /// Construct from a `u64`.
    #[inline]
    pub const fn from_u64(v: u64) -> Self {
        U256([v, 0, 0, 0])
    }

    /// Construct from a `u128`.
    #[inline]
    pub const fn from_u128(v: u128) -> Self {
        U256([v as u64, (v >> 64) as u64, 0, 0])
    }

    /// Returns true if the value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.0 == [0, 0, 0, 0]
    }

    /// Lowest 64 bits of the value.
    #[inline]
    pub fn low_u64(&self) -> u64 {
        self.0[0]
    }

    /// Lowest 128 bits of the value.
    #[inline]
    pub fn low_u128(&self) -> u128 {
        (self.0[0] as u128) | ((self.0[1] as u128) << 64)
    }

    /// Returns the value as `u64` if it fits, otherwise `None`.
    pub fn to_u64(&self) -> Option<u64> {
        if self.0[1] == 0 && self.0[2] == 0 && self.0[3] == 0 {
            Some(self.0[0])
        } else {
            None
        }
    }

    /// Returns the value as `usize` if it fits, otherwise `None`.
    pub fn to_usize(&self) -> Option<usize> {
        self.to_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// Number of significant bits (position of the highest set bit + 1).
    pub fn bits(&self) -> u32 {
        for i in (0..4).rev() {
            if self.0[i] != 0 {
                return (i as u32) * 64 + (64 - self.0[i].leading_zeros());
            }
        }
        0
    }

    /// Returns bit `i` (0 = least significant).
    pub fn bit(&self, i: usize) -> bool {
        if i >= 256 {
            return false;
        }
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Big-endian 32-byte representation.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, limb) in self.0.iter().enumerate() {
            let b = limb.to_be_bytes();
            out[32 - 8 * (i + 1)..32 - 8 * i].copy_from_slice(&b);
        }
        out
    }

    /// Construct from a big-endian 32-byte array.
    pub fn from_be_bytes(bytes: [u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[32 - 8 * (i + 1)..32 - 8 * i]);
            *limb = u64::from_be_bytes(b);
        }
        U256(limbs)
    }

    /// Construct from a big-endian slice of at most 32 bytes
    /// (shorter slices are left-padded with zeros, as EVM calldata is).
    pub fn from_be_slice(slice: &[u8]) -> Self {
        let mut buf = [0u8; 32];
        let len = slice.len().min(32);
        buf[32 - len..].copy_from_slice(&slice[slice.len() - len..]);
        U256::from_be_bytes(buf)
    }

    /// Parse a hexadecimal string, with or without a `0x` prefix.
    pub fn from_hex(s: &str) -> Option<Self> {
        let s = s.strip_prefix("0x").unwrap_or(s);
        if s.is_empty() || s.len() > 64 {
            return None;
        }
        let mut bytes = [0u8; 32];
        // Left-pad odd-length strings with a zero nibble.
        let padded: String = if s.len() % 2 == 1 {
            format!("0{s}")
        } else {
            s.to_string()
        };
        let n = padded.len() / 2;
        for i in 0..n {
            let byte = u8::from_str_radix(&padded[2 * i..2 * i + 2], 16).ok()?;
            bytes[32 - n + i] = byte;
        }
        Some(U256::from_be_bytes(bytes))
    }

    /// Parse a decimal string.
    pub fn from_dec(s: &str) -> Option<Self> {
        if s.is_empty() {
            return None;
        }
        let mut acc = U256::ZERO;
        let ten = U256::from_u64(10);
        for c in s.chars() {
            let d = c.to_digit(10)?;
            let (shifted, o1) = acc.overflowing_mul(ten);
            let (next, o2) = shifted.overflowing_add(U256::from_u64(d as u64));
            if o1 || o2 {
                return None;
            }
            acc = next;
        }
        Some(acc)
    }

    /// Addition returning the wrapped result and an overflow flag.
    pub fn overflowing_add(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        for ((word, &a), &b) in out.iter_mut().zip(&self.0).zip(&rhs.0) {
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            *word = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        (U256(out), carry != 0)
    }

    /// Wrapping addition (EVM `ADD`).
    pub fn wrapping_add(self, rhs: U256) -> U256 {
        self.overflowing_add(rhs).0
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: U256) -> Option<U256> {
        match self.overflowing_add(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Subtraction returning the wrapped result and a borrow (underflow) flag.
    pub fn overflowing_sub(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = 0u64;
        for ((word, &a), &b) in out.iter_mut().zip(&self.0).zip(&rhs.0) {
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *word = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        (U256(out), borrow != 0)
    }

    /// Wrapping subtraction (EVM `SUB`).
    pub fn wrapping_sub(self, rhs: U256) -> U256 {
        self.overflowing_sub(rhs).0
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: U256) -> Option<U256> {
        match self.overflowing_sub(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Full 512-bit product as eight little-endian 64-bit limbs.
    fn full_mul_limbs(self, rhs: U256) -> [u64; 8] {
        // Schoolbook multiplication with u128 partial products; the 512-bit
        // result is exact, so no limb ever wraps.
        let mut prod = [0u64; 8];
        for i in 0..4 {
            let mut carry: u128 = 0;
            for j in 0..4 {
                let cur = prod[i + j] as u128 + (self.0[i] as u128) * (rhs.0[j] as u128) + carry;
                prod[i + j] = cur as u64;
                carry = cur >> 64;
            }
            prod[i + 4] = carry as u64;
        }
        prod
    }

    /// Multiplication returning the low 256 bits and an overflow flag.
    pub fn overflowing_mul(self, rhs: U256) -> (U256, bool) {
        let prod = self.full_mul_limbs(rhs);
        let overflow = prod[4] != 0 || prod[5] != 0 || prod[6] != 0 || prod[7] != 0;
        (U256([prod[0], prod[1], prod[2], prod[3]]), overflow)
    }

    /// Wrapping multiplication (EVM `MUL`).
    pub fn wrapping_mul(self, rhs: U256) -> U256 {
        self.overflowing_mul(rhs).0
    }

    /// Checked multiplication.
    pub fn checked_mul(self, rhs: U256) -> Option<U256> {
        match self.overflowing_mul(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Quotient and remainder. Division by zero yields `(0, 0)` like the EVM.
    pub fn div_rem(self, rhs: U256) -> (U256, U256) {
        if rhs.is_zero() {
            return (U256::ZERO, U256::ZERO);
        }
        if self < rhs {
            return (U256::ZERO, self);
        }
        if rhs == U256::ONE {
            return (self, U256::ZERO);
        }
        // Binary long division: O(256) shift-subtract steps.
        let mut quotient = U256::ZERO;
        let mut remainder = U256::ZERO;
        let n = self.bits();
        for i in (0..n).rev() {
            remainder = remainder.shl_bits(1);
            if self.bit(i as usize) {
                remainder.0[0] |= 1;
            }
            if remainder >= rhs {
                remainder = remainder.wrapping_sub(rhs);
                quotient = quotient.set_bit(i as usize);
            }
        }
        (quotient, remainder)
    }

    /// Two's-complement negation, wrapping at 2^256 (`-MIN == MIN`).
    pub fn wrapping_neg(self) -> U256 {
        U256::ZERO.wrapping_sub(self)
    }

    /// Signed quotient and remainder in two's complement (EVM `SDIV`/`SMOD`).
    ///
    /// Division by zero yields `(0, 0)`. The quotient truncates toward zero,
    /// the remainder takes the sign of the dividend, and `MIN / -1` wraps
    /// back to `MIN` (the EVM-mandated two's-complement overflow case).
    pub fn signed_div_rem(self, rhs: U256) -> (U256, U256) {
        if rhs.is_zero() {
            return (U256::ZERO, U256::ZERO);
        }
        let neg_a = self.is_negative_signed();
        let neg_b = rhs.is_negative_signed();
        let abs_a = if neg_a { self.wrapping_neg() } else { self };
        let abs_b = if neg_b { rhs.wrapping_neg() } else { rhs };
        // MIN / -1 needs no special case: |MIN| wraps to MIN, MIN / 1 = MIN,
        // and negating the quotient wraps back to MIN.
        let (q, r) = abs_a.div_rem(abs_b);
        let q = if neg_a != neg_b { q.wrapping_neg() } else { q };
        let r = if neg_a { r.wrapping_neg() } else { r };
        (q, r)
    }

    /// EVM `SIGNEXTEND`: extend the two's-complement sign bit of the byte at
    /// `byte_index` (0 = least significant) through all higher bits.
    /// Indices >= 31 leave the value unchanged.
    pub fn sign_extend(self, byte_index: usize) -> U256 {
        if byte_index >= 31 {
            return self;
        }
        let sign_bit = byte_index * 8 + 7;
        let low_mask = U256::ONE
            .shl_bits(sign_bit as u32 + 1)
            .wrapping_sub(U256::ONE);
        if self.bit(sign_bit) {
            self | !low_mask
        } else {
            self & low_mask
        }
    }

    /// Reduce a little-endian wide limb value modulo `m` by binary long
    /// division. `m` must be non-zero.
    fn reduce_limbs(limbs: &[u64], m: U256) -> U256 {
        let top = limbs
            .iter()
            .rposition(|&l| l != 0)
            .map(|i| i * 64 + 64 - limbs[i].leading_zeros() as usize)
            .unwrap_or(0);
        let mut r = U256::ZERO;
        for i in (0..top).rev() {
            // r < m before the shift, so the true value 2r + bit fits in 257
            // bits and needs at most one subtraction of m; `carry` tracks the
            // bit shifted past 2^256.
            let carry = r.bit(255);
            r = r.shl_bits(1);
            if (limbs[i / 64] >> (i % 64)) & 1 == 1 {
                r.0[0] |= 1;
            }
            if carry || r >= m {
                r = r.wrapping_sub(m);
            }
        }
        r
    }

    /// EVM `ADDMOD`: `(self + rhs) % m` over the unbounded 257-bit sum.
    /// A zero modulus yields zero.
    pub fn add_mod(self, rhs: U256, m: U256) -> U256 {
        if m.is_zero() {
            return U256::ZERO;
        }
        let (sum, carry) = self.overflowing_add(rhs);
        if !carry {
            return sum.div_rem(m).1;
        }
        let limbs = [sum.0[0], sum.0[1], sum.0[2], sum.0[3], 1];
        Self::reduce_limbs(&limbs, m)
    }

    /// EVM `MULMOD`: `(self * rhs) % m` over the unbounded 512-bit product.
    /// A zero modulus yields zero.
    pub fn mul_mod(self, rhs: U256, m: U256) -> U256 {
        if m.is_zero() {
            return U256::ZERO;
        }
        Self::reduce_limbs(&self.full_mul_limbs(rhs), m)
    }

    fn set_bit(mut self, i: usize) -> U256 {
        self.0[i / 64] |= 1 << (i % 64);
        self
    }

    /// Left shift by an arbitrary number of bits (values >= 256 yield zero).
    pub fn shl_bits(self, shift: u32) -> U256 {
        if shift >= 256 {
            return U256::ZERO;
        }
        let word_shift = (shift / 64) as usize;
        let bit_shift = shift % 64;
        let mut out = [0u64; 4];
        for i in (0..4).rev() {
            if i >= word_shift {
                out[i] = self.0[i - word_shift] << bit_shift;
                if bit_shift > 0 && i > word_shift {
                    out[i] |= self.0[i - word_shift - 1] >> (64 - bit_shift);
                }
            }
        }
        U256(out)
    }

    /// Right shift by an arbitrary number of bits (values >= 256 yield zero).
    pub fn shr_bits(self, shift: u32) -> U256 {
        if shift >= 256 {
            return U256::ZERO;
        }
        let word_shift = (shift / 64) as usize;
        let bit_shift = shift % 64;
        let mut out = [0u64; 4];
        for (i, word) in out.iter_mut().enumerate() {
            if i + word_shift < 4 {
                *word = self.0[i + word_shift] >> bit_shift;
                if bit_shift > 0 && i + word_shift + 1 < 4 {
                    *word |= self.0[i + word_shift + 1] << (64 - bit_shift);
                }
            }
        }
        U256(out)
    }

    /// Arithmetic (sign-propagating) right shift in two's complement
    /// (EVM `SAR`). Shifts of 256 or more saturate to zero for non-negative
    /// values and to `-1` (all bits set) for negative ones.
    pub fn sar_bits(self, shift: u32) -> U256 {
        if !self.is_negative_signed() {
            return self.shr_bits(shift.min(256));
        }
        if shift == 0 {
            return self;
        }
        if shift >= 256 {
            return U256::MAX;
        }
        // Logical shift, then fill the vacated top `shift` bits with the
        // sign: !(MAX >> shift) is exactly that high mask.
        self.shr_bits(shift) | !U256::MAX.shr_bits(shift)
    }

    /// Interpret the value as a signed two's-complement number and report
    /// whether it is negative (top bit set). Used by `SLT`/`SGT`.
    pub fn is_negative_signed(&self) -> bool {
        self.0[3] >> 63 == 1
    }

    /// Signed comparison in two's complement.
    pub fn signed_cmp(&self, other: &U256) -> Ordering {
        match (self.is_negative_signed(), other.is_negative_signed()) {
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            _ => self.cmp(other),
        }
    }

    /// Absolute difference, |self - other|. Used by branch-distance feedback.
    pub fn abs_diff(self, other: U256) -> U256 {
        if self >= other {
            self.wrapping_sub(other)
        } else {
            other.wrapping_sub(self)
        }
    }

    /// Saturating conversion to `f64` (used only for distance normalisation,
    /// never for EVM semantics).
    pub fn to_f64_lossy(&self) -> f64 {
        let mut acc = 0.0f64;
        for i in (0..4).rev() {
            acc = acc * 18446744073709551616.0 + self.0[i] as f64;
        }
        acc
    }

    /// Decimal string representation.
    pub fn to_dec_string(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut digits = Vec::new();
        let mut cur = *self;
        let ten = U256::from_u64(10);
        while !cur.is_zero() {
            let (q, r) = cur.div_rem(ten);
            digits.push(char::from(b'0' + r.low_u64() as u8));
            cur = q;
        }
        digits.iter().rev().collect()
    }

    /// Hexadecimal string representation with a `0x` prefix.
    pub fn to_hex_string(&self) -> String {
        if self.is_zero() {
            return "0x0".to_string();
        }
        let bytes = self.to_be_bytes();
        let hex: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
        format!("0x{}", hex.trim_start_matches('0'))
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        U256::from_u64(v)
    }
}

impl From<u128> for U256 {
    fn from(v: u128) -> Self {
        U256::from_u128(v)
    }
}

impl From<bool> for U256 {
    fn from(v: bool) -> Self {
        if v {
            U256::ONE
        } else {
            U256::ZERO
        }
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl Add for U256 {
    type Output = U256;
    fn add(self, rhs: U256) -> U256 {
        self.wrapping_add(rhs)
    }
}

impl Sub for U256 {
    type Output = U256;
    fn sub(self, rhs: U256) -> U256 {
        self.wrapping_sub(rhs)
    }
}

impl Mul for U256 {
    type Output = U256;
    fn mul(self, rhs: U256) -> U256 {
        self.wrapping_mul(rhs)
    }
}

impl Div for U256 {
    type Output = U256;
    fn div(self, rhs: U256) -> U256 {
        self.div_rem(rhs).0
    }
}

impl Rem for U256 {
    type Output = U256;
    fn rem(self, rhs: U256) -> U256 {
        self.div_rem(rhs).1
    }
}

impl BitAnd for U256 {
    type Output = U256;
    fn bitand(self, rhs: U256) -> U256 {
        U256([
            self.0[0] & rhs.0[0],
            self.0[1] & rhs.0[1],
            self.0[2] & rhs.0[2],
            self.0[3] & rhs.0[3],
        ])
    }
}

impl BitOr for U256 {
    type Output = U256;
    fn bitor(self, rhs: U256) -> U256 {
        U256([
            self.0[0] | rhs.0[0],
            self.0[1] | rhs.0[1],
            self.0[2] | rhs.0[2],
            self.0[3] | rhs.0[3],
        ])
    }
}

impl BitXor for U256 {
    type Output = U256;
    fn bitxor(self, rhs: U256) -> U256 {
        U256([
            self.0[0] ^ rhs.0[0],
            self.0[1] ^ rhs.0[1],
            self.0[2] ^ rhs.0[2],
            self.0[3] ^ rhs.0[3],
        ])
    }
}

impl Not for U256 {
    type Output = U256;
    fn not(self) -> U256 {
        U256([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }
}

impl Shl<u32> for U256 {
    type Output = U256;
    fn shl(self, rhs: u32) -> U256 {
        self.shl_bits(rhs)
    }
}

impl Shr<u32> for U256 {
    type Output = U256;
    fn shr(self, rhs: u32) -> U256 {
        self.shr_bits(rhs)
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256({})", self.to_dec_string())
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_dec_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> U256 {
        U256::from_u64(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(U256::ZERO.is_zero());
        assert!(!U256::ONE.is_zero());
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(U256::ONE.bits(), 1);
    }

    #[test]
    fn add_small() {
        assert_eq!(u(2) + u(3), u(5));
        assert_eq!(u(0) + u(0), u(0));
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let a = U256([u64::MAX, 0, 0, 0]);
        let (sum, overflow) = a.overflowing_add(U256::ONE);
        assert!(!overflow);
        assert_eq!(sum, U256([0, 1, 0, 0]));
    }

    #[test]
    fn add_overflow_wraps() {
        let (sum, overflow) = U256::MAX.overflowing_add(U256::ONE);
        assert!(overflow);
        assert_eq!(sum, U256::ZERO);
        assert_eq!(U256::MAX.checked_add(U256::ONE), None);
    }

    #[test]
    fn sub_underflow_wraps() {
        let (diff, borrow) = U256::ZERO.overflowing_sub(U256::ONE);
        assert!(borrow);
        assert_eq!(diff, U256::MAX);
        assert_eq!(U256::ZERO.checked_sub(U256::ONE), None);
    }

    #[test]
    fn mul_small() {
        assert_eq!(u(7) * u(6), u(42));
        assert_eq!(u(0) * u(123), u(0));
    }

    #[test]
    fn mul_cross_limb() {
        let a = U256::from_u128(u128::MAX);
        let (p, o) = a.overflowing_mul(u(2));
        assert!(!o);
        assert_eq!(p, U256([u64::MAX - 1, u64::MAX, 1, 0]));
    }

    #[test]
    fn mul_overflow_detected() {
        let big = U256::ONE.shl_bits(200);
        let (_, o) = big.overflowing_mul(big);
        assert!(o);
        assert!(big.checked_mul(big).is_none());
    }

    #[test]
    fn div_rem_basic() {
        let (q, r) = u(100).div_rem(u(7));
        assert_eq!(q, u(14));
        assert_eq!(r, u(2));
    }

    #[test]
    fn div_by_zero_is_zero() {
        let (q, r) = u(100).div_rem(U256::ZERO);
        assert_eq!(q, U256::ZERO);
        assert_eq!(r, U256::ZERO);
    }

    #[test]
    fn div_rem_large() {
        let a = U256::from_hex("0xffffffffffffffffffffffffffffffff").unwrap();
        let b = U256::from_hex("0xfffffffffffffffff").unwrap();
        let (q, r) = a.div_rem(b);
        // Verify a == q*b + r and r < b.
        assert!(r < b);
        assert_eq!(q.wrapping_mul(b).wrapping_add(r), a);
    }

    #[test]
    fn shifts() {
        assert_eq!(u(1).shl_bits(64), U256([0, 1, 0, 0]));
        assert_eq!(U256([0, 1, 0, 0]).shr_bits(64), u(1));
        assert_eq!(u(1).shl_bits(256), U256::ZERO);
        assert_eq!(u(0b1010).shr_bits(1), u(0b101));
        assert_eq!(u(3).shl_bits(1), u(6));
    }

    #[test]
    fn arithmetic_shift_propagates_the_sign() {
        // Non-negative values behave like a logical shift.
        assert_eq!(u(0b1010).sar_bits(1), u(0b101));
        assert_eq!(u(7).sar_bits(300), U256::ZERO);
        // -8 >> 1 == -4, -8 >> 2 == -2, -8 >> 3 == -1, -8 >> 4 == -1.
        let neg = |v: u64| u(v).wrapping_neg();
        assert_eq!(neg(8).sar_bits(1), neg(4));
        assert_eq!(neg(8).sar_bits(3), neg(1));
        assert_eq!(neg(8).sar_bits(4), neg(1)); // floor division toward -inf
                                                // Shift 0 is the identity; shifts >= 256 saturate to -1.
        assert_eq!(neg(8).sar_bits(0), neg(8));
        assert_eq!(neg(1).sar_bits(255), U256::MAX);
        assert_eq!(neg(8).sar_bits(256), U256::MAX);
        assert_eq!(neg(8).sar_bits(u32::MAX), U256::MAX);
        // MIN >> 255 == -1.
        assert_eq!(U256::ONE.shl_bits(255).sar_bits(255), U256::MAX);
    }

    #[test]
    fn ordering() {
        assert!(u(1) < u(2));
        assert!(U256([0, 0, 0, 1]) > U256([u64::MAX, u64::MAX, u64::MAX, 0]));
        assert_eq!(u(5).cmp(&u(5)), Ordering::Equal);
    }

    #[test]
    fn signed_comparison() {
        let neg_one = U256::MAX; // -1 in two's complement
        assert!(neg_one.is_negative_signed());
        assert_eq!(neg_one.signed_cmp(&U256::ONE), Ordering::Less);
        assert_eq!(U256::ONE.signed_cmp(&neg_one), Ordering::Greater);
        assert_eq!(u(3).signed_cmp(&u(4)), Ordering::Less);
    }

    #[test]
    fn byte_roundtrip() {
        let v =
            U256::from_hex("0x0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")
                .unwrap();
        assert_eq!(U256::from_be_bytes(v.to_be_bytes()), v);
    }

    #[test]
    fn be_slice_left_pads() {
        assert_eq!(U256::from_be_slice(&[0x01, 0x00]), u(256));
        assert_eq!(U256::from_be_slice(&[]), U256::ZERO);
    }

    #[test]
    fn hex_parsing() {
        assert_eq!(U256::from_hex("0x10").unwrap(), u(16));
        assert_eq!(U256::from_hex("ff").unwrap(), u(255));
        assert_eq!(U256::from_hex("0xf").unwrap(), u(15));
        assert!(U256::from_hex("").is_none());
        assert!(U256::from_hex("0xzz").is_none());
    }

    #[test]
    fn dec_parsing_and_display() {
        assert_eq!(U256::from_dec("1234567890").unwrap(), u(1234567890));
        assert_eq!(u(98765).to_dec_string(), "98765");
        assert_eq!(U256::ZERO.to_dec_string(), "0");
        let max_str = U256::MAX.to_dec_string();
        assert_eq!(
            max_str,
            "115792089237316195423570985008687907853269984665640564039457584007913129639935"
        );
        assert_eq!(U256::from_dec(&max_str).unwrap(), U256::MAX);
        assert!(U256::from_dec("not a number").is_none());
    }

    #[test]
    fn hex_display() {
        assert_eq!(u(255).to_hex_string(), "0xff");
        assert_eq!(U256::ZERO.to_hex_string(), "0x0");
    }

    /// Two's-complement encoding of a small signed integer.
    fn s(v: i64) -> U256 {
        if v < 0 {
            u(v.unsigned_abs()).wrapping_neg()
        } else {
            u(v as u64)
        }
    }

    /// The most negative signed 256-bit value, -2^255.
    fn min_signed() -> U256 {
        U256::ONE.shl_bits(255)
    }

    #[test]
    fn wrapping_neg_roundtrip() {
        assert_eq!(u(5).wrapping_neg().wrapping_neg(), u(5));
        assert_eq!(U256::ZERO.wrapping_neg(), U256::ZERO);
        assert_eq!(U256::ONE.wrapping_neg(), U256::MAX); // -1
        assert_eq!(min_signed().wrapping_neg(), min_signed()); // -MIN == MIN
    }

    #[test]
    fn signed_div_rem_sign_combinations() {
        // Quotient truncates toward zero; remainder takes the dividend sign.
        assert_eq!(s(7).signed_div_rem(s(2)), (s(3), s(1)));
        assert_eq!(s(-7).signed_div_rem(s(2)), (s(-3), s(-1)));
        assert_eq!(s(7).signed_div_rem(s(-2)), (s(-3), s(1)));
        assert_eq!(s(-7).signed_div_rem(s(-2)), (s(3), s(-1)));
        assert_eq!(s(-8).signed_div_rem(s(3)).1, s(-2));
        assert_eq!(s(8).signed_div_rem(s(-3)).1, s(2));
    }

    #[test]
    fn signed_div_rem_edge_cases() {
        // Division by zero yields (0, 0) like the EVM.
        assert_eq!(s(-5).signed_div_rem(U256::ZERO), (U256::ZERO, U256::ZERO));
        // MIN / -1 wraps back to MIN with remainder 0.
        assert_eq!(min_signed().signed_div_rem(s(-1)), (min_signed(), s(0)));
        // MIN / 1 and MIN / MIN are well defined.
        assert_eq!(min_signed().signed_div_rem(s(1)), (min_signed(), s(0)));
        assert_eq!(min_signed().signed_div_rem(min_signed()), (s(1), s(0)));
    }

    #[test]
    fn sign_extend_matches_evm_vectors() {
        // Positive byte: high bits cleared.
        assert_eq!(u(0x7f).sign_extend(0), u(0x7f));
        assert_eq!(u(0x1234).sign_extend(0), u(0x34));
        // Negative byte: high bits set.
        assert_eq!(u(0xff).sign_extend(0), U256::MAX);
        assert_eq!(u(0xff7f).sign_extend(1), U256::MAX - u(0x80));
        // Index >= 31 leaves the value unchanged.
        assert_eq!(U256::MAX.sign_extend(31), U256::MAX);
        assert_eq!(u(0xff).sign_extend(200), u(0xff));
        // Index 30: sign bit is bit 247.
        let v = U256::ONE.shl_bits(247);
        assert_eq!(
            v.sign_extend(30),
            v | !(v.shl_bits(1).wrapping_sub(U256::ONE))
        );
    }

    #[test]
    fn add_mod_with_overflowing_intermediate() {
        assert_eq!(u(10).add_mod(u(10), u(8)), u(4));
        assert_eq!(u(10).add_mod(u(10), U256::ZERO), U256::ZERO);
        // (2^256 - 1) + 1 == 2^256, and 2^256 mod (2^256 - 1) == 1.
        assert_eq!(U256::MAX.add_mod(U256::ONE, U256::MAX), U256::ONE);
        // MAX + MAX == 2 * (2^256 - 1), divisible by MAX.
        assert_eq!(U256::MAX.add_mod(U256::MAX, U256::MAX), U256::ZERO);
        // Wrapped arithmetic would compute (MAX + MAX) mod 5 as (2^256 - 2) mod 5
        // = 4; the true sum is 2^257 - 2 ≡ 2 - 2 ≡ 0 (mod 5) since 2^256 ≡ 1.
        let m = u(5);
        let wrapped = U256::MAX.wrapping_add(U256::MAX).div_rem(m).1;
        assert_eq!(wrapped, u(4));
        assert_eq!(U256::MAX.add_mod(U256::MAX, m), U256::ZERO);
    }

    #[test]
    fn mul_mod_with_overflowing_intermediate() {
        assert_eq!(u(7).mul_mod(u(6), u(5)), u(2));
        assert_eq!(u(7).mul_mod(u(6), U256::ZERO), U256::ZERO);
        // 2^255 * 2 == 2^256, and 2^256 mod (2^256 - 1) == 1.
        assert_eq!(U256::ONE.shl_bits(255).mul_mod(u(2), U256::MAX), U256::ONE);
        // MAX * MAX == (2^256 - 1)^2, divisible by MAX.
        assert_eq!(U256::MAX.mul_mod(U256::MAX, U256::MAX), U256::ZERO);
        // (2^256 - 1)^2 mod 2^256 is 1, but mod (2^256 - 2) it is again 1:
        // (m + 1)^2 = m^2 + 2m + 1 with m = 2^256 - 2... check via reference:
        // MAX = m + 1 where m = MAX - 1, so MAX^2 mod m = (1)^2 = 1.
        assert_eq!(
            U256::MAX.mul_mod(U256::MAX, U256::MAX - U256::ONE),
            U256::ONE
        );
    }

    #[test]
    fn abs_diff_symmetry() {
        assert_eq!(u(10).abs_diff(u(3)), u(7));
        assert_eq!(u(3).abs_diff(u(10)), u(7));
        assert_eq!(u(5).abs_diff(u(5)), U256::ZERO);
    }

    #[test]
    fn f64_conversion_monotone() {
        assert!(U256::MAX.to_f64_lossy() > u(1_000_000).to_f64_lossy());
        assert_eq!(u(42).to_f64_lossy(), 42.0);
    }

    #[test]
    fn bit_accessors() {
        let v = u(0b1001);
        assert!(v.bit(0));
        assert!(!v.bit(1));
        assert!(v.bit(3));
        assert!(!v.bit(255));
        assert!(!v.bit(300));
    }
}
