//! Procedural contract generator.
//!
//! Stands in for the paper's real-world datasets (§V-A): it produces
//! deterministic, seeded mini-Solidity contracts whose difficulty knobs match
//! the properties the paper's evaluation depends on — state-variable coupling
//! between functions (so transaction ordering matters), strict constant
//! guards (so arbitrary byte mutation rarely satisfies them), nested branches
//! (so energy allocation matters) and optional injected vulnerabilities with
//! ground-truth annotations.

use crate::contracts::BenchContract;
use mufuzz_oracles::{Annotation, BugClass};
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;
use std::fmt::Write;

/// Knobs controlling one generated contract.
#[derive(Clone, Debug)]
pub struct GeneratorConfig {
    /// RNG seed; the same seed always produces the same contract.
    pub seed: u64,
    /// Number of `uint256` state variables.
    pub state_vars: usize,
    /// Number of state-machine functions (excluding injected bug functions).
    pub functions: usize,
    /// Maximum `if` nesting depth inside a function.
    pub max_nesting: usize,
    /// Probability that a branch condition compares against a "magic"
    /// constant (hard to satisfy by random mutation).
    pub magic_guard_prob: f64,
    /// Probability that a function is payable.
    pub payable_prob: f64,
    /// Probability that a function participates in the strict stage
    /// progression (`require(stage == i)`), which makes transaction ordering
    /// matter. Non-strict functions only require the stage to have been
    /// reached at some point.
    pub strict_stage_prob: f64,
    /// Probability that advancing a stage requires the same function to be
    /// called repeatedly (an accumulation threshold larger than one call can
    /// satisfy) — the RAW-repetition pattern of §IV-A.
    pub repetition_prob: f64,
    /// Emit an owner-guarded `drain` function that can release the contract's
    /// ether (disable to build ether-freezing hosts).
    pub include_drain: bool,
    /// Bug classes to inject (one extra function per class).
    pub inject: Vec<BugClass>,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            seed: 1,
            state_vars: 4,
            functions: 4,
            max_nesting: 2,
            magic_guard_prob: 0.4,
            payable_prob: 0.4,
            strict_stage_prob: 0.8,
            repetition_prob: 0.35,
            include_drain: true,
            inject: Vec::new(),
        }
    }
}

impl GeneratorConfig {
    /// Configuration for a "small" D1-style contract.
    pub fn small(seed: u64) -> Self {
        GeneratorConfig {
            seed,
            state_vars: 3 + (seed % 3) as usize,
            functions: 3 + (seed % 3) as usize,
            max_nesting: 2,
            ..Default::default()
        }
    }

    /// Configuration for a "large" D1-style contract.
    pub fn large(seed: u64) -> Self {
        GeneratorConfig {
            seed,
            state_vars: 8 + (seed % 4) as usize,
            functions: 10 + (seed % 6) as usize,
            max_nesting: 3,
            magic_guard_prob: 0.5,
            ..Default::default()
        }
    }

    /// Add injected bug classes.
    pub fn with_bugs(mut self, bugs: Vec<BugClass>) -> Self {
        self.inject = bugs;
        self
    }

    /// Enable or disable the owner-guarded drain function.
    pub fn with_drain(mut self, include: bool) -> Self {
        self.include_drain = include;
        self
    }
}

/// Generate one contract from a configuration.
pub fn generate_contract(name: &str, config: &GeneratorConfig) -> BenchContract {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut src = String::new();
    let mut annotations = Vec::new();

    writeln!(src, "contract {name} {{").unwrap();
    // State variables: a stage counter driving the progression, the
    // accumulation variables, an owner and a per-account ledger.
    writeln!(src, "    uint256 stage;").unwrap();
    for i in 0..config.state_vars {
        writeln!(src, "    uint256 s{i};").unwrap();
    }
    writeln!(src, "    address owner;").unwrap();
    writeln!(src, "    mapping(address => uint256) ledger;").unwrap();
    writeln!(src, "    constructor() public {{ owner = msg.sender; }}").unwrap();

    // A strict state machine: function `step_i` is only enabled once the
    // progression has reached stage `i` (so transaction *ordering* matters),
    // and advancing to stage `i+1` requires an accumulation threshold that may
    // take several calls of the same function (so *repetition* matters). The
    // deepest stages hold the nested branches and bug markers — exactly the
    // "deep state" structure the paper's evaluation exercises.
    for i in 0..config.functions {
        let slot = i % config.state_vars.max(1);
        let payable = rng.gen_bool(config.payable_prob);
        let payable_kw = if payable { " payable" } else { "" };
        writeln!(
            src,
            "    function step{i}(uint256 a, uint256 b) public{payable_kw} {{"
        )
        .unwrap();

        // Stage guard: strict equality (ordering-sensitive) or a looser
        // lower bound.
        if rng.gen_bool(config.strict_stage_prob) {
            writeln!(src, "        require(stage == {i});").unwrap();
        } else {
            writeln!(src, "        require(stage >= {});", i / 2).unwrap();
        }

        // Optional magic-constant guard on a parameter: hard to satisfy by
        // blind mutation, easy once the constant (harvested from the
        // bytecode) is preserved by the mutation mask.
        if rng.gen_bool(config.magic_guard_prob) {
            let magic: u64 = rng.gen_range(1_000..1_000_000);
            writeln!(src, "        require(a == {magic});").unwrap();
        }

        // Accumulation creating a RAW dependency on s{slot}.
        writeln!(src, "        s{slot} += b % 1000 + 1;").unwrap();

        // Advancing the stage requires the accumulator to pass a threshold;
        // thresholds above 1000 cannot be satisfied by a single call.
        let threshold: u64 = if rng.gen_bool(config.repetition_prob) {
            rng.gen_range(1_100..2_800)
        } else {
            rng.gen_range(2..900)
        };
        writeln!(src, "        if (s{slot} >= {threshold}) {{").unwrap();
        writeln!(src, "            stage = {};", i + 1).unwrap();
        let mut open = 1usize;
        let nesting = rng.gen_range(1..=config.max_nesting.max(1));
        for level in 1..nesting {
            let t: u64 = rng.gen_range(1..1000);
            let var = rng.gen_range(0..config.state_vars.max(1));
            writeln!(
                src,
                "        {}if (s{var} + b > {t}) {{",
                "    ".repeat(level)
            )
            .unwrap();
            open += 1;
        }
        let indent = "    ".repeat(open);
        writeln!(src, "        {indent}s{slot} = s{slot} + a % 7;").unwrap();
        writeln!(src, "        {indent}ledger[msg.sender] += 1;").unwrap();
        if rng.gen_bool(0.3) {
            writeln!(src, "        {indent}bug();").unwrap();
        }
        for level in (0..open).rev() {
            writeln!(src, "        {}}}", "    ".repeat(level)).unwrap();
        }
        writeln!(src, "    }}").unwrap();
    }

    // A read-only probe function so coverage has a cheap baseline.
    writeln!(
        src,
        "    function probe() public returns (uint256) {{ return stage; }}"
    )
    .unwrap();

    // An owner-guarded drain so generated contracts are not spuriously
    // ether-freezing (disabled for dedicated ether-freezing hosts).
    if config.include_drain {
        writeln!(
            src,
            "    function drainToOwner() public {{\n        require(msg.sender == owner);\n        msg.sender.transfer(address(this).balance);\n    }}"
        )
        .unwrap();
    }

    // Injected vulnerable functions.
    for class in &config.inject {
        let (body, annotation) = injected_function(*class, &mut rng);
        src.push_str(&body);
        annotations.push(annotation);
    }

    writeln!(src, "}}").unwrap();
    BenchContract::new(name, &src, annotations)
}

/// Source text and annotation for one injected vulnerable function.
fn injected_function(class: BugClass, rng: &mut SmallRng) -> (String, Annotation) {
    let id: u32 = rng.gen_range(0..1_000);
    match class {
        BugClass::BlockDependency => (
            format!(
                "    function luckyDraw{id}() public payable {{\n        if (block.timestamp % 17 == 3) {{\n            msg.sender.transfer(address(this).balance);\n        }}\n    }}\n"
            ),
            Annotation::in_function(BugClass::BlockDependency, &format!("luckyDraw{id}")),
        ),
        BugClass::UnprotectedDelegatecall => (
            format!(
                "    function relay{id}(address callee, uint256 data) public {{\n        callee.delegatecall(data);\n    }}\n"
            ),
            Annotation::in_function(
                BugClass::UnprotectedDelegatecall,
                &format!("relay{id}"),
            ),
        ),
        BugClass::EtherFreezing => (
            // Ether freezing is a whole-contract property; the injected
            // function just makes the contract payable. Only meaningful when
            // the surrounding contract has no transfer paths, so the dataset
            // builders inject it into transfer-free contracts.
            format!(
                "    function hodl{id}() public payable {{\n        ledger[msg.sender] += msg.value;\n    }}\n"
            ),
            Annotation::contract(BugClass::EtherFreezing),
        ),
        BugClass::IntegerOverflow => (
            format!(
                "    function mint{id}(uint256 amount) public {{\n        ledger[msg.sender] += amount * 340282366920938463463374607431768211455;\n    }}\n"
            ),
            Annotation::in_function(BugClass::IntegerOverflow, &format!("mint{id}")),
        ),
        BugClass::Reentrancy => (
            format!(
                "    function cashOut{id}() public {{\n        if (ledger[msg.sender] > 0) {{\n            msg.sender.call.value(ledger[msg.sender])();\n            ledger[msg.sender] = 0;\n        }}\n    }}\n    function fund{id}() public payable {{\n        ledger[msg.sender] += msg.value;\n    }}\n"
            ),
            Annotation::in_function(BugClass::Reentrancy, &format!("cashOut{id}")),
        ),
        BugClass::UnprotectedSelfDestruct => (
            format!(
                "    function shutdown{id}() public {{\n        selfdestruct(msg.sender);\n    }}\n"
            ),
            Annotation::in_function(
                BugClass::UnprotectedSelfDestruct,
                &format!("shutdown{id}"),
            ),
        ),
        BugClass::StrictEtherEquality => (
            format!(
                "    function exactPot{id}() public payable {{\n        if (address(this).balance == 5 ether) {{\n            msg.sender.transfer(address(this).balance);\n        }}\n    }}\n"
            ),
            Annotation::in_function(BugClass::StrictEtherEquality, &format!("exactPot{id}")),
        ),
        BugClass::TxOriginUse => (
            format!(
                "    function adminReset{id}(uint256 v) public {{\n        require(tx.origin == owner);\n        s0 = v;\n    }}\n"
            ),
            Annotation::in_function(BugClass::TxOriginUse, &format!("adminReset{id}")),
        ),
        BugClass::UnhandledException => (
            format!(
                "    function spray{id}(address who) public payable {{\n        who.send(ledger[who] + 1);\n        ledger[who] = 0;\n    }}\n"
            ),
            Annotation::in_function(BugClass::UnhandledException, &format!("spray{id}")),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mufuzz_lang::compile_source;

    #[test]
    fn generated_contracts_compile_across_seeds() {
        for seed in 0..25u64 {
            let contract = generate_contract(&format!("Gen{seed}"), &GeneratorConfig::small(seed));
            let compiled = compile_source(&contract.source);
            assert!(
                compiled.is_ok(),
                "seed {seed} failed: {:?}\n{}",
                compiled.err(),
                contract.source
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_contract("X", &GeneratorConfig::small(42));
        let b = generate_contract("X", &GeneratorConfig::small(42));
        assert_eq!(a.source, b.source);
        let c = generate_contract("X", &GeneratorConfig::small(43));
        assert_ne!(a.source, c.source);
    }

    #[test]
    fn large_contracts_are_bigger_than_small_ones() {
        let small = generate_contract("S", &GeneratorConfig::small(7));
        let large = generate_contract("L", &GeneratorConfig::large(7));
        let small_instrs = compile_source(&small.source).unwrap().instruction_count();
        let large_instrs = compile_source(&large.source).unwrap().instruction_count();
        assert!(
            large_instrs > small_instrs * 2,
            "{small_instrs} vs {large_instrs}"
        );
    }

    #[test]
    fn injected_bugs_compile_and_carry_annotations() {
        for class in BugClass::ALL {
            let cfg = GeneratorConfig::small(11).with_bugs(vec![class]);
            let contract = generate_contract("Buggy", &cfg);
            assert!(contract.has_bug(class), "{class}");
            let compiled = compile_source(&contract.source);
            assert!(compiled.is_ok(), "{class}: {:?}", compiled.err());
        }
    }

    #[test]
    fn multiple_injected_bugs_in_one_contract() {
        let cfg = GeneratorConfig::small(3).with_bugs(vec![
            BugClass::Reentrancy,
            BugClass::IntegerOverflow,
            BugClass::TxOriginUse,
        ]);
        let contract = generate_contract("Multi", &cfg);
        assert_eq!(contract.annotations.len(), 3);
        assert!(compile_source(&contract.source).is_ok());
    }
}
