//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal, dependency-free implementation of the exact `rand` 0.8 API
//! subset the fuzzer uses: the [`Rng`] extension trait (`gen`, `gen_bool`,
//! `gen_range`), [`SeedableRng`], [`rngs::SmallRng`] (xoshiro256++, the same
//! family real `rand` 0.8 uses on 64-bit targets) and
//! [`seq::SliceRandom::shuffle`]. Swapping back to the real crate is a
//! one-line change in the workspace manifest.

#![warn(missing_docs)]

/// Low-level source of randomness: everything derives from [`RngCore::next_u64`].
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            let len = rem.len();
            rem.copy_from_slice(&bytes[..len]);
        }
    }
}

/// Types samplable by [`Rng::gen`] from the standard distribution.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1), matching rand's `Standard` for f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let offset = (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % span;
                ((self.start as i128).wrapping_add(offset as i128)) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128).wrapping_sub(start as i128) as u128 + 1;
                let offset = (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % span;
                ((start as i128).wrapping_add(offset as i128)) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // Clamp below `end`: for large-magnitude ranges the lerp can round up
        // to exactly `end`, which would violate the half-open contract.
        (self.start + f64::sample(rng) * (self.end - self.start)).min(self.end.next_down())
    }
}

/// User-facing random-value methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value from the standard distribution (uniform over the type).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} is outside [0.0, 1.0]");
        f64::sample(self) < p
    }

    /// Draws one value uniformly from `range`. Panics on an empty range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of RNGs from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The fixed-size byte seed.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (as real `rand` does).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut s).to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG (xoshiro256++), API-compatible
    /// with `rand::rngs::SmallRng` on 64-bit targets.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SmallRng {
        /// Exports the full xoshiro256++ state (for checkpointing a stream).
        ///
        /// Extension beyond the real `rand` 0.8 surface: the real crate
        /// reaches the generator state through `serde` on `rand_xoshiro`,
        /// which this offline shim cannot depend on.
        pub fn to_state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state previously returned by
        /// [`SmallRng::to_state`], continuing the stream exactly.
        pub fn from_state(state: [u64; 4]) -> Self {
            let mut s = state;
            if s == [0; 4] {
                // Preserve the no-all-zero invariant, as `from_seed` does.
                let mut fix = 0x6a09_e667_f3bc_c909;
                for word in &mut s {
                    *word = splitmix64(&mut fix);
                }
            }
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                let mut fix = 0x6a09_e667_f3bc_c909;
                for word in &mut s {
                    *word = splitmix64(&mut fix);
                }
            }
            SmallRng { s }
        }
    }
}

/// Random sequence operations, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&w));
            let f = rng.gen_range(0.0..2.5f64);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..17 {
            rng.gen::<u64>();
        }
        let mut resumed = SmallRng::from_state(rng.to_state());
        for _ in 0..100 {
            assert_eq!(rng.gen::<u64>(), resumed.gen::<u64>());
        }
    }

    #[test]
    fn all_zero_state_is_fixed_up() {
        let mut rng = SmallRng::from_state([0; 4]);
        assert_ne!(rng.gen::<u64>(), 0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
