//! The bug oracles: trace- and campaign-level detectors for the nine bug
//! classes (paper §IV-D).
//!
//! Each executed transaction produces an instrumented [`ExecutionTrace`];
//! [`CampaignMonitor::observe`] inspects it and accumulates deduplicated
//! [`BugFinding`]s. A few oracles (ether freezing, the repeated-invocation
//! variant of reentrancy) need campaign-wide context and are evaluated in
//! [`CampaignMonitor::finalize`].

use crate::bugs::{BugClass, BugFinding};
use mufuzz_evm::{CallKind, ExecutionTrace, Opcode, Taint, WorldState, U256};
use mufuzz_lang::CompiledContract;
use std::collections::{BTreeMap, BTreeSet};

/// A plain-data export of a [`CampaignMonitor`]'s accumulated state, used by
/// the campaign checkpoint/resume machinery to serialize a monitor and
/// rebuild it exactly (same findings, same invocation counts, same
/// held-balance flag) in a later process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MonitorState {
    /// The deduplicated findings, in the monitor's canonical
    /// `(class, function)` order.
    pub findings: Vec<BugFinding>,
    /// Per-function `call.value` invocation counts.
    pub call_value_invocations: Vec<(String, usize)>,
    /// Whether the contract ever held a positive balance.
    pub held_balance: bool,
}

/// Accumulates bug findings over a fuzzing campaign for one contract.
#[derive(Clone, Debug, Default)]
pub struct CampaignMonitor {
    findings: BTreeMap<(BugClass, Option<String>), BugFinding>,
    /// How many times each function that contains a `call.value`-style call
    /// has been invoked (for the repeated-invocation reentrancy signal).
    call_value_invocations: BTreeMap<String, usize>,
    /// Whether the contract ever held a positive balance during the campaign.
    held_balance: bool,
}

impl CampaignMonitor {
    /// Create an empty monitor.
    pub fn new() -> Self {
        Self::default()
    }

    fn record(&mut self, finding: BugFinding) {
        self.findings
            .entry((finding.class, finding.function.clone()))
            .or_insert(finding);
    }

    /// Attribute a pc in the outermost frame to a source function.
    fn function_of(
        compiled: &CompiledContract,
        trace: &ExecutionTrace,
        pc: usize,
    ) -> Option<String> {
        compiled
            .function_at_pc(pc)
            .map(|f| f.name.clone())
            .or_else(|| {
                trace
                    .entered_selector
                    .and_then(|sel| compiled.abi.by_selector(sel))
                    .map(|f| f.name.clone())
            })
    }

    /// Inspect a single transaction execution.
    pub fn observe(&mut self, compiled: &CompiledContract, trace: &ExecutionTrace) {
        self.observe_block_dependency(compiled, trace);
        self.observe_delegatecall(compiled, trace);
        self.observe_integer_overflow(compiled, trace);
        self.observe_reentrancy(compiled, trace);
        self.observe_selfdestruct(compiled, trace);
        self.observe_strict_equality(compiled, trace);
        self.observe_tx_origin(compiled, trace);
        self.observe_unhandled_exception(compiled, trace);
    }

    /// Record world-level observations (balance held by the contract).
    pub fn observe_world(&mut self, compiled_address_balance: U256) {
        if !compiled_address_balance.is_zero() {
            self.held_balance = true;
        }
    }

    fn observe_block_dependency(&mut self, compiled: &CompiledContract, trace: &ExecutionTrace) {
        // BD: a block-state value (TIMESTAMP/NUMBER) contaminates a JUMPI or a
        // CALL.
        for branch in &trace.branches {
            if branch.cond_taint.contains(Taint::BLOCK) {
                let function = Self::function_of(compiled, trace, branch.pc);
                self.record(BugFinding::new(
                    BugClass::BlockDependency,
                    function,
                    branch.pc,
                    "block timestamp/number influences a branch condition",
                ));
            }
        }
        for call in &trace.calls {
            if call.arg_taint.contains(Taint::BLOCK) {
                let function = call
                    .caller_selector
                    .and_then(|sel| compiled.abi.by_selector(sel))
                    .map(|f| f.name.clone())
                    .or_else(|| Self::function_of(compiled, trace, call.pc));
                self.record(BugFinding::new(
                    BugClass::BlockDependency,
                    function,
                    call.pc,
                    "block timestamp/number influences an external call",
                ));
            }
        }
    }

    fn observe_delegatecall(&mut self, compiled: &CompiledContract, trace: &ExecutionTrace) {
        // UD: a DELEGATECALL whose target/arguments are attacker influenced
        // (calldata taint) and whose surrounding function performed no caller
        // check before the call.
        for call in &trace.calls {
            if call.kind != CallKind::DelegateCall {
                continue;
            }
            let attacker_influenced = call.arg_taint.contains(Taint::CALLDATA);
            if attacker_influenced && !call.caller_guarded {
                let function = Self::function_of(compiled, trace, call.pc);
                self.record(BugFinding::new(
                    BugClass::UnprotectedDelegatecall,
                    function,
                    call.pc,
                    "delegatecall with attacker-controlled target and no access control",
                ));
            }
        }
    }

    fn observe_integer_overflow(&mut self, compiled: &CompiledContract, trace: &ExecutionTrace) {
        // IO: an ADD/SUB/MUL/EXP whose exact result was truncated in the EVM.
        for event in &trace.arith_events {
            if !event.truncated {
                continue;
            }
            // Require attacker influence or persistence so constant-folding
            // artefacts do not fire the oracle.
            let interesting = event.reached_storage
                || event
                    .taint
                    .intersects(Taint::CALLDATA | Taint::CALLVALUE | Taint::STORAGE);
            if interesting {
                let function = Self::function_of(compiled, trace, event.pc);
                self.record(BugFinding::new(
                    BugClass::IntegerOverflow,
                    function,
                    event.pc,
                    format!("{} result truncated to 256 bits", event.opcode.mnemonic()),
                ));
            }
        }
    }

    fn observe_reentrancy(&mut self, compiled: &CompiledContract, trace: &ExecutionTrace) {
        // RE (strong signal): an external call forwarding more than the 2300
        // gas stipend with value attached, and the trace shows the contract
        // being re-entered.
        for call in &trace.calls {
            if call.kind == CallKind::Call && call.gas > 2_300 && !call.value.is_zero() {
                let function = Self::function_of(compiled, trace, call.pc);
                if let Some(name) = &function {
                    *self.call_value_invocations.entry(name.clone()).or_insert(0) += 1;
                }
                if trace.reentered {
                    self.record(BugFinding::new(
                        BugClass::Reentrancy,
                        function,
                        call.pc,
                        "contract re-entered through a call.value invocation",
                    ));
                }
            }
        }
    }

    fn observe_selfdestruct(&mut self, compiled: &CompiledContract, trace: &ExecutionTrace) {
        // US: SELFDESTRUCT reachable without any caller check.
        for event in &trace.self_destructs {
            if !event.caller_guarded {
                let function = Self::function_of(compiled, trace, event.pc);
                self.record(BugFinding::new(
                    BugClass::UnprotectedSelfDestruct,
                    function,
                    event.pc,
                    "selfdestruct executed without a msg.sender/tx.origin guard",
                ));
            }
        }
    }

    fn observe_strict_equality(&mut self, compiled: &CompiledContract, trace: &ExecutionTrace) {
        // SE: a BALANCE value used in an equality comparison that guards a
        // branch.
        for branch in &trace.branches {
            if !branch.cond_taint.contains(Taint::BALANCE) {
                continue;
            }
            let is_equality = branch
                .comparison
                .map(|c| c.kind == mufuzz_evm::CmpKind::Eq)
                .unwrap_or(false);
            if is_equality {
                let function = Self::function_of(compiled, trace, branch.pc);
                self.record(BugFinding::new(
                    BugClass::StrictEtherEquality,
                    function,
                    branch.pc,
                    "contract balance compared for strict equality in a branch",
                ));
            }
        }
    }

    fn observe_tx_origin(&mut self, compiled: &CompiledContract, trace: &ExecutionTrace) {
        // TO: tx.origin used in a branch condition (authentication pattern).
        for branch in &trace.branches {
            if branch.cond_taint.contains(Taint::ORIGIN) {
                let function = Self::function_of(compiled, trace, branch.pc);
                self.record(BugFinding::new(
                    BugClass::TxOriginUse,
                    function,
                    branch.pc,
                    "tx.origin used in a branch condition",
                ));
            }
        }
    }

    fn observe_unhandled_exception(&mut self, compiled: &CompiledContract, trace: &ExecutionTrace) {
        // UE: a low-level call whose result never flows into a conditional
        // jump, while the callee failed or the call is a gas-stipend send.
        for call in &trace.calls {
            if call.kind != CallKind::Call || call.result_checked {
                continue;
            }
            let failed = !call.success || call.callee_exception;
            let unchecked_send = call.gas <= 2_300 && !call.value.is_zero();
            if failed || unchecked_send {
                let function = Self::function_of(compiled, trace, call.pc);
                self.record(BugFinding::new(
                    BugClass::UnhandledException,
                    function,
                    call.pc,
                    "return value of a low-level call is never checked",
                ));
            }
        }
    }

    /// Campaign-level checks that need global context: ether freezing and the
    /// repeated-invocation reentrancy signal.
    pub fn finalize(&mut self, compiled: &CompiledContract, world: Option<&WorldState>) {
        // EF: the contract can receive ether (a payable function exists) but
        // its runtime code contains no instruction that can ever move value
        // out (CALL/CALLCODE/DELEGATECALL/SELFDESTRUCT).
        let accepts_ether = compiled.abi.functions.iter().any(|f| f.payable)
            || compiled.contract.constructor_payable;
        if accepts_ether {
            let can_release = mufuzz_evm::disassemble(&compiled.runtime).iter().any(|i| {
                matches!(
                    i.opcode,
                    Opcode::Call | Opcode::CallCode | Opcode::DelegateCall | Opcode::SelfDestruct
                )
            });
            if !can_release {
                self.record(BugFinding::new(
                    BugClass::EtherFreezing,
                    None,
                    0,
                    "contract accepts ether but has no instruction that can release it",
                ));
            }
        }
        if let Some(world) = world {
            for (_, account) in world.accounts() {
                if !account.code.is_empty() && !account.balance.is_zero() {
                    self.held_balance = true;
                }
            }
        }
        // RE (weak signal): a function containing a call.value invocation was
        // exercised repeatedly during the campaign.
        let repeated: Vec<(String, usize)> = self
            .call_value_invocations
            .iter()
            .filter(|(_, &count)| count >= 2)
            .map(|(name, &count)| (name.clone(), count))
            .collect();
        for (name, count) in repeated {
            self.record(BugFinding::new(
                BugClass::Reentrancy,
                Some(name),
                0,
                format!("call.value function invoked {count} times during the campaign"),
            ));
        }
    }

    /// Merge another monitor's observations into this one.
    ///
    /// Used by the parallel campaign engine: every worker observes traces
    /// into a thread-local monitor — oracle bookkeeping, like the atomic
    /// coverage bitmap, never touches the shared campaign-state mutex — and
    /// the per-worker monitors are merged (in worker order) before
    /// [`CampaignMonitor::finalize`]. Findings deduplicate by
    /// `(class, function)` exactly as sequential observation does,
    /// invocation counts add up, and the held-balance flag ors.
    ///
    /// ```
    /// use mufuzz_oracles::CampaignMonitor;
    /// use mufuzz_evm::U256;
    ///
    /// let mut main = CampaignMonitor::new();
    /// let mut worker = CampaignMonitor::new();
    /// worker.observe_world(U256::from_u64(5)); // the contract held ether
    /// main.merge(worker);
    /// // World observations merge silently; they only become findings (e.g.
    /// // ether freezing) at finalisation.
    /// assert!(main.findings().is_empty());
    /// ```
    pub fn merge(&mut self, other: CampaignMonitor) {
        for (key, finding) in other.findings {
            self.findings.entry(key).or_insert(finding);
        }
        for (name, count) in other.call_value_invocations {
            *self.call_value_invocations.entry(name).or_insert(0) += count;
        }
        self.held_balance |= other.held_balance;
    }

    /// All deduplicated findings so far.
    pub fn findings(&self) -> Vec<BugFinding> {
        self.findings.values().cloned().collect()
    }

    /// Findings restricted to one bug class.
    pub fn findings_of(&self, class: BugClass) -> Vec<BugFinding> {
        self.findings
            .values()
            .filter(|f| f.class == class)
            .cloned()
            .collect()
    }

    /// The set of bug classes observed.
    pub fn detected_classes(&self) -> BTreeSet<BugClass> {
        self.findings.keys().map(|(c, _)| *c).collect()
    }

    /// Export the monitor's full accumulated state for checkpointing.
    pub fn export_state(&self) -> MonitorState {
        MonitorState {
            findings: self.findings(),
            call_value_invocations: self
                .call_value_invocations
                .iter()
                .map(|(name, &count)| (name.clone(), count))
                .collect(),
            held_balance: self.held_balance,
        }
    }

    /// Rebuild a monitor from an exported state. The round trip is exact:
    /// `CampaignMonitor::from_state(m.export_state())` observes, merges and
    /// finalizes identically to `m`.
    pub fn from_state(state: MonitorState) -> CampaignMonitor {
        let mut monitor = CampaignMonitor::new();
        for finding in state.findings {
            monitor.record(finding);
        }
        monitor.call_value_invocations = state.call_value_invocations.into_iter().collect();
        monitor.held_balance = state.held_balance;
        monitor
    }

    /// Number of deduplicated findings.
    pub fn len(&self) -> usize {
        self.findings.len()
    }

    /// True if nothing has been found.
    pub fn is_empty(&self) -> bool {
        self.findings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mufuzz_evm::{ether, Account, Address, BlockEnv, Evm, HostBehaviour, Message, WorldState};
    use mufuzz_lang::{compile_source, AbiValue};

    struct Rig {
        world: WorldState,
        compiled: CompiledContract,
        contract: Address,
        sender: Address,
        monitor: CampaignMonitor,
    }

    impl Rig {
        fn new(src: &str) -> Rig {
            let compiled = compile_source(src).unwrap();
            let sender = Address::from_low_u64(0xAA);
            let contract = Address::from_low_u64(0xC0DE);
            let mut world = WorldState::new();
            world.put_account(sender, Account::eoa(ether(1_000)));
            let mut evm = Evm::new(&mut world, BlockEnv::default());
            let deployed = evm.deploy(
                sender,
                contract,
                &compiled.constructor,
                compiled.runtime.clone(),
                U256::ZERO,
                vec![],
            );
            assert!(deployed.success, "{:?}", deployed.halt);
            Rig {
                world,
                compiled,
                contract,
                sender,
                monitor: CampaignMonitor::new(),
            }
        }

        fn call(&mut self, function: &str, args: &[AbiValue], value: U256) {
            let abi = self.compiled.abi.function(function).unwrap().clone();
            let data = abi.encode_call(args);
            let mut evm = Evm::new(&mut self.world, BlockEnv::default());
            let result = evm.execute(&Message::new(self.sender, self.contract, value, data));
            self.monitor.observe(&self.compiled, &result.trace);
        }

        fn classes(&mut self) -> BTreeSet<BugClass> {
            self.monitor.finalize(&self.compiled, Some(&self.world));
            self.monitor.detected_classes()
        }
    }

    #[test]
    fn detects_block_dependency() {
        let mut rig = Rig::new(
            r#"contract Lottery {
                mapping(address => uint256) wins;
                function play() public payable {
                    if (block.timestamp % 2 == 0) {
                        wins[msg.sender] += msg.value;
                    }
                }
            }"#,
        );
        rig.call("play", &[], U256::from_u64(10));
        let classes = rig.classes();
        assert!(classes.contains(&BugClass::BlockDependency));
    }

    #[test]
    fn detects_unprotected_delegatecall_and_ignores_guarded_one() {
        let mut rig = Rig::new(
            r#"contract Proxy {
                address owner;
                constructor() public { owner = msg.sender; }
                function open(address target, uint256 data) public { target.delegatecall(data); }
                function guarded(address target, uint256 data) public {
                    require(msg.sender == owner);
                    target.delegatecall(data);
                }
            }"#,
        );
        rig.call(
            "open",
            &[
                AbiValue::Address(Address::from_low_u64(0x99)),
                AbiValue::Uint(U256::from_u64(1)),
            ],
            U256::ZERO,
        );
        rig.call(
            "guarded",
            &[
                AbiValue::Address(Address::from_low_u64(0x99)),
                AbiValue::Uint(U256::from_u64(1)),
            ],
            U256::ZERO,
        );
        rig.monitor.finalize(&rig.compiled, Some(&rig.world));
        let findings = rig.monitor.findings_of(BugClass::UnprotectedDelegatecall);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].function.as_deref(), Some("open"));
    }

    #[test]
    fn detects_integer_overflow_reaching_storage() {
        let mut rig = Rig::new(
            r#"contract Token {
                mapping(address => uint256) balance;
                function mint(uint256 amount) public {
                    balance[msg.sender] += amount * 1000000000000000000;
                }
            }"#,
        );
        rig.call("mint", &[AbiValue::Uint(U256::MAX)], U256::ZERO);
        assert!(rig.classes().contains(&BugClass::IntegerOverflow));
    }

    #[test]
    fn no_overflow_for_small_values() {
        let mut rig = Rig::new(
            r#"contract Token {
                mapping(address => uint256) balance;
                function mint(uint256 amount) public {
                    balance[msg.sender] += amount;
                }
            }"#,
        );
        rig.call("mint", &[AbiValue::Uint(U256::from_u64(5))], U256::ZERO);
        assert!(!rig.classes().contains(&BugClass::IntegerOverflow));
    }

    #[test]
    fn detects_reentrancy_with_attacker_account() {
        let mut rig = Rig::new(
            r#"contract Bank {
                mapping(address => uint256) balances;
                function deposit() public payable { balances[msg.sender] += msg.value; }
                function withdraw() public {
                    if (balances[msg.sender] > 0) {
                        msg.sender.call.value(balances[msg.sender])();
                        balances[msg.sender] = 0;
                    }
                }
            }"#,
        );
        // Make the sender a re-entrant attacker that calls withdraw() again.
        let withdraw_selector = rig.compiled.abi.function("withdraw").unwrap().selector;
        rig.world.account_mut(rig.sender).behaviour = HostBehaviour::ReentrantAttacker {
            callback_data: withdraw_selector.to_vec(),
            max_depth: 3,
        };
        rig.call("deposit", &[], ether(1));
        rig.call("withdraw", &[], U256::ZERO);
        assert!(rig.classes().contains(&BugClass::Reentrancy));
    }

    #[test]
    fn detects_unprotected_selfdestruct_only_without_guard() {
        let mut rig = Rig::new(
            r#"contract Killable {
                address owner;
                constructor() public { owner = msg.sender; }
                function boom() public { selfdestruct(msg.sender); }
            }"#,
        );
        rig.call("boom", &[], U256::ZERO);
        assert!(rig.classes().contains(&BugClass::UnprotectedSelfDestruct));

        let mut guarded = Rig::new(
            r#"contract Killable {
                address owner;
                constructor() public { owner = msg.sender; }
                function boom() public {
                    require(msg.sender == owner);
                    selfdestruct(msg.sender);
                }
            }"#,
        );
        guarded.call("boom", &[], U256::ZERO);
        assert!(!guarded
            .classes()
            .contains(&BugClass::UnprotectedSelfDestruct));
    }

    #[test]
    fn detects_strict_ether_equality() {
        let mut rig = Rig::new(
            r#"contract Strict {
                uint256 prize;
                function check() public payable {
                    if (address(this).balance == 1 ether) { prize = 1; }
                }
            }"#,
        );
        rig.call("check", &[], U256::from_u64(5));
        assert!(rig.classes().contains(&BugClass::StrictEtherEquality));
    }

    #[test]
    fn detects_tx_origin_use() {
        let mut rig = Rig::new(
            r#"contract Auth {
                address owner;
                uint256 flag;
                constructor() public { owner = msg.sender; }
                function sensitive() public {
                    require(tx.origin == owner);
                    flag = 1;
                }
            }"#,
        );
        rig.call("sensitive", &[], U256::ZERO);
        assert!(rig.classes().contains(&BugClass::TxOriginUse));
    }

    #[test]
    fn detects_unhandled_exception_for_unchecked_send() {
        let mut rig = Rig::new(
            r#"contract Pay {
                uint256 sent;
                function payout(address to, uint256 amount) public payable {
                    to.send(amount);
                    sent += amount;
                }
            }"#,
        );
        rig.call(
            "payout",
            &[
                AbiValue::Address(Address::from_low_u64(0x55)),
                AbiValue::Uint(U256::from_u64(1)),
            ],
            U256::from_u64(10),
        );
        assert!(rig.classes().contains(&BugClass::UnhandledException));
    }

    #[test]
    fn checked_send_is_not_reported() {
        let mut rig = Rig::new(
            r#"contract Pay {
                uint256 sent;
                function payout(address to, uint256 amount) public payable {
                    require(to.send(amount));
                    sent += amount;
                }
            }"#,
        );
        rig.call(
            "payout",
            &[
                AbiValue::Address(Address::from_low_u64(0x55)),
                AbiValue::Uint(U256::from_u64(1)),
            ],
            U256::from_u64(10),
        );
        assert!(!rig.classes().contains(&BugClass::UnhandledException));
    }

    #[test]
    fn detects_ether_freezing_statically() {
        let mut rig = Rig::new(
            r#"contract Vault {
                uint256 total;
                function lock() public payable { total += msg.value; }
            }"#,
        );
        rig.call("lock", &[], ether(1));
        assert!(rig.classes().contains(&BugClass::EtherFreezing));

        // A contract with a withdraw path is not frozen.
        let mut ok = Rig::new(
            r#"contract Vault {
                uint256 total;
                function lock() public payable { total += msg.value; }
                function release() public { msg.sender.transfer(total); }
            }"#,
        );
        ok.call("lock", &[], ether(1));
        assert!(!ok.classes().contains(&BugClass::EtherFreezing));
    }

    #[test]
    fn merged_monitors_deduplicate_and_accumulate() {
        let src = r#"contract Bank {
            mapping(address => uint256) balances;
            function deposit() public payable { balances[msg.sender] += msg.value; }
            function withdraw() public {
                if (balances[msg.sender] > 0) {
                    msg.sender.call.value(balances[msg.sender])();
                    balances[msg.sender] = 0;
                }
            }
        }"#;
        // Two "workers" each observe one deposit+withdraw round; neither sees
        // the repeated call.value invocation on its own.
        let mut a = Rig::new(src);
        a.call("deposit", &[], ether(1));
        a.call("withdraw", &[], U256::ZERO);
        let mut b = Rig::new(src);
        b.call("deposit", &[], ether(1));
        b.call("withdraw", &[], U256::ZERO);

        let compiled = a.compiled.clone();
        let mut merged = a.monitor;
        merged.merge(b.monitor);
        merged.finalize(&compiled, None);
        // The weak repeated-invocation reentrancy signal only fires once the
        // per-worker invocation counts are summed.
        assert!(merged.detected_classes().contains(&BugClass::Reentrancy));

        // Merging the same findings twice does not duplicate them.
        let before = merged.len();
        merged.merge(CampaignMonitor::new());
        assert_eq!(merged.len(), before);
    }

    #[test]
    fn monitor_state_round_trip_is_exact() {
        let src = r#"contract Bank {
            mapping(address => uint256) balances;
            function deposit() public payable { balances[msg.sender] += msg.value; }
            function withdraw() public {
                if (balances[msg.sender] > 0) {
                    msg.sender.call.value(balances[msg.sender])();
                    balances[msg.sender] = 0;
                }
            }
        }"#;
        let mut rig = Rig::new(src);
        rig.call("deposit", &[], ether(1));
        rig.call("withdraw", &[], U256::ZERO);
        rig.call("deposit", &[], ether(1));
        rig.call("withdraw", &[], U256::ZERO);
        rig.monitor.observe_world(U256::from_u64(3));

        let exported = rig.monitor.export_state();
        let mut restored = CampaignMonitor::from_state(exported.clone());
        assert_eq!(restored.export_state(), exported);

        // The restored monitor finalizes to the same detections as the
        // original (the repeated call.value signal survives the round trip).
        let compiled = rig.compiled.clone();
        rig.monitor.finalize(&compiled, None);
        restored.finalize(&compiled, None);
        assert_eq!(restored.findings(), rig.monitor.findings());
        assert!(restored.detected_classes().contains(&BugClass::Reentrancy));
    }

    #[test]
    fn findings_are_deduplicated_across_transactions() {
        let mut rig = Rig::new(
            r#"contract Lottery {
                uint256 wins;
                function play() public payable {
                    if (block.timestamp % 2 == 0) { wins += 1; }
                }
            }"#,
        );
        rig.call("play", &[], U256::ZERO);
        rig.call("play", &[], U256::ZERO);
        rig.call("play", &[], U256::ZERO);
        rig.monitor.finalize(&rig.compiled, Some(&rig.world));
        assert_eq!(rig.monitor.findings_of(BugClass::BlockDependency).len(), 1);
    }
}
