//! Transaction inputs, sequences and seeds.
//!
//! A test case for a stateful contract is a *sequence* of transactions, each
//! with a callee function, a sender, an ether value and ABI-encoded argument
//! bytes. MuFuzz internally represents the mutable part of every transaction
//! as a byte stream (`value ‖ args`), which is what the mask-guided mutation
//! operates on (paper §IV-B).

use crate::mutation::MutationMask;
use mufuzz_evm::U256;
use mufuzz_lang::FunctionAbi;

/// Number of leading bytes of the mutable stream that encode the ether value.
pub const VALUE_BYTES: usize = 32;

/// One transaction in a sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxInput {
    /// Name of the called function (resolved against the contract ABI).
    pub function: String,
    /// Index into the fuzzer's sender pool.
    pub sender_index: usize,
    /// Mutable byte stream: the first 32 bytes are the ether value, the rest
    /// are the ABI-encoded arguments (without the selector).
    pub stream: Vec<u8>,
}

impl TxInput {
    /// Build a transaction with the given value and argument words.
    pub fn new(function: &str, sender_index: usize, value: U256, arg_words: &[U256]) -> TxInput {
        let mut stream = value.to_be_bytes().to_vec();
        for w in arg_words {
            stream.extend_from_slice(&w.to_be_bytes());
        }
        TxInput {
            function: function.to_string(),
            sender_index,
            stream,
        }
    }

    /// Build a zero-argument, zero-value transaction.
    pub fn simple(function: &str) -> TxInput {
        TxInput::new(function, 0, U256::ZERO, &[])
    }

    /// The ether value encoded in the stream.
    pub fn value(&self) -> U256 {
        if self.stream.len() >= VALUE_BYTES {
            U256::from_be_slice(&self.stream[..VALUE_BYTES])
        } else {
            U256::from_be_slice(&self.stream)
        }
    }

    /// Overwrite the encoded ether value.
    pub fn set_value(&mut self, value: U256) {
        if self.stream.len() < VALUE_BYTES {
            self.stream.resize(VALUE_BYTES, 0);
        }
        self.stream[..VALUE_BYTES].copy_from_slice(&value.to_be_bytes());
    }

    /// The argument bytes (after the value prefix).
    pub fn arg_bytes(&self) -> &[u8] {
        if self.stream.len() > VALUE_BYTES {
            &self.stream[VALUE_BYTES..]
        } else {
            &[]
        }
    }

    /// Build the full calldata for this transaction given its ABI entry.
    ///
    /// ABIs whose parameters are all static one-word types (every
    /// toy-language contract) use the raw word layout — selector followed by
    /// argument words, padded/truncated to the declared parameter count — so
    /// mutated bytes land in calldata verbatim. ABIs with wider types
    /// (ingested real contracts) interpret the same stream as 32-byte lanes
    /// and shape them into typed, canonically encoded arguments, so mutants
    /// stay type-shaped: dynamic `bytes`/`string` get real length prefixes,
    /// arrays get element counts, addresses are masked to 160 bits.
    pub fn calldata(&self, abi: &FunctionAbi) -> Vec<u8> {
        if abi.all_static_words() {
            let mut data = abi.selector.to_vec();
            let args = self.arg_bytes();
            let wanted = 32 * abi.inputs.len();
            for i in 0..wanted {
                data.push(args.get(i).copied().unwrap_or(0));
            }
            return data;
        }
        let lanes: Vec<U256> = (0..abi.lane_count()).map(|i| self.arg_word(i)).collect();
        abi.encode_call(&abi.values_from_lanes(&lanes))
    }

    /// Read the i-th argument word.
    pub fn arg_word(&self, index: usize) -> U256 {
        let args = self.arg_bytes();
        let start = index * 32;
        if start >= args.len() {
            return U256::ZERO;
        }
        let end = (start + 32).min(args.len());
        U256::from_be_slice(&args[start..end])
    }

    /// Overwrite the i-th argument word (growing the stream if needed).
    pub fn set_arg_word(&mut self, index: usize, value: U256) {
        let needed = VALUE_BYTES + 32 * (index + 1);
        if self.stream.len() < needed {
            self.stream.resize(needed, 0);
        }
        let start = VALUE_BYTES + 32 * index;
        self.stream[start..start + 32].copy_from_slice(&value.to_be_bytes());
    }
}

/// A transaction sequence: the unit the fuzzer executes and mutates.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Sequence {
    /// Transactions in execution order (the constructor is implicit).
    pub txs: Vec<TxInput>,
}

impl Sequence {
    /// Build a sequence from transactions.
    pub fn new(txs: Vec<TxInput>) -> Sequence {
        Sequence { txs }
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.txs.len()
    }

    /// True if the sequence has no transactions.
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    /// Total length of all mutable byte streams.
    pub fn total_stream_len(&self) -> usize {
        self.txs.iter().map(|t| t.stream.len()).sum()
    }

    /// Function-name fingerprint, e.g. `invest->refund->invest->withdraw`.
    pub fn shape(&self) -> String {
        self.txs
            .iter()
            .map(|t| t.function.as_str())
            .collect::<Vec<_>>()
            .join("->")
    }
}

/// A seed: a sequence plus the feedback recorded when it was executed.
#[derive(Clone, Debug, PartialEq)]
pub struct Seed {
    /// Stable corpus identity, assigned at admission. Unlike the seed's
    /// position in the corpus vector, the uid survives corpus culling, so
    /// deferred work (mask probe write-back) can find its seed again.
    pub uid: u64,
    /// The input sequence.
    pub sequence: Sequence,
    /// Branch edges this seed covered when executed, as sorted dense ids from
    /// the harness's [`mufuzz_analysis::EdgeIndex`].
    pub covered_edge_ids: Vec<u32>,
    /// Number of new edges it contributed when it was admitted to the queue.
    pub new_edges: usize,
    /// Whether the seed reached a deeply nested branch.
    pub hits_nested_branch: bool,
    /// Energy weight from the pre-fuzz branch-weighting pass (Algorithm 3).
    pub weight: f64,
    /// Best (smallest) normalised distance this seed achieved to any
    /// still-uncovered branch edge.
    pub best_distance: Option<f64>,
    /// Number of times this seed has been selected for mutation.
    pub selections: usize,
    /// Lazily computed mutation masks, one per transaction (Algorithm 2).
    pub masks: Option<Vec<MutationMask>>,
    /// Set while a worker is probing this seed's masks so concurrent workers
    /// do not duplicate the (expensive) probe executions.
    pub masks_pending: bool,
}

impl Seed {
    /// Wrap a sequence with empty feedback.
    pub fn new(sequence: Sequence) -> Seed {
        Seed {
            uid: 0,
            sequence,
            covered_edge_ids: Vec::new(),
            new_edges: 0,
            hits_nested_branch: false,
            weight: 1.0,
            best_distance: None,
            selections: 0,
            masks: None,
            masks_pending: false,
        }
    }

    /// Corpus-culling domination check: `self` is dominated by `other` when
    /// its covered-edge set is a subset of `other`'s and it has no better
    /// (smaller) branch-distance score. A dominated seed can be dropped from
    /// the corpus without shrinking the reachable coverage frontier.
    ///
    /// The relation is deliberately a *strict* partial order: when two seeds
    /// are equivalent (same edges, same distance), only the earlier-admitted
    /// one (smaller uid) dominates, so culling can never drop both of a pair.
    pub fn is_dominated_by(&self, other: &Seed) -> bool {
        if !sorted_subset(&self.covered_edge_ids, &other.covered_edge_ids) {
            return false;
        }
        // Smaller distance-to-uncovered is better; a seed with no distance
        // signal is never better than one with it.
        let mine = self.best_distance.unwrap_or(f64::INFINITY);
        let theirs = other.best_distance.unwrap_or(f64::INFINITY);
        if mine < theirs {
            return false;
        }
        // Strictness tie-break for fully equivalent seeds.
        self.covered_edge_ids.len() < other.covered_edge_ids.len()
            || theirs < mine
            || other.uid < self.uid
    }
}

/// True when sorted id slice `a` is a subset of sorted id slice `b`.
fn sorted_subset(a: &[u32], b: &[u32]) -> bool {
    let mut b_iter = b.iter();
    'outer: for x in a {
        for y in b_iter.by_ref() {
            match y.cmp(x) {
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
                std::cmp::Ordering::Less => {}
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use mufuzz_lang::ParamType;

    fn abi2() -> FunctionAbi {
        FunctionAbi {
            name: "f".into(),
            inputs: vec![ParamType::Uint256, ParamType::Address],
            payable: true,
            selector: [0xde, 0xad, 0xbe, 0xef],
        }
    }

    #[test]
    fn value_and_args_roundtrip() {
        let tx = TxInput::new(
            "f",
            1,
            U256::from_u64(555),
            &[U256::from_u64(7), U256::from_u64(9)],
        );
        assert_eq!(tx.value(), U256::from_u64(555));
        assert_eq!(tx.arg_word(0), U256::from_u64(7));
        assert_eq!(tx.arg_word(1), U256::from_u64(9));
        assert_eq!(tx.arg_word(5), U256::ZERO);
        assert_eq!(tx.stream.len(), 32 * 3);
    }

    #[test]
    fn setters_extend_short_streams() {
        let mut tx = TxInput::simple("f");
        assert_eq!(tx.stream.len(), 32);
        tx.set_arg_word(1, U256::from_u64(11));
        assert_eq!(tx.arg_word(1), U256::from_u64(11));
        assert_eq!(tx.arg_word(0), U256::ZERO);
        tx.set_value(U256::from_u64(3));
        assert_eq!(tx.value(), U256::from_u64(3));
    }

    #[test]
    fn calldata_pads_and_truncates_to_abi_arity() {
        let abi = abi2();
        // Too few argument bytes: padded with zeros.
        let short = TxInput::new("f", 0, U256::ZERO, &[U256::from_u64(1)]);
        let data = short.calldata(&abi);
        assert_eq!(data.len(), 4 + 64);
        assert_eq!(&data[..4], &abi.selector);
        // Too many argument bytes: truncated.
        let long = TxInput::new(
            "f",
            0,
            U256::ZERO,
            &[U256::from_u64(1), U256::from_u64(2), U256::from_u64(3)],
        );
        assert_eq!(long.calldata(&abi).len(), 4 + 64);
    }

    #[test]
    fn truncated_value_stream_still_decodes() {
        let mut tx = TxInput::simple("f");
        tx.stream.truncate(5);
        // value() falls back to interpreting whatever is left.
        assert_eq!(tx.value(), U256::ZERO);
        assert!(tx.arg_bytes().is_empty());
    }

    #[test]
    fn sequence_shape_and_lengths() {
        let seq = Sequence::new(vec![
            TxInput::simple("invest"),
            TxInput::simple("refund"),
            TxInput::simple("invest"),
            TxInput::simple("withdraw"),
        ]);
        assert_eq!(seq.len(), 4);
        assert_eq!(seq.shape(), "invest->refund->invest->withdraw");
        assert_eq!(seq.total_stream_len(), 4 * 32);
        assert!(!seq.is_empty());
    }

    #[test]
    fn seed_defaults() {
        let seed = Seed::new(Sequence::new(vec![TxInput::simple("f")]));
        assert_eq!(seed.uid, 0);
        assert_eq!(seed.new_edges, 0);
        assert!(seed.covered_edge_ids.is_empty());
        assert!(!seed.hits_nested_branch);
        assert_eq!(seed.weight, 1.0);
        assert!(seed.best_distance.is_none());
    }

    fn seed_with(uid: u64, ids: &[u32], distance: Option<f64>) -> Seed {
        let mut seed = Seed::new(Sequence::new(vec![TxInput::simple("f")]));
        seed.uid = uid;
        seed.covered_edge_ids = ids.to_vec();
        seed.best_distance = distance;
        seed
    }

    #[test]
    fn subset_with_worse_distance_is_dominated() {
        let small = seed_with(1, &[2, 5], Some(0.8));
        let big = seed_with(2, &[1, 2, 5, 9], Some(0.3));
        assert!(small.is_dominated_by(&big));
        assert!(!big.is_dominated_by(&small));
    }

    #[test]
    fn better_distance_protects_a_subset_seed() {
        let close = seed_with(1, &[2, 5], Some(0.1));
        let big = seed_with(2, &[1, 2, 5, 9], Some(0.3));
        assert!(!close.is_dominated_by(&big));
        // ...and a seed with *no* distance signal never protects itself.
        let blind = seed_with(3, &[2, 5], None);
        assert!(blind.is_dominated_by(&big));
    }

    #[test]
    fn non_subset_edge_sets_never_dominate() {
        let a = seed_with(1, &[1, 3], Some(0.5));
        let b = seed_with(2, &[1, 2, 4, 5], Some(0.1));
        assert!(!a.is_dominated_by(&b));
        assert!(!b.is_dominated_by(&a));
    }

    #[test]
    fn equivalent_seeds_cannot_drop_each_other() {
        let a = seed_with(1, &[1, 2], Some(0.5));
        let b = seed_with(2, &[1, 2], Some(0.5));
        // Only the earlier seed dominates, never both ways.
        assert!(b.is_dominated_by(&a));
        assert!(!a.is_dominated_by(&b));
        // No seed dominates itself.
        assert!(!a.is_dominated_by(&a));
    }

    #[test]
    fn empty_edge_set_is_dominated_by_anything_no_closer() {
        let empty = seed_with(5, &[], None);
        let any = seed_with(6, &[1], None);
        assert!(empty.is_dominated_by(&any));
        assert!(!any.is_dominated_by(&empty));
    }
}
