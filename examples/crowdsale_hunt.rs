//! The paper's motivating example (Figure 1): hunting the bug guarded by
//! `phase == 1` in the Crowdsale contract.
//!
//! The bug is only reachable when `invest` is executed twice before
//! `withdraw`. This example shows the three MuFuzz steps: the data-flow
//! analysis that orders the transactions, the RAW-based sequence mutation
//! that repeats `invest`, and a head-to-head fuzzing run against an
//! sFuzz-style random-ordering baseline.
//!
//! Run with:
//! ```text
//! cargo run --example crowdsale_hunt
//! ```

use mufuzz_analysis::{analyze_contract, plan_sequence};
use mufuzz_baselines::{FuzzRequest, FuzzingStrategy, MuFuzzStrategy, SFuzzStrategy};
use mufuzz_corpus::contracts;
use mufuzz_lang::compile_source;

fn main() {
    let source = contracts::crowdsale().source;
    let compiled = compile_source(&source).expect("crowdsale compiles");

    // Step 1-2: data-flow analysis and sequence planning (paper §IV-A).
    let flow = analyze_contract(&compiled.contract);
    for function in &flow.functions {
        println!(
            "{:<10} reads {:?} writes {:?} raw {:?}",
            function.name, function.reads, function.writes, function.raw_vars
        );
    }
    let plan = plan_sequence(&flow);
    println!("\nbase sequence    : {}", plan.base_order.join(" -> "));
    println!("mutated sequence : {}", plan.mutated_order.join(" -> "));
    println!("repeat candidates: {:?}\n", plan.repeat_candidates);

    // Step 3-4: fuzz and compare against an sFuzz-style baseline.
    let req = FuzzRequest::new(800, 7);
    let mufuzz_report = MuFuzzStrategy
        .fuzz(compile_source(&source).unwrap(), &req)
        .unwrap();
    let sfuzz_report = SFuzzStrategy
        .fuzz(compile_source(&source).unwrap(), &req)
        .unwrap();

    println!(
        "MuFuzz : {:.1}% coverage ({}/{} edges), {} seeds",
        mufuzz_report.coverage_percent(),
        mufuzz_report.covered_edges,
        mufuzz_report.total_edges,
        mufuzz_report.corpus_size
    );
    println!(
        "sFuzz  : {:.1}% coverage ({}/{} edges), {} seeds",
        sfuzz_report.coverage_percent(),
        sfuzz_report.covered_edges,
        sfuzz_report.total_edges,
        sfuzz_report.corpus_size
    );
    println!("\nsequences that contributed new coverage for MuFuzz (note the repeated invest):");
    for shape in mufuzz_report.interesting_shapes.iter().take(8) {
        println!("  {shape}");
    }
}
