//! Baseline fuzzing strategies.
//!
//! The paper compares MuFuzz against sFuzz, ConFuzzius, Smartian and IR-Fuzz
//! (§V-A). We re-implement each tool's *strategy* on top of the shared
//! EVM/compiler substrate, so differences in the results isolate exactly the
//! algorithmic choices the paper attributes its gains to:
//!
//! | Tool            | sequence ordering | repetition | mask | distance | energy |
//! |-----------------|-------------------|------------|------|----------|--------|
//! | sFuzz-like      | random            | no         | no   | yes      | fixed  |
//! | ConFuzzius-like | data-flow         | no         | no   | yes      | fixed  |
//! | Smartian-like   | data-flow         | no         | no   | no       | fixed  |
//! | IR-Fuzz-like    | data-flow         | yes        | no   | yes      | dynamic|
//! | MuFuzz          | data-flow         | yes        | yes  | yes      | dynamic|

use mufuzz::{CampaignReport, Fuzzer, FuzzerConfig, HarnessError};
use mufuzz_lang::CompiledContract;

/// A named fuzzing strategy that can be run on a compiled contract.
///
/// Strategies are stateless descriptions (the RNG seed is passed per run), so
/// they are `Send + Sync` and experiments can fan campaigns out over threads.
pub trait FuzzingStrategy: Send + Sync {
    /// Display name used in tables and figures.
    fn name(&self) -> &'static str;

    /// The configuration this strategy uses for a given budget and RNG seed.
    fn config(&self, max_executions: usize, rng_seed: u64) -> FuzzerConfig;

    /// Run a campaign on one contract with a single worker thread.
    ///
    /// Experiments fan out across *contracts* (see
    /// `mufuzz_bench::parallel_map`), so per-campaign parallelism stays off
    /// by default and every strategy run is deterministic for a seed.
    fn fuzz(
        &self,
        compiled: CompiledContract,
        max_executions: usize,
        rng_seed: u64,
    ) -> Result<CampaignReport, HarnessError> {
        self.fuzz_with_workers(compiled, max_executions, rng_seed, 1)
    }

    /// Run a campaign on one contract with an explicit worker-thread count
    /// (the `--workers` knob of the figure binaries). Campaigns with more
    /// than one worker are not deterministic.
    fn fuzz_with_workers(
        &self,
        compiled: CompiledContract,
        max_executions: usize,
        rng_seed: u64,
        workers: usize,
    ) -> Result<CampaignReport, HarnessError> {
        let config = self.config(max_executions, rng_seed).with_workers(workers);
        let mut fuzzer = Fuzzer::new(compiled, config)?;
        Ok(fuzzer.run())
    }
}

/// The full MuFuzz system.
#[derive(Clone, Copy, Debug, Default)]
pub struct MuFuzzStrategy;

impl FuzzingStrategy for MuFuzzStrategy {
    fn name(&self) -> &'static str {
        "MuFuzz"
    }

    fn config(&self, max_executions: usize, rng_seed: u64) -> FuzzerConfig {
        FuzzerConfig::mufuzz(max_executions).with_rng_seed(rng_seed)
    }
}

/// sFuzz-style baseline: random transaction ordering, AFL-style unrestricted
/// mutation, branch-distance seed selection, fixed energy.
#[derive(Clone, Copy, Debug, Default)]
pub struct SFuzzStrategy;

impl FuzzingStrategy for SFuzzStrategy {
    fn name(&self) -> &'static str {
        "sFuzz"
    }

    fn config(&self, max_executions: usize, rng_seed: u64) -> FuzzerConfig {
        let mut config = FuzzerConfig::mufuzz(max_executions)
            .with_rng_seed(rng_seed)
            .without_sequence_aware()
            .without_mask_guidance()
            .without_dynamic_energy();
        // sFuzz mutates with AFL's fixed interesting values; it has no
        // component that extracts comparison constants from the contract.
        config.harvest_constants = false;
        config
    }
}

/// ConFuzzius-style baseline: data-dependency transaction ordering (but no
/// consecutive repetition), unrestricted mutation, branch-distance feedback.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConFuzziusStrategy;

impl FuzzingStrategy for ConFuzziusStrategy {
    fn name(&self) -> &'static str {
        "ConFuzzius"
    }

    fn config(&self, max_executions: usize, rng_seed: u64) -> FuzzerConfig {
        FuzzerConfig::mufuzz(max_executions)
            .with_rng_seed(rng_seed)
            .without_sequence_repetition()
            .without_mask_guidance()
            .without_dynamic_energy()
    }
}

/// Smartian-style baseline: static + dynamic data-flow ordering, no branch
/// distance feedback, no repetition, no masking.
#[derive(Clone, Copy, Debug, Default)]
pub struct SmartianStrategy;

impl FuzzingStrategy for SmartianStrategy {
    fn name(&self) -> &'static str {
        "Smartian"
    }

    fn config(&self, max_executions: usize, rng_seed: u64) -> FuzzerConfig {
        let mut config = FuzzerConfig::mufuzz(max_executions)
            .with_rng_seed(rng_seed)
            .without_sequence_repetition()
            .without_mask_guidance()
            .without_dynamic_energy();
        config.enable_branch_distance = false;
        config
    }
}

/// IR-Fuzz-style baseline: invocation ordering with prolongation (repetition)
/// and branch-revisiting energy, but no mutation masking.
#[derive(Clone, Copy, Debug, Default)]
pub struct IrFuzzStrategy;

impl FuzzingStrategy for IrFuzzStrategy {
    fn name(&self) -> &'static str {
        "IR-Fuzz"
    }

    fn config(&self, max_executions: usize, rng_seed: u64) -> FuzzerConfig {
        FuzzerConfig::mufuzz(max_executions)
            .with_rng_seed(rng_seed)
            .without_mask_guidance()
    }
}

/// The four baseline fuzzers the coverage figures compare against, in the
/// order the paper plots them.
pub fn coverage_baselines() -> Vec<Box<dyn FuzzingStrategy>> {
    vec![
        Box::new(MuFuzzStrategy),
        Box::new(IrFuzzStrategy),
        Box::new(ConFuzziusStrategy),
        Box::new(SFuzzStrategy),
    ]
}

/// All fuzzing strategies, including Smartian (which the paper only compares
/// on bug finding because it reports no branch coverage).
pub fn all_fuzzers() -> Vec<Box<dyn FuzzingStrategy>> {
    vec![
        Box::new(MuFuzzStrategy),
        Box::new(IrFuzzStrategy),
        Box::new(SmartianStrategy),
        Box::new(ConFuzziusStrategy),
        Box::new(SFuzzStrategy),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mufuzz_corpus::contracts;
    use mufuzz_lang::compile_source;

    #[test]
    fn strategy_configs_differ_as_documented() {
        let sfuzz = SFuzzStrategy.config(100, 1);
        assert!(!sfuzz.enable_sequence_aware && !sfuzz.enable_mask_guidance);
        assert!(sfuzz.enable_branch_distance);

        let confuzzius = ConFuzziusStrategy.config(100, 1);
        assert!(confuzzius.enable_sequence_aware && !confuzzius.enable_sequence_repetition);

        let smartian = SmartianStrategy.config(100, 1);
        assert!(!smartian.enable_branch_distance);

        let irfuzz = IrFuzzStrategy.config(100, 1);
        assert!(irfuzz.enable_sequence_repetition && !irfuzz.enable_mask_guidance);
        assert!(irfuzz.enable_dynamic_energy);

        let mufuzz = MuFuzzStrategy.config(100, 1);
        assert!(mufuzz.enable_mask_guidance && mufuzz.enable_sequence_repetition);
    }

    #[test]
    fn all_strategies_run_on_the_crowdsale_contract() {
        let source = contracts::crowdsale().source;
        for strategy in all_fuzzers() {
            let compiled = compile_source(&source).unwrap();
            let report = strategy.fuzz(compiled, 120, 9).unwrap();
            assert!(
                report.covered_edges > 0,
                "{} covered nothing",
                strategy.name()
            );
        }
    }

    #[test]
    fn mufuzz_matches_or_beats_sfuzz_on_the_motivating_example() {
        let source = contracts::crowdsale().source;
        let mufuzz = MuFuzzStrategy
            .fuzz(compile_source(&source).unwrap(), 400, 21)
            .unwrap();
        let sfuzz = SFuzzStrategy
            .fuzz(compile_source(&source).unwrap(), 400, 21)
            .unwrap();
        assert!(
            mufuzz.covered_edges >= sfuzz.covered_edges,
            "MuFuzz {} < sFuzz {}",
            mufuzz.covered_edges,
            sfuzz.covered_edges
        );
    }
}
