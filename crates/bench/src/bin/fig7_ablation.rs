//! Regenerates Figure 7: the ablation study — coverage and detected alarms
//! with each MuFuzz component disabled, relative to the full system.
//!
//! Scale with `MUFUZZ_CONTRACTS` and `MUFUZZ_EXECS`; size the shared fleet
//! pool with `--workers N` (or `MUFUZZ_WORKERS`; 0 = auto).

use mufuzz_bench::{ablation, env_param, table, workers_param};
use mufuzz_corpus::{generate_contract, GeneratorConfig};
use mufuzz_oracles::BugClass;

fn main() {
    let contracts = env_param("MUFUZZ_CONTRACTS", 8);
    let execs = env_param("MUFUZZ_EXECS", 400);
    let workers = workers_param();
    let pool = mufuzz_bench::fleet_threads(workers);

    // The paper samples real contracts from D1, which naturally contain
    // vulnerabilities; our generated D1 corpus is benign by construction, so
    // the ablation sample injects one rotating bug class per contract to make
    // the "detected vulnerabilities" metric meaningful.
    let with_bug = |name: String, cfg: GeneratorConfig, i: usize| {
        let class = BugClass::ALL[i % BugClass::ALL.len()];
        generate_contract(
            &name,
            &cfg.with_bugs(vec![class])
                .with_drain(class != BugClass::EtherFreezing),
        )
    };
    let small: Vec<_> = (0..contracts)
        .map(|i| {
            with_bug(
                format!("AblS{i}"),
                GeneratorConfig::small(7_000 + i as u64),
                i,
            )
        })
        .collect();
    let large: Vec<_> = (0..contracts.div_ceil(2))
        .map(|i| {
            with_bug(
                format!("AblL{i}"),
                GeneratorConfig::large(8_000 + i as u64),
                i,
            )
        })
        .collect();
    let wall = std::time::Instant::now();
    let result = ablation(&small, &large, execs, 1, workers);
    let elapsed = wall.elapsed().as_secs_f64().max(1e-9);

    let full = &result.rows[0];
    let rel = |v: f64, full: f64| {
        if full > 0.0 {
            format!("{:.0}%", v / full * 100.0)
        } else {
            "-".into()
        }
    };
    let rel_count = |v: usize, full: usize| {
        if full > 0 {
            format!("{:.0}%", v as f64 / full as f64 * 100.0)
        } else {
            "-".into()
        }
    };

    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|(name, cs, cl, als, all_)| {
            vec![
                name.clone(),
                format!("{:.1}%", cs * 100.0),
                rel(*cs, full.1),
                format!("{:.1}%", cl * 100.0),
                rel(*cl, full.2),
                als.to_string(),
                rel_count(*als, full.3),
                all_.to_string(),
                rel_count(*all_, full.4),
            ]
        })
        .collect();

    println!(
        "Figure 7 — ablation study ({} small / {} large contracts, {execs} executions each, fleet pool of {pool} thread(s))",
        small.len(),
        large.len()
    );
    println!(
        "throughput: {:.0} execs/sec ({} executions in {:.2} s)",
        result.total_executions as f64 / elapsed,
        result.total_executions,
        elapsed
    );
    println!();
    print!(
        "{}",
        table::render(
            &[
                "Variant",
                "Cov small",
                "rel",
                "Cov large",
                "rel",
                "Alarms small",
                "rel",
                "Alarms large",
                "rel",
            ],
            &rows
        )
    );
    println!();
    println!(
        "Expected shape (paper): every ablation loses coverage and bugs; removing the\n\
         sequence-aware mutation hurts the most (paper: -18%/-26% coverage on small/large)."
    );
}
