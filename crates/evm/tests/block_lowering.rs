//! Property-based tests for the basic-block lowering: on arbitrary byte
//! blobs, the blocks must partition the decoded stream, every `JUMPDEST`
//! must lead a block, the precomputed per-block envelope must equal an
//! independent instruction-by-instruction fold, and the dispatch units must
//! tile the stream exactly. A final property executes random code four
//! ways (direct-threaded / block-lowered `match` / pre-decoded / legacy)
//! and demands bit-identical results, and targeted gas sweeps drive every
//! fused storage arm through each possible mid-pattern halt.

use mufuzz_evm::{
    static_gas, Account, Address, BlockEnv, BlockProgram, DecodedProgram, Evm, Message, Opcode,
    ProgramCache, WorldState, U256,
};
use proptest::prelude::*;
use std::sync::Arc;

fn lowered(code: &[u8]) -> BlockProgram {
    BlockProgram::lower(Arc::new(DecodedProgram::decode(code)))
}

proptest! {
    #[test]
    fn blocks_partition_the_instruction_stream(code in proptest::collection::vec(any::<u8>(), 0..600)) {
        let program = lowered(&code);
        let n = program.base().instructions().len() as u32;
        if n == 0 {
            prop_assert!(program.blocks().is_empty());
            return;
        }
        // Contiguous, non-empty, covering [0, n): each block starts where
        // the previous one ended.
        let mut expected_start = 0u32;
        for block in program.blocks() {
            prop_assert_eq!(block.instr_start, expected_start);
            prop_assert!(block.instr_end > block.instr_start);
            expected_start = block.instr_end;
        }
        prop_assert_eq!(expected_start, n);
    }

    #[test]
    fn every_jumpdest_starts_a_block(code in proptest::collection::vec(any::<u8>(), 0..600)) {
        let program = lowered(&code);
        let instrs = program.base().instructions();
        let starts: Vec<u32> = program.blocks().iter().map(|b| b.instr_start).collect();
        for (i, instr) in instrs.iter().enumerate() {
            if instr.op == Opcode::JumpDest {
                prop_assert!(
                    starts.binary_search(&(i as u32)).is_ok(),
                    "JUMPDEST at instruction {} is not a block leader", i
                );
            }
        }
    }

    #[test]
    fn block_envelopes_equal_an_instruction_fold(code in proptest::collection::vec(any::<u8>(), 0..600)) {
        let program = lowered(&code);
        let instrs = program.base().instructions();
        for block in program.blocks() {
            // Independent re-derivation of the envelope, straight from the
            // public opcode metadata.
            let mut gas = 0u64;
            let (mut height, mut needed, mut peak) = (0i64, 0i64, 0i64);
            for instr in &instrs[block.instr_start as usize..block.instr_end as usize] {
                gas += static_gas(instr.op);
                let ins = instr.op.stack_inputs() as i64;
                let outs = instr.op.stack_outputs() as i64;
                needed = needed.max(ins - height);
                height += outs - ins;
                peak = peak.max(height);
            }
            prop_assert_eq!(block.static_gas, gas);
            prop_assert_eq!(i64::from(block.stack_needed), needed.max(0));
            prop_assert_eq!(i64::from(block.max_growth), peak.max(0));
            prop_assert_eq!(i64::from(block.stack_delta), height);
        }
    }

    #[test]
    fn units_tile_the_stream_and_leaders_line_up(code in proptest::collection::vec(any::<u8>(), 0..600)) {
        let program = lowered(&code);
        let instrs = program.base().instructions();
        // Units are contiguous, non-empty and cover every instruction.
        let mut expected_start = 0u32;
        for unit in program.units() {
            prop_assert_eq!(unit.instr_start, expected_start);
            prop_assert!(unit.instr_count > 0);
            prop_assert_eq!(unit.pc, instrs[unit.instr_start as usize].pc);
            expected_start += unit.instr_count;
        }
        prop_assert_eq!(expected_start as usize, instrs.len());
        // Exactly the first unit of each block carries that block's index,
        // and fused patterns never straddle a block boundary.
        let mut leaders = Vec::new();
        for unit in program.units() {
            if unit.leader != u32::MAX {
                leaders.push((unit.leader, unit.instr_start));
            }
        }
        let blocks: Vec<(u32, u32)> = program
            .blocks()
            .iter()
            .enumerate()
            .map(|(i, b)| (i as u32, b.instr_start))
            .collect();
        prop_assert_eq!(leaders, blocks);
        for (unit, block) in program.units().iter().filter(|u| u.leader != u32::MAX).zip(program.blocks()) {
            prop_assert!(unit.instr_start + unit.instr_count <= block.instr_end);
        }
    }

    #[test]
    fn jump_unit_agrees_with_jump_cursor(code in proptest::collection::vec(any::<u8>(), 0..600)) {
        let program = lowered(&code);
        for dest in 0..=code.len() {
            match (program.base().jump_cursor(dest), program.jump_unit(dest)) {
                (None, None) => {}
                (Some(instr), Some(unit)) => {
                    // The destination is a JUMPDEST, hence a block leader,
                    // hence the first constituent of its unit.
                    prop_assert_eq!(program.units()[unit].instr_start as usize, instr);
                }
                (a, b) => prop_assert!(false, "jump_cursor {:?} vs jump_unit {:?} at {}", a, b, dest),
            }
        }
    }

    #[test]
    fn random_code_executes_identically_across_all_four_tiers(
        code in proptest::collection::vec(any::<u8>(), 0..300),
        calldata in proptest::collection::vec(any::<u8>(), 0..40),
    ) {
        let sender = Address::from_low_u64(1);
        let contract = Address::from_low_u64(0x42);
        let mut base = WorldState::new();
        base.put_account(sender, Account::eoa(U256::from_u64(1_000_000)));
        base.put_account(contract, Account::contract(code.clone(), U256::ZERO));
        let runtime = base.code(contract);
        let mut cache = ProgramCache::new();
        cache.insert(Arc::clone(&runtime), Arc::new(DecodedProgram::decode(&runtime)));
        base.freeze();
        let msg = Message::new(sender, contract, U256::ZERO, calldata);

        let run = |legacy: bool, block_lowering: bool, direct_threaded: bool| {
            let mut world = base.snapshot();
            let mut evm = Evm::new(&mut world, BlockEnv::default()).with_programs(&cache);
            evm.config.legacy_decode = legacy;
            evm.config.block_lowering = block_lowering;
            evm.config.direct_threaded = direct_threaded;
            (evm.execute(&msg), world)
        };
        let (threaded, world_threaded) = run(false, true, true);
        let (block, world_block) = run(false, true, false);
        let (pre, world_pre) = run(false, false, false);
        let (legacy, world_legacy) = run(true, false, false);

        prop_assert_eq!(threaded.gas_used, legacy.gas_used);
        prop_assert_eq!(&threaded, &block);
        prop_assert_eq!(&block, &pre);
        prop_assert_eq!(&pre, &legacy);
        prop_assert_eq!(&world_threaded, &world_block);
        prop_assert_eq!(&world_block, &world_pre);
        prop_assert_eq!(&world_pre, &world_legacy);
    }
}

/// Run `code` with the given gas limit and call value under the
/// direct-threaded, block-`match` and pre-decoded tiers and demand
/// bit-identical results (including the trace, hence the instruction count)
/// and committed state.
fn assert_tiers_agree_at_gas(code: &[u8], gas: u64, value: u64) {
    let sender = Address::from_low_u64(1);
    let contract = Address::from_low_u64(0x42);
    let mut base = WorldState::new();
    base.put_account(sender, Account::eoa(U256::from_u64(1_000_000)));
    base.put_account(contract, Account::contract(code.to_vec(), U256::ZERO));
    let runtime = base.code(contract);
    let mut cache = ProgramCache::new();
    cache.insert(
        Arc::clone(&runtime),
        Arc::new(DecodedProgram::decode(&runtime)),
    );
    base.freeze();
    let mut msg = Message::new(sender, contract, U256::from_u64(value), vec![]);
    msg.gas = gas;
    let run = |block_lowering: bool, direct_threaded: bool| {
        let mut world = base.snapshot();
        let mut evm = Evm::new(&mut world, BlockEnv::default()).with_programs(&cache);
        evm.config.block_lowering = block_lowering;
        evm.config.direct_threaded = direct_threaded;
        (evm.execute(&msg), world)
    };
    let (threaded, world_threaded) = run(true, true);
    let (matched, world_matched) = run(true, false);
    let (pre, world_pre) = run(false, false);
    assert_eq!(threaded, matched, "dispatch divergence at gas {gas}");
    assert_eq!(matched, pre, "block-tier divergence at gas {gas}");
    assert_eq!(
        world_threaded, world_matched,
        "dispatch state divergence at gas {gas}"
    );
    assert_eq!(
        world_matched, world_pre,
        "block-tier state divergence at gas {gas}"
    );
}

/// [`assert_tiers_agree_at_gas`] at the default transaction gas limit.
fn assert_tiers_agree(code: Vec<u8>) {
    assert_tiers_agree_at_gas(&code, 10_000_000, 0);
}

/// Sweep the transaction gas limit from zero past the full cost of `code`,
/// demanding tier agreement at every level. Each level lands the
/// out-of-gas (or deopt) point on a different constituent, so one sweep
/// exercises every mid-pattern halt a fused arm can take.
fn assert_tiers_agree_at_every_gas_level(code: &[u8], value: u64) {
    let sender = Address::from_low_u64(1);
    let contract = Address::from_low_u64(0x42);
    let mut base = WorldState::new();
    base.put_account(sender, Account::eoa(U256::from_u64(1_000_000)));
    base.put_account(contract, Account::contract(code.to_vec(), U256::ZERO));
    base.freeze();
    let msg = Message::new(sender, contract, U256::from_u64(value), vec![]);
    let mut world = base.snapshot();
    let full = Evm::new(&mut world, BlockEnv::default()).execute(&msg);
    // An out-of-gas halt reports the whole limit as used; cap the sweep so a
    // faulting vector still sweeps its interesting prefix, not 10M levels.
    for gas in 0..=full.gas_used.min(20_000) + 2 {
        assert_tiers_agree_at_gas(code, gas, value);
    }
}

/// A fused memory arm whose mid-unit MLOAD faults must leave the same trace
/// as the per-instruction tier, which records only the constituents up to
/// and including the faulting op — not the trailing binop.
#[test]
fn mid_unit_mload_fault_keeps_the_trace_exact() {
    // PUSH1 0; PUSH32 <huge>; MLOAD; ADD; STOP — fuses to
    // `PushPushMLoadBinop`, and the out-of-range offset faults the MLOAD.
    let mut code = vec![0x60, 0x00, 0x7f];
    code.extend([0xff; 32]);
    code.extend([0x51, 0x01, 0x00]);
    assert_tiers_agree(code);

    // PUSH1 0; PUSH32 <huge>; MLOAD; PUSH1 1; ADD; STOP — fuses to
    // `PushMLoadPushBinop` after the guarded leading pair.
    let mut code = vec![0x60, 0x00, 0x7f];
    code.extend([0xff; 32]);
    code.extend([0x51, 0x60, 0x01, 0x01, 0x00]);
    assert_tiers_agree(code);

    // CALLVALUE; PUSH32 <huge>; MLOAD; ADD; STOP — the stack operand keeps
    // the longer patterns from matching, so this fuses to `PushMLoadBinop`.
    let mut code = vec![0x34, 0x7f];
    code.extend([0xff; 32]);
    code.extend([0x51, 0x01, 0x00]);
    assert_tiers_agree(code);
}

// The mapping-slot idiom with the key taken from the call value:
//   CALLVALUE; PUSH1 0; MSTORE; PUSH1 1; PUSH1 0x20; MSTORE;
//   PUSH1 0x40; PUSH1 0; SHA3
// which fuses the nine-instruction window into `MapSlotSLoad` /
// `MapSlotSStore` (or the eight-instruction `MapSlotSha3` without the
// trailing storage op).
const MAP_SLOT_PREFIX: [u8; 14] = [
    0x34, 0x60, 0x00, 0x52, 0x60, 0x01, 0x60, 0x20, 0x52, 0x60, 0x40, 0x60, 0x00, 0x20,
];

/// Every fused storage arm, swept across all gas levels: each level lands
/// the out-of-gas point on a different constituent, so the sweeps cover
/// the mid-pattern deopt at the block settle, the per-constituent charge
/// replay in the `MapSlot*` arms, and the post-arm tail recharge.
#[test]
fn fused_storage_arms_agree_at_every_gas_level() {
    // PUSH1 5; SLOAD; STOP — `PushSLoad`.
    assert_tiers_agree_at_every_gas_level(&[0x60, 0x05, 0x54, 0x00], 0);

    // CALLVALUE; PUSH1 5; SSTORE; STOP — `PushSStore`; the 5000-gas SSTORE
    // at the end of the pattern is the mid-pattern out-of-gas candidate.
    assert_tiers_agree_at_every_gas_level(&[0x34, 0x60, 0x05, 0x55, 0x00], 7);

    // PUSH1 3; PUSH1 0; SLOAD; ADD; PUSH1 0; SSTORE; STOP — the
    // read-modify-write `StorageExprStore`.
    assert_tiers_agree_at_every_gas_level(
        &[0x60, 0x03, 0x60, 0x00, 0x54, 0x01, 0x60, 0x00, 0x55, 0x00],
        0,
    );

    // The mapping-slot idiom ending in SLOAD, SSTORE (with CALLDATASIZE as
    // the stored value) and bare SHA3 (POP; STOP afterwards).
    let mut sload = MAP_SLOT_PREFIX.to_vec();
    sload.extend([0x54, 0x00]);
    assert_tiers_agree_at_every_gas_level(&sload, 9);

    let mut sstore = vec![0x36];
    sstore.extend(MAP_SLOT_PREFIX);
    sstore.extend([0x55, 0x00]);
    assert_tiers_agree_at_every_gas_level(&sstore, 9);

    let mut sha3 = MAP_SLOT_PREFIX.to_vec();
    sha3.extend([0x50, 0x00]);
    assert_tiers_agree_at_every_gas_level(&sha3, 9);
}

/// Faulting constituents *inside* a fused storage pattern: the trace must
/// record exactly the executed prefix (per-instruction semantics), and the
/// fault message and remaining gas must match the slower tiers bit for bit.
#[test]
fn mid_pattern_storage_faults_keep_the_trace_exact() {
    // MapSlot whose first MSTORE offset is a PUSH32 beyond the address
    // space: faults "mstore out of bounds" at constituent 1.
    let mut code = vec![0x34, 0x7f];
    code.extend([0xff; 32]);
    code.extend([
        0x52, 0x60, 0x01, 0x60, 0x20, 0x52, 0x60, 0x40, 0x60, 0x00, 0x20, 0x54, 0x00,
    ]);
    assert_tiers_agree(code);

    // MapSlot whose SHA3 offset is a PUSH32 beyond the address space:
    // everything up to the hash executes, then constituent 7 faults.
    let mut code = vec![
        0x34, 0x60, 0x00, 0x52, 0x60, 0x01, 0x60, 0x20, 0x52, 0x60, 0x40, 0x7f,
    ];
    code.extend([0xff; 32]);
    code.extend([0x20, 0x54, 0x00]);
    assert_tiers_agree(code);

    // MapSlot whose SHA3 offset fits a machine word but overflows the
    // memory span / expansion bill: the dynamic memory charge at
    // constituent 7 is the halt point. Swept to also hit the charges
    // before it.
    let mut code = vec![
        0x34, 0x60, 0x00, 0x52, 0x60, 0x01, 0x60, 0x20, 0x52, 0x60, 0x40, 0x67,
    ];
    code.extend([0xff; 8]);
    code.extend([0x20, 0x54, 0x00]);
    assert_tiers_agree_at_every_gas_level(&code, 0);

    // `PushSStore` under exact-gas starvation: enough for the block settle
    // minus one, then every level below — the arm must deopt untouched and
    // replay per-instruction, out-of-gassing on the SSTORE itself.
    assert_tiers_agree_at_every_gas_level(&[0x34, 0x60, 0x05, 0x55, 0x00], 0);
}
