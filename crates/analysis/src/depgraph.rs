//! Function dependency graph and transaction-sequence planning.
//!
//! From the data-flow facts we build a graph with an edge `f1 -> f2` whenever
//! `f1` writes a state variable that `f2` reads. Topologically ordering this
//! graph gives the base transaction sequence (writers before readers); the
//! sequence-aware *mutation* then duplicates the functions that carry a RAW
//! dependency feeding a branch condition (paper §IV-A).

use crate::dataflow::DataFlowInfo;
use std::collections::{BTreeMap, BTreeSet};

/// The write-before-read dependency graph between functions.
#[derive(Clone, Debug, Default)]
pub struct DependencyGraph {
    /// All function names (graph nodes), in declaration order.
    pub nodes: Vec<String>,
    /// Directed edges `writer -> reader`, annotated with the state variables
    /// that induce them.
    pub edges: BTreeMap<(String, String), BTreeSet<String>>,
}

impl DependencyGraph {
    /// Build the graph from data-flow facts.
    pub fn from_dataflow(info: &DataFlowInfo) -> DependencyGraph {
        let nodes: Vec<String> = info.functions.iter().map(|f| f.name.clone()).collect();
        let mut edges: BTreeMap<(String, String), BTreeSet<String>> = BTreeMap::new();
        for writer in &info.functions {
            for reader in &info.functions {
                if writer.name == reader.name {
                    continue;
                }
                for var in writer.writes.intersection(&reader.reads) {
                    edges
                        .entry((writer.name.clone(), reader.name.clone()))
                        .or_default()
                        .insert(var.clone());
                }
            }
        }
        DependencyGraph { nodes, edges }
    }

    /// Successors (readers) of a function.
    pub fn successors(&self, name: &str) -> BTreeSet<&str> {
        self.edges
            .keys()
            .filter(|(w, _)| w == name)
            .map(|(_, r)| r.as_str())
            .collect()
    }

    /// Predecessors (writers) of a function.
    pub fn predecessors(&self, name: &str) -> BTreeSet<&str> {
        self.edges
            .keys()
            .filter(|(_, r)| r == name)
            .map(|(w, _)| w.as_str())
            .collect()
    }

    /// Approximate topological order: writers first. Cycles (mutual
    /// read/write) are broken by falling back to declaration order, which
    /// keeps the ordering deterministic.
    pub fn topological_order(&self) -> Vec<String> {
        let mut order = Vec::new();
        let mut remaining: Vec<&str> = self.nodes.iter().map(|s| s.as_str()).collect();
        while !remaining.is_empty() {
            // Pick the remaining node with the fewest unprocessed predecessors
            // (declaration order breaks ties, which also resolves cycles).
            let pick_idx = {
                let mut best = 0usize;
                let mut best_deg = usize::MAX;
                for (i, node) in remaining.iter().enumerate() {
                    let deg = self
                        .predecessors(node)
                        .iter()
                        .filter(|p| remaining.contains(*p))
                        .count();
                    if deg < best_deg {
                        best_deg = deg;
                        best = i;
                    }
                }
                best
            };
            let node = remaining.remove(pick_idx);
            order.push(node.to_string());
        }
        order
    }
}

/// The planned transaction sequence for a contract.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SequencePlan {
    /// Base sequence: function names ordered writers-before-readers
    /// (the constructor is implicit and always first).
    pub base_order: Vec<String>,
    /// Functions eligible for repetition (RAW dependency feeding a branch).
    pub repeat_candidates: BTreeSet<String>,
    /// The mutated sequence with repeated functions inserted before their
    /// dependent readers.
    pub mutated_order: Vec<String>,
}

impl SequencePlan {
    /// Number of calls in the mutated sequence.
    pub fn len(&self) -> usize {
        self.mutated_order.len()
    }

    /// True if the plan contains no callable functions.
    pub fn is_empty(&self) -> bool {
        self.mutated_order.is_empty()
    }
}

/// Derive the sequence plan for a contract's data-flow facts.
pub fn plan_sequence(info: &DataFlowInfo) -> SequencePlan {
    let graph = DependencyGraph::from_dataflow(info);
    // Functions that touch no state still get fuzzed, but they are appended at
    // the end of the sequence (the paper ignores them for ordering purposes).
    let mut stateful: Vec<String> = Vec::new();
    let mut stateless: Vec<String> = Vec::new();
    for name in graph.topological_order() {
        let touches = info
            .function(&name)
            .map(|f| f.touches_state)
            .unwrap_or(false);
        if touches {
            stateful.push(name);
        } else {
            stateless.push(name);
        }
    }
    let mut base_order = stateful;
    base_order.extend(stateless);

    let repeat_candidates = info.repeat_candidates();

    // Sequence mutation: duplicate each repeat candidate immediately before
    // the last function (after its own position) that reads a variable the
    // candidate writes.
    let mut mutated_order = base_order.clone();
    for candidate in &repeat_candidates {
        let Some(cand_pos) = mutated_order.iter().position(|n| n == candidate) else {
            continue;
        };
        let cand_writes = info
            .function(candidate)
            .map(|f| f.writes.clone())
            .unwrap_or_default();
        let mut insert_at = None;
        for (i, name) in mutated_order.iter().enumerate().skip(cand_pos + 1) {
            if name == candidate {
                continue;
            }
            let reads = info
                .function(name)
                .map(|f| f.reads.clone())
                .unwrap_or_default();
            if cand_writes.intersection(&reads).next().is_some() {
                insert_at = Some(i);
            }
        }
        match insert_at {
            Some(i) => mutated_order.insert(i, candidate.clone()),
            None => mutated_order.push(candidate.clone()),
        }
    }

    SequencePlan {
        base_order,
        repeat_candidates,
        mutated_order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::analyze_contract;
    use mufuzz_lang::parse_contract_source;

    const CROWDSALE: &str = r#"
        contract Crowdsale {
            uint256 phase = 0;
            uint256 goal;
            uint256 invested;
            address owner;
            mapping(address => uint256) invests;
            constructor() public { goal = 100 ether; invested = 0; owner = msg.sender; }
            function invest(uint256 donations) public payable {
                if (invested < goal) {
                    invests[msg.sender] += donations;
                    invested += donations;
                    phase = 0;
                } else { phase = 1; }
            }
            function refund() public {
                if (phase == 0) {
                    msg.sender.transfer(invests[msg.sender]);
                    invests[msg.sender] = 0;
                }
            }
            function withdraw() public {
                if (phase == 1) { bug(); owner.transfer(invested); }
            }
        }
    "#;

    fn plan() -> SequencePlan {
        plan_sequence(&analyze_contract(
            &parse_contract_source(CROWDSALE).unwrap(),
        ))
    }

    #[test]
    fn graph_edges_follow_write_read_pairs() {
        let info = analyze_contract(&parse_contract_source(CROWDSALE).unwrap());
        let graph = DependencyGraph::from_dataflow(&info);
        // invest writes phase which refund and withdraw read.
        assert!(graph
            .edges
            .get(&("invest".into(), "refund".into()))
            .map(|vars| vars.contains("phase"))
            .unwrap_or(false));
        assert!(graph
            .edges
            .contains_key(&("invest".into(), "withdraw".into())));
        // withdraw writes nothing, so it has no outgoing edges.
        assert!(graph.successors("withdraw").is_empty());
        // withdraw reads phase/invested, both written only by invest.
        assert_eq!(graph.predecessors("withdraw").len(), 1);
    }

    #[test]
    fn base_order_places_invest_first_and_withdraw_last() {
        let plan = plan();
        let pos = |name: &str| plan.base_order.iter().position(|n| n == name).unwrap();
        assert!(pos("invest") < pos("refund"));
        assert!(pos("invest") < pos("withdraw"));
        assert_eq!(plan.base_order.len(), 3);
    }

    #[test]
    fn mutated_order_repeats_invest_before_withdraw() {
        // This reproduces the paper's motivating sequence:
        // [invest, refund, invest, withdraw].
        let plan = plan();
        assert!(plan.repeat_candidates.contains("invest"));
        let invest_count = plan
            .mutated_order
            .iter()
            .filter(|n| n.as_str() == "invest")
            .count();
        assert_eq!(invest_count, 2);
        // The duplicated invest appears after the first and before withdraw.
        let last_invest = plan
            .mutated_order
            .iter()
            .rposition(|n| n == "invest")
            .unwrap();
        let withdraw = plan
            .mutated_order
            .iter()
            .position(|n| n == "withdraw")
            .unwrap();
        assert!(last_invest < withdraw);
        assert_eq!(plan.len(), 4);
    }

    #[test]
    fn stateless_functions_go_last() {
        let src = r#"
            contract C {
                uint256 x;
                function pureMath(uint256 a) public returns (uint256) { return a * 2; }
                function setX(uint256 v) public { x = v; }
                function readX() public returns (uint256) { return x; }
            }
        "#;
        let info = analyze_contract(&parse_contract_source(src).unwrap());
        let plan = plan_sequence(&info);
        assert_eq!(plan.base_order.last().unwrap(), "pureMath");
        let pos = |name: &str| plan.base_order.iter().position(|n| n == name).unwrap();
        assert!(pos("setX") < pos("readX"));
    }

    #[test]
    fn contracts_without_dependencies_keep_declaration_order() {
        let src = r#"
            contract C {
                uint256 a;
                uint256 b;
                function setA(uint256 v) public { a = v; }
                function setB(uint256 v) public { b = v; }
            }
        "#;
        let info = analyze_contract(&parse_contract_source(src).unwrap());
        let plan = plan_sequence(&info);
        assert_eq!(
            plan.base_order,
            vec!["setA".to_string(), "setB".to_string()]
        );
        assert!(plan.repeat_candidates.is_empty());
        assert_eq!(plan.base_order, plan.mutated_order);
    }

    #[test]
    fn cyclic_dependencies_still_produce_a_total_order() {
        let src = r#"
            contract C {
                uint256 a;
                uint256 b;
                function f() public { a = b + 1; }
                function g() public { b = a + 1; }
            }
        "#;
        let info = analyze_contract(&parse_contract_source(src).unwrap());
        let plan = plan_sequence(&info);
        assert_eq!(plan.base_order.len(), 2);
        assert!(!plan.is_empty());
    }
}
