//! Lexer for the mini-Solidity language.

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Unsigned integer literal.
    Number(u128),
    /// String literal (only used for `require` messages, which are ignored).
    Str(String),

    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=>`
    Arrow,

    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `*=`
    StarAssign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,

    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number(n) => write!(f, "{n}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            other => write!(f, "{other:?}"),
        }
    }
}

/// A lexing error with a line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line where the error occurred.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// A token paired with the source line it started on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// 1-based source line.
    pub line: usize,
}

/// Tokenise mini-Solidity source code.
pub fn tokenize(source: &str) -> Result<Vec<SpannedToken>, LexError> {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;

    macro_rules! push {
        ($tok:expr) => {
            tokens.push(SpannedToken { token: $tok, line })
        };
    }

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < chars.len() && chars[i + 1] == '/' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < chars.len() && chars[i + 1] == '*' => {
                i += 2;
                while i + 1 < chars.len() && !(chars[i] == '*' && chars[i + 1] == '/') {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                if i + 1 >= chars.len() {
                    return Err(LexError {
                        line,
                        message: "unterminated block comment".into(),
                    });
                }
                i += 2;
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                while i < chars.len() && chars[i] != '"' {
                    s.push(chars[i]);
                    i += 1;
                }
                if i >= chars.len() {
                    return Err(LexError {
                        line,
                        message: "unterminated string literal".into(),
                    });
                }
                i += 1;
                push!(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                // Hex literals.
                if c == '0' && i + 1 < chars.len() && (chars[i + 1] == 'x' || chars[i + 1] == 'X') {
                    i += 2;
                    let hex_start = i;
                    while i < chars.len() && chars[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    let text: String = chars[hex_start..i].iter().collect();
                    let value = u128::from_str_radix(&text, 16).map_err(|_| LexError {
                        line,
                        message: format!("invalid hex literal 0x{text}"),
                    })?;
                    push!(Token::Number(value));
                } else {
                    while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                        i += 1;
                    }
                    let text: String = chars[start..i].iter().filter(|c| **c != '_').collect();
                    let value = text.parse::<u128>().map_err(|_| LexError {
                        line,
                        message: format!("integer literal too large: {text}"),
                    })?;
                    push!(Token::Number(value));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                push!(Token::Ident(word));
            }
            '(' => {
                push!(Token::LParen);
                i += 1;
            }
            ')' => {
                push!(Token::RParen);
                i += 1;
            }
            '{' => {
                push!(Token::LBrace);
                i += 1;
            }
            '}' => {
                push!(Token::RBrace);
                i += 1;
            }
            '[' => {
                push!(Token::LBracket);
                i += 1;
            }
            ']' => {
                push!(Token::RBracket);
                i += 1;
            }
            ';' => {
                push!(Token::Semi);
                i += 1;
            }
            ',' => {
                push!(Token::Comma);
                i += 1;
            }
            '.' => {
                push!(Token::Dot);
                i += 1;
            }
            '=' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    push!(Token::EqEq);
                    i += 2;
                } else if i + 1 < chars.len() && chars[i + 1] == '>' {
                    push!(Token::Arrow);
                    i += 2;
                } else {
                    push!(Token::Assign);
                    i += 1;
                }
            }
            '+' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    push!(Token::PlusAssign);
                    i += 2;
                } else {
                    push!(Token::Plus);
                    i += 1;
                }
            }
            '-' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    push!(Token::MinusAssign);
                    i += 2;
                } else {
                    push!(Token::Minus);
                    i += 1;
                }
            }
            '*' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    push!(Token::StarAssign);
                    i += 2;
                } else {
                    push!(Token::Star);
                    i += 1;
                }
            }
            '/' => {
                push!(Token::Slash);
                i += 1;
            }
            '%' => {
                push!(Token::Percent);
                i += 1;
            }
            '<' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    push!(Token::Le);
                    i += 2;
                } else {
                    push!(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    push!(Token::Ge);
                    i += 2;
                } else {
                    push!(Token::Gt);
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    push!(Token::NotEq);
                    i += 2;
                } else {
                    push!(Token::Not);
                    i += 1;
                }
            }
            '&' => {
                if i + 1 < chars.len() && chars[i + 1] == '&' {
                    push!(Token::AndAnd);
                    i += 2;
                } else {
                    return Err(LexError {
                        line,
                        message: "bitwise '&' is not supported".into(),
                    });
                }
            }
            '|' => {
                if i + 1 < chars.len() && chars[i + 1] == '|' {
                    push!(Token::OrOr);
                    i += 2;
                } else {
                    return Err(LexError {
                        line,
                        message: "bitwise '|' is not supported".into(),
                    });
                }
            }
            other => {
                return Err(LexError {
                    line,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    tokens.push(SpannedToken {
        token: Token::Eof,
        line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|t| t.token)
            .collect()
    }

    #[test]
    fn tokenizes_keywords_and_identifiers() {
        assert_eq!(
            toks("contract Foo"),
            vec![
                Token::Ident("contract".into()),
                Token::Ident("Foo".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn tokenizes_numbers() {
        assert_eq!(
            toks("42 1_000 0xff"),
            vec![
                Token::Number(42),
                Token::Number(1000),
                Token::Number(255),
                Token::Eof
            ]
        );
    }

    #[test]
    fn tokenizes_operators() {
        assert_eq!(
            toks("+= == != <= >= && || => ="),
            vec![
                Token::PlusAssign,
                Token::EqEq,
                Token::NotEq,
                Token::Le,
                Token::Ge,
                Token::AndAnd,
                Token::OrOr,
                Token::Arrow,
                Token::Assign,
                Token::Eof
            ]
        );
    }

    #[test]
    fn skips_comments() {
        let src = "a // line comment\n /* block \n comment */ b";
        assert_eq!(
            toks(src),
            vec![
                Token::Ident("a".into()),
                Token::Ident("b".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn tracks_line_numbers() {
        let tokens = tokenize("a\nb\n\nc").unwrap();
        assert_eq!(tokens[0].line, 1);
        assert_eq!(tokens[1].line, 2);
        assert_eq!(tokens[2].line, 4);
    }

    #[test]
    fn string_literals() {
        assert_eq!(
            toks("require(x, \"message\");"),
            vec![
                Token::Ident("require".into()),
                Token::LParen,
                Token::Ident("x".into()),
                Token::Comma,
                Token::Str("message".into()),
                Token::RParen,
                Token::Semi,
                Token::Eof
            ]
        );
    }

    #[test]
    fn rejects_unterminated_comment_and_bad_chars() {
        assert!(tokenize("/* never closed").is_err());
        assert!(tokenize("a # b").is_err());
        assert!(tokenize("a & b").is_err());
    }

    #[test]
    fn rejects_oversized_literal() {
        let too_big = "9".repeat(60);
        assert!(tokenize(&too_big).is_err());
    }
}
