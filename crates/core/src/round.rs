//! Barrier-synchronized **round mode**: the reproducible execution profile.
//!
//! Under [`DeterminismProfile::Round`](crate::config::DeterminismProfile) a
//! campaign advances in *rounds*. Each round freezes an immutable
//! [`RoundView`] of the scheduling state — the corpus, the coverage bitmap
//! and the corpus mean weight — and splits the next chunk of the execution
//! budget into `SchedulerConfig::round_slots` fixed-size *slots* of
//! `SchedulerConfig::round_batch` executions. Lanes claim slots dynamically
//! (any lane may run any slot, in any interleaving), but a slot's work is a
//! pure function of `(rng_seed, round, slot, view)`:
//!
//! * the slot RNG is [`derive_slot_seed`]`(rng_seed, round, slot)`;
//! * seed selection, energy allocation and the mask-probe gate all read the
//!   slot's private copy of the frozen view, never the live shared state;
//! * coverage novelty is judged against a [`LocalCoverage`] bitmap seeded
//!   from the frozen words, so an admission decision cannot depend on what a
//!   concurrently running slot discovered.
//!
//! The lane that finishes the round's last slot *commits* it: slot outcomes
//! are applied to the shared state **in slot order** — selection-count
//! deltas and mask write-backs keyed by stable seed uid, candidate seeds
//! re-gated against the live coverage bitmap (a mutant whose edges were all
//! committed by an earlier slot is dropped; this is lossless, because a
//! mutant with no new edges against the frozen view plus its own slot's
//! prefix cannot be new against the commit-time superset), monitor merges,
//! replayable [`FindingRecord`]s deduplicated by `(class, function)`, and
//! timeline points at every snapshot boundary the slot's executions crossed.
//! Pause requests and the wall-clock budget are honoured only at this
//! barrier. The result: **any worker count produces the bit-identical
//! campaign** — same report digests, same corpus (by uid), same findings.

use crate::campaign::{
    distance_to_uncovered, make_seed, mutate_sequence, outcome_nested_pcs, seed_nested_pcs,
    select_seed, CampaignContext, CampaignShared, CoveragePoint, LaneStep, PauseState, RunParams,
    Worker, MAX_MASK_TXS, MAX_MASK_WORDS,
};
use crate::coverage::LocalCoverage;
use crate::energy::{allocate_energy, corpus_mean_weight};
use crate::executor::SequenceOutcome;
use crate::input::{Seed, Sequence};
use crate::mutation::{apply_op, word_count, MutationMask, MutationOp};
use crate::replay::{outcome_digest, FindingRecord};
use crate::snapshot::contract_fingerprint;
use mufuzz_evm::WorldState;
use mufuzz_oracles::{BugClass, CampaignMonitor};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A finding's deduplication identity, matching
/// [`CampaignMonitor`]'s `(class, function)` keying.
type RecordKey = (BugClass, Option<String>);

/// The decorrelated RNG seed of one round slot: two chained SplitMix64
/// finalizer rounds over the campaign seed, salted with the round and slot
/// indices. Worker count never enters, so the slot's randomness — and with
/// it the whole campaign — is identical at any parallelism.
pub(crate) fn derive_slot_seed(rng_seed: u64, round: u64, slot: u64) -> u64 {
    let mut z = rng_seed;
    for salt in [
        round.wrapping_mul(2).wrapping_add(0x9E37_79B9_7F4A_7C15),
        slot.wrapping_mul(2).wrapping_add(0xD1B5_4A32_D192_ED03),
    ] {
        z = z.wrapping_add(salt);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
    }
    z
}

/// The frozen scheduling view every slot of a round draws from.
struct RoundView {
    /// Corpus snapshot (each slot selects from its own copy so selection
    /// tie-breaking sees slot-local selection counts only).
    corpus: Vec<Seed>,
    /// Coverage bitmap words at the round barrier.
    coverage: Vec<u64>,
    /// Edge capacity of the coverage bitmap.
    edges: usize,
    /// Corpus mean weight at the barrier (Algorithm 3's denominator).
    mean_weight: f64,
}

/// A candidate corpus admission produced inside a slot: locally novel
/// against the frozen view, re-gated against live coverage at commit.
struct Candidate {
    shape: String,
    seed: Seed,
}

/// A finding record captured inside a slot, with the key commit uses to
/// deduplicate across slots and rounds.
struct PendingRecord {
    key: RecordKey,
    record: FindingRecord,
}

/// Everything one slot hands to the commit step.
struct SlotOutcome {
    /// Executions the slot performed (charged to the budget at commit).
    executed: usize,
    /// Selection-count deltas by seed uid.
    sel_deltas: Vec<(u64, usize)>,
    /// Mask-probe results by seed uid (first writer in slot order wins).
    mask_writes: Vec<(u64, Vec<MutationMask>)>,
    /// Locally novel mutants, in discovery order.
    candidates: Vec<Candidate>,
    /// The slot's private bug monitor (merged into the master at commit).
    monitor: CampaignMonitor,
    /// Final world of the slot's last execution.
    last_world: Option<WorldState>,
    /// Replayable records for findings first observed in this slot.
    records: Vec<PendingRecord>,
}

impl SlotOutcome {
    fn empty() -> SlotOutcome {
        SlotOutcome {
            executed: 0,
            sel_deltas: Vec::new(),
            mask_writes: Vec::new(),
            candidates: Vec::new(),
            monitor: CampaignMonitor::new(),
            last_world: None,
            records: Vec::new(),
        }
    }
}

/// Provenance stamped onto every [`FindingRecord`] a slot captures.
struct SlotProvenance {
    round: u64,
    slot: u32,
    workers: u32,
    contract_hash: u64,
}

/// The round-mode runtime: the current round's frozen view and slot ledger,
/// plus the campaign-lifetime master monitor, finding records and last
/// world. Lives in [`CampaignShared::round`]; installed by the service
/// bootstrap, consumed by finalisation.
pub(crate) struct RoundRt {
    /// Index of the round currently running (checkpointed and restored).
    pub(crate) round: u64,
    /// The frozen view shared by this round's slots.
    view: Arc<RoundView>,
    /// Slots in this round.
    slots: usize,
    /// Next slot to hand out.
    next_slot: usize,
    /// Slots handed out but not yet returned.
    outstanding: usize,
    /// Returned slot outcomes, indexed by slot.
    results: Vec<Option<SlotOutcome>>,
    /// Executions charged when the round started.
    start_execs: usize,
    /// Master bug monitor: lane 0's prologue observations plus every
    /// committed slot monitor, in slot order.
    pub(crate) monitor: CampaignMonitor,
    /// Final world of the last committed slot (feeds the campaign-level
    /// oracles at finalisation).
    pub(crate) last_world: Option<WorldState>,
    /// Replayable finding records, in commit order.
    pub(crate) records: Vec<FindingRecord>,
    /// Finding keys already recorded (or already known to the master
    /// monitor when the runtime was installed).
    recorded: BTreeSet<RecordKey>,
    /// The budget (executions or wall clock) ran out at a barrier.
    finished: bool,
    /// The campaign stopped at a barrier with budget remaining.
    paused: bool,
}

impl RoundRt {
    /// Install the round runtime: promote `master` (lane 0's monitor, which
    /// holds the seeding prologue's — and, on resume, the checkpoint's —
    /// observations) and freeze the first view. `round` is zero and
    /// `records` empty for a fresh campaign; a resume passes the
    /// checkpointed round index and record list. Keys the master monitor
    /// already knows are never re-recorded, so a resumed campaign's record
    /// list continues exactly where the checkpoint's left off.
    pub(crate) fn install(
        master: CampaignMonitor,
        round: u64,
        records: Vec<FindingRecord>,
        ctx: &CampaignContext,
        shared: &CampaignShared,
        params: &RunParams,
        pause: &PauseState,
    ) -> RoundRt {
        let recorded = master
            .findings()
            .into_iter()
            .map(|f| (f.class, f.function))
            .collect();
        let mut rt = RoundRt {
            round,
            view: Arc::new(RoundView {
                corpus: Vec::new(),
                coverage: Vec::new(),
                edges: 0,
                mean_weight: 0.0,
            }),
            slots: 0,
            next_slot: 0,
            outstanding: 0,
            results: Vec::new(),
            start_execs: 0,
            monitor: master,
            last_world: None,
            records,
            recorded,
            finished: false,
            paused: false,
        };
        rt.prepare(ctx, shared, params, pause);
        rt
    }

    /// Open the next round: check the stop and pause conditions, then freeze
    /// a fresh view and size the slot ledger to the remaining budget.
    fn prepare(
        &mut self,
        ctx: &CampaignContext,
        shared: &CampaignShared,
        params: &RunParams,
        pause: &PauseState,
    ) {
        self.start_execs = shared.executions();
        self.next_slot = 0;
        self.outstanding = 0;
        let remaining = ctx.config.max_executions().saturating_sub(self.start_execs);
        let time_gone = ctx
            .config
            .time_budget_ms()
            .is_some_and(|ms| params.elapsed_ms() >= ms);
        if remaining == 0 || time_gone {
            self.finished = true;
            return;
        }
        if pause.engaged(self.start_execs) {
            self.paused = true;
            return;
        }
        let batch = ctx.config.scheduler.round_batch.max(1);
        let slots = ctx
            .config
            .scheduler
            .round_slots
            .max(1)
            .min(remaining.div_ceil(batch));
        let s = shared.state.lock().expect("campaign state poisoned");
        self.view = Arc::new(RoundView {
            corpus: s.corpus.clone(),
            coverage: shared.coverage.snapshot_words(),
            edges: shared.coverage.capacity(),
            mean_weight: corpus_mean_weight(&s.corpus),
        });
        drop(s);
        self.slots = slots;
        self.results = (0..slots).map(|_| None).collect();
    }

    /// Apply the round's slot outcomes to the shared state, in slot order,
    /// then charge the budget and open the next round. Runs with the round
    /// lock held (lock order `round` → `state`).
    fn commit_round(
        &mut self,
        ctx: &CampaignContext,
        shared: &CampaignShared,
        params: &RunParams,
        pause: &PauseState,
    ) {
        let results: Vec<SlotOutcome> = self
            .results
            .iter_mut()
            .map(|slot| slot.take().expect("round slot missing at commit"))
            .collect();
        let mut committed = 0usize;
        {
            let mut s = shared.state.lock().expect("campaign state poisoned");
            for result in results {
                let low = self.start_execs + committed;
                committed += result.executed;
                let high = self.start_execs + committed;
                for (uid, delta) in result.sel_deltas {
                    if let Some(global) = s.corpus.iter_mut().find(|g| g.uid == uid) {
                        global.selections += delta;
                    }
                }
                for (uid, masks) in result.mask_writes {
                    if let Some(global) = s.corpus.iter_mut().find(|g| g.uid == uid) {
                        if global.masks.is_none() {
                            global.masks = Some(masks);
                            global.masks_pending = true;
                        }
                    }
                }
                for candidate in result.candidates {
                    let new_edges = shared.coverage.merge_ids(&candidate.seed.covered_edge_ids);
                    if new_edges == 0 {
                        // Everything it found was already committed by an
                        // earlier slot of this round.
                        continue;
                    }
                    let mut seed = candidate.seed;
                    seed.new_edges = new_edges;
                    if s.interesting_shapes.len() < 16 {
                        s.interesting_shapes.push(candidate.shape);
                    }
                    s.admit(seed);
                    s.maybe_cull(ctx.config.effective_cull_interval());
                    shared.epoch.bump();
                }
                self.monitor.merge(result.monitor);
                for pending in result.records {
                    if self.recorded.insert(pending.key) {
                        self.records.push(pending.record);
                    }
                }
                if result.last_world.is_some() {
                    self.last_world = result.last_world;
                }
                // Timeline points at every snapshot boundary this slot's
                // executions crossed, stamped with the coverage after its
                // merges.
                let covered = shared.coverage.covered_count();
                let every = params.snapshot_every;
                let mut mark = (low / every + 1) * every;
                while mark <= high {
                    s.timeline.push(CoveragePoint {
                        executions: mark,
                        elapsed_ms: params.elapsed_ms(),
                        covered_edges: covered,
                        coverage: covered as f64 / params.total_edges as f64,
                    });
                    mark += every;
                }
            }
        }
        shared.reserved.fetch_add(committed, Ordering::Relaxed);
        self.round += 1;
        self.prepare(ctx, shared, params, pause);
    }
}

/// One round-mode lane step: claim the next slot of the current round and
/// run it, or yield while other lanes drain theirs. The lane returning the
/// round's last slot commits the round inline.
pub(crate) fn round_step(
    worker: &mut Worker,
    shared: &CampaignShared,
    params: &RunParams,
    pause: &PauseState,
) -> LaneStep {
    let claim = {
        let mut guard = shared.round.lock().expect("round state poisoned");
        let Some(rt) = guard.as_mut() else {
            // No runtime installed (empty corpus): nothing to run.
            return LaneStep::Finished;
        };
        if rt.finished {
            return LaneStep::Finished;
        }
        if rt.paused {
            return LaneStep::Paused;
        }
        if rt.next_slot < rt.slots {
            let slot = rt.next_slot;
            rt.next_slot += 1;
            rt.outstanding += 1;
            let batch = worker.ctx.config.scheduler.round_batch.max(1);
            let remaining = worker
                .ctx
                .config
                .max_executions()
                .saturating_sub(rt.start_execs);
            let quota = batch.min(remaining.saturating_sub(slot * batch));
            Some((slot, quota, rt.round, Arc::clone(&rt.view)))
        } else {
            None
        }
    };
    let Some((slot, quota, round, view)) = claim else {
        // Every slot of this round is claimed; the round advances when the
        // lanes running them return. Yield so the respawned step doesn't
        // spin the pool hot.
        std::thread::yield_now();
        return LaneStep::Continue;
    };
    let outcome = run_slot(worker, &view, slot, quota, round);
    let mut guard = shared.round.lock().expect("round state poisoned");
    let rt = guard.as_mut().expect("round runtime vanished mid-round");
    rt.results[slot] = Some(outcome);
    rt.outstanding -= 1;
    if rt.next_slot == rt.slots && rt.outstanding == 0 {
        rt.commit_round(&worker.ctx, shared, params, pause);
    }
    LaneStep::Continue
}

/// Run one slot: `quota` mutate→execute→evaluate steps (including any mask
/// probes) against the frozen view, with the slot's derived RNG. Pure in
/// `(rng_seed, round, slot, view)` — the worker contributes only its
/// harness clone and scratch frame.
fn run_slot(
    worker: &mut Worker,
    view: &RoundView,
    slot: usize,
    quota: usize,
    round: u64,
) -> SlotOutcome {
    let ctx = Arc::clone(&worker.ctx);
    let prov = SlotProvenance {
        round,
        slot: slot as u32,
        workers: ctx.config.workers.max(1) as u32,
        contract_hash: contract_fingerprint(&worker.harness.compiled),
    };
    let mut rng =
        SmallRng::seed_from_u64(derive_slot_seed(ctx.config.rng_seed, round, slot as u64));
    let mut local = LocalCoverage::from_words(view.edges, view.coverage.clone());
    let mut corpus = view.corpus.clone();
    let mut out = SlotOutcome::empty();
    let mut seen: BTreeSet<RecordKey> = BTreeSet::new();
    if corpus.is_empty() {
        return out;
    }
    while out.executed < quota {
        let i = select_seed(&ctx.config, &mut rng, &corpus);
        corpus[i].selections += 1;
        bump_delta(&mut out.sel_deltas, corpus[i].uid);
        let energy = allocate_energy(
            corpus[i].weight,
            view.mean_weight,
            ctx.config.scheduler.base_energy,
            ctx.config.enable_dynamic_energy,
        );
        if Worker::wants_masks(&ctx.config, &corpus[i], quota - out.executed) {
            corpus[i].masks_pending = true;
            let mut slot_ctx = SlotCtx {
                local: &mut local,
                out: &mut out,
                seen: &mut seen,
                prov: &prov,
            };
            let masks = probe_masks(worker, &ctx, &mut rng, &corpus[i], quota, &mut slot_ctx);
            out.mask_writes.push((corpus[i].uid, masks.clone()));
            corpus[i].masks = Some(masks);
        }
        let seed_uid = corpus[i].uid;
        for _ in 0..energy {
            if out.executed >= quota {
                break;
            }
            let candidate = mutate_sequence(&ctx, &mut rng, &corpus[i]);
            let mut slot_ctx = SlotCtx {
                local: &mut local,
                out: &mut out,
                seen: &mut seen,
                prov: &prov,
            };
            execute_observed(worker, &ctx, &candidate, seed_uid, &mut slot_ctx);
        }
    }
    out
}

/// Mutable slot-scoped state threaded through every mutant execution: the
/// slot-local coverage view, the accumulating outcome, the finding keys
/// already pinned this slot and the slot's provenance stamp.
struct SlotCtx<'s> {
    local: &'s mut LocalCoverage,
    out: &'s mut SlotOutcome,
    seen: &'s mut BTreeSet<RecordKey>,
    prov: &'s SlotProvenance,
}

/// Execute one mutant inside a slot: observe it in the slot monitor
/// (capturing a replayable record for any fresh finding), merge its coverage
/// into the slot-local bitmap and stage it as an admission candidate when it
/// is locally novel. Returns the outcome and the local novelty count.
fn execute_observed(
    worker: &mut Worker,
    ctx: &CampaignContext,
    sequence: &Sequence,
    seed_uid: u64,
    slot: &mut SlotCtx<'_>,
) -> (SequenceOutcome, usize) {
    let SlotCtx {
        local,
        out,
        seen,
        prov,
    } = slot;
    let outcome = worker
        .harness
        .execute_sequence_with(sequence, &mut worker.frame);
    out.executed += 1;
    let known = out.monitor.len();
    for trace in &outcome.traces {
        out.monitor.observe(&worker.harness.compiled, trace);
    }
    out.monitor
        .observe_world(outcome.final_world.balance(worker.harness.contract_address));
    if out.monitor.len() > known {
        // This mutant triggered at least one finding the slot had not seen;
        // pin every fresh key to it.
        for finding in out.monitor.findings() {
            let key = (finding.class, finding.function.clone());
            if seen.insert(key.clone()) {
                out.records.push(PendingRecord {
                    key,
                    record: FindingRecord {
                        contract_hash: prov.contract_hash,
                        seed_uid,
                        round: prov.round,
                        slot: prov.slot,
                        workers: prov.workers,
                        finding,
                        sequence: sequence.clone(),
                        outcome_digest: outcome_digest(&outcome, worker.harness.contract_address),
                    },
                });
            }
        }
    }
    let new_local = local.merge_ids(&outcome.covered_edge_ids);
    if new_local > 0 {
        let index = worker.harness.edge_index();
        let seed = make_seed(ctx, sequence.clone(), &outcome, new_local, &|edge| {
            local.contains_edge(edge, index)
        });
        out.candidates.push(Candidate {
            shape: sequence.shape(),
            seed,
        });
    }
    out.last_world = Some(outcome.final_world.clone());
    (outcome, new_local)
}

/// Algorithm 2 inside a slot: identical probe structure to the free-running
/// engine's mask pass, but charged against the slot quota and judged against
/// the slot-local coverage view. A site whose probe would overrun the quota
/// is left mutable (the same safe default the free-running pass uses when
/// the global budget runs dry mid-pass).
fn probe_masks(
    worker: &mut Worker,
    ctx: &CampaignContext,
    rng: &mut SmallRng,
    seed: &Seed,
    quota: usize,
    slot: &mut SlotCtx<'_>,
) -> Vec<MutationMask> {
    let baseline_nested = seed_nested_pcs(ctx, seed);
    let baseline_distance = seed.best_distance.unwrap_or(1.0);
    let mut masks = Vec::with_capacity(seed.sequence.len());
    for (tx_index, tx) in seed.sequence.txs.iter().enumerate() {
        if tx_index >= MAX_MASK_TXS {
            masks.push(MutationMask::allow_all(tx.stream.len()));
            continue;
        }
        let total_words = word_count(tx.stream.len());
        let probed_words = total_words.min(MAX_MASK_WORDS);
        let mut mask = MutationMask::deny_all(tx.stream.len());
        for word in probed_words..total_words {
            for op in MutationOp::ALL {
                mask.allow(word, op);
            }
        }
        for word in 0..probed_words {
            for op in MutationOp::ALL {
                if slot.out.executed >= quota {
                    mask.allow(word, op);
                    continue;
                }
                let probe_stream = apply_op(&tx.stream, op, word, rng, &ctx.interesting);
                let mut probe_seq = seed.sequence.clone();
                probe_seq.txs[tx_index].stream = probe_stream;
                let (outcome, _) = execute_observed(worker, ctx, &probe_seq, seed.uid, slot);
                let probe_nested = outcome_nested_pcs(ctx, &outcome);
                let keeps_nested = baseline_nested.is_subset(&probe_nested);
                let index = worker.harness.edge_index();
                let probe_distance = distance_to_uncovered(ctx, &outcome, &|edge| {
                    slot.local.contains_edge(edge, index)
                })
                .unwrap_or(1.0);
                if keeps_nested || probe_distance < baseline_distance {
                    mask.allow(word, op);
                }
            }
        }
        if mask.allowed_sites().is_empty() {
            mask = MutationMask::allow_all(tx.stream.len());
        }
        masks.push(mask);
    }
    masks
}

/// Accumulate one selection into a slot's per-uid delta list.
fn bump_delta(deltas: &mut Vec<(u64, usize)>, uid: u64) {
    if let Some(entry) = deltas.iter_mut().find(|(u, _)| *u == uid) {
        entry.1 += 1;
    } else {
        deltas.push((uid, 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_seeds_decorrelate_rounds_slots_and_campaigns() {
        let mut seen = BTreeSet::new();
        for round in 0..16u64 {
            for slot in 0..16u64 {
                assert!(
                    seen.insert(derive_slot_seed(42, round, slot)),
                    "slot seed collision at round {round} slot {slot}"
                );
            }
        }
        // A different campaign seed lands elsewhere entirely.
        assert!(seen.insert(derive_slot_seed(43, 0, 0)));
        // (round, slot) is not symmetric.
        assert_ne!(derive_slot_seed(7, 1, 0), derive_slot_seed(7, 0, 1));
    }

    #[test]
    fn selection_deltas_accumulate_by_uid() {
        let mut deltas = Vec::new();
        bump_delta(&mut deltas, 3);
        bump_delta(&mut deltas, 5);
        bump_delta(&mut deltas, 3);
        assert_eq!(deltas, vec![(3, 2), (5, 1)]);
    }
}
