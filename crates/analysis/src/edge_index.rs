//! Dense numbering of CFG branch edges.
//!
//! The campaign engine tracks branch coverage in a fixed-size atomic bitmap
//! (see `mufuzz::coverage`), which needs every possible branch edge of the
//! contract under test to have a small, stable integer id. [`EdgeIndex`]
//! assigns those ids at harness build time — from the [`ControlFlowGraph`],
//! directly from the pre-decoded instruction stream
//! ([`EdgeIndex::from_program`], no bytecode re-scan), or from the
//! block-lowered program the interpreter executes
//! ([`EdgeIndex::from_blocks`], block-edge granularity): the `JUMPI` sites
//! are enumerated in ascending program-counter order and each site
//! contributes two consecutive ids — `2 * rank` for the fall-through edge
//! and `2 * rank + 1` for the taken edge. Every `JUMPI` terminates exactly
//! one basic block, so the three numberings are identical by construction
//! (and asserted identical in the tests below).
//!
//! Because the numbering is a pure function of the bytecode, two harnesses
//! built from the same compiled contract always agree on every id, which is
//! what lets per-worker execution results be merged without translating
//! edges through a shared dictionary.

use crate::cfg::ControlFlowGraph;
use mufuzz_evm::{Address, BlockProgram, BranchEdge, DecodedProgram, Opcode};
use std::collections::HashMap;

/// A stable, dense `u32` numbering of the branch edges of one contract.
///
/// Ids are dense in `0..len()`, so a bitmap of `len()` bits can represent any
/// subset of the contract's branch edges.
///
/// ```
/// use mufuzz_analysis::{ControlFlowGraph, EdgeIndex};
/// use mufuzz_evm::Address;
/// use mufuzz_lang::compile_source;
///
/// let compiled = compile_source(
///     "contract C { uint256 x; function f(uint256 v) public { if (v > 3) { x = v; } } }",
/// )
/// .unwrap();
/// let cfg = ControlFlowGraph::build(&compiled.runtime);
/// let index = EdgeIndex::build(&cfg, Address::from_low_u64(0xC0DE));
///
/// // Two ids per conditional branch, dense in 0..len().
/// assert_eq!(index.len(), cfg.total_branch_edges());
/// let edge = index.edge_of(0).unwrap();
/// assert_eq!(index.id_of(&edge), Some(0));
/// ```
#[derive(Clone, Debug)]
pub struct EdgeIndex {
    code_address: Address,
    /// `JUMPI` pc → branch rank (position in ascending pc order).
    ranks: HashMap<usize, u32>,
    /// Dense id → edge, in id order.
    edges: Vec<BranchEdge>,
}

impl EdgeIndex {
    /// Number the branch edges of `cfg`, attributing them to the contract
    /// deployed at `code_address`.
    pub fn build(cfg: &ControlFlowGraph, code_address: Address) -> EdgeIndex {
        let mut ranks = HashMap::with_capacity(cfg.branches.len());
        let mut edges = Vec::with_capacity(cfg.branches.len() * 2);
        for (rank, pc) in cfg.branches.keys().enumerate() {
            ranks.insert(*pc, rank as u32);
            for taken in [false, true] {
                edges.push(BranchEdge {
                    code_address,
                    pc: *pc,
                    taken,
                });
            }
        }
        EdgeIndex {
            code_address,
            ranks,
            edges,
        }
    }

    /// Number the branch edges directly from a pre-decoded instruction
    /// stream, without re-scanning the bytecode or building a CFG.
    ///
    /// The numbering is identical to [`EdgeIndex::build`] by construction:
    /// both enumerate the `JUMPI` sites of the same code in ascending
    /// program-counter order (the decoded stream is in code order, and every
    /// `JUMPI` terminates a CFG block, so the CFG's branch map contains
    /// exactly the stream's `JUMPI` pcs). The harness uses this at build
    /// time, reusing the program it decodes for the interpreter fast path.
    pub fn from_program(program: &DecodedProgram, code_address: Address) -> EdgeIndex {
        let mut ranks = HashMap::new();
        let mut edges = Vec::new();
        for instr in program
            .instructions()
            .iter()
            .filter(|i| i.op == Opcode::JumpI)
        {
            let pc = instr.pc as usize;
            ranks.insert(pc, ranks.len() as u32);
            for taken in [false, true] {
                edges.push(BranchEdge {
                    code_address,
                    pc,
                    taken,
                });
            }
        }
        EdgeIndex {
            code_address,
            ranks,
            edges,
        }
    }

    /// Number the branch edges at block granularity: one rank per basic
    /// block that ends in a `JUMPI`, enumerated in block (= code) order.
    ///
    /// A `JUMPI` is a block terminator, so each one ends exactly one basic
    /// block and every `JUMPI`-ending block contributes one branch site —
    /// this numbering is therefore identical to [`EdgeIndex::from_program`]
    /// and [`EdgeIndex::build`] (asserted in the tests), which is what keeps
    /// campaign semantics and the `workers == 1` snapshot contract intact
    /// while the bitmap is sized from the block-edge count.
    pub fn from_blocks(program: &BlockProgram, code_address: Address) -> EdgeIndex {
        let instrs = program.base().instructions();
        let mut ranks = HashMap::new();
        let mut edges = Vec::new();
        for block in program.blocks() {
            let last = &instrs[block.instr_end as usize - 1];
            if last.op != Opcode::JumpI {
                continue;
            }
            let pc = last.pc as usize;
            ranks.insert(pc, ranks.len() as u32);
            for taken in [false, true] {
                edges.push(BranchEdge {
                    code_address,
                    pc,
                    taken,
                });
            }
        }
        EdgeIndex {
            code_address,
            ranks,
            edges,
        }
    }

    /// The dense id of `edge`, or `None` when the edge does not belong to the
    /// indexed contract (wrong address, or a pc that is not a `JUMPI` site).
    pub fn id_of(&self, edge: &BranchEdge) -> Option<u32> {
        if edge.code_address != self.code_address {
            return None;
        }
        self.ranks
            .get(&edge.pc)
            .map(|rank| rank * 2 + u32::from(edge.taken))
    }

    /// The edge behind a dense id (inverse of [`EdgeIndex::id_of`]).
    pub fn edge_of(&self, id: u32) -> Option<BranchEdge> {
        self.edges.get(id as usize).copied()
    }

    /// Total number of branch edges (two per `JUMPI`); ids are `0..len()`.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when the contract has no conditional branches.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The contract address the index attributes edges to.
    pub fn code_address(&self) -> Address {
        self.code_address
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mufuzz_lang::compile_source;

    const SOURCE: &str = r#"
        contract C {
            uint256 total;
            function pay(uint256 v) public payable {
                if (v < 10) {
                    if (v % 2 == 0) { total += v; }
                }
            }
            function check() public { if (total > 5) { bug(); } }
        }
    "#;

    fn index() -> (ControlFlowGraph, EdgeIndex) {
        let compiled = compile_source(SOURCE).unwrap();
        let cfg = ControlFlowGraph::build(&compiled.runtime);
        let idx = EdgeIndex::build(&cfg, Address::from_low_u64(0xC0DE));
        (cfg, idx)
    }

    #[test]
    fn ids_are_dense_and_cover_every_edge() {
        let (cfg, idx) = index();
        assert_eq!(idx.len(), cfg.total_branch_edges());
        assert!(!idx.is_empty());
        // Every (pc, taken) pair maps to a distinct id in range, and the
        // mapping round-trips.
        let mut seen = vec![false; idx.len()];
        for pc in cfg.branches.keys() {
            for taken in [false, true] {
                let edge = BranchEdge {
                    code_address: idx.code_address(),
                    pc: *pc,
                    taken,
                };
                let id = idx.id_of(&edge).unwrap();
                assert!((id as usize) < idx.len());
                assert!(!seen[id as usize], "duplicate id {id}");
                seen[id as usize] = true;
                assert_eq!(idx.edge_of(id), Some(edge));
            }
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn sibling_edges_share_a_branch_slot() {
        let (cfg, idx) = index();
        for pc in cfg.branches.keys() {
            let mk = |taken| BranchEdge {
                code_address: idx.code_address(),
                pc: *pc,
                taken,
            };
            let fall = idx.id_of(&mk(false)).unwrap();
            let taken = idx.id_of(&mk(true)).unwrap();
            assert_eq!(taken, fall + 1);
            assert_eq!(fall % 2, 0);
        }
    }

    #[test]
    fn program_numbering_matches_the_cfg_numbering() {
        // The decoded-stream constructor must assign exactly the ids the
        // CFG-based constructor assigns — the campaign's coverage bitmap
        // depends on the numbering being a pure function of the bytecode.
        let compiled = compile_source(SOURCE).unwrap();
        let cfg = ControlFlowGraph::build(&compiled.runtime);
        let program = DecodedProgram::decode(&compiled.runtime);
        let addr = Address::from_low_u64(0xC0DE);
        let from_cfg = EdgeIndex::build(&cfg, addr);
        let from_program = EdgeIndex::from_program(&program, addr);
        assert_eq!(from_cfg.len(), from_program.len());
        assert!(!from_program.is_empty());
        for id in 0..from_cfg.len() as u32 {
            assert_eq!(from_cfg.edge_of(id), from_program.edge_of(id));
        }
        for edge in (0..from_cfg.len() as u32).filter_map(|id| from_cfg.edge_of(id)) {
            assert_eq!(from_cfg.id_of(&edge), from_program.id_of(&edge));
        }
    }

    #[test]
    fn block_numbering_matches_the_program_and_cfg_numberings() {
        // The block-granular constructor (what the harness uses now) must
        // assign exactly the ids of the per-`JUMPI` constructors — coverage
        // bitmaps sized and indexed by block edges stay bit-compatible with
        // the historical numbering.
        use std::sync::Arc;
        let compiled = compile_source(SOURCE).unwrap();
        let cfg = ControlFlowGraph::build(&compiled.runtime);
        let program = Arc::new(DecodedProgram::decode(&compiled.runtime));
        let blocks = BlockProgram::lower(Arc::clone(&program));
        let addr = Address::from_low_u64(0xC0DE);
        let from_cfg = EdgeIndex::build(&cfg, addr);
        let from_program = EdgeIndex::from_program(&program, addr);
        let from_blocks = EdgeIndex::from_blocks(&blocks, addr);
        assert_eq!(from_blocks.len(), from_program.len());
        assert_eq!(from_blocks.len(), cfg.total_branch_edges());
        assert_eq!(
            from_blocks.len(),
            cfg.branch_blocks().count() * 2,
            "one branch site per JUMPI-terminated CFG block"
        );
        assert!(!from_blocks.is_empty());
        for id in 0..from_blocks.len() as u32 {
            assert_eq!(from_blocks.edge_of(id), from_program.edge_of(id));
            assert_eq!(from_blocks.edge_of(id), from_cfg.edge_of(id));
        }
        for edge in (0..from_blocks.len() as u32).filter_map(|id| from_blocks.edge_of(id)) {
            assert_eq!(from_blocks.id_of(&edge), from_program.id_of(&edge));
            assert_eq!(from_blocks.id_of(&edge), from_cfg.id_of(&edge));
        }
    }

    #[test]
    fn numbering_is_stable_across_builds() {
        let (cfg, idx) = index();
        let again = EdgeIndex::build(&cfg, idx.code_address());
        for id in 0..idx.len() as u32 {
            assert_eq!(idx.edge_of(id), again.edge_of(id));
        }
    }

    #[test]
    fn foreign_edges_have_no_id() {
        let (cfg, idx) = index();
        let pc = *cfg.branches.keys().next().unwrap();
        let foreign = BranchEdge {
            code_address: Address::from_low_u64(0xBEEF),
            pc,
            taken: true,
        };
        assert_eq!(idx.id_of(&foreign), None);
        let unknown_pc = BranchEdge {
            code_address: idx.code_address(),
            pc: usize::MAX,
            taken: false,
        };
        assert_eq!(idx.id_of(&unknown_pc), None);
        assert_eq!(idx.edge_of(u32::MAX), None);
    }

    #[test]
    fn branchless_code_yields_an_empty_index() {
        let cfg = ControlFlowGraph::build(&[]);
        let idx = EdgeIndex::build(&cfg, Address::from_low_u64(1));
        assert!(idx.is_empty());
        assert_eq!(idx.len(), 0);
        assert_eq!(idx.edge_of(0), None);
    }
}
