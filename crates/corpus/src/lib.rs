//! # mufuzz-corpus
//!
//! The benchmark corpus for the MuFuzz reproduction.
//!
//! The paper evaluates on three datasets of real Ethereum contracts
//! (Table II). Those datasets are not available offline, so this crate
//! substitutes them with:
//!
//! * [`contracts`] — hand-written benchmark contracts, including the paper's
//!   two running examples (Figure 1 Crowdsale, Figure 4 Game) and one or more
//!   annotated vulnerable contracts per bug class;
//! * [`generator`] — a seeded procedural generator producing contracts with
//!   the structural properties the evaluation depends on (ordering-sensitive
//!   state, magic-constant guards, nested branches, injected bugs);
//! * [`datasets`] — D1-small/D1-large/D2/D3 builders plus the Table II
//!   summary rows;
//! * [`mod@ingest`] — the real-contract front door: standard ABI JSON plus
//!   runtime-bytecode hex ingested into the same [`CompiledContract`]
//!   shape the toy-language compiler emits.
//!
//! [`CompiledContract`]: mufuzz_lang::CompiledContract
//!
//! ```
//! use mufuzz_corpus::{contracts, datasets};
//! use mufuzz_lang::compile_source;
//!
//! let crowdsale = contracts::crowdsale();
//! assert!(compile_source(&crowdsale.source).is_ok());
//!
//! let d2 = datasets::d2(1);
//! assert!(d2.total_annotations() > 9);
//! ```

#![warn(missing_docs)]

pub mod contracts;
pub mod datasets;
pub mod generator;
pub mod ingest;

pub use contracts::{all_handwritten, BenchContract};
pub use datasets::{d1_large, d1_small, d2, d3, table2_summaries, Dataset, DatasetSummary};
pub use generator::{generate_contract, GeneratorConfig};
pub use ingest::{
    ingest, parse_abi_json, parse_hex_bytecode, IngestError, IngestedContract, JsonValue,
};
