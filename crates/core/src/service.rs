//! The resumable campaign service: many contracts, one fleet pool.
//!
//! [`CampaignService`] owns a [`FleetPool`] and
//! schedules every submitted campaign on it as a set of *lanes* — sequential
//! strands that run one seed batch at a time. `submit` is non-blocking and
//! returns a [`CampaignHandle`] for polling progress ([`CampaignHandle::poll`]),
//! draining coverage/finding events ([`CampaignHandle::events`]), pausing,
//! checkpointing ([`CampaignHandle::checkpoint`]) and waiting for the final
//! [`CampaignReport`].
//!
//! Scheduling across campaigns is priority-driven: every few batches a lane
//! re-enters the pool's global injector at
//! the campaign's *marginal coverage per execution*
//! ([`marginal_coverage_priority`]), so campaigns still discovering edges
//! outrank campaigns grinding a plateau, and a fresh submission (which starts
//! at the top priority) gets on CPU quickly.
//!
//! Determinism: a lane's batches run in order no matter which pool thread
//! picks them up, so a `workers == 1` campaign is bit-for-bit identical to
//! the historical sequential engine at *any* pool size — and a checkpoint
//! taken at a deterministic pause point resumes bit-identically
//! (`tests/fleet_service.rs`).

use crate::campaign::{
    build_report, derive_worker_seed, CampaignContext, CampaignReport, CampaignShared,
    CoveragePoint, LaneStep, PauseState, RunParams, SharedCampaignState, Worker,
};
use crate::config::FuzzerConfig;
use crate::coverage::{CoverageMap, SchedulerEpoch};
use crate::energy::marginal_coverage_priority;
use crate::executor::HarnessError;
use crate::fleet::{FleetPool, WorkerCtx};
use crate::replay::FindingRecord;
use crate::round::RoundRt;
use crate::snapshot::{
    contract_fingerprint, CampaignSnapshot, LaneState, SnapshotError, PROFILE_FREE_RUNNING,
    PROFILE_ROUND,
};
use mufuzz_lang::CompiledContract;
use mufuzz_oracles::{BugClass, BugFinding, CampaignMonitor};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};

/// Batches a lane runs before re-entering the global injector at its
/// campaign's refreshed priority. Between re-injections the lane stays on
/// its thread's local deque (cheap, cache-friendly); at each re-injection
/// the cross-campaign scheduler gets a chance to prefer someone else.
const REINJECT_STEPS: usize = 8;

/// Priority for freshly submitted (and just-resumed) campaigns: above any
/// marginal-coverage score, so new work starts promptly.
const LAUNCH_PRIORITY: f64 = 1.0;

/// Options attached to a campaign submission.
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    /// Pause the campaign once this many executions have been reserved,
    /// instead of running to the budget. Lanes stop at the next batch
    /// boundary at/after the mark; for a single-lane campaign the pause
    /// point is deterministic, which makes it the checkpoint/resume anchor.
    pub pause_at: Option<usize>,
}

impl SubmitOptions {
    /// Pause after (at least) `executions` executions.
    pub fn pause_at(executions: usize) -> SubmitOptions {
        SubmitOptions {
            pause_at: Some(executions),
        }
    }
}

/// A campaign progress event, streamed to the [`CampaignHandle`].
#[derive(Debug, Clone)]
pub enum CampaignEvent {
    /// The campaign was accepted and its lanes are being scheduled.
    Started {
        /// Contract name.
        contract: String,
    },
    /// A coverage timeline point was recorded.
    Coverage {
        /// Executions reserved when the point was taken.
        executions: usize,
        /// Distinct branch edges covered so far.
        covered_edges: usize,
        /// Fraction of the contract's branch edges covered.
        coverage: f64,
        /// Campaign wall-clock at the point (including pre-resume segments).
        elapsed_ms: u64,
    },
    /// A new (class, function) bug finding surfaced.
    Finding(BugFinding),
    /// The campaign stopped at a pause point with budget remaining.
    Paused {
        /// Executions reserved at the pause.
        executions: usize,
    },
    /// The campaign ran to its budget; the report is ready.
    Completed,
}

/// A snapshot answer to "how is this campaign doing right now?".
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignProgress {
    /// Lanes are running (or queued on the pool).
    Running {
        /// Executions reserved so far.
        executions: usize,
        /// Distinct branch edges covered so far.
        covered_edges: usize,
        /// Fraction of the contract's branch edges covered.
        coverage: f64,
    },
    /// The campaign is paused; it can be checkpointed.
    Paused {
        /// Executions reserved at the pause.
        executions: usize,
    },
    /// The report is ready to collect.
    Completed,
}

#[derive(Clone, Copy, PartialEq)]
enum JobStatus {
    Running,
    Paused,
    Completed,
}

/// Completion state, guarded by `CampaignJob::done` and signalled through
/// `done_cv`.
struct JobState {
    status: JobStatus,
    report: Option<CampaignReport>,
    /// Lane 0's RNG after completion — handed back to [`crate::Fuzzer`] so
    /// consecutive `run()` calls continue one RNG stream, exactly like the
    /// historical sequential engine.
    rng: Option<SmallRng>,
}

/// The cross-campaign scheduling signal: an exponentially smoothed marginal
/// coverage per execution over the window since the last refresh.
struct PriorityWindow {
    score: f64,
    last_executions: usize,
    last_covered: usize,
}

/// Event emission state. `Sender` is single-consumer plumbing; the mutex
/// also serialises "what has been reported" bookkeeping so events are not
/// duplicated across lanes.
struct EventSink {
    sender: Sender<CampaignEvent>,
    /// Timeline points already emitted as [`CampaignEvent::Coverage`].
    timeline_sent: usize,
    /// Findings already emitted, by (class, function).
    reported: BTreeSet<(BugClass, Option<String>)>,
}

/// One submitted campaign: the immutable context, the shared mutable state,
/// the lane workers, and the scheduling/eventing glue. Owned by an `Arc`
/// shared between the handle and every queued lane task.
struct CampaignJob {
    ctx: Arc<CampaignContext>,
    shared: CampaignShared,
    params: RunParams,
    pause: PauseState,
    /// One slot per lane. A slot holds the lane's [`Worker`] whenever the
    /// lane is not mid-batch; finalisation takes them out, a paused campaign
    /// leaves them in place for [`CampaignHandle::checkpoint`].
    lanes: Vec<Mutex<Option<Worker>>>,
    /// Lanes still scheduled (running or queued).
    active: AtomicUsize,
    /// Lanes that stopped because the budget was exhausted (as opposed to
    /// pausing). If any lane finished, the campaign finalises even when the
    /// others stopped at the pause mark — the budget is simply gone.
    finished_lanes: AtomicUsize,
    /// True when the job continues a checkpoint: skip the seeding prologue.
    resumed: bool,
    /// Round index to restart from (zero for a fresh campaign); only
    /// meaningful under the round profile.
    resume_round: u64,
    /// Replayable finding records restored from a checkpoint, handed to the
    /// round runtime at bootstrap (round profile only).
    resume_records: Mutex<Vec<FindingRecord>>,
    /// Campaign wall-clock frozen at the pause (what the checkpoint stores,
    /// so post-pause idle time never counts against the time budget).
    paused_elapsed_ms: AtomicU64,
    priority: Mutex<PriorityWindow>,
    sink: Mutex<EventSink>,
    done: Mutex<JobState>,
    done_cv: Condvar,
}

/// A handle on one submitted campaign.
///
/// Dropping the handle does not cancel the campaign; it keeps running on the
/// service's pool (events are discarded once the receiver is gone).
pub struct CampaignHandle {
    job: Arc<CampaignJob>,
    events: Receiver<CampaignEvent>,
}

/// A fleet of fuzzing campaigns over one work-stealing thread pool.
///
/// ```no_run
/// # use mufuzz::{CampaignService, FuzzerConfig};
/// # let contracts: Vec<mufuzz_lang::CompiledContract> = vec![];
/// let service = CampaignService::new(4);
/// let handles: Vec<_> = contracts
///     .into_iter()
///     .map(|c| service.submit(c, FuzzerConfig::default()).unwrap())
///     .collect();
/// for handle in handles {
///     let report = handle.wait();
///     println!("{}: {:.1}% coverage", report.contract, report.coverage_percent());
/// }
/// ```
pub struct CampaignService {
    pool: Arc<FleetPool>,
}

impl CampaignService {
    /// A service over a fresh pool of `threads` worker threads (clamped to
    /// at least one).
    pub fn new(threads: usize) -> CampaignService {
        CampaignService {
            pool: Arc::new(FleetPool::new(threads)),
        }
    }

    /// Number of pool threads serving this fleet.
    pub fn thread_count(&self) -> usize {
        self.pool.thread_count()
    }

    /// Submit a campaign; returns immediately with a handle.
    ///
    /// The campaign runs `config.workers` lanes on the shared pool.
    /// Deployment and static analysis happen on the calling thread so setup
    /// errors surface here rather than inside the pool.
    pub fn submit(
        &self,
        compiled: CompiledContract,
        config: FuzzerConfig,
    ) -> Result<CampaignHandle, HarnessError> {
        self.submit_with(compiled, config, SubmitOptions::default())
    }

    /// [`CampaignService::submit`] with explicit [`SubmitOptions`].
    pub fn submit_with(
        &self,
        compiled: CompiledContract,
        config: FuzzerConfig,
        options: SubmitOptions,
    ) -> Result<CampaignHandle, HarnessError> {
        let ctx = Arc::new(CampaignContext::prepare(compiled, config)?);
        let rng = SmallRng::seed_from_u64(ctx.config.rng_seed);
        Ok(self.submit_prepared(ctx, rng, options))
    }

    /// Submit a campaign from an already-prepared context (the path
    /// [`crate::Fuzzer::run`] uses, threading its own RNG through).
    pub(crate) fn submit_prepared(
        &self,
        ctx: Arc<CampaignContext>,
        rng0: SmallRng,
        options: SubmitOptions,
    ) -> CampaignHandle {
        let lane_count = ctx.config.workers.max(1);
        let mut workers = Vec::with_capacity(lane_count);
        workers.push(Worker::new(Arc::clone(&ctx), rng0));
        for index in 1..lane_count {
            let seed = derive_worker_seed(ctx.config.rng_seed, index);
            workers.push(Worker::new(Arc::clone(&ctx), SmallRng::seed_from_u64(seed)));
        }
        let shared = CampaignShared::new(ctx.harness.edge_index().len());
        let params = RunParams::new(&ctx, 0);
        self.launch(ctx, shared, params, workers, options, ResumeInfo::fresh())
    }

    /// Resume a checkpointed campaign; returns immediately with a handle.
    ///
    /// The contract must fingerprint-match the snapshot and the
    /// configuration must select the snapshot's determinism profile. Under
    /// the free-running profile `config.workers` must additionally equal the
    /// snapshot's lane count, and with one lane an unchanged configuration
    /// continues bit-for-bit where the checkpoint left off. Under the round
    /// profile the snapshot is worker-count independent: it can resume at
    /// *any* `config.workers` and still produce the bit-identical campaign.
    pub fn resume(
        &self,
        compiled: CompiledContract,
        config: FuzzerConfig,
        snapshot: &CampaignSnapshot,
    ) -> Result<CampaignHandle, SnapshotError> {
        self.resume_with(compiled, config, snapshot, SubmitOptions::default())
    }

    /// [`CampaignService::resume`] with explicit [`SubmitOptions`].
    pub fn resume_with(
        &self,
        compiled: CompiledContract,
        config: FuzzerConfig,
        snapshot: &CampaignSnapshot,
        options: SubmitOptions,
    ) -> Result<CampaignHandle, SnapshotError> {
        if contract_fingerprint(&compiled) != snapshot.contract_hash {
            return Err(SnapshotError::ContractMismatch);
        }
        let config_profile = if config.round_mode() {
            PROFILE_ROUND
        } else {
            PROFILE_FREE_RUNNING
        };
        if snapshot.profile != config_profile {
            return Err(SnapshotError::ProfileMismatch {
                snapshot: snapshot.profile,
                config: config_profile,
            });
        }
        let lane_count = config.workers.max(1);
        if snapshot.profile == PROFILE_FREE_RUNNING {
            // Free-running lanes have their own RNG/monitor streams, so the
            // resume must rebuild exactly as many as were frozen.
            if snapshot.lanes() != lane_count {
                return Err(SnapshotError::LaneMismatch {
                    snapshot: snapshot.lanes(),
                    config: lane_count,
                });
            }
            if snapshot.lane_states.len() != snapshot.lanes() {
                return Err(SnapshotError::Corrupt(format!(
                    "{} lane states for {} lanes",
                    snapshot.lane_states.len(),
                    snapshot.lanes()
                )));
            }
        } else if snapshot.lane_states.len() != 1 {
            // A round checkpoint freezes one lane state: lane 0's RNG and
            // the master monitor. The worker count is free to change.
            return Err(SnapshotError::Corrupt(format!(
                "{} lane states for a round-mode snapshot (expected 1)",
                snapshot.lane_states.len()
            )));
        }
        let ctx = Arc::new(CampaignContext::prepare(compiled, config)?);
        let edges = ctx.harness.edge_index().len();
        if snapshot.coverage_edges as usize != edges {
            return Err(SnapshotError::ContractMismatch);
        }
        let workers: Vec<Worker> = if snapshot.profile == PROFILE_ROUND {
            let master = &snapshot.lane_states[0];
            let mut lanes = Vec::with_capacity(lane_count);
            lanes.push(Worker::restore(
                Arc::clone(&ctx),
                master.rng,
                master.monitor.clone(),
            ));
            for index in 1..lane_count {
                let seed = derive_worker_seed(ctx.config.rng_seed, index);
                lanes.push(Worker::new(Arc::clone(&ctx), SmallRng::seed_from_u64(seed)));
            }
            lanes
        } else {
            snapshot
                .lane_states
                .iter()
                .map(|lane| Worker::restore(Arc::clone(&ctx), lane.rng, lane.monitor.clone()))
                .collect()
        };
        let shared = CampaignShared {
            state: Mutex::new(SharedCampaignState {
                corpus: snapshot.corpus.clone(),
                timeline: snapshot.timeline.clone(),
                interesting_shapes: snapshot.shapes.clone(),
                next_uid: snapshot.next_uid,
                admitted_since_cull: snapshot.admitted_since_cull as usize,
                culled: snapshot.culled as usize,
            }),
            coverage: CoverageMap::restore(edges, &snapshot.coverage_words),
            reserved: AtomicUsize::new(snapshot.executions()),
            epoch: SchedulerEpoch::new(),
            round: Mutex::new(None),
        };
        // Force every lane's (empty) shard mirror to resync from the
        // restored corpus before its first draw. Resyncs consume no
        // randomness, so this is invisible to the lanes' RNG streams.
        shared.epoch.bump();
        let params = RunParams::new(&ctx, snapshot.elapsed_ms());
        Ok(self.launch(
            ctx,
            shared,
            params,
            workers,
            options,
            ResumeInfo {
                resumed: true,
                round: snapshot.round,
                records: snapshot.records.clone(),
            },
        ))
    }

    fn launch(
        &self,
        ctx: Arc<CampaignContext>,
        shared: CampaignShared,
        params: RunParams,
        workers: Vec<Worker>,
        options: SubmitOptions,
        resume: ResumeInfo,
    ) -> CampaignHandle {
        let (sender, events) = channel();
        let _ = sender.send(CampaignEvent::Started {
            contract: ctx.harness.compiled.name.clone(),
        });
        let job = Arc::new(CampaignJob {
            ctx,
            shared,
            params,
            pause: PauseState::new(options.pause_at),
            lanes: workers.into_iter().map(|w| Mutex::new(Some(w))).collect(),
            active: AtomicUsize::new(1),
            finished_lanes: AtomicUsize::new(0),
            resumed: resume.resumed,
            resume_round: resume.round,
            resume_records: Mutex::new(resume.records),
            paused_elapsed_ms: AtomicU64::new(0),
            priority: Mutex::new(PriorityWindow {
                score: LAUNCH_PRIORITY,
                last_executions: 0,
                last_covered: 0,
            }),
            sink: Mutex::new(EventSink {
                sender,
                timeline_sent: 0,
                reported: BTreeSet::new(),
            }),
            done: Mutex::new(JobState {
                status: JobStatus::Running,
                report: None,
                rng: None,
            }),
            done_cv: Condvar::new(),
        });
        let bootstrap_job = Arc::clone(&job);
        self.pool
            .spawn(LAUNCH_PRIORITY, move |wctx| bootstrap(bootstrap_job, wctx));
        CampaignHandle { job, events }
    }
}

/// Where a launched campaign starts from: fresh, or mid-round with the
/// records a checkpoint carried.
struct ResumeInfo {
    resumed: bool,
    round: u64,
    records: Vec<FindingRecord>,
}

impl ResumeInfo {
    fn fresh() -> ResumeInfo {
        ResumeInfo {
            resumed: false,
            round: 0,
            records: Vec::new(),
        }
    }
}

impl CampaignHandle {
    /// Name of the contract this campaign fuzzes.
    pub fn contract(&self) -> &str {
        &self.job.ctx.harness.compiled.name
    }

    /// A non-blocking progress snapshot.
    pub fn poll(&self) -> CampaignProgress {
        let done = self.job.done.lock().expect("campaign done state poisoned");
        match done.status {
            JobStatus::Completed => CampaignProgress::Completed,
            JobStatus::Paused => CampaignProgress::Paused {
                executions: self.job.shared.executions(),
            },
            JobStatus::Running => {
                let covered = self.job.shared.coverage.covered_count();
                CampaignProgress::Running {
                    executions: self.job.shared.executions(),
                    covered_edges: covered,
                    coverage: covered as f64 / self.job.params.total_edges as f64,
                }
            }
        }
    }

    /// Drain every event queued since the last call (non-blocking).
    pub fn events(&self) -> Vec<CampaignEvent> {
        self.events.try_iter().collect()
    }

    /// Ask the campaign to pause at the next batch boundary. The lanes stop
    /// with budget remaining; poll for [`CampaignProgress::Paused`], then
    /// [`CampaignHandle::checkpoint`].
    pub fn pause(&self) {
        self.job.pause.requested.store(true, Ordering::Relaxed);
    }

    /// Block until the campaign completes or pauses.
    pub fn join(&self) {
        let mut done = self.job.done.lock().expect("campaign done state poisoned");
        while done.status == JobStatus::Running {
            done = self
                .job
                .done_cv
                .wait(done)
                .expect("campaign done state poisoned");
        }
    }

    /// Block until the campaign finishes and return its report.
    ///
    /// # Panics
    ///
    /// Panics if the campaign pauses instead of completing (a paused
    /// campaign has no final report — checkpoint and resume it).
    pub fn wait(self) -> CampaignReport {
        let (report, _) = self.wait_inner();
        report
    }

    /// Like [`CampaignHandle::wait`], additionally handing back lane 0's
    /// RNG so [`crate::Fuzzer`] can continue its stream across runs.
    pub(crate) fn wait_internal(self) -> (CampaignReport, SmallRng) {
        let (report, rng) = self.wait_inner();
        (
            report,
            rng.expect("completed campaign always stores lane 0's rng"),
        )
    }

    fn wait_inner(&self) -> (CampaignReport, Option<SmallRng>) {
        self.join();
        let mut done = self.job.done.lock().expect("campaign done state poisoned");
        match done.status {
            JobStatus::Completed => (
                done.report.take().expect("campaign report already taken"),
                done.rng.take(),
            ),
            _ => panic!(
                "campaign '{}' paused instead of completing; checkpoint() and resume it",
                self.job.ctx.harness.compiled.name
            ),
        }
    }

    /// Freeze a paused campaign into a [`CampaignSnapshot`].
    ///
    /// Errors with [`SnapshotError::NotPaused`] unless the campaign is
    /// paused, and with [`SnapshotError::OverflowCoverage`] in the
    /// (practically unreachable) case of a saturated coverage bitmap.
    pub fn checkpoint(&self) -> Result<CampaignSnapshot, SnapshotError> {
        {
            let done = self.job.done.lock().expect("campaign done state poisoned");
            if done.status != JobStatus::Paused {
                return Err(SnapshotError::NotPaused);
            }
        }
        let job = &self.job;
        if job.shared.coverage.has_overflow() {
            return Err(SnapshotError::OverflowCoverage);
        }
        let (corpus, timeline, shapes, next_uid, admitted_since_cull, culled) = {
            let s = job.shared.state.lock().expect("campaign state poisoned");
            (
                s.corpus.clone(),
                s.timeline.clone(),
                s.interesting_shapes.clone(),
                s.next_uid,
                s.admitted_since_cull,
                s.culled,
            )
        };
        // A round checkpoint freezes one lane state — lane 0's RNG plus the
        // runtime's master monitor — and the round index and record list;
        // the snapshot can then resume at any worker count. Free-running
        // checkpoints freeze every lane's private stream as before.
        let round_state = {
            let guard = job.shared.round.lock().expect("round state poisoned");
            guard
                .as_ref()
                .map(|rt| (rt.round, rt.monitor.export_state(), rt.records.clone()))
        };
        let (profile, round, lane_states, records) = match round_state {
            Some((round, monitor, records)) => {
                let slot = job.lanes[0].lock().expect("campaign lane poisoned");
                let worker = slot.as_ref().ok_or(SnapshotError::NotPaused)?;
                let lane_states = vec![LaneState {
                    rng: worker.rng_state(),
                    monitor,
                }];
                (PROFILE_ROUND, round, lane_states, records)
            }
            None => {
                let mut lane_states = Vec::with_capacity(job.lanes.len());
                for slot in &job.lanes {
                    let slot = slot.lock().expect("campaign lane poisoned");
                    let worker = slot.as_ref().ok_or(SnapshotError::NotPaused)?;
                    lane_states.push(LaneState {
                        rng: worker.rng_state(),
                        monitor: worker.monitor_state(),
                    });
                }
                (PROFILE_FREE_RUNNING, 0, lane_states, Vec::new())
            }
        };
        Ok(CampaignSnapshot {
            contract_hash: contract_fingerprint(&job.ctx.harness.compiled),
            rng_seed: job.ctx.config.rng_seed,
            lanes: job.lanes.len() as u32,
            profile,
            round,
            max_executions: job.ctx.config.max_executions() as u64,
            executions: job.shared.executions() as u64,
            elapsed_ms: job.paused_elapsed_ms.load(Ordering::Relaxed),
            coverage_edges: job.ctx.harness.edge_index().len() as u64,
            coverage_words: job.shared.coverage.snapshot_words(),
            next_uid,
            admitted_since_cull: admitted_since_cull as u64,
            culled: culled as u64,
            corpus,
            timeline,
            shapes,
            lane_states,
            records,
        })
    }
}

/// First task of every campaign: run the seeding prologue (unless resumed),
/// then fan the lanes out onto the pool. Lane 0 continues on this thread —
/// for a fresh single-lane campaign that reproduces the sequential engine's
/// thread usage exactly.
fn bootstrap(job: Arc<CampaignJob>, wctx: &WorkerCtx) {
    if !job.resumed {
        let mut slot = job.lanes[0].lock().expect("campaign lane poisoned");
        let worker = slot.as_mut().expect("lane worker missing");
        worker.run_initial(&job.shared, &job.params);
    }
    pump_events(&job, 0);
    let corpus_empty = job
        .shared
        .state
        .lock()
        .expect("campaign state poisoned")
        .corpus
        .is_empty();
    if corpus_empty {
        // Contract with no callable functions: report immediately.
        finalize(&job, true);
        return;
    }
    if job.ctx.config.round_mode() {
        // Promote lane 0's monitor (seeding-prologue and, on resume,
        // checkpointed observations) to the round runtime's master monitor
        // and freeze the first round before any lane starts claiming slots.
        let master = {
            let mut slot = job.lanes[0].lock().expect("campaign lane poisoned");
            slot.as_mut().expect("lane worker missing").take_monitor()
        };
        let records = std::mem::take(
            &mut *job
                .resume_records
                .lock()
                .expect("campaign resume records poisoned"),
        );
        let rt = RoundRt::install(
            master,
            job.resume_round,
            records,
            &job.ctx,
            &job.shared,
            &job.params,
            &job.pause,
        );
        *job.shared.round.lock().expect("round state poisoned") = Some(rt);
    }
    let lane_count = job.lanes.len();
    job.active.store(lane_count, Ordering::SeqCst);
    for lane in 1..lane_count {
        let lane_job = Arc::clone(&job);
        wctx.respawn_global(LAUNCH_PRIORITY, move |w| drive_lane(&lane_job, lane, 0, w));
    }
    drive_lane(&job, 0, 0, wctx);
}

/// Run one batch of `lane`, then reschedule it: locally for up to
/// [`REINJECT_STEPS`] batches, then through the global injector at the
/// campaign's refreshed marginal-coverage priority.
fn drive_lane(job: &Arc<CampaignJob>, lane: usize, steps: usize, wctx: &WorkerCtx) {
    let step = {
        let mut slot = job.lanes[lane].lock().expect("campaign lane poisoned");
        let worker = slot.as_mut().expect("lane worker missing");
        worker.step(&job.shared, &job.params, &job.pause)
    };
    pump_events(job, lane);
    match step {
        LaneStep::Continue => {
            let steps = steps + 1;
            let lane_job = Arc::clone(job);
            if steps >= REINJECT_STEPS {
                let score = refresh_priority(job);
                wctx.respawn_global(score, move |w| drive_lane(&lane_job, lane, 0, w));
            } else {
                wctx.respawn_local(move |w| drive_lane(&lane_job, lane, steps, w));
            }
        }
        LaneStep::Finished => {
            job.finished_lanes.fetch_add(1, Ordering::SeqCst);
            lane_done(job);
        }
        LaneStep::Paused => lane_done(job),
    }
}

/// A lane left the pool. The last lane out settles the campaign: if any
/// lane saw the budget exhausted the campaign finalises, otherwise every
/// lane stopped at the pause mark and the campaign parks as paused.
fn lane_done(job: &Arc<CampaignJob>) {
    if job.active.fetch_sub(1, Ordering::SeqCst) == 1 {
        if job.finished_lanes.load(Ordering::SeqCst) > 0 {
            finalize(job, false);
        } else {
            mark_paused(job);
        }
    }
}

/// Merge the lanes' monitors (or take the round runtime's master state),
/// run the campaign-level oracles, build the report and publish completion.
fn finalize(job: &Arc<CampaignJob>, empty_corpus: bool) {
    let round_rt = job
        .shared
        .round
        .lock()
        .expect("round state poisoned")
        .take();
    let mut merged: Option<CampaignMonitor> = None;
    let mut last_world = None;
    let mut rng0 = None;
    for (index, slot) in job.lanes.iter().enumerate() {
        let worker = slot
            .lock()
            .expect("campaign lane poisoned")
            .take()
            .expect("lane worker missing at finalisation");
        let (monitor, world, rng) = worker.into_parts();
        if index == 0 {
            rng0 = Some(rng);
        }
        // Keep the freshest world for the campaign-level oracles: lane 0's
        // last mutant (the only lane with `workers == 1`, preserving the
        // sequential engine's choice), else any lane's.
        if last_world.is_none() {
            last_world = world;
        }
        merged = Some(match merged {
            None => monitor,
            Some(mut m) => {
                m.merge(monitor);
                m
            }
        });
    }
    // Round mode keeps its observations in the runtime's master monitor —
    // committed in slot order, so they are identical at any worker count —
    // while the lane monitors stay empty.
    let (mut monitor, finding_records) = match round_rt {
        Some(rt) => {
            last_world = rt.last_world;
            (rt.monitor, rt.records)
        }
        None => (merged.expect("campaign has at least one lane"), Vec::new()),
    };
    monitor.finalize(
        &job.ctx.harness.compiled,
        last_world.as_ref().or(Some(job.ctx.harness.base_world())),
    );
    let report = build_report(
        &job.ctx,
        &job.shared,
        monitor,
        &job.params,
        job.lanes.len(),
        empty_corpus,
        finding_records,
    );
    {
        let mut sink = job.sink.lock().expect("campaign sink poisoned");
        drain_timeline(&mut sink, job);
        for finding in &report.findings {
            if sink
                .reported
                .insert((finding.class, finding.function.clone()))
            {
                let _ = sink.sender.send(CampaignEvent::Finding(finding.clone()));
            }
        }
        let _ = sink.sender.send(CampaignEvent::Completed);
    }
    let mut done = job.done.lock().expect("campaign done state poisoned");
    done.status = JobStatus::Completed;
    done.report = Some(report);
    done.rng = rng0;
    job.done_cv.notify_all();
}

/// Park the campaign as paused: freeze the campaign clock, flush events,
/// publish the paused status.
fn mark_paused(job: &Arc<CampaignJob>) {
    job.paused_elapsed_ms
        .store(job.params.elapsed_ms(), Ordering::Relaxed);
    let executions = job.shared.executions();
    {
        let mut sink = job.sink.lock().expect("campaign sink poisoned");
        drain_timeline(&mut sink, job);
        let _ = sink.sender.send(CampaignEvent::Paused { executions });
    }
    let mut done = job.done.lock().expect("campaign done state poisoned");
    done.status = JobStatus::Paused;
    job.done_cv.notify_all();
}

/// Refresh the campaign's cross-campaign priority from the coverage and
/// executions accumulated since the last refresh.
fn refresh_priority(job: &Arc<CampaignJob>) -> f64 {
    let executions = job.shared.executions();
    let covered = job.shared.coverage.covered_count();
    let mut window = job.priority.lock().expect("campaign priority poisoned");
    let new_executions = executions.saturating_sub(window.last_executions);
    let new_edges = covered.saturating_sub(window.last_covered);
    window.score = marginal_coverage_priority(window.score, new_edges, new_executions);
    window.last_executions = executions;
    window.last_covered = covered;
    window.score
}

/// Emit fresh timeline points and `lane`'s fresh findings as events.
///
/// Lock order within a job is sink → state and sink → lane is never needed
/// (the lane lock is released before the sink lock is taken), so lane tasks
/// and the handle can pump concurrently without deadlock.
fn pump_events(job: &Arc<CampaignJob>, lane: usize) {
    let findings = if job.ctx.config.round_mode() {
        // Round-mode findings live in the runtime's master monitor (lane
        // monitors stay empty); they become visible at round commits.
        let guard = job.shared.round.lock().expect("round state poisoned");
        guard
            .as_ref()
            .map(|rt| rt.monitor.findings())
            .unwrap_or_default()
    } else {
        let slot = job.lanes[lane].lock().expect("campaign lane poisoned");
        match slot.as_ref() {
            Some(worker) => worker.findings(),
            None => Vec::new(),
        }
    };
    let mut sink = job.sink.lock().expect("campaign sink poisoned");
    drain_timeline(&mut sink, job);
    for finding in findings {
        if sink
            .reported
            .insert((finding.class, finding.function.clone()))
        {
            let _ = sink.sender.send(CampaignEvent::Finding(finding));
        }
    }
}

/// Send every timeline point not yet emitted. Called with the sink lock
/// held; takes the state lock briefly to copy the fresh points.
fn drain_timeline(sink: &mut EventSink, job: &CampaignJob) {
    let fresh: Vec<CoveragePoint> = {
        let s = job.shared.state.lock().expect("campaign state poisoned");
        s.timeline.get(sink.timeline_sent..).unwrap_or(&[]).to_vec()
    };
    sink.timeline_sent += fresh.len();
    for point in fresh {
        let _ = sink.sender.send(CampaignEvent::Coverage {
            executions: point.executions,
            covered_edges: point.covered_edges,
            coverage: point.coverage,
            elapsed_ms: point.elapsed_ms,
        });
    }
}
