//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal property-testing harness implementing the exact API subset the
//! test suites use: the [`Strategy`] trait with `prop_map`/`boxed`,
//! [`any`], [`Just`], ranges-as-strategies, `collection::vec`,
//! `array::uniform32`, a tiny character-class string strategy for `&str`
//! patterns like `"[a-c]{1,4}"`, and the `proptest!`/`prop_assert*`/
//! `prop_assume!`/`prop_oneof!` macros.
//!
//! Unlike real proptest there is **no shrinking** and no failure persistence:
//! each property runs `PROPTEST_CASES` (default 64) deterministic cases and
//! panics on the first counterexample, printing the case number. Swapping
//! back to the real crate is a one-line change in the workspace manifest.

#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::SeedableRng;

pub mod strategy;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};

/// The deterministic RNG handed to strategies.
pub struct TestRng(pub(crate) SmallRng);

impl TestRng {
    pub(crate) fn deterministic() -> Self {
        TestRng(SmallRng::seed_from_u64(0x70726f70_74657374))
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Test-runner plumbing, mirroring `proptest::test_runner`.
pub mod test_runner {
    use super::TestRng;

    /// Drives strategies outside of the `proptest!` macro.
    pub struct TestRunner {
        pub(crate) rng: TestRng,
    }

    impl TestRunner {
        /// A runner with a fixed seed: the same strategies yield the same values.
        pub fn deterministic() -> Self {
            TestRunner {
                rng: TestRng::deterministic(),
            }
        }

        /// The runner's RNG (used by the `proptest!` macro expansion).
        pub fn rng_mut(&mut self) -> &mut TestRng {
            &mut self.rng
        }
    }

    /// Number of cases each property runs (`PROPTEST_CASES`, default 64).
    pub fn case_count() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// A strategy for `Vec<T>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: core::ops::Range<usize>,
    }

    /// Generates vectors of values from `elem` with lengths in `size`.
    pub fn vec<S: Strategy>(elem: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Fixed-size array strategies, mirroring `proptest::array`.
pub mod array {
    use super::strategy::Strategy;
    use super::TestRng;

    /// A strategy for `[T; 32]`.
    pub struct Uniform32<S>(S);

    /// Generates `[T; 32]` arrays where every element comes from `elem`.
    pub fn uniform32<S: Strategy>(elem: S) -> Uniform32<S> {
        Uniform32(elem)
    }

    impl<S: Strategy> Strategy for Uniform32<S> {
        type Value = [S::Value; 32];

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            core::array::from_fn(|_| self.0.generate(rng))
        }
    }
}

/// The glob import used by every property-test file.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a boolean condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

/// Declares `#[test]` functions whose arguments are drawn from strategies.
///
/// Each property runs [`test_runner::case_count`] cases from a fixed seed.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = $crate::test_runner::case_count();
                let mut __runner = $crate::test_runner::TestRunner::deterministic();
                for __case in 0..__cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __runner.rng_mut());)+
                    let __run = || { $body };
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(__run));
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest: property `{}` failed at case {}/{} (no shrinking in the offline shim)",
                            stringify!($name), __case + 1, __cases,
                        );
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}
