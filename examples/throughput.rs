//! Throughput benchmark of the campaign engine: fuzz the quickstart
//! PiggyBank contract with 1 worker and with N workers — the N-worker
//! campaign both on the sharded seed scheduler (the default: lock-free
//! steady-state draws) and on the historical global draw under the state
//! lock — then sweep three corpus contracts through one `CampaignService`
//! fleet pool, sequentially and concurrently. A raw-harness interpreter
//! A/B (block-lowered vs pre-decoded instruction-at-a-time) isolates the
//! basic-block lowering's speedup from scheduler effects: a straight-line
//! local-arithmetic kernel executed through `ContractHarness` directly,
//! with the two tiers measured best-of-N interleaved to shrug off
//! scheduler noise. Reports execs/sec for each and emits a
//! machine-readable `BENCH_throughput.json` so CI can track the
//! performance trajectory, the sharded-vs-global scaling claim, the
//! fleet-concurrency claim and the block-lowering speedup across PRs.
//!
//! Run with:
//! ```text
//! cargo run --release --example throughput            # N = 4 workers
//! MUFUZZ_WORKERS=8 cargo run --release --example throughput
//! MUFUZZ_EXECS=100000 cargo run --release --example throughput
//! ```

use mufuzz::{
    CampaignReport, CampaignService, ContractHarness, Fuzzer, FuzzerConfig, Sequence, TxInput,
};
use mufuzz_corpus::contracts;
use mufuzz_evm::{ExecFrame, U256};
use mufuzz_lang::compile_source;
use std::time::Instant;

const SOURCE: &str = r#"
contract PiggyBank {
    address owner;
    uint256 total;
    mapping(address => uint256) deposits;

    constructor() public { owner = msg.sender; }

    function deposit() public payable {
        require(msg.value > 0);
        deposits[msg.sender] += msg.value;
        total += msg.value;
    }

    function withdraw(uint256 amount) public {
        require(deposits[msg.sender] >= amount);
        deposits[msg.sender] -= amount;
        total -= amount;
        msg.sender.transfer(amount);
    }

    function smash() public {
        if (total > 10 ether) {
            bug();
            selfdestruct(msg.sender);
        }
    }
}
"#;

fn campaign(workers: usize, executions: usize, sharded: bool) -> CampaignReport {
    let compiled = compile_source(SOURCE).expect("contract should compile");
    let config = FuzzerConfig::mufuzz(executions)
        .with_rng_seed(42)
        .with_workers(workers)
        .with_sharded_scheduler(sharded);
    Fuzzer::new(compiled, config)
        .expect("deployment should succeed")
        .run()
}

/// The same N-worker campaign under the barrier-synchronized round profile:
/// what reproducibility costs relative to free-running workers.
fn round_campaign(workers: usize, executions: usize) -> CampaignReport {
    let compiled = compile_source(SOURCE).expect("contract should compile");
    let config = FuzzerConfig::mufuzz(executions)
        .with_rng_seed(42)
        .with_workers(workers)
        .with_round_mode();
    Fuzzer::new(compiled, config)
        .expect("deployment should succeed")
        .run()
}

/// Straight-line local-arithmetic kernel for the interpreter A/B: an
/// unrolled run of `x = x * c1 + c2` statements over memory-resident
/// locals. Scheduler, corpus and branch-record costs are identical across
/// the two tiers, so a branchy campaign workload buries the dispatch
/// difference in symmetric overhead — this kernel isolates it.
fn kernel_source() -> String {
    let mut body = String::new();
    for k in 0..48u64 {
        body.push_str(&format!(
            "        x = x * {} + {};\n",
            3 + k % 7,
            11 + k % 13
        ));
        if k % 4 == 3 {
            body.push_str("        y = y + x;\n");
        }
    }
    format!(
        "contract Mixer {{\n    uint256 acc;\n    function mix(uint256 seed) public returns (uint256) {{\n        uint256 x = seed;\n        uint256 y = 1;\n{body}        acc = y;\n        return y;\n    }}\n}}\n"
    )
}

/// One timed chunk of the interpreter A/B: `iters` transactions of the
/// kernel through `ContractHarness` pinned to one tier. Returns tx/sec.
fn tier_chunk(block_lowering: bool, iters: usize) -> f64 {
    let compiled = compile_source(&kernel_source()).expect("kernel should compile");
    let config = FuzzerConfig::default().with_block_lowering(block_lowering);
    let harness = ContractHarness::new(compiled, &config).expect("kernel should deploy");
    let seq = Sequence::new(vec![TxInput::new(
        "mix",
        0,
        U256::ZERO,
        &[U256::from_u64(12345)],
    )]);
    let mut frame = ExecFrame::new();
    let start = Instant::now();
    let mut successes = 0usize;
    for _ in 0..iters {
        successes += harness.execute_sequence_with(&seq, &mut frame).successes;
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert!(successes == iters, "kernel transactions should all succeed");
    iters as f64 / elapsed
}

/// The interpreter A/B measurement: best-of-N with the tiers interleaved,
/// so a machine-noise spike hits both sides instead of biasing one.
fn tier_rates(rounds: usize, iters: usize) -> (f64, f64) {
    tier_chunk(true, iters / 2); // warm-up: page in both tiers
    tier_chunk(false, iters / 2);
    let (mut pre, mut blk) = (0.0f64, 0.0f64);
    for _ in 0..rounds {
        pre = pre.max(tier_chunk(false, iters));
        blk = blk.max(tier_chunk(true, iters));
    }
    (pre, blk)
}

fn print_report(report: &CampaignReport, sharded: bool) {
    println!(
        "workers={} scheduler={}: {} execs in {} ms -> {:.0} execs/sec ({:.1}% coverage)",
        report.workers,
        if sharded { "sharded" } else { "global" },
        report.executions,
        report.elapsed_ms,
        report.execs_per_sec(),
        report.coverage_percent()
    );
}

/// One JSON record per measured configuration.
fn json_entry(report: &CampaignReport, sharded: bool) -> String {
    format!(
        concat!(
            "{{\"workers\": {}, \"sharded_scheduler\": {}, \"executions\": {}, ",
            "\"elapsed_ms\": {}, \"execs_per_sec\": {:.1}, \"coverage_percent\": {:.2}}}"
        ),
        report.workers,
        sharded,
        report.executions,
        report.elapsed_ms,
        report.execs_per_sec(),
        report.coverage_percent()
    )
}

/// JSON record for one interpreter tier of the block-lowering A/B.
fn tier_json(block_lowering: bool, rate: f64) -> String {
    format!(
        "{{\"block_lowering\": {}, \"benchmark\": \"local-arithmetic kernel\", \"execs_per_sec\": {:.1}}}",
        block_lowering, rate
    )
}

/// Sweep three corpus contracts through one fleet pool of `threads`
/// threads. `concurrent` submits all three up front (the fleet case);
/// otherwise each campaign is waited out before the next is submitted (the
/// sequential baseline). Returns `(total executions, elapsed ms)`.
fn fleet_sweep(threads: usize, executions: usize, concurrent: bool) -> (usize, u64) {
    let sources = [
        contracts::crowdsale().source,
        contracts::game().source,
        contracts::reentrant_bank().source,
    ];
    let service = CampaignService::new(threads);
    let config = || FuzzerConfig::mufuzz(executions).with_rng_seed(42);
    let start = Instant::now();
    let total: usize = if concurrent {
        let handles: Vec<_> = sources
            .iter()
            .map(|s| {
                let compiled = compile_source(s).expect("corpus contract compiles");
                service.submit(compiled, config()).expect("deploys")
            })
            .collect();
        handles.into_iter().map(|h| h.wait().executions).sum()
    } else {
        sources
            .iter()
            .map(|s| {
                let compiled = compile_source(s).expect("corpus contract compiles");
                service
                    .submit(compiled, config())
                    .expect("deploys")
                    .wait()
                    .executions
            })
            .sum()
    };
    (total, start.elapsed().as_millis().max(1) as u64)
}

/// JSON record for one fleet sweep.
fn fleet_json(threads: usize, total: usize, elapsed_ms: u64) -> String {
    format!(
        concat!(
            "{{\"threads\": {}, \"executions\": {}, \"elapsed_ms\": {}, ",
            "\"execs_per_sec\": {:.1}}}"
        ),
        threads,
        total,
        elapsed_ms,
        total as f64 * 1000.0 / elapsed_ms as f64
    )
}

fn main() {
    let executions = std::env::var("MUFUZZ_EXECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let workers = std::env::var("MUFUZZ_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);

    // Warm-up run so page faults and lazy allocations do not skew the
    // single-worker number.
    campaign(1, executions / 10, true);

    let single = campaign(1, executions, true);
    print_report(&single, true);

    // The scaling A/B: the same N-worker campaign drawn from per-worker
    // corpus shards (lock-free steady state) vs under the state lock.
    let sharded = campaign(workers, executions, true);
    print_report(&sharded, true);
    let global = campaign(workers, executions, false);
    print_report(&global, false);
    println!(
        "speedup vs single: sharded {:.2}x, global {:.2}x; sharded vs global {:.2}x",
        sharded.execs_per_sec() / single.execs_per_sec(),
        global.execs_per_sec() / single.execs_per_sec(),
        sharded.execs_per_sec() / global.execs_per_sec()
    );

    // The determinism A/B: the same N-worker campaign under the round
    // profile. The barriers and frozen corpus views buy cross-worker-count
    // reproducibility; the contract is that they cost at most 25% of the
    // free-running throughput.
    let round = round_campaign(workers, executions);
    let round_cost = 1.0 - round.execs_per_sec() / sharded.execs_per_sec();
    println!(
        "round mode: {} execs in {} ms -> {:.0} execs/sec ({:.1}% cost vs free-running)",
        round.executions,
        round.elapsed_ms,
        round.execs_per_sec(),
        round_cost * 100.0
    );
    assert!(
        round.execs_per_sec() >= 0.75 * sharded.execs_per_sec(),
        "round mode costs {:.1}% throughput vs free-running (budget is 25%)",
        round_cost * 100.0
    );

    // The interpreter A/B: the raw-harness kernel, block lowering off vs
    // on. Every per-instruction gas charge, stack bounds check and dispatch
    // the lowering and its superinstructions remove shows up directly here.
    let (predecoded, block_lowered) = tier_rates(12, 5000);
    println!(
        "interpreter A/B (raw harness): predecoded {predecoded:.0} execs/sec, \
         block-lowered {block_lowered:.0} execs/sec ({:.2}x)",
        block_lowered / predecoded
    );

    // The fleet sweep: three corpus contracts through one CampaignService,
    // sequentially on one pool thread vs concurrently on `workers` threads.
    let fleet_budget = (executions / 10).max(500);
    let (seq_total, seq_ms) = fleet_sweep(1, fleet_budget, false);
    let (conc_total, conc_ms) = fleet_sweep(workers, fleet_budget, true);
    let seq_rate = seq_total as f64 * 1000.0 / seq_ms as f64;
    let conc_rate = conc_total as f64 * 1000.0 / conc_ms as f64;
    println!(
        "fleet sweep (3 contracts x {fleet_budget} execs): sequential {seq_rate:.0} execs/sec, \
         concurrent x{workers} {conc_rate:.0} execs/sec ({:.2}x)",
        conc_rate / seq_rate
    );

    // Machine-readable record for the CI perf-smoke artifact.
    let json = format!(
        concat!(
            "{{\n  \"benchmark\": \"piggybank\",\n  \"budget\": {},\n",
            "  \"single\": {},\n  \"parallel_sharded\": {},\n  \"parallel_global\": {},\n",
            "  \"round_mode\": {},\n",
            "  \"predecoded\": {},\n  \"block_lowered\": {},\n",
            "  \"fleet_sequential\": {},\n  \"fleet_concurrent\": {}\n}}\n"
        ),
        executions,
        json_entry(&single, true),
        json_entry(&sharded, true),
        json_entry(&global, false),
        json_entry(&round, true),
        tier_json(false, predecoded),
        tier_json(true, block_lowered),
        fleet_json(1, seq_total, seq_ms),
        fleet_json(workers, conc_total, conc_ms)
    );
    let path =
        std::env::var("MUFUZZ_BENCH_JSON").unwrap_or_else(|_| "BENCH_throughput.json".into());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
