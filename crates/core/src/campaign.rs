//! The fuzzing campaign: seed scheduling, mask computation, mutation,
//! execution, coverage accounting and bug reporting.
//!
//! This is the driver that ties the three MuFuzz components together
//! (paper Figure 2): the sequence-aware generator supplies transaction
//! orderings, the mask-guided mutator evolves the per-transaction byte
//! streams, and the dynamic energy scheduler decides how many mutants each
//! seed receives.
//!
//! # Fleet engine
//!
//! The mutate→execute→evaluate inner loop runs as `FuzzerConfig::workers`
//! *lanes* — sequential strands of batch tasks scheduled on a shared
//! work-stealing [`crate::fleet::FleetPool`] by the
//! [`crate::service::CampaignService`]. A lane's batches run one at a time
//! in order, so a single-lane campaign is deterministic at any pool size.
//! The shared campaign state is split by contention profile (the full
//! locking model is documented in `docs/ARCHITECTURE.md`):
//!
//! * **Coverage** lives in a lock-free [`CoverageMap`] — an atomic bitmap
//!   over the dense edge ids assigned by the harness's
//!   [`mufuzz_analysis::EdgeIndex`]. Workers merge every execution's edges
//!   with `fetch_or` word updates and never touch the state mutex for it.
//! * **The execution budget** is an atomic reservation counter: a worker
//!   reserves a slot *before* executing, so a campaign can never overshoot
//!   `max_executions`, at any worker count.
//! * **Seed scheduling** runs off per-lane **corpus shards**: each lane
//!   mirrors the corpus (seed refs plus cached weights) locally and draws
//!   seeds / allocates energy from the mirror with no lock at all. A
//!   [`SchedulerEpoch`] counter, bumped on every admission and culling pass,
//!   tells stale mirrors to resync before their next draw, so every draw
//!   still sees the full Algorithm 3 corpus view.
//! * **Scheduling state** — the corpus, the timeline and the diagnostic
//!   shape log — stays in a `SharedCampaignState` behind one mutex, held
//!   only to admit new seeds (and periodically cull dominated ones), to
//!   resync shard mirrors, to claim mask-probe passes, and to append
//!   timeline points. (With `FuzzerConfig::sharded_scheduler()` off, seed
//!   draws themselves also take this lock, as the pre-shard engine did.)
//!
//! Sequence executions run unlocked against lane-local [`ContractHarness`]
//! clones, and bug oracles observe into lane-local [`CampaignMonitor`]s
//! that are merged before finalisation.
//!
//! Lane 0 inherits the campaign RNG, and every merge happens at the same
//! point of the per-mutant cycle as in the historical sequential engine, so
//! `workers == 1` reproduces the single-threaded campaign bit for bit for a
//! fixed `rng_seed` — and, through [`crate::snapshot::CampaignSnapshot`],
//! across a checkpoint/resume boundary. Additional lanes draw decorrelated
//! `SmallRng` streams derived from `rng_seed`.

use crate::config::FuzzerConfig;
use crate::coverage::{CoverageMap, SchedulerEpoch};
use crate::energy::{allocate_energy, corpus_mean_weight, seed_weight};
use crate::executor::{ContractHarness, HarnessError, SequenceOutcome};
use crate::input::{Seed, Sequence};
use crate::mutation::{apply_op, mutate_masked, InterestingValues, MutationMask, MutationOp};
use crate::replay::FindingRecord;
use crate::round::RoundRt;
use crate::seedgen::SequenceGenerator;
use crate::service::{CampaignService, SubmitOptions};
use crate::snapshot::{put_seed, Digest};
use mufuzz_analysis::{analyze_contract, plan_sequence, ControlFlowGraph, DistanceMap};
use mufuzz_evm::{BranchEdge, ExecFrame, WorldState};
use mufuzz_lang::CompiledContract;
use mufuzz_oracles::{BugFinding, CampaignMonitor, MonitorState};
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How deep a branch must sit (static nesting) before a seed that reaches it
/// is treated as "hitting a deeply nested branch" for mask purposes.
pub(crate) const NESTED_BRANCH_DEPTH: usize = 3;

/// Maximum number of 32-byte words probed per transaction when computing a
/// mutation mask (bounds the cost of Algorithm 2 on long inputs). The first
/// words of the stream are the ether value and the leading arguments — the
/// positions strict guards almost always constrain. Words beyond the probed
/// prefix stay freely mutable.
pub(crate) const MAX_MASK_WORDS: usize = 3;

/// Maximum number of transactions probed per seed when computing masks; later
/// transactions of very long sequences stay freely mutable. Keeps the probe
/// cost of Algorithm 2 bounded for the large-contract datasets.
pub(crate) const MAX_MASK_TXS: usize = 6;

/// One point of the coverage-over-time curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoveragePoint {
    /// Number of sequence executions so far.
    pub executions: usize,
    /// Elapsed wall-clock milliseconds.
    pub elapsed_ms: u64,
    /// Distinct branch edges covered.
    pub covered_edges: usize,
    /// Covered edges / total edges.
    pub coverage: f64,
}

/// The result of a fuzzing campaign on one contract.
///
/// ```
/// use mufuzz::{Fuzzer, FuzzerConfig};
/// use mufuzz_lang::compile_source;
///
/// let compiled = compile_source(
///     "contract Toggle { uint256 on; function flip() public { if (on == 0) { on = 1; } else { on = 0; } } }",
/// )
/// .unwrap();
/// let report = Fuzzer::new(compiled, FuzzerConfig::mufuzz(60).with_workers(1))
///     .unwrap()
///     .run();
/// assert_eq!(report.executions, 60); // the budget is exact
/// assert!(report.covered_edges <= report.total_edges);
/// assert!(report.coverage_percent() <= 100.0);
/// assert!(report.execs_per_sec() > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Contract name.
    pub contract: String,
    /// Distinct branch edges covered.
    pub covered_edges: usize,
    /// Total branch edges in the contract (2 per `JUMPI`).
    pub total_edges: usize,
    /// Branch coverage in `[0, 1]`.
    pub coverage: f64,
    /// Number of sequence executions performed.
    pub executions: usize,
    /// Deduplicated bug findings.
    pub findings: Vec<BugFinding>,
    /// Coverage-over-time curve.
    pub timeline: Vec<CoveragePoint>,
    /// Number of seeds in the final corpus.
    pub corpus_size: usize,
    /// Number of dominated seeds dropped by corpus culling (zero unless
    /// [`SchedulerConfig::corpus_cull_interval`](crate::config::SchedulerConfig::corpus_cull_interval)
    /// is set).
    pub culled_seeds: usize,
    /// Wall-clock duration of the campaign.
    pub elapsed_ms: u64,
    /// Example sequence shapes that contributed new coverage (diagnostics).
    pub interesting_shapes: Vec<String>,
    /// Number of worker threads the campaign ran with.
    pub workers: usize,
    /// FNV-1a digest of the final corpus (every seed's snapshot encoding, in
    /// corpus order). Two campaigns with equal digests ended with
    /// bit-identical corpora — the round-mode determinism suite compares
    /// this across worker counts.
    pub corpus_digest: u64,
    /// FNV-1a digest of the final coverage bitmap words.
    pub coverage_digest: u64,
    /// Replayable finding records (round mode only; empty under the
    /// free-running profile). Each pins the mutant sequence that triggered a
    /// finding to its `(seed uid, round, slot)` provenance — see
    /// [`FindingRecord`] and [`crate::replay::replay_finding`].
    pub finding_records: Vec<FindingRecord>,
}

impl CampaignReport {
    /// Coverage as a percentage.
    pub fn coverage_percent(&self) -> f64 {
        self.coverage * 100.0
    }

    /// Campaign throughput in sequence executions per second.
    pub fn execs_per_sec(&self) -> f64 {
        self.executions as f64 * 1_000.0 / (self.elapsed_ms.max(1) as f64)
    }

    /// Bug classes found.
    pub fn detected_classes(&self) -> BTreeSet<mufuzz_oracles::BugClass> {
        self.findings.iter().map(|f| f.class).collect()
    }
}

/// Scheduling state shared by every worker, guarded by one mutex.
///
/// Seed selection and energy allocation read the *global* corpus here, so
/// Algorithm 3 stays a single scheduler even with many workers. Coverage and
/// the execution budget deliberately live *outside* this struct (see
/// [`CampaignShared`]): they are merged/reserved with atomics so the mutex
/// only serialises corpus admissions, culling and timeline appends.
pub(crate) struct SharedCampaignState {
    pub(crate) corpus: Vec<Seed>,
    pub(crate) timeline: Vec<CoveragePoint>,
    pub(crate) interesting_shapes: Vec<String>,
    /// Next seed uid to hand out at admission.
    pub(crate) next_uid: u64,
    /// Corpus admissions since the last culling pass.
    pub(crate) admitted_since_cull: usize,
    /// Total dominated seeds dropped so far.
    pub(crate) culled: usize,
}

impl SharedCampaignState {
    /// Add a seed to the corpus, assigning its stable uid.
    pub(crate) fn admit(&mut self, mut seed: Seed) {
        seed.uid = self.next_uid;
        self.next_uid += 1;
        self.corpus.push(seed);
        self.admitted_since_cull += 1;
    }

    /// Periodic corpus culling: when enabled and due, drop every seed that
    /// is dominated by a kept seed (covered edges a subset, branch-distance
    /// score no better — see [`Seed::is_dominated_by`]). Seeds with a mask
    /// probe in flight are exempt so the probe investment is not wasted.
    /// Runs under the state lock; the corpus is small (tens of seeds), so the
    /// quadratic scan is cheap next to a single sequence execution.
    pub(crate) fn maybe_cull(&mut self, interval: Option<usize>) {
        let Some(every) = interval else { return };
        if self.admitted_since_cull < every || self.corpus.len() < 2 {
            return;
        }
        self.admitted_since_cull = 0;
        let n = self.corpus.len();
        let mut dropped = vec![false; n];
        for i in 0..n {
            if self.corpus[i].masks_pending && self.corpus[i].masks.is_none() {
                continue;
            }
            for j in 0..n {
                if i == j || dropped[j] {
                    continue;
                }
                if self.corpus[i].is_dominated_by(&self.corpus[j]) {
                    dropped[i] = true;
                    break;
                }
            }
        }
        let mut keep = dropped.iter().map(|d| !d);
        let before = self.corpus.len();
        self.corpus.retain(|_| keep.next().unwrap());
        self.culled += before - self.corpus.len();
    }
}

/// Everything the workers share, split by contention profile: the atomic
/// coverage bitmap and budget counter (merged/reserved lock-free on every
/// execution) and the mutex-guarded scheduling state (touched only for seed
/// draws, admissions and timeline points).
pub(crate) struct CampaignShared {
    pub(crate) state: Mutex<SharedCampaignState>,
    pub(crate) coverage: CoverageMap,
    /// Execution slots handed out. A worker reserves a slot *before* every
    /// execution and always performs the execution after a successful
    /// reservation, so this counter equals the number of executions
    /// performed and can never exceed `max_executions`.
    pub(crate) reserved: AtomicUsize,
    /// Scheduling-state generation: bumped (under the state lock) on every
    /// corpus admission and culling pass so stale worker shards resync
    /// before their next draw. Steady-state draws compare against it with a
    /// single atomic load and touch no lock.
    pub(crate) epoch: SchedulerEpoch,
    /// Round-mode runtime: the current round's frozen view, slot ledger and
    /// master monitor. `None` under the free-running profile and until the
    /// service bootstrap installs the first round. Lock order when combined
    /// with the others: `round` → event sink → `state`.
    pub(crate) round: Mutex<Option<RoundRt>>,
}

impl CampaignShared {
    /// Fresh shared state for a new campaign over `edges` branch edges.
    pub(crate) fn new(edges: usize) -> CampaignShared {
        CampaignShared {
            state: Mutex::new(SharedCampaignState {
                corpus: Vec::new(),
                timeline: Vec::new(),
                interesting_shapes: Vec::new(),
                next_uid: 0,
                admitted_since_cull: 0,
                culled: 0,
            }),
            coverage: CoverageMap::new(edges),
            reserved: AtomicUsize::new(0),
            epoch: SchedulerEpoch::new(),
            round: Mutex::new(None),
        }
    }

    /// Reserve one execution slot against the budget. Returns the 1-based
    /// slot number (the value the execution counter reaches with this
    /// execution), or `None` when the budget is exhausted.
    fn try_reserve(&self, max_executions: usize) -> Option<usize> {
        self.reserved
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < max_executions).then_some(n + 1)
            })
            .ok()
            .map(|previous| previous + 1)
    }

    /// Executions performed (equivalently: slots reserved) so far.
    pub(crate) fn executions(&self) -> usize {
        self.reserved.load(Ordering::Relaxed)
    }

    /// Merge an execution's coverage into the atomic bitmap and return the
    /// number of globally new edges. Lock-free on the expected path; only
    /// edges the index cannot number (none in practice) detour through the
    /// overflow set.
    fn merge_coverage(&self, outcome: &SequenceOutcome, harness: &ContractHarness) -> usize {
        let mut new_edges = self.coverage.merge_ids(&outcome.covered_edge_ids);
        if outcome.covered_edge_ids.len() != outcome.covered_edges.len() {
            new_edges += self
                .coverage
                .merge_unindexed(&outcome.covered_edges, harness.edge_index());
        }
        new_edges
    }
}

/// Immutable per-campaign parameters shared by all workers.
#[derive(Clone, Copy)]
pub(crate) struct RunParams {
    pub(crate) start: Instant,
    pub(crate) snapshot_every: usize,
    pub(crate) total_edges: usize,
    /// Wall-clock milliseconds accumulated by earlier segments of a resumed
    /// campaign; zero for a fresh submission. Added to every elapsed-time
    /// reading so time budgets and timeline stamps span the whole campaign.
    pub(crate) base_elapsed_ms: u64,
}

impl RunParams {
    /// Derive the campaign's run parameters from its context.
    pub(crate) fn new(ctx: &CampaignContext, base_elapsed_ms: u64) -> RunParams {
        let snapshot_every =
            (ctx.config.max_executions() / ctx.config.timeline_points.max(1)).max(1);
        RunParams {
            start: Instant::now(),
            snapshot_every,
            total_edges: ctx.total_edges,
            base_elapsed_ms,
        }
    }

    /// Total campaign wall-clock time, including pre-resume segments.
    pub(crate) fn elapsed_ms(&self) -> u64 {
        self.base_elapsed_ms + self.start.elapsed().as_millis() as u64
    }
}

/// The pause signal a lane checks at every batch boundary: an optional fixed
/// execution count (deterministic for single-lane campaigns, the
/// checkpoint/resume anchor) plus an asynchronous user request.
pub(crate) struct PauseState {
    pub(crate) at: Option<usize>,
    pub(crate) requested: AtomicBool,
}

impl PauseState {
    pub(crate) fn new(at: Option<usize>) -> PauseState {
        PauseState {
            at,
            requested: AtomicBool::new(false),
        }
    }

    pub(crate) fn engaged(&self, executions: usize) -> bool {
        self.requested.load(Ordering::Relaxed) || self.at.is_some_and(|at| executions >= at)
    }
}

/// What a lane did in one scheduling step.
pub(crate) enum LaneStep {
    /// Ran a batch; the lane has more work.
    Continue,
    /// The campaign budget (executions or wall clock) is exhausted.
    Finished,
    /// The lane stopped at a pause point with budget remaining.
    Paused,
}

/// Seed selection: prefer seeds close to uncovered branches (branch-distance
/// feedback), fall back to weight-proportional choice.
///
/// A free function over any corpus view — the mutex-guarded global corpus, a
/// worker's shard mirror, or a round slot's frozen view — so every draw path
/// consumes the RNG identically and makes the same choice over the same view.
pub(crate) fn select_seed(config: &FuzzerConfig, rng: &mut SmallRng, corpus: &[Seed]) -> usize {
    debug_assert!(!corpus.is_empty());
    if config.enable_branch_distance && rng.gen_bool(0.5) {
        let best = corpus
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.best_distance.map(|d| (i, d + 0.01 * s.selections as f64)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        if let Some((i, _)) = best {
            return i;
        }
    }
    // Weight-proportional roulette (uniform when dynamic energy is off).
    if config.enable_dynamic_energy {
        let total: f64 = corpus.iter().map(|s| s.weight).sum();
        let mut target = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
        for (i, seed) in corpus.iter().enumerate() {
            if target < seed.weight {
                return i;
            }
            target -= seed.weight;
        }
    }
    rng.gen_range(0..corpus.len())
}

/// Mutate a seed into a fresh candidate sequence: byte-level mask-guided
/// mutation on one transaction, occasionally combined with a structural
/// sequence mutation. A free function over an explicit RNG so the
/// free-running lanes (worker RNG) and round-mode slots (slot RNG) consume
/// randomness identically for the same seed.
pub(crate) fn mutate_sequence(ctx: &CampaignContext, rng: &mut SmallRng, seed: &Seed) -> Sequence {
    let mut sequence = seed.sequence.clone();
    if sequence.is_empty() {
        return ctx
            .generator
            .generate(&ctx.harness.compiled.abi, rng, &ctx.interesting);
    }

    // Structural mutation with 30% probability (ordering is preserved when
    // sequence-aware mutation is on).
    if rng.gen_bool(0.3) {
        sequence = ctx.generator.mutate_structure(
            &sequence,
            &ctx.harness.compiled.abi,
            rng,
            &ctx.interesting,
        );
    }

    // Byte-level mutation of one (or a few) transactions.
    let mutations = 1 + rng.gen_range(0..2usize);
    for _ in 0..mutations {
        let idx = rng.gen_range(0..sequence.txs.len());
        let stream = sequence.txs[idx].stream.clone();
        // The mask biases mutation away from the frozen critical words; a
        // small fraction of mutants still ignores it so the frozen positions
        // themselves can eventually be explored (flipping the guarded branch
        // needs exactly that).
        let use_mask = ctx.config.enable_mask_guidance && rng.gen_bool(0.8);
        let mask = seed
            .masks
            .as_ref()
            .and_then(|m| m.get(idx))
            .cloned()
            .filter(|_| use_mask)
            .unwrap_or_else(|| MutationMask::allow_all(stream.len()));
        if let Some(mutated) = mutate_masked(&stream, &mask, rng, &ctx.interesting) {
            sequence.txs[idx].stream = mutated;
        }
    }
    sequence
}

/// Build seed metadata from an execution outcome, resolving "is this edge
/// covered?" through the supplied predicate — the shared atomic bitmap for
/// free-running lanes, a slot's frozen local view in round mode. The
/// coverage view must already include the outcome's own edges (merge first,
/// then admit).
pub(crate) fn make_seed(
    ctx: &CampaignContext,
    sequence: Sequence,
    outcome: &SequenceOutcome,
    new_edges: usize,
    covered: &dyn Fn(&BranchEdge) -> bool,
) -> Seed {
    let mut seed = Seed::new(sequence);
    seed.covered_edge_ids = outcome.covered_edge_ids.clone();
    seed.new_edges = new_edges;
    seed.weight = seed_weight(&outcome.traces, &ctx.cfg_graph);
    seed.hits_nested_branch = outcome.traces.iter().any(|t| {
        t.branches.iter().any(|b| {
            ctx.cfg_graph
                .branches
                .get(&b.pc)
                .map(|site| site.nesting_depth >= NESTED_BRANCH_DEPTH)
                .unwrap_or(false)
        })
    });
    seed.best_distance = distance_to_uncovered(ctx, outcome, covered);
    seed
}

/// Smallest normalised distance from an outcome to any branch edge the
/// supplied coverage view reports uncovered (branch-distance feedback,
/// §IV-B).
pub(crate) fn distance_to_uncovered(
    ctx: &CampaignContext,
    outcome: &SequenceOutcome,
    covered: &dyn Fn(&BranchEdge) -> bool,
) -> Option<f64> {
    if !ctx.config.enable_branch_distance {
        return None;
    }
    let mut best: Option<f64> = None;
    for trace in &outcome.traces {
        let map = DistanceMap::from_trace(trace);
        for (edge, d) in &map.distances {
            if covered(edge) {
                continue;
            }
            best = Some(match best {
                Some(b) if b <= *d => b,
                _ => *d,
            });
        }
    }
    best
}

/// Program counters of the deeply nested branches an outcome covers (the
/// mask-probe baseline comparison of Algorithm 2).
pub(crate) fn outcome_nested_pcs(
    ctx: &CampaignContext,
    outcome: &SequenceOutcome,
) -> BTreeSet<usize> {
    outcome
        .traces
        .iter()
        .flat_map(|t| t.branches.iter())
        .filter(|b| {
            ctx.cfg_graph
                .branches
                .get(&b.pc)
                .map(|s| s.nesting_depth >= NESTED_BRANCH_DEPTH)
                .unwrap_or(false)
        })
        .map(|b| b.pc)
        .collect()
}

/// Program counters of the deeply nested branches a seed covers.
pub(crate) fn seed_nested_pcs(ctx: &CampaignContext, seed: &Seed) -> BTreeSet<usize> {
    let index = ctx.harness.edge_index();
    seed.covered_edge_ids
        .iter()
        .filter_map(|id| index.edge_of(*id))
        .filter(|e| {
            ctx.cfg_graph
                .branches
                .get(&e.pc)
                .map(|s| s.nesting_depth >= NESTED_BRANCH_DEPTH)
                .unwrap_or(false)
        })
        .map(|e| e.pc)
        .collect()
}

/// A decorrelated per-worker RNG seed (SplitMix64 over the campaign seed and
/// the worker index). Worker 0 does not use this: it inherits the campaign
/// RNG directly so single-worker runs replay the sequential engine.
pub(crate) fn derive_worker_seed(rng_seed: u64, index: usize) -> u64 {
    let mut z = rng_seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A worker's local mirror of the scheduling state: the corpus's seeds with
/// their cached weights, stamped with the [`SchedulerEpoch`] generation it
/// was synced at.
///
/// Steady-state seed draws and energy allocation run entirely off this
/// mirror — no lock. The mirror is rebuilt (under the state lock) whenever
/// the published epoch differs from the stamp, i.e. before any draw that
/// would otherwise miss an admission or a culling pass, and every
/// `FuzzerConfig::shard_resync_draws` draws so locally accumulated selection
/// counts flow back into the global corpus at bounded staleness.
#[derive(Default)]
struct CorpusShard {
    /// Epoch generation this mirror reflects.
    epoch: u64,
    /// The mirrored corpus (same order as the global corpus vector).
    seeds: Vec<Seed>,
    /// Selection counts at the last sync, parallel to `seeds`; the per-seed
    /// difference is the delta flushed at the next resync.
    synced_selections: Vec<usize>,
    /// Draws since the last resync.
    draws: usize,
}

/// The immutable setup of one campaign, shared by all of its lanes:
/// configuration, static analyses, the sequence generator, the interesting
/// value pool and the deployed harness prototype (each lane clones its own
/// working copy). Built once by [`CampaignContext::prepare`] and passed
/// around in an `Arc`, so lane tasks on the fleet pool can own it without
/// borrowing from a driver thread.
pub(crate) struct CampaignContext {
    pub(crate) config: FuzzerConfig,
    pub(crate) cfg_graph: ControlFlowGraph,
    pub(crate) generator: SequenceGenerator,
    pub(crate) interesting: InterestingValues,
    pub(crate) harness: ContractHarness,
    pub(crate) total_edges: usize,
}

impl CampaignContext {
    /// Deploy the contract, run the static analyses and prepare the mutation
    /// value pool (the campaign setup that used to live in `Fuzzer::new`).
    pub(crate) fn prepare(
        compiled: CompiledContract,
        config: FuzzerConfig,
    ) -> Result<CampaignContext, HarnessError> {
        let cfg_graph = ControlFlowGraph::build(&compiled.runtime);
        let flow = analyze_contract(&compiled.contract);
        let mut plan = plan_sequence(&flow);
        if !config.enable_sequence_repetition {
            plan.mutated_order = plan.base_order.clone();
            plan.repeat_candidates.clear();
        }
        let mut interesting = if config.harvest_constants {
            InterestingValues::harvest(&compiled.runtime)
        } else {
            InterestingValues::defaults()
        };
        let harness = ContractHarness::new(compiled, &config)?;
        for addr in harness.interesting_addresses() {
            interesting.add(addr.to_u256());
        }
        let generator = SequenceGenerator::new(
            &harness.compiled.abi,
            plan,
            config.enable_sequence_aware,
            harness.senders.len(),
        );
        let total_edges = cfg_graph.total_branch_edges().max(1);
        Ok(CampaignContext {
            config,
            cfg_graph,
            generator,
            interesting,
            harness,
            total_edges,
        })
    }
}

/// One campaign lane: a lane-local harness, RNG and bug monitor plus a
/// shared handle on the immutable campaign context. A lane is a sequential
/// strand — the service runs its batches one at a time, in order — so a
/// single-lane campaign is deterministic no matter how many fleet threads
/// execute it.
pub(crate) struct Worker {
    pub(crate) ctx: Arc<CampaignContext>,
    pub(crate) harness: ContractHarness,
    pub(crate) rng: SmallRng,
    pub(crate) monitor: CampaignMonitor,
    /// Reusable interpreter scratch (stacks, memory buffers, trace capacity
    /// hints); threaded through every execution so the hot loop allocates
    /// nothing per transaction.
    pub(crate) frame: ExecFrame,
    /// Final world of the last mutant this worker executed (feeds the
    /// campaign-level oracles at finalisation).
    pub(crate) last_world: Option<WorldState>,
    /// Local mirror of the scheduling state for the sharded draw path
    /// (unused — and empty — when `FuzzerConfig::sharded_scheduler()` is
    /// off).
    shard: CorpusShard,
}

impl Worker {
    /// A fresh lane over `ctx`, drawing from `rng`.
    pub(crate) fn new(ctx: Arc<CampaignContext>, rng: SmallRng) -> Worker {
        Worker {
            harness: ctx.harness.clone(),
            ctx,
            rng,
            monitor: CampaignMonitor::new(),
            frame: ExecFrame::new(),
            last_world: None,
            shard: CorpusShard::default(),
        }
    }

    /// Rebuild a lane from checkpointed state: the exact RNG stream position
    /// and the monitor's accumulated observations.
    pub(crate) fn restore(
        ctx: Arc<CampaignContext>,
        rng_state: [u64; 4],
        monitor: MonitorState,
    ) -> Worker {
        let mut worker = Worker::new(ctx, SmallRng::from_state(rng_state));
        worker.monitor = CampaignMonitor::from_state(monitor);
        worker
    }

    /// The lane's RNG stream position (for checkpointing).
    pub(crate) fn rng_state(&self) -> [u64; 4] {
        self.rng.to_state()
    }

    /// The lane's accumulated oracle observations (for checkpointing).
    pub(crate) fn monitor_state(&self) -> MonitorState {
        self.monitor.export_state()
    }

    /// The lane's current deduplicated findings (for event streaming).
    pub(crate) fn findings(&self) -> Vec<BugFinding> {
        self.monitor.findings()
    }

    /// Tear the lane down into the pieces finalisation needs.
    pub(crate) fn into_parts(self) -> (CampaignMonitor, Option<WorldState>, SmallRng) {
        (self.monitor, self.last_world, self.rng)
    }

    /// Move the lane's monitor out, leaving a fresh one behind. The round
    /// bootstrap promotes lane 0's monitor (which holds the initial-corpus
    /// and, on resume, the checkpointed observations) to the round runtime's
    /// master monitor.
    pub(crate) fn take_monitor(&mut self) -> CampaignMonitor {
        std::mem::replace(&mut self.monitor, CampaignMonitor::new())
    }

    pub(crate) fn time_exhausted(&self, params: &RunParams) -> bool {
        self.ctx
            .config
            .time_budget_ms()
            .is_some_and(|ms| params.elapsed_ms() >= ms)
    }

    /// Record a sequence outcome in the thread-local bug monitor.
    fn observe(&mut self, outcome: &SequenceOutcome) {
        for trace in &outcome.traces {
            self.monitor.observe(&self.harness.compiled, trace);
        }
        self.monitor
            .observe_world(outcome.final_world.balance(self.harness.contract_address));
    }

    /// Build seed metadata from an execution outcome. `coverage` must
    /// already include the outcome's own edges (merge first, then admit).
    fn admit_seed(
        &self,
        sequence: Sequence,
        outcome: &SequenceOutcome,
        new_edges: usize,
        coverage: &CoverageMap,
    ) -> Seed {
        let index = self.harness.edge_index();
        make_seed(&self.ctx, sequence, outcome, new_edges, &|edge| {
            coverage.contains_edge(edge, index)
        })
    }

    /// Smallest normalised distance from this outcome to any branch edge that
    /// is still uncovered globally (branch-distance feedback, §IV-B). Reads
    /// the atomic coverage bitmap, so no lock is required.
    fn best_distance_to_uncovered(
        &self,
        outcome: &SequenceOutcome,
        coverage: &CoverageMap,
    ) -> Option<f64> {
        let index = self.harness.edge_index();
        distance_to_uncovered(&self.ctx, outcome, &|edge| {
            coverage.contains_edge(edge, index)
        })
    }

    /// Mutate a seed: byte-level mask-guided mutation on one transaction,
    /// occasionally combined with a structural sequence mutation.
    fn mutate_seed(&mut self, seed: &Seed) -> Sequence {
        mutate_sequence(&self.ctx, &mut self.rng, seed)
    }

    /// Program counters of the deeply nested branches a seed covers.
    fn nested_branch_pcs(&self, seed: &Seed) -> BTreeSet<usize> {
        seed_nested_pcs(&self.ctx, seed)
    }

    /// Execute the initial plan-derived corpus (the lane-0 prologue, run
    /// before the other lanes start).
    pub(crate) fn run_initial(&mut self, shared: &CampaignShared, params: &RunParams) {
        let initial = self.ctx.generator.initial_sequences(
            &self.harness.compiled.abi,
            self.ctx.config.initial_seeds,
            &mut self.rng,
            &self.ctx.interesting,
        );
        for sequence in initial {
            if self.time_exhausted(params) {
                break;
            }
            let Some(slot) = shared.try_reserve(self.ctx.config.max_executions()) else {
                break;
            };
            let outcome = self
                .harness
                .execute_sequence_with(&sequence, &mut self.frame);
            self.observe(&outcome);
            let new_edges = shared.merge_coverage(&outcome, &self.harness);
            // Initial seeds always join the corpus, new coverage or not, and
            // are never subject to culling here (the corpus is still being
            // seeded).
            let seed = self.admit_seed(sequence, &outcome, new_edges, &shared.coverage);
            let mut s = shared.state.lock().expect("campaign state poisoned");
            s.admit(seed);
            shared.epoch.bump();
            Self::snapshot_locked(&mut s, shared, params, slot);
        }
    }

    /// Append a timeline point if the reserved execution slot sits on a
    /// snapshot boundary. Must be called with the state lock held, after the
    /// slot's coverage has been merged.
    fn snapshot_locked(
        s: &mut SharedCampaignState,
        shared: &CampaignShared,
        params: &RunParams,
        slot: usize,
    ) {
        if slot.is_multiple_of(params.snapshot_every) {
            let covered = shared.coverage.covered_count();
            s.timeline.push(CoveragePoint {
                executions: slot,
                elapsed_ms: params.elapsed_ms(),
                covered_edges: covered,
                coverage: covered as f64 / params.total_edges as f64,
            });
        }
    }

    /// One lane scheduling step — the unit of fleet-pool work: check the
    /// stop and pause conditions, then draw a seed batch (off-lock from the
    /// local shard by default, under the state lock with the historical
    /// global scheduler otherwise), optionally probe its mutation mask, and
    /// generate and execute the allotted mutants, merging feedback after
    /// every execution. The historical `run_loop` was exactly this body
    /// iterated to exhaustion; splitting it at the draw boundary lets the
    /// pool interleave many campaigns without changing any lane's RNG
    /// stream, and gives pause a deterministic anchor.
    pub(crate) fn step(
        &mut self,
        shared: &CampaignShared,
        params: &RunParams,
        pause: &PauseState,
    ) -> LaneStep {
        if self.ctx.config.round_mode() {
            return crate::round::round_step(self, shared, params, pause);
        }
        if shared.executions() >= self.ctx.config.max_executions() || self.time_exhausted(params) {
            self.retire(shared);
            return LaneStep::Finished;
        }
        if pause.engaged(shared.executions()) {
            self.retire(shared);
            return LaneStep::Paused;
        }
        let (seed_snapshot, seed_uid, energy, compute) = if self.ctx.config.sharded_scheduler() {
            self.draw_sharded(shared)
        } else {
            self.draw_global(shared)
        };
        if self
            .run_batch(shared, params, seed_snapshot, seed_uid, energy, compute)
            .is_break()
        {
            self.retire(shared);
            return LaneStep::Finished;
        }
        LaneStep::Continue
    }

    /// Leave no locally accumulated scheduling feedback behind: flush the
    /// shard's selection-count deltas and drop the mirror. Called when the
    /// lane finishes or pauses; after a pause the flushed global corpus is
    /// the complete scheduling state, which is what the checkpoint
    /// serializes. Dropping the mirror is RNG-neutral — resyncs never
    /// consume randomness — so a resumed lane rebuilding it from the global
    /// corpus continues the exact same campaign.
    fn retire(&mut self, shared: &CampaignShared) {
        if self.ctx.config.sharded_scheduler() && !self.shard.seeds.is_empty() {
            let mut s = shared.state.lock().expect("campaign state poisoned");
            self.flush_selections_locked(&mut s);
        }
        self.shard = CorpusShard::default();
    }

    /// Draw a seed batch under the state lock against the global corpus (the
    /// pre-shard scheduler, kept behind `sharded_scheduler = false` for
    /// equivalence tests and A/B comparisons).
    fn draw_global(&mut self, shared: &CampaignShared) -> (Seed, u64, usize, bool) {
        let mut s = shared.state.lock().expect("campaign state poisoned");
        let seed_index = select_seed(&self.ctx.config, &mut self.rng, &s.corpus);
        s.corpus[seed_index].selections += 1;

        // Energy allocation (Algorithm 3) against the global corpus.
        let mean_weight = corpus_mean_weight(&s.corpus);
        let energy = allocate_energy(
            s.corpus[seed_index].weight,
            mean_weight,
            self.ctx.config.scheduler.base_energy,
            self.ctx.config.enable_dynamic_energy,
        );

        let remaining = self
            .ctx
            .config
            .max_executions()
            .saturating_sub(shared.executions());
        let seed = &mut s.corpus[seed_index];
        let compute = Self::wants_masks(&self.ctx.config, seed, remaining);
        if compute {
            // Claim the probe work so no other worker duplicates it.
            seed.masks_pending = true;
        }
        // Snapshot only the fields the unlocked batch reads; the
        // covered-edges list (the potentially large part) is needed
        // solely as the nested-branch baseline of a probe pass.
        let snapshot = Seed {
            uid: seed.uid,
            sequence: seed.sequence.clone(),
            covered_edge_ids: if compute {
                seed.covered_edge_ids.clone()
            } else {
                Vec::new()
            },
            new_edges: seed.new_edges,
            hits_nested_branch: seed.hits_nested_branch,
            weight: seed.weight,
            best_distance: seed.best_distance,
            selections: seed.selections,
            masks: seed.masks.clone(),
            masks_pending: seed.masks_pending,
        };
        (snapshot, seed.uid, energy, compute)
    }

    /// Draw a seed batch from the worker's corpus shard: selection, energy
    /// allocation and the mask-probe gate all read the local mirror, so a
    /// steady-state draw takes no lock at all. The lock is touched only to
    /// resync a stale mirror (the epoch moved, or the forced interval
    /// elapsed) and to claim a mask-probe pass against the global view.
    ///
    /// Because every corpus change bumps the epoch *before* the changing
    /// worker's next draw, a fresh mirror is always content-identical to the
    /// global corpus — the sharded and global schedulers make the same
    /// decisions from the same RNG stream, which is what keeps `workers ==
    /// 1` campaigns bit-identical to the historical engine (the snapshot
    /// test holds with either draw path).
    fn draw_sharded(&mut self, shared: &CampaignShared) -> (Seed, u64, usize, bool) {
        if self.shard.epoch != shared.epoch.current()
            || self.shard.draws >= self.ctx.config.scheduler.shard_resync_draws
        {
            self.resync_shard(shared);
        }
        self.shard.draws += 1;
        let seed_index = select_seed(&self.ctx.config, &mut self.rng, &self.shard.seeds);
        self.shard.seeds[seed_index].selections += 1;

        // Energy allocation (Algorithm 3) against the mirrored corpus.
        let mean_weight = corpus_mean_weight(&self.shard.seeds);
        let energy = allocate_energy(
            self.shard.seeds[seed_index].weight,
            mean_weight,
            self.ctx.config.scheduler.base_energy,
            self.ctx.config.enable_dynamic_energy,
        );

        let remaining = self
            .ctx
            .config
            .max_executions()
            .saturating_sub(shared.executions());
        let seed = &self.shard.seeds[seed_index];
        let seed_uid = seed.uid;
        let wants = Self::wants_masks(&self.ctx.config, seed, remaining);
        // Claiming a probe pass needs the global view: another worker may
        // have claimed — or finished — the same seed's masks since this
        // mirror was synced.
        let compute = if wants {
            let claimed = {
                let mut s = shared.state.lock().expect("campaign state poisoned");
                match s.corpus.iter_mut().find(|g| g.uid == seed_uid) {
                    Some(global) if global.masks.is_none() && !global.masks_pending => {
                        global.masks_pending = true;
                        None
                    }
                    Some(global) => Some((global.masks.clone(), global.masks_pending)),
                    // Culled since the last resync: draw it one last time
                    // without probing; the stale mirror retires at the next
                    // epoch check.
                    None => Some((None, false)),
                }
            };
            match claimed {
                None => {
                    self.shard.seeds[seed_index].masks_pending = true;
                    true
                }
                Some((masks, pending)) => {
                    // Adopt the fresher global mask state so the batch
                    // mutates with it and the mirror stops re-claiming.
                    let seed = &mut self.shard.seeds[seed_index];
                    seed.masks = masks;
                    seed.masks_pending = pending;
                    false
                }
            }
        } else {
            false
        };
        // Snapshot only the fields the batch reads, exactly like the global
        // path: the covered-edges list (the potentially large part) is
        // needed solely as the nested-branch baseline of a probe pass.
        let seed = &self.shard.seeds[seed_index];
        let snapshot = Seed {
            uid: seed.uid,
            sequence: seed.sequence.clone(),
            covered_edge_ids: if compute {
                seed.covered_edge_ids.clone()
            } else {
                Vec::new()
            },
            new_edges: seed.new_edges,
            hits_nested_branch: seed.hits_nested_branch,
            weight: seed.weight,
            best_distance: seed.best_distance,
            selections: seed.selections,
            masks: seed.masks.clone(),
            masks_pending: seed.masks_pending,
        };
        (snapshot, seed_uid, energy, compute)
    }

    /// The mask-probe gate (Algorithm 2 scheduling): compute masks once per
    /// seed, only for seeds the paper considers worth masking — those
    /// hitting deeply nested branches or improving branch distance. The
    /// probe executions are real executions — they consume budget but also
    /// contribute coverage and can be admitted as seeds — so masking is
    /// deferred until a seed has proven interesting (selected more than
    /// once) and enough budget remains to amortise the probes.
    pub(crate) fn wants_masks(config: &FuzzerConfig, seed: &Seed, remaining: usize) -> bool {
        let probe_cost_estimate = 4 * MAX_MASK_WORDS * seed.sequence.len().clamp(1, MAX_MASK_TXS);
        config.enable_mask_guidance
            && seed.masks.is_none()
            && !seed.masks_pending
            && seed.selections >= 2
            && remaining > 2 * probe_cost_estimate
            && (seed.hits_nested_branch || seed.best_distance.is_some())
    }

    /// Rebuild the worker's corpus mirror from the global scheduling state,
    /// first flushing the selection counts accumulated locally since the
    /// previous sync. The epoch stamp is read under the same lock, so a
    /// mirror is never stamped fresher than its contents.
    ///
    /// The corpus clone does run under the lock — that is what makes the
    /// mirror a consistent snapshot — but resyncs fire only on admissions
    /// and at the forced interval, the corpus is tens of seeds, and the
    /// clone replaces what used to be a lock acquisition plus a sequence
    /// clone on *every* draw.
    fn resync_shard(&mut self, shared: &CampaignShared) {
        let mut s = shared.state.lock().expect("campaign state poisoned");
        self.flush_selections_locked(&mut s);
        self.shard.epoch = shared.epoch.current();
        self.shard.seeds = s.corpus.clone();
        drop(s);
        self.shard.synced_selections = self.shard.seeds.iter().map(|x| x.selections).collect();
        self.shard.draws = 0;
    }

    /// Push the shard's selection-count deltas into the global corpus
    /// (matching seeds by uid — culling may have dropped or reshuffled
    /// them). Must be called with the state lock held.
    fn flush_selections_locked(&self, s: &mut SharedCampaignState) {
        for (mirror, &synced) in self.shard.seeds.iter().zip(&self.shard.synced_selections) {
            let delta = mirror.selections - synced;
            if delta > 0 {
                if let Some(global) = s.corpus.iter_mut().find(|g| g.uid == mirror.uid) {
                    global.selections += delta;
                }
            }
        }
    }

    /// Run one drawn batch: optionally probe the seed's mutation mask, then
    /// mutate→execute→evaluate `energy` mutants, merging feedback after
    /// every execution. Returns `Break` when the campaign budget (execution
    /// or wall-clock) ends inside the batch.
    fn run_batch(
        &mut self,
        shared: &CampaignShared,
        params: &RunParams,
        mut seed_snapshot: Seed,
        seed_uid: u64,
        energy: usize,
        compute: bool,
    ) -> ControlFlow<()> {
        if compute {
            let masks = self.compute_masks(&seed_snapshot, shared);
            seed_snapshot.masks = Some(masks.clone());
            {
                let mut s = shared.state.lock().expect("campaign state poisoned");
                // Look the seed up by uid, not index: culling may have
                // reshuffled (or dropped) it while the probes ran.
                if let Some(seed) = s.corpus.iter_mut().find(|x| x.uid == seed_uid) {
                    seed.masks = Some(masks.clone());
                }
            }
            // Keep the local mirror fresh too; no epoch bump needed — other
            // workers re-check mask state under the lock when they claim.
            if let Some(seed) = self.shard.seeds.iter_mut().find(|x| x.uid == seed_uid) {
                seed.masks = Some(masks);
            }
        }

        // ---- the mutate→execute→evaluate batch (executions unlocked) ----
        for _ in 0..energy {
            if self.time_exhausted(params) {
                return ControlFlow::Break(());
            }
            // Exact budget: reserve the slot before mutating/executing;
            // a successful reservation is always followed by exactly one
            // execution, so the campaign can never overshoot.
            let Some(slot) = shared.try_reserve(self.ctx.config.max_executions()) else {
                return ControlFlow::Break(());
            };
            let candidate = self.mutate_seed(&seed_snapshot);
            let outcome = self
                .harness
                .execute_sequence_with(&candidate, &mut self.frame);
            self.observe(&outcome);

            // Coverage merge: atomic bitmap only, no state lock.
            let new_edges = shared.merge_coverage(&outcome, &self.harness);
            if new_edges > 0 {
                let shape = candidate.shape();
                let seed = self.admit_seed(candidate, &outcome, new_edges, &shared.coverage);
                let mut s = shared.state.lock().expect("campaign state poisoned");
                if s.interesting_shapes.len() < 16 {
                    s.interesting_shapes.push(shape);
                }
                s.admit(seed);
                s.maybe_cull(self.ctx.config.effective_cull_interval());
                // Publish the corpus change so every shard resyncs before
                // its next draw (bumped while the lock is held).
                shared.epoch.bump();
            }
            self.last_world = Some(outcome.final_world);
            if slot.is_multiple_of(params.snapshot_every) {
                let mut s = shared.state.lock().expect("campaign state poisoned");
                Self::snapshot_locked(&mut s, shared, params, slot);
            }
        }
        ControlFlow::Continue(())
    }

    /// Algorithm 2: probe each (word, operator) site of every transaction in
    /// the seed; a site stays mutable only if mutating it keeps the nested
    /// branch covered or brings the input closer to an uncovered branch.
    /// Probe executions are real executions: each reserves a budget slot,
    /// merges its coverage and can be admitted as a seed. Under the exact
    /// budget, a probe that cannot reserve a slot is skipped and its site is
    /// left mutable (the safe default); with one worker this cannot happen —
    /// the scheduling gate only starts a pass when more than twice its
    /// worst-case cost remains in the budget.
    fn compute_masks(&mut self, seed: &Seed, shared: &CampaignShared) -> Vec<MutationMask> {
        let baseline_nested: BTreeSet<usize> = self.nested_branch_pcs(seed);
        let baseline_distance = seed.best_distance.unwrap_or(1.0);
        let mut masks = Vec::with_capacity(seed.sequence.len());

        for (tx_index, tx) in seed.sequence.txs.iter().enumerate() {
            if tx_index >= MAX_MASK_TXS {
                masks.push(MutationMask::allow_all(tx.stream.len()));
                continue;
            }
            let total_words = crate::mutation::word_count(tx.stream.len());
            let probed_words = total_words.min(MAX_MASK_WORDS);
            let mut mask = MutationMask::deny_all(tx.stream.len());
            // Words beyond the probed prefix stay freely mutable.
            for word in probed_words..total_words {
                for op in MutationOp::ALL {
                    mask.allow(word, op);
                }
            }
            for word in 0..probed_words {
                for op in MutationOp::ALL {
                    if shared
                        .try_reserve(self.ctx.config.max_executions())
                        .is_none()
                    {
                        // Budget exhausted mid-pass (only possible with
                        // concurrent workers draining it): leave the
                        // unprobed site mutable.
                        mask.allow(word, op);
                        continue;
                    }
                    let probe_stream =
                        apply_op(&tx.stream, op, word, &mut self.rng, &self.ctx.interesting);
                    let mut probe_seq = seed.sequence.clone();
                    probe_seq.txs[tx_index].stream = probe_stream;
                    let outcome = self
                        .harness
                        .execute_sequence_with(&probe_seq, &mut self.frame);
                    self.observe(&outcome);

                    // Does the probe still hit the nested branches the seed hit?
                    let probe_nested = outcome_nested_pcs(&self.ctx, &outcome);
                    let keeps_nested = baseline_nested.is_subset(&probe_nested);

                    // Merge the probe's coverage (atomic bitmap, no lock) and
                    // admit it as a seed when it found new edges.
                    let new_edges = shared.merge_coverage(&outcome, &self.harness);
                    if new_edges > 0 {
                        let admitted = self.admit_seed(
                            probe_seq.clone(),
                            &outcome,
                            new_edges,
                            &shared.coverage,
                        );
                        let mut s = shared.state.lock().expect("campaign state poisoned");
                        s.admit(admitted);
                        s.maybe_cull(self.ctx.config.effective_cull_interval());
                        shared.epoch.bump();
                    }
                    // Or does it reduce the distance to an uncovered branch?
                    let probe_distance = self
                        .best_distance_to_uncovered(&outcome, &shared.coverage)
                        .unwrap_or(1.0);
                    if keeps_nested || probe_distance < baseline_distance {
                        mask.allow(word, op);
                    }
                }
            }
            // Never leave a transaction completely frozen: that would make the
            // seed sterile.
            if mask.allowed_sites().is_empty() {
                mask = MutationMask::allow_all(tx.stream.len());
            }
            masks.push(mask);
        }
        masks
    }
}

/// Assemble the final report from the shared campaign state, enforcing the
/// exact-budget invariant. Reads the state through its locks (the campaign's
/// lanes have all retired by the time this runs, so there is no contention).
pub(crate) fn build_report(
    ctx: &CampaignContext,
    shared: &CampaignShared,
    monitor: CampaignMonitor,
    params: &RunParams,
    workers: usize,
    empty_corpus: bool,
    finding_records: Vec<FindingRecord>,
) -> CampaignReport {
    let s = shared.state.lock().expect("campaign state poisoned");
    let executions = shared.executions();
    let total_edges = params.total_edges;
    assert!(
        executions <= ctx.config.max_executions(),
        "budget overshoot: {executions} executions for a budget of {}",
        ctx.config.max_executions()
    );
    let covered = shared.coverage.covered_count();
    let elapsed_ms = params.elapsed_ms();
    let mut timeline = s.timeline.clone();
    if !empty_corpus {
        timeline.push(CoveragePoint {
            executions,
            elapsed_ms,
            covered_edges: covered,
            coverage: covered as f64 / total_edges as f64,
        });
    }
    // Concurrent lanes append snapshot points in lock-acquisition order,
    // which can trail the slot order (a lane may stall between reserving its
    // slot and appending its point, and the late append reads the
    // then-current covered count). Restore the sequential engine's contract
    // — execution-ordered points with monotone coverage — by sorting on the
    // slot and carrying the running maximum forward; both passes are no-ops
    // for `workers == 1`.
    timeline.sort_by_key(|point| point.executions);
    let mut running_max = 0usize;
    for point in &mut timeline {
        if point.covered_edges < running_max {
            point.covered_edges = running_max;
            point.coverage = running_max as f64 / total_edges as f64;
        } else {
            running_max = point.covered_edges;
        }
    }
    // Content digests: every seed's snapshot encoding in corpus order, and
    // the raw coverage bitmap words. Cheap (one pass over state that is
    // already resident) and profile-independent; the round-mode determinism
    // suite compares them across worker counts.
    let mut corpus_digest = Digest::new();
    let mut encoded = Vec::new();
    for seed in &s.corpus {
        encoded.clear();
        put_seed(&mut encoded, seed);
        corpus_digest.eat(&encoded);
    }
    let mut coverage_digest = Digest::new();
    for word in shared.coverage.snapshot_words() {
        coverage_digest.eat_u64(word);
    }
    CampaignReport {
        contract: ctx.harness.compiled.name.clone(),
        covered_edges: covered,
        total_edges,
        coverage: covered as f64 / total_edges as f64,
        executions,
        findings: monitor.findings(),
        timeline,
        corpus_size: s.corpus.len(),
        culled_seeds: s.culled,
        elapsed_ms,
        interesting_shapes: s.interesting_shapes.clone(),
        workers,
        corpus_digest: corpus_digest.finish(),
        coverage_digest: coverage_digest.finish(),
        finding_records,
    }
}

/// The MuFuzz fuzzer bound to one compiled contract.
///
/// `Fuzzer` is the single-campaign convenience driver: it owns a prepared
/// campaign context and a campaign RNG, and [`Fuzzer::run`] submits the
/// campaign to an ephemeral single-campaign [`CampaignService`] and waits
/// for the report. To fuzz several contracts concurrently on one thread
/// pool — or to poll progress, stream events and checkpoint mid-flight —
/// use a [`CampaignService`] directly.
pub struct Fuzzer {
    ctx: Arc<CampaignContext>,
    rng: SmallRng,
}

impl Fuzzer {
    /// Set up a fuzzer: deploys the contract, runs the static analyses and
    /// prepares the mutation value pool.
    pub fn new(compiled: CompiledContract, config: FuzzerConfig) -> Result<Fuzzer, HarnessError> {
        let ctx = CampaignContext::prepare(compiled, config)?;
        let rng = SmallRng::seed_from_u64(ctx.config.rng_seed);
        Ok(Fuzzer {
            ctx: Arc::new(ctx),
            rng,
        })
    }

    /// Access the underlying harness (used by integration tests and benches).
    pub fn harness(&self) -> &ContractHarness {
        &self.ctx.harness
    }

    /// Run the campaign to completion and produce a report.
    ///
    /// The campaign runs as `config.workers` lanes on a fleet pool of the
    /// same size, spun up for this call and torn down with it. The report
    /// upholds the exact-budget invariant
    /// `report.executions <= config.max_executions()` at any worker count:
    /// execution slots are reserved atomically before each execution, so the
    /// campaign stops at the budget instead of overshooting by in-flight
    /// mutants (asserted before returning). With `workers == 1` the campaign
    /// — and the RNG stream this fuzzer carries across runs — is bit-for-bit
    /// identical to the historical sequential engine.
    pub fn run(&mut self) -> CampaignReport {
        let service = CampaignService::new(self.ctx.config.workers.max(1));
        let handle = service.submit_prepared(
            Arc::clone(&self.ctx),
            self.rng.clone(),
            SubmitOptions::default(),
        );
        let (report, rng) = handle.wait_internal();
        self.rng = rng;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mufuzz_lang::compile_source;
    use mufuzz_oracles::BugClass;

    const CROWDSALE: &str = r#"
        contract Crowdsale {
            uint256 phase = 0;
            uint256 goal;
            uint256 invested;
            address owner;
            mapping(address => uint256) invests;
            constructor() public { goal = 100 ether; invested = 0; owner = msg.sender; }
            function invest(uint256 donations) public payable {
                if (invested < goal) {
                    invests[msg.sender] += donations;
                    invested += donations;
                    phase = 0;
                } else { phase = 1; }
            }
            function refund() public {
                if (phase == 0) {
                    msg.sender.transfer(invests[msg.sender]);
                    invests[msg.sender] = 0;
                }
            }
            function withdraw() public {
                if (phase == 1) { bug(); owner.transfer(invested); }
            }
        }
    "#;

    /// Run a campaign pinned to one worker: these tests assert seeded,
    /// deterministic expectations.
    fn run_with(config: FuzzerConfig) -> CampaignReport {
        let compiled = compile_source(CROWDSALE).unwrap();
        let mut fuzzer = Fuzzer::new(compiled, config.with_workers(1)).unwrap();
        fuzzer.run()
    }

    #[test]
    fn campaign_produces_monotone_timeline_and_coverage() {
        let report = run_with(FuzzerConfig::mufuzz(300));
        assert!(report.executions >= 300);
        assert!(report.covered_edges > 0);
        assert!(report.coverage > 0.0 && report.coverage <= 1.0);
        assert!(report.total_edges >= report.covered_edges);
        let mut prev = 0;
        for point in &report.timeline {
            assert!(point.covered_edges >= prev);
            prev = point.covered_edges;
        }
        assert!(report.corpus_size >= 3);
        assert_eq!(report.workers, 1);
        assert!(report.execs_per_sec() > 0.0);
    }

    #[test]
    fn campaigns_are_deterministic_for_a_seed() {
        let a = run_with(FuzzerConfig::mufuzz(200).with_rng_seed(11));
        let b = run_with(FuzzerConfig::mufuzz(200).with_rng_seed(11));
        assert_eq!(a.covered_edges, b.covered_edges);
        assert_eq!(a.corpus_size, b.corpus_size);
        assert_eq!(a.detected_classes(), b.detected_classes());
        assert_eq!(a.timeline.len(), b.timeline.len());
        assert_eq!(a.interesting_shapes, b.interesting_shapes);
    }

    #[test]
    fn parallel_campaign_covers_and_reports() {
        let compiled = compile_source(CROWDSALE).unwrap();
        let mut fuzzer = Fuzzer::new(
            compiled,
            FuzzerConfig::mufuzz(400).with_rng_seed(5).with_workers(4),
        )
        .unwrap();
        let report = fuzzer.run();
        assert_eq!(report.workers, 4);
        assert_eq!(report.executions, 400);
        assert!(report.covered_edges > 0);
        assert!(report.corpus_size >= 3);
        let mut prev_covered = 0;
        let mut prev_executions = 0;
        for point in &report.timeline {
            assert!(
                point.covered_edges >= prev_covered,
                "parallel timeline coverage not monotone"
            );
            assert!(
                point.executions >= prev_executions,
                "parallel timeline not execution-ordered"
            );
            prev_covered = point.covered_edges;
            prev_executions = point.executions;
        }
    }

    #[test]
    fn worker_seed_streams_are_decorrelated() {
        let s1 = derive_worker_seed(0x5EED, 1);
        let s2 = derive_worker_seed(0x5EED, 2);
        let other = derive_worker_seed(0x5EEE, 1);
        assert_ne!(s1, s2);
        assert_ne!(s1, other);
        // Deterministic: the same campaign seed derives the same streams.
        assert_eq!(s1, derive_worker_seed(0x5EED, 1));
    }

    #[test]
    fn motivating_example_deep_branch_is_reached() {
        // The paper's motivating example: the bug guarded by `phase == 1`
        // requires calling invest twice before withdraw. MuFuzz with the
        // sequence-aware mutation reaches it within a small budget.
        let report = run_with(FuzzerConfig::mufuzz(600).with_rng_seed(3));
        // The bug marker branch produces high coverage; the guarded bug
        // region accounts for the last few edges.
        assert!(
            report.coverage > 0.7,
            "coverage too low: {:.2}",
            report.coverage_percent()
        );
    }

    #[test]
    fn sequence_aware_outperforms_random_ordering_on_crowdsale() {
        let full = run_with(FuzzerConfig::mufuzz(400).with_rng_seed(7));
        let ablated = run_with(
            FuzzerConfig::mufuzz(400)
                .with_rng_seed(7)
                .without_sequence_aware(),
        );
        assert!(
            full.covered_edges >= ablated.covered_edges,
            "full {} < ablated {}",
            full.covered_edges,
            ablated.covered_edges
        );
    }

    #[test]
    fn findings_include_unhandled_exception_for_crowdsale_refund() {
        // refund() sends ether with transfer (checked), so no UE there; but
        // the withdraw transfer to the owner is also checked. The campaign
        // should not report UE for this contract.
        let report = run_with(FuzzerConfig::mufuzz(300));
        assert!(!report
            .detected_classes()
            .contains(&BugClass::UnhandledException));
        // No reentrancy either: transfer() only forwards the stipend.
        assert!(!report.detected_classes().contains(&BugClass::Reentrancy));
    }

    #[test]
    fn reentrancy_bank_is_detected_by_the_campaign() {
        let src = r#"
            contract Bank {
                mapping(address => uint256) balances;
                function deposit() public payable { balances[msg.sender] += msg.value; }
                function withdraw() public {
                    if (balances[msg.sender] > 0) {
                        msg.sender.call.value(balances[msg.sender])();
                        balances[msg.sender] = 0;
                    }
                }
            }
        "#;
        let compiled = compile_source(src).unwrap();
        let mut fuzzer = Fuzzer::new(
            compiled,
            FuzzerConfig::mufuzz(600).with_rng_seed(5).with_workers(1),
        )
        .unwrap();
        let report = fuzzer.run();
        assert!(
            report.detected_classes().contains(&BugClass::Reentrancy),
            "findings: {:?}",
            report.findings
        );
    }

    #[test]
    fn contract_without_functions_reports_empty_campaign() {
        let compiled = compile_source("contract Empty { uint256 x; }").unwrap();
        let mut fuzzer = Fuzzer::new(compiled, FuzzerConfig::mufuzz(50)).unwrap();
        let report = fuzzer.run();
        assert_eq!(report.corpus_size, 0);
        assert_eq!(report.covered_edges, 0);
    }

    #[test]
    fn time_budget_stops_the_campaign() {
        let compiled = compile_source(CROWDSALE).unwrap();
        let mut fuzzer = Fuzzer::new(
            compiled,
            FuzzerConfig::mufuzz(usize::MAX).with_time_budget_ms(50),
        )
        .unwrap();
        let report = fuzzer.run();
        assert!(report.elapsed_ms >= 50);
        assert!(report.executions > 0);
    }
}
