//! Regenerates Table II: the benchmark dataset summary.
//!
//! Scale with `MUFUZZ_D1_SMALL`, `MUFUZZ_D1_LARGE`, `MUFUZZ_D2_PER_CLASS`
//! and `MUFUZZ_D3` environment variables.

use mufuzz_bench::{env_param, table};
use mufuzz_corpus::table2_summaries;

fn main() {
    let small = env_param("MUFUZZ_D1_SMALL", 20);
    let large = env_param("MUFUZZ_D1_LARGE", 8);
    let per_class = env_param("MUFUZZ_D2_PER_CLASS", 2);
    let d3 = env_param("MUFUZZ_D3", 12);

    let rows: Vec<Vec<String>> = table2_summaries(small, large, per_class, d3)
        .into_iter()
        .map(|s| {
            vec![
                s.name,
                s.paper_source,
                s.used_for,
                s.contracts.to_string(),
                s.annotations.to_string(),
            ]
        })
        .collect();

    println!("Table II — benchmark datasets (reproduction corpus)");
    println!(
        "(paper sizes: D1 = 17,803 small + 3,344 large, D2 = 155 vulnerable, D3 = 500 popular)"
    );
    println!();
    print!(
        "{}",
        table::render(
            &[
                "Dataset",
                "Stands in for",
                "Used for",
                "Contracts",
                "Annotations"
            ],
            &rows
        )
    );
}
