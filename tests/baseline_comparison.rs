//! Cross-crate comparison tests: the relative ordering of the fuzzing
//! strategies on the reproduction corpus should match the paper's shape
//! (MuFuzz ahead of the random-ordering baseline, the ablations behind the
//! full system).

use mufuzz::{Fuzzer, FuzzerConfig};
use mufuzz_baselines::{FuzzRequest, FuzzingStrategy, MuFuzzStrategy, SFuzzStrategy};
use mufuzz_corpus::{contracts, generate_contract, GeneratorConfig};
use mufuzz_lang::compile_source;

/// Mean coverage of a strategy over a few seeded generated contracts.
fn mean_coverage(strategy: &dyn FuzzingStrategy, budget: usize) -> f64 {
    let contracts: Vec<_> = (0..3u64)
        .map(|i| generate_contract(&format!("Cmp{i}"), &GeneratorConfig::small(100 + i)))
        .collect();
    let mut total = 0.0;
    for c in &contracts {
        let compiled = compile_source(&c.source).unwrap();
        let report = strategy
            .fuzz(compiled, &FuzzRequest::new(budget, 31))
            .unwrap();
        total += report.coverage;
    }
    total / contracts.len() as f64
}

#[test]
fn mufuzz_is_at_least_as_good_as_sfuzz_on_generated_contracts() {
    let mufuzz = mean_coverage(&MuFuzzStrategy, 300);
    let sfuzz = mean_coverage(&SFuzzStrategy, 300);
    assert!(
        mufuzz >= sfuzz - 0.02,
        "MuFuzz {mufuzz:.3} vs sFuzz {sfuzz:.3}"
    );
}

#[test]
fn disabling_sequence_awareness_never_helps_on_the_crowdsale() {
    let source = contracts::crowdsale().source;
    let run = |config: FuzzerConfig| {
        let compiled = compile_source(&source).unwrap();
        Fuzzer::new(compiled, config).unwrap().run().covered_edges
    };
    let full = run(FuzzerConfig::mufuzz(400).with_rng_seed(19).with_workers(1));
    let ablated = run(FuzzerConfig::mufuzz(400)
        .with_rng_seed(19)
        .with_workers(1)
        .without_sequence_aware());
    assert!(full >= ablated, "full {full} < ablated {ablated}");
}

#[test]
fn all_strategies_are_deterministic_given_a_seed() {
    let source = contracts::game().source;
    for strategy in mufuzz_baselines::all_fuzzers() {
        let req = FuzzRequest::new(150, 23);
        let a = strategy
            .fuzz(compile_source(&source).unwrap(), &req)
            .unwrap();
        let b = strategy
            .fuzz(compile_source(&source).unwrap(), &req)
            .unwrap();
        assert_eq!(
            a.covered_edges,
            b.covered_edges,
            "{} is not deterministic",
            strategy.name()
        );
    }
}

#[test]
fn mask_guidance_helps_satisfy_the_game_contracts_strict_guard() {
    // The Game contract requires msg.value == 88 finney. Once a seed satisfies
    // it, the mask freezes the value word; the full system should therefore
    // cover at least as many edges as the mask-less variant.
    let source = contracts::game().source;
    let run = |config: FuzzerConfig| {
        let compiled = compile_source(&source).unwrap();
        Fuzzer::new(compiled, config).unwrap().run().covered_edges
    };
    let with_mask = run(FuzzerConfig::mufuzz(300).with_rng_seed(29).with_workers(1));
    let without_mask = run(FuzzerConfig::mufuzz(300)
        .with_rng_seed(29)
        .with_workers(1)
        .without_mask_guidance());
    assert!(
        with_mask >= without_mask,
        "with mask {with_mask} < without {without_mask}"
    );
}
