//! Integration test for the paper's motivating example (Figure 1 / §III):
//! the bug in `withdraw` is guarded by `phase == 1`, which can only become
//! true after `invest` has been executed twice. The test exercises the whole
//! pipeline: parse → compile → data-flow analysis → sequence planning →
//! concrete execution → oracle/coverage observation.

use mufuzz::{ContractHarness, Fuzzer, FuzzerConfig, Sequence, TxInput};
use mufuzz_analysis::{analyze_contract, plan_sequence};
use mufuzz_corpus::contracts;
use mufuzz_evm::{ether, Opcode, U256};
use mufuzz_lang::compile_source;

#[test]
fn dataflow_analysis_reproduces_figure_3() {
    let compiled = compile_source(&contracts::crowdsale().source).unwrap();
    let flow = analyze_contract(&compiled.contract);

    let invest = flow.function("invest").unwrap();
    assert!(invest.writes.contains("invested"));
    assert!(invest.writes.contains("invests"));
    assert!(invest.writes.contains("phase"));
    assert!(invest.reads.contains("goal"));
    assert!(invest.raw_vars.contains("invested"));

    let withdraw = flow.function("withdraw").unwrap();
    assert!(withdraw.reads.contains("phase"));
    assert!(withdraw.reads.contains("invested"));
}

#[test]
fn sequence_plan_reproduces_the_paper_sequence() {
    let compiled = compile_source(&contracts::crowdsale().source).unwrap();
    let plan = plan_sequence(&analyze_contract(&compiled.contract));
    // Base: [invest, refund, withdraw]; mutated: invest repeated before withdraw.
    assert_eq!(plan.base_order, vec!["invest", "refund", "withdraw"]);
    assert_eq!(
        plan.mutated_order,
        vec!["invest", "refund", "invest", "withdraw"]
    );
    assert!(plan.repeat_candidates.contains("invest"));
}

#[test]
fn planned_sequence_reaches_the_guarded_bug_while_single_invest_does_not() {
    let compiled = compile_source(&contracts::crowdsale().source).unwrap();
    let harness = ContractHarness::new(compiled, &FuzzerConfig::default()).unwrap();

    // The paper's t1..t3: invest past the goal, invest again (sets phase = 1),
    // withdraw. The bug marker inside the guarded branch compiles to LOG0.
    let exploit = Sequence::new(vec![
        TxInput::new("invest", 0, ether(100), &[ether(100)]),
        TxInput::simple("refund"),
        TxInput::new("invest", 1, U256::ONE, &[U256::ONE]),
        TxInput::simple("withdraw"),
    ]);
    let outcome = harness.execute_sequence(&exploit);
    let bug_reached = outcome
        .traces
        .iter()
        .any(|t| t.contains_opcode(Opcode::Log(0)));
    assert!(
        bug_reached,
        "the mutated sequence must reach the bug marker"
    );

    // Without the repetition (the ConFuzzius/Smartian-style sequence), the
    // else-branch that sets phase = 1 is never taken and the bug stays hidden.
    let plain = Sequence::new(vec![
        TxInput::new("invest", 0, ether(100), &[ether(100)]),
        TxInput::simple("refund"),
        TxInput::simple("withdraw"),
    ]);
    let outcome = harness.execute_sequence(&plain);
    let bug_reached = outcome
        .traces
        .iter()
        .any(|t| t.contains_opcode(Opcode::Log(0)));
    assert!(!bug_reached, "a single invest must not unlock the bug");
}

#[test]
fn mufuzz_campaign_covers_more_than_half_of_the_crowdsale_branches_quickly() {
    let compiled = compile_source(&contracts::crowdsale().source).unwrap();
    let mut fuzzer = Fuzzer::new(
        compiled,
        FuzzerConfig::mufuzz(500).with_rng_seed(2).with_workers(1),
    )
    .unwrap();
    let report = fuzzer.run();
    assert!(
        report.coverage > 0.6,
        "coverage only {:.1}%",
        report.coverage_percent()
    );
    // The campaign keeps a monotone coverage timeline.
    let mut prev = 0;
    for point in &report.timeline {
        assert!(point.covered_edges >= prev);
        prev = point.covered_edges;
    }
}
