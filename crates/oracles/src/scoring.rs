//! Scoring detections against annotated ground truth.
//!
//! The paper's Table III reports, per tool and bug class, the number of true
//! positives and false negatives over the D2 benchmark (contracts with
//! manually annotated vulnerabilities). This module reproduces that scoring:
//! every corpus contract carries a set of [`Annotation`]s and the detector
//! output is compared class-by-class.

use crate::bugs::{BugClass, BugFinding};
use std::collections::{BTreeMap, BTreeSet};

/// One annotated (ground-truth) vulnerability in a contract.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Annotation {
    /// Bug class.
    pub class: BugClass,
    /// Function the bug lives in, when the annotation is that precise.
    pub function: Option<String>,
}

impl Annotation {
    /// Contract-level annotation.
    pub fn contract(class: BugClass) -> Annotation {
        Annotation {
            class,
            function: None,
        }
    }

    /// Function-level annotation.
    pub fn in_function(class: BugClass, function: &str) -> Annotation {
        Annotation {
            class,
            function: Some(function.to_string()),
        }
    }
}

/// Per-class detection counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassScore {
    /// Annotated bugs correctly reported.
    pub true_positives: usize,
    /// Annotated bugs the detector missed.
    pub false_negatives: usize,
    /// Reports with no matching annotation.
    pub false_positives: usize,
}

impl ClassScore {
    /// Recall = TP / (TP + FN); 1.0 when nothing was annotated.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Precision = TP / (TP + FP); 1.0 when nothing was reported.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }
}

/// Detection scores for one contract (or aggregated over a dataset).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DetectionScore {
    /// Per-class counts.
    pub per_class: BTreeMap<BugClass, ClassScore>,
}

impl DetectionScore {
    /// Counts for one class (zeros when the class never appeared).
    pub fn class(&self, class: BugClass) -> ClassScore {
        self.per_class.get(&class).copied().unwrap_or_default()
    }

    /// Total true positives.
    pub fn total_tp(&self) -> usize {
        self.per_class.values().map(|s| s.true_positives).sum()
    }

    /// Total false negatives.
    pub fn total_fn(&self) -> usize {
        self.per_class.values().map(|s| s.false_negatives).sum()
    }

    /// Total false positives.
    pub fn total_fp(&self) -> usize {
        self.per_class.values().map(|s| s.false_positives).sum()
    }

    /// Merge another score into this one (used to aggregate over a dataset).
    pub fn merge(&mut self, other: &DetectionScore) {
        for (class, score) in &other.per_class {
            let entry = self.per_class.entry(*class).or_default();
            entry.true_positives += score.true_positives;
            entry.false_negatives += score.false_negatives;
            entry.false_positives += score.false_positives;
        }
    }
}

/// Compare detector findings against annotations for one contract.
///
/// Matching is by bug class: a finding of class `C` matches an annotation of
/// class `C` regardless of the function attribution (tools in the paper are
/// compared the same way), but each annotation can be matched at most once and
/// surplus reports of a class with no remaining annotation count as false
/// positives.
pub fn score_contract(findings: &[BugFinding], annotations: &[Annotation]) -> DetectionScore {
    let mut score = DetectionScore::default();

    // Deduplicate findings per (class, function), then count per class.
    let mut reported_per_class: BTreeMap<BugClass, usize> = BTreeMap::new();
    let mut seen: BTreeSet<(BugClass, Option<&str>)> = BTreeSet::new();
    for f in findings {
        if seen.insert(f.dedup_key()) {
            *reported_per_class.entry(f.class).or_insert(0) += 1;
        }
    }
    let mut annotated_per_class: BTreeMap<BugClass, usize> = BTreeMap::new();
    for a in annotations {
        *annotated_per_class.entry(a.class).or_insert(0) += 1;
    }

    let classes: BTreeSet<BugClass> = reported_per_class
        .keys()
        .chain(annotated_per_class.keys())
        .copied()
        .collect();
    for class in classes {
        let reported = reported_per_class.get(&class).copied().unwrap_or(0);
        let annotated = annotated_per_class.get(&class).copied().unwrap_or(0);
        let tp = reported.min(annotated);
        score.per_class.insert(
            class,
            ClassScore {
                true_positives: tp,
                false_negatives: annotated - tp,
                false_positives: reported - tp,
            },
        );
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(class: BugClass, function: &str) -> BugFinding {
        BugFinding::new(class, Some(function.to_string()), 0, "test")
    }

    #[test]
    fn exact_match_scores_true_positive() {
        let score = score_contract(
            &[finding(BugClass::Reentrancy, "withdraw")],
            &[Annotation::in_function(BugClass::Reentrancy, "withdraw")],
        );
        let re = score.class(BugClass::Reentrancy);
        assert_eq!(re.true_positives, 1);
        assert_eq!(re.false_negatives, 0);
        assert_eq!(re.false_positives, 0);
        assert_eq!(re.recall(), 1.0);
    }

    #[test]
    fn missed_annotation_is_false_negative() {
        let score = score_contract(&[], &[Annotation::contract(BugClass::IntegerOverflow)]);
        let io = score.class(BugClass::IntegerOverflow);
        assert_eq!(io.true_positives, 0);
        assert_eq!(io.false_negatives, 1);
        assert_eq!(io.recall(), 0.0);
    }

    #[test]
    fn unmatched_report_is_false_positive() {
        let score = score_contract(&[finding(BugClass::TxOriginUse, "f")], &[]);
        let to = score.class(BugClass::TxOriginUse);
        assert_eq!(to.false_positives, 1);
        assert_eq!(to.precision(), 0.0);
        assert_eq!(to.recall(), 1.0);
    }

    #[test]
    fn duplicate_findings_count_once() {
        let score = score_contract(
            &[
                finding(BugClass::Reentrancy, "withdraw"),
                finding(BugClass::Reentrancy, "withdraw"),
            ],
            &[Annotation::in_function(BugClass::Reentrancy, "withdraw")],
        );
        let re = score.class(BugClass::Reentrancy);
        assert_eq!(re.true_positives, 1);
        assert_eq!(re.false_positives, 0);
    }

    #[test]
    fn multiple_annotations_of_same_class_need_multiple_findings() {
        let score = score_contract(
            &[finding(BugClass::UnhandledException, "a")],
            &[
                Annotation::in_function(BugClass::UnhandledException, "a"),
                Annotation::in_function(BugClass::UnhandledException, "b"),
            ],
        );
        let ue = score.class(BugClass::UnhandledException);
        assert_eq!(ue.true_positives, 1);
        assert_eq!(ue.false_negatives, 1);
    }

    #[test]
    fn merge_aggregates_counts() {
        let mut total = score_contract(
            &[finding(BugClass::Reentrancy, "w")],
            &[Annotation::in_function(BugClass::Reentrancy, "w")],
        );
        total.merge(&score_contract(
            &[],
            &[Annotation::contract(BugClass::Reentrancy)],
        ));
        let re = total.class(BugClass::Reentrancy);
        assert_eq!(re.true_positives, 1);
        assert_eq!(re.false_negatives, 1);
        assert_eq!(total.total_tp(), 1);
        assert_eq!(total.total_fn(), 1);
        assert_eq!(total.total_fp(), 0);
    }
}
