//! Dataset builders standing in for the paper's three benchmarks (Table II).
//!
//! * **D1** — coverage benchmark: procedurally generated contracts split into
//!   *small* and *large* by compiled instruction count (the paper splits at
//!   3,632 instructions; our generated contracts are smaller, so the split
//!   threshold scales accordingly but the small/large distinction is
//!   preserved).
//! * **D2** — vulnerability benchmark: the hand-written vulnerable contracts
//!   plus generated contracts with injected, annotated bugs covering all nine
//!   classes.
//! * **D3** — real-world-scale benchmark: large generated contracts paired
//!   with a synthetic historical transaction load (the paper's D3 contracts
//!   each have more than 30,000 on-chain transactions).

use crate::contracts::{self, BenchContract};
use crate::generator::{generate_contract, GeneratorConfig};
use mufuzz_oracles::BugClass;

/// A dataset: a named list of benchmark contracts.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Dataset identifier (`D1-small`, `D1-large`, `D2`, `D3`).
    pub name: String,
    /// The contracts.
    pub contracts: Vec<BenchContract>,
    /// Synthetic historical transaction count per contract (only meaningful
    /// for D3, zero elsewhere).
    pub historical_txs_per_contract: usize,
}

impl Dataset {
    /// Number of contracts.
    pub fn len(&self) -> usize {
        self.contracts.len()
    }

    /// True if the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.contracts.is_empty()
    }

    /// Total number of ground-truth annotations.
    pub fn total_annotations(&self) -> usize {
        self.contracts.iter().map(|c| c.annotations.len()).sum()
    }
}

/// Build the D1-small dataset: `count` small generated contracts.
pub fn d1_small(count: usize) -> Dataset {
    let contracts = (0..count)
        .map(|i| {
            generate_contract(
                &format!("D1Small{i}"),
                &GeneratorConfig::small(1_000 + i as u64),
            )
        })
        .collect();
    Dataset {
        name: "D1-small".into(),
        contracts,
        historical_txs_per_contract: 0,
    }
}

/// Build the D1-large dataset: `count` large generated contracts.
pub fn d1_large(count: usize) -> Dataset {
    let contracts = (0..count)
        .map(|i| {
            generate_contract(
                &format!("D1Large{i}"),
                &GeneratorConfig::large(2_000 + i as u64),
            )
        })
        .collect();
    Dataset {
        name: "D1-large".into(),
        contracts,
        historical_txs_per_contract: 0,
    }
}

/// Build the D2 dataset: every hand-written vulnerable contract plus
/// `generated_per_class` generated contracts per bug class with injected,
/// annotated bugs.
pub fn d2(generated_per_class: usize) -> Dataset {
    let mut contracts = contracts::all_handwritten();
    for class in BugClass::ALL {
        for i in 0..generated_per_class {
            // Ether freezing is a whole-contract property, so it is always
            // injected alone; other classes may share a contract with the
            // state-machine functions.
            let cfg = GeneratorConfig {
                // Keep EF hosts free of transfer instructions.
                payable_prob: if class == BugClass::EtherFreezing {
                    0.6
                } else {
                    0.4
                },
                ..GeneratorConfig::small(3_000 + i as u64 + class as u64 * 97)
            }
            .with_bugs(vec![class])
            // Ether-freezing hosts must not have any value-releasing path.
            .with_drain(class != BugClass::EtherFreezing);
            contracts.push(generate_contract(
                &format!("D2{}{}", class.abbrev(), i),
                &cfg,
            ));
        }
    }
    Dataset {
        name: "D2".into(),
        contracts,
        historical_txs_per_contract: 0,
    }
}

/// Build the D3 dataset: `count` large contracts with a mix of injected bugs
/// and benign look-alikes, plus a synthetic historical transaction load.
pub fn d3(count: usize) -> Dataset {
    let contracts = (0..count)
        .map(|i| {
            let seed = 5_000 + i as u64;
            // Roughly 40% of D3 contracts carry one injected bug; the rest are
            // benign, which is what makes false-positive analysis meaningful.
            let bugs = if i % 5 == 0 {
                vec![BugClass::IntegerOverflow]
            } else if i % 5 == 1 {
                vec![BugClass::BlockDependency]
            } else {
                vec![]
            };
            generate_contract(
                &format!("D3Popular{i}"),
                &GeneratorConfig::large(seed).with_bugs(bugs),
            )
        })
        .collect();
    Dataset {
        name: "D3".into(),
        contracts,
        historical_txs_per_contract: 30_000,
    }
}

/// A row of the Table II dataset summary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DatasetSummary {
    /// Dataset identifier.
    pub name: String,
    /// Source the paper used.
    pub paper_source: String,
    /// Which research questions it serves.
    pub used_for: String,
    /// Number of contracts in this reproduction.
    pub contracts: usize,
    /// Number of ground-truth annotations.
    pub annotations: usize,
}

/// Summaries for all datasets at the given sizes (Table II).
pub fn table2_summaries(
    small: usize,
    large: usize,
    d2_per_class: usize,
    d3_count: usize,
) -> Vec<DatasetSummary> {
    let d1s = d1_small(small);
    let d1l = d1_large(large);
    let d2 = d2(d2_per_class);
    let d3 = d3(d3_count);
    vec![
        DatasetSummary {
            name: "D1-small".into(),
            paper_source: "ConFuzzius benchmark (17,803 small contracts)".into(),
            used_for: "RQ1, RQ3".into(),
            contracts: d1s.len(),
            annotations: d1s.total_annotations(),
        },
        DatasetSummary {
            name: "D1-large".into(),
            paper_source: "ConFuzzius benchmark (3,344 large contracts)".into(),
            used_for: "RQ1, RQ3".into(),
            contracts: d1l.len(),
            annotations: d1l.total_annotations(),
        },
        DatasetSummary {
            name: "D2".into(),
            paper_source: "VeriSmart/TMP/SmartBugs/SWC (155 vulnerable contracts)".into(),
            used_for: "RQ2".into(),
            contracts: d2.len(),
            annotations: d2.total_annotations(),
        },
        DatasetSummary {
            name: "D3".into(),
            paper_source: "Smartian benchmark (500 popular contracts, >30k txs each)".into(),
            used_for: "RQ4".into(),
            contracts: d3.len(),
            annotations: d3.total_annotations(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mufuzz_lang::compile_source;

    #[test]
    fn d1_datasets_compile_and_respect_the_size_split() {
        let small = d1_small(5);
        let large = d1_large(5);
        assert_eq!(small.len(), 5);
        assert_eq!(large.len(), 5);
        let avg = |ds: &Dataset| -> usize {
            ds.contracts
                .iter()
                .map(|c| compile_source(&c.source).unwrap().instruction_count())
                .sum::<usize>()
                / ds.len()
        };
        assert!(avg(&large) > avg(&small) * 2);
    }

    #[test]
    fn d2_covers_every_bug_class_with_annotations() {
        let ds = d2(2);
        assert!(ds.len() >= 12 + 18);
        for class in BugClass::ALL {
            let count = ds.contracts.iter().filter(|c| c.has_bug(class)).count();
            assert!(count >= 2, "{class} only appears in {count} contracts");
        }
        assert!(ds.total_annotations() >= 20);
        // Everything compiles.
        for c in &ds.contracts {
            assert!(compile_source(&c.source).is_ok(), "{}", c.name);
        }
    }

    #[test]
    fn d3_mixes_buggy_and_benign_contracts() {
        let ds = d3(10);
        assert_eq!(ds.len(), 10);
        assert_eq!(ds.historical_txs_per_contract, 30_000);
        let buggy = ds
            .contracts
            .iter()
            .filter(|c| !c.annotations.is_empty())
            .count();
        assert!(buggy > 0 && buggy < ds.len());
    }

    #[test]
    fn datasets_are_deterministic() {
        let a = d1_small(3);
        let b = d1_small(3);
        for (x, y) in a.contracts.iter().zip(&b.contracts) {
            assert_eq!(x.source, y.source);
        }
    }

    #[test]
    fn table2_summary_rows_match_requested_sizes() {
        let rows = table2_summaries(3, 2, 1, 4);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].contracts, 3);
        assert_eq!(rows[1].contracts, 2);
        assert!(rows[2].contracts >= 12 + 9);
        assert_eq!(rows[3].contracts, 4);
        assert!(rows[2].annotations > 0);
    }
}
