//! World state: accounts, balances, code and persistent storage.
//!
//! Smart contracts are stateful programs; the fuzzer repeatedly replays
//! transaction sequences against a snapshot of the deployed world state, so
//! cloning and snapshot/revert need to be cheap and correct.

use crate::trace::Taint;
use crate::types::Address;
use crate::u256::U256;
use std::collections::HashMap;
use std::sync::Arc;

/// Host-implemented behaviour for accounts that are not plain bytecode
/// contracts. Used to model the attacker harness required by the reentrancy
/// oracle without having to compile an attacker contract for every target.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum HostBehaviour {
    /// A plain externally-owned account (or bytecode contract if code is set).
    #[default]
    None,
    /// When this account receives a call carrying value, it re-enters the
    /// caller with the given calldata, up to `max_depth` nested times.
    ReentrantAttacker {
        /// Calldata to send back to the calling contract on re-entry.
        callback_data: Vec<u8>,
        /// Maximum re-entrancy depth.
        max_depth: usize,
    },
    /// An account that rejects every incoming transfer (its fallback reverts).
    /// Useful for exercising unhandled-exception paths.
    RejectingSink,
}

/// A single account in the world state.
#[derive(Clone, Debug, Default)]
pub struct Account {
    /// Ether balance in wei.
    pub balance: U256,
    /// Deployed runtime bytecode (empty for externally-owned accounts).
    pub code: Arc<Vec<u8>>,
    /// Persistent key-value storage.
    pub storage: HashMap<U256, U256>,
    /// Taint labels remembered for stored values (analysis-only metadata;
    /// it does not affect execution semantics).
    pub storage_taint: HashMap<U256, Taint>,
    /// Transaction count / deployment nonce.
    pub nonce: u64,
    /// Host behaviour override (attacker harness, rejecting sink, ...).
    pub behaviour: HostBehaviour,
    /// Whether the account has self-destructed during the current transaction.
    pub destroyed: bool,
}

impl Account {
    /// A plain externally-owned account with the given balance.
    pub fn eoa(balance: U256) -> Self {
        Account {
            balance,
            ..Default::default()
        }
    }

    /// A contract account with the given runtime code and balance.
    pub fn contract(code: Vec<u8>, balance: U256) -> Self {
        Account {
            balance,
            code: Arc::new(code),
            ..Default::default()
        }
    }

    /// True if the account carries executable code or host behaviour.
    pub fn is_callable(&self) -> bool {
        !self.code.is_empty() || self.behaviour != HostBehaviour::None
    }
}

/// The full world state: a map from address to account.
#[derive(Clone, Debug, Default)]
pub struct WorldState {
    accounts: HashMap<Address, Account>,
}

impl WorldState {
    /// An empty world.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or replace an account.
    pub fn put_account(&mut self, address: Address, account: Account) {
        self.accounts.insert(address, account);
    }

    /// Remove an account entirely, returning it if present.
    pub fn remove_account(&mut self, address: Address) -> Option<Account> {
        self.accounts.remove(&address)
    }

    /// Immutable access to an account.
    pub fn account(&self, address: Address) -> Option<&Account> {
        self.accounts.get(&address)
    }

    /// Mutable access, creating an empty account on demand.
    pub fn account_mut(&mut self, address: Address) -> &mut Account {
        self.accounts.entry(address).or_default()
    }

    /// Balance of an account (zero if absent).
    pub fn balance(&self, address: Address) -> U256 {
        self.accounts
            .get(&address)
            .map(|a| a.balance)
            .unwrap_or(U256::ZERO)
    }

    /// Code of an account (empty if absent).
    pub fn code(&self, address: Address) -> Arc<Vec<u8>> {
        self.accounts
            .get(&address)
            .map(|a| Arc::clone(&a.code))
            .unwrap_or_default()
    }

    /// Storage slot value of an account (zero if absent).
    pub fn storage(&self, address: Address, slot: U256) -> U256 {
        self.accounts
            .get(&address)
            .and_then(|a| a.storage.get(&slot).copied())
            .unwrap_or(U256::ZERO)
    }

    /// Taint label recorded for a storage slot.
    pub fn storage_taint(&self, address: Address, slot: U256) -> Taint {
        self.accounts
            .get(&address)
            .and_then(|a| a.storage_taint.get(&slot).copied())
            .unwrap_or_default()
    }

    /// Write a storage slot, recording its taint label.
    pub fn set_storage(&mut self, address: Address, slot: U256, value: U256, taint: Taint) {
        let account = self.account_mut(address);
        if value.is_zero() {
            account.storage.remove(&slot);
        } else {
            account.storage.insert(slot, value);
        }
        if taint.is_empty() {
            account.storage_taint.remove(&slot);
        } else {
            account.storage_taint.insert(slot, taint);
        }
    }

    /// Transfer value between two accounts. Returns false (and leaves the
    /// state untouched) if the sender balance is insufficient.
    pub fn transfer(&mut self, from: Address, to: Address, value: U256) -> bool {
        if value.is_zero() {
            return true;
        }
        let from_balance = self.balance(from);
        if from_balance < value {
            return false;
        }
        self.account_mut(from).balance = from_balance.wrapping_sub(value);
        let to_balance = self.balance(to);
        self.account_mut(to).balance = to_balance.wrapping_add(value);
        true
    }

    /// Iterate over all accounts.
    pub fn accounts(&self) -> impl Iterator<Item = (&Address, &Account)> {
        self.accounts.iter()
    }

    /// Number of accounts in the world.
    pub fn len(&self) -> usize {
        self.accounts.len()
    }

    /// True if the world is empty.
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty()
    }

    /// Snapshot the whole world. Transaction execution clones the state and
    /// commits only on success, matching EVM revert semantics.
    pub fn snapshot(&self) -> WorldState {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u64) -> Address {
        Address::from_low_u64(n)
    }

    #[test]
    fn missing_accounts_read_as_zero() {
        let world = WorldState::new();
        assert_eq!(world.balance(addr(1)), U256::ZERO);
        assert_eq!(world.storage(addr(1), U256::ONE), U256::ZERO);
        assert!(world.code(addr(1)).is_empty());
    }

    #[test]
    fn storage_roundtrip_and_zero_deletion() {
        let mut world = WorldState::new();
        let a = addr(7);
        world.set_storage(a, U256::from_u64(3), U256::from_u64(99), Taint::empty());
        assert_eq!(world.storage(a, U256::from_u64(3)), U256::from_u64(99));
        world.set_storage(a, U256::from_u64(3), U256::ZERO, Taint::empty());
        assert_eq!(world.storage(a, U256::from_u64(3)), U256::ZERO);
        assert!(world.account(a).unwrap().storage.is_empty());
    }

    #[test]
    fn transfer_moves_balance() {
        let mut world = WorldState::new();
        world.put_account(addr(1), Account::eoa(U256::from_u64(100)));
        assert!(world.transfer(addr(1), addr(2), U256::from_u64(40)));
        assert_eq!(world.balance(addr(1)), U256::from_u64(60));
        assert_eq!(world.balance(addr(2)), U256::from_u64(40));
    }

    #[test]
    fn transfer_fails_on_insufficient_balance() {
        let mut world = WorldState::new();
        world.put_account(addr(1), Account::eoa(U256::from_u64(10)));
        assert!(!world.transfer(addr(1), addr(2), U256::from_u64(40)));
        assert_eq!(world.balance(addr(1)), U256::from_u64(10));
        assert_eq!(world.balance(addr(2)), U256::ZERO);
    }

    #[test]
    fn zero_value_transfer_always_succeeds() {
        let mut world = WorldState::new();
        assert!(world.transfer(addr(1), addr(2), U256::ZERO));
    }

    #[test]
    fn snapshot_is_independent() {
        let mut world = WorldState::new();
        world.put_account(addr(1), Account::eoa(U256::from_u64(5)));
        let snap = world.snapshot();
        world.account_mut(addr(1)).balance = U256::from_u64(500);
        assert_eq!(snap.balance(addr(1)), U256::from_u64(5));
    }

    #[test]
    fn callable_accounts() {
        let contract = Account::contract(vec![0x00], U256::ZERO);
        assert!(contract.is_callable());
        assert!(!Account::eoa(U256::ZERO).is_callable());
        let attacker = Account {
            behaviour: HostBehaviour::ReentrantAttacker {
                callback_data: vec![],
                max_depth: 2,
            },
            ..Default::default()
        };
        assert!(attacker.is_callable());
    }

    #[test]
    fn storage_taint_tracking() {
        let mut world = WorldState::new();
        let a = addr(9);
        world.set_storage(a, U256::ONE, U256::from_u64(5), Taint::BLOCK);
        assert!(world.storage_taint(a, U256::ONE).contains(Taint::BLOCK));
        assert!(world.storage_taint(a, U256::from_u64(2)).is_empty());
    }
}
