//! Application binary interface: function selectors, parameter types and
//! calldata encoding/decoding.
//!
//! The fuzzer generates transaction inputs as ABI-encoded byte streams; the
//! mask-guided mutation then works directly on those bytes. The ABI layer
//! keeps encoding identical to Solidity's static-type encoding: a 4-byte
//! selector followed by one 32-byte word per parameter.

use crate::ast::{Contract, Function, Type};
use mufuzz_evm::{keccak256, Address, U256};

/// Number of element slots a dynamic array reserves in the mutable lane
/// stream. The first lane selects the live length (`lane % (BUDGET + 1)`),
/// the remaining `BUDGET` element groups keep their stream positions stable
/// so the mask-guided mutator can freeze or mutate individual elements.
pub const ARRAY_LANE_BUDGET: usize = 4;

/// Upper bound on the byte length shaped into a `bytes` argument.
pub const MAX_BYTES_LEN: usize = 64;

/// Upper bound on the character length shaped into a `string` argument.
pub const MAX_STRING_LEN: usize = 32;

/// ABI-level parameter type.
///
/// Beyond the toy-language value types (`uint256`/`address`/`bool`) this
/// covers the types real-contract ABIs use for externally callable
/// functions: signed integers, fixed-size byte arrays, dynamic `bytes` and
/// `string`, and flat dynamic arrays of static element types.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParamType {
    /// 256-bit unsigned integer.
    Uint256,
    /// 256-bit signed (two's-complement) integer.
    Int256,
    /// 160-bit address.
    Address,
    /// Boolean.
    Bool,
    /// `bytesN` for `1 <= N <= 32`, left-aligned in its word.
    FixedBytes(u8),
    /// Dynamic byte string (`bytes`).
    Bytes,
    /// Dynamic UTF-8 string (`string`).
    Str,
    /// Flat dynamic array of a *static* element type (`T[]`).
    Array(Box<ParamType>),
}

impl ParamType {
    /// Canonical name used in signatures.
    pub fn name(&self) -> String {
        match self {
            ParamType::Uint256 => "uint256".into(),
            ParamType::Int256 => "int256".into(),
            ParamType::Address => "address".into(),
            ParamType::Bool => "bool".into(),
            ParamType::FixedBytes(n) => format!("bytes{n}"),
            ParamType::Bytes => "bytes".into(),
            ParamType::Str => "string".into(),
            ParamType::Array(inner) => format!("{}[]", inner.name()),
        }
    }

    /// Convert an AST type to an ABI parameter type, if it is a value type.
    pub fn from_ast(ty: &Type) -> Option<ParamType> {
        match ty {
            Type::Uint256 => Some(ParamType::Uint256),
            Type::Address => Some(ParamType::Address),
            Type::Bool => Some(ParamType::Bool),
            Type::Mapping(_, _) => None,
        }
    }

    /// Whether the type is head/tail encoded (its head word is an offset).
    pub fn is_dynamic(&self) -> bool {
        matches!(
            self,
            ParamType::Bytes | ParamType::Str | ParamType::Array(_)
        )
    }

    /// Number of 32-byte lanes this parameter consumes from a transaction's
    /// mutable byte stream when calldata is shaped from raw fuzz bytes (see
    /// [`FunctionAbi::values_from_lanes`]). Static one-word types take one
    /// lane; `bytes`/`string` take a length lane plus a content-seed lane;
    /// arrays take a length lane plus [`ARRAY_LANE_BUDGET`] element groups.
    pub fn lane_count(&self) -> usize {
        match self {
            ParamType::Bytes | ParamType::Str => 2,
            ParamType::Array(inner) => 1 + ARRAY_LANE_BUDGET * inner.lane_count(),
            _ => 1,
        }
    }
}

/// A typed argument value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbiValue {
    /// Unsigned integer.
    Uint(U256),
    /// Signed (two's-complement) integer, stored as its raw word.
    Int(U256),
    /// Address.
    Address(Address),
    /// Boolean.
    Bool(bool),
    /// `bytesN` payload (at most 32 bytes, left-aligned when encoded).
    FixedBytes(Vec<u8>),
    /// Dynamic byte string.
    Bytes(Vec<u8>),
    /// Dynamic string.
    Str(String),
    /// Dynamic array of static element values.
    Array(Vec<AbiValue>),
}

impl AbiValue {
    /// Encode as the 32-byte head word. Static values encode their payload;
    /// dynamic values have no single-word representation and encode as the
    /// zero word (callers encode dynamic values through the tail, see
    /// [`FunctionAbi::encode_call`]).
    pub fn to_word(&self) -> [u8; 32] {
        match self {
            AbiValue::Uint(v) | AbiValue::Int(v) => v.to_be_bytes(),
            AbiValue::Address(a) => a.to_u256().to_be_bytes(),
            AbiValue::Bool(b) => U256::from(*b).to_be_bytes(),
            AbiValue::FixedBytes(bytes) => {
                let mut word = [0u8; 32];
                let n = bytes.len().min(32);
                word[..n].copy_from_slice(&bytes[..n]);
                word
            }
            AbiValue::Bytes(_) | AbiValue::Str(_) | AbiValue::Array(_) => [0u8; 32],
        }
    }

    /// Decode a word according to the parameter type (static types only;
    /// dynamic types decode through [`FunctionAbi::decode_args`]).
    pub fn from_word(ty: &ParamType, word: &[u8]) -> AbiValue {
        let value = U256::from_be_slice(word);
        match ty {
            ParamType::Uint256 => AbiValue::Uint(value),
            ParamType::Int256 => AbiValue::Int(value),
            ParamType::Address => AbiValue::Address(Address::from_u256(value)),
            ParamType::Bool => AbiValue::Bool(!value.is_zero()),
            ParamType::FixedBytes(n) => {
                let n = (*n).min(32) as usize;
                let mut bytes = vec![0u8; n];
                let have = word.len().min(n);
                bytes[..have].copy_from_slice(&word[..have]);
                AbiValue::FixedBytes(bytes)
            }
            ParamType::Bytes => AbiValue::Bytes(Vec::new()),
            ParamType::Str => AbiValue::Str(String::new()),
            ParamType::Array(_) => AbiValue::Array(Vec::new()),
        }
    }
}

/// ABI description of one externally callable function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FunctionAbi {
    /// Function name.
    pub name: String,
    /// Parameter types in order.
    pub inputs: Vec<ParamType>,
    /// Whether the function accepts ether.
    pub payable: bool,
    /// 4-byte selector.
    pub selector: [u8; 4],
}

impl FunctionAbi {
    /// Build the ABI entry for an AST function.
    pub fn from_function(f: &Function) -> FunctionAbi {
        let inputs: Vec<ParamType> = f
            .params
            .iter()
            .filter_map(|p| ParamType::from_ast(&p.ty))
            .collect();
        FunctionAbi {
            name: f.name.clone(),
            inputs,
            payable: f.payable,
            selector: compute_selector(&f.signature()),
        }
    }

    /// Canonical signature string.
    pub fn signature(&self) -> String {
        let params: Vec<String> = self.inputs.iter().map(|p| p.name()).collect();
        format!("{}({})", self.name, params.join(","))
    }

    /// ABI-encode a call to this function using Solidity's head/tail layout:
    /// static values occupy their head word in place, dynamic values put the
    /// tail offset in the head and append `length ‖ payload` to the tail.
    pub fn encode_call(&self, args: &[AbiValue]) -> Vec<u8> {
        let head_len = 32 * self.inputs.len();
        let mut heads: Vec<[u8; 32]> = Vec::with_capacity(self.inputs.len());
        let mut tail: Vec<u8> = Vec::new();
        for (i, ty) in self.inputs.iter().enumerate() {
            let arg = args.get(i);
            if ty.is_dynamic() {
                let offset = U256::from_u64((head_len + tail.len()) as u64);
                heads.push(offset.to_be_bytes());
                encode_tail(ty, arg, &mut tail);
            } else {
                heads.push(arg.map(AbiValue::to_word).unwrap_or([0u8; 32]));
            }
        }
        let mut data = self.selector.to_vec();
        for head in heads {
            data.extend_from_slice(&head);
        }
        data.extend_from_slice(&tail);
        data
    }

    /// Decode calldata (after the selector) into typed values. Missing bytes
    /// decode as zero, mirroring EVM `CALLDATALOAD` semantics; out-of-range
    /// tail offsets decode dynamic values as empty.
    pub fn decode_args(&self, calldata: &[u8]) -> Vec<AbiValue> {
        let body = if calldata.len() >= 4 {
            &calldata[4..]
        } else {
            &[]
        };
        self.inputs
            .iter()
            .enumerate()
            .map(|(i, ty)| {
                let word = read_word(body, i * 32);
                if ty.is_dynamic() {
                    let offset = word_to_usize(&word);
                    decode_tail(ty, body, offset)
                } else {
                    AbiValue::from_word(ty, &word)
                }
            })
            .collect()
    }

    /// Calldata length of the static head (selector plus one word per
    /// parameter). For ABIs without dynamic types this is the exact total
    /// length of an encoded call; dynamic arguments append a tail on top.
    pub fn calldata_len(&self) -> usize {
        4 + 32 * self.inputs.len()
    }

    /// Number of 32-byte lanes this function consumes from the mutable fuzz
    /// stream (the sum of its parameters' [`ParamType::lane_count`]).
    pub fn lane_count(&self) -> usize {
        self.inputs.iter().map(ParamType::lane_count).sum()
    }

    /// True when every parameter is a static one-word type, i.e. raw fuzz
    /// words are already valid calldata and no type shaping is needed.
    pub fn all_static_words(&self) -> bool {
        self.inputs
            .iter()
            .all(|ty| ty.lane_count() == 1 && !ty.is_dynamic())
    }

    /// Shape raw 32-byte fuzz lanes into typed argument values (missing
    /// lanes read as zero): the bridge between the mask-guided byte-stream
    /// mutator and typed calldata. Each parameter consumes
    /// [`ParamType::lane_count`] lanes at a stable stream position.
    pub fn values_from_lanes(&self, lanes: &[U256]) -> Vec<AbiValue> {
        let mut cursor = 0usize;
        self.inputs
            .iter()
            .map(|ty| {
                let take = ty.lane_count();
                let value = shape_value(ty, lanes, cursor);
                cursor += take;
                value
            })
            .collect()
    }
}

/// Read the 32-byte word at `start`, zero-filling past the end of `body`.
fn read_word(body: &[u8], start: usize) -> [u8; 32] {
    let mut word = [0u8; 32];
    for (j, byte) in word.iter_mut().enumerate() {
        *byte = body.get(start.saturating_add(j)).copied().unwrap_or(0);
    }
    word
}

/// Interpret a head word as a tail offset, saturating absurd values.
fn word_to_usize(word: &[u8; 32]) -> usize {
    if word[..24].iter().any(|b| *b != 0) {
        return usize::MAX;
    }
    let mut n = [0u8; 8];
    n.copy_from_slice(&word[24..]);
    u64::from_be_bytes(n).try_into().unwrap_or(usize::MAX)
}

/// The low 64 bits of a lane word (used to derive lengths).
fn lane_low_u64(v: &U256) -> u64 {
    let bytes = v.to_be_bytes();
    let mut n = [0u8; 8];
    n.copy_from_slice(&bytes[24..]);
    u64::from_be_bytes(n)
}

/// Append the tail encoding (`length ‖ payload`, payload padded to a word
/// boundary) of one dynamic value.
fn encode_tail(ty: &ParamType, arg: Option<&AbiValue>, tail: &mut Vec<u8>) {
    match (ty, arg) {
        (ParamType::Bytes, Some(AbiValue::Bytes(bytes))) => encode_tail_bytes(bytes, tail),
        (ParamType::Str, Some(AbiValue::Str(s))) => encode_tail_bytes(s.as_bytes(), tail),
        (ParamType::Array(_), Some(AbiValue::Array(elems))) => {
            tail.extend_from_slice(&U256::from_u64(elems.len() as u64).to_be_bytes());
            for elem in elems {
                tail.extend_from_slice(&elem.to_word());
            }
        }
        // Type/value mismatch or missing argument: encode as empty.
        _ => tail.extend_from_slice(&[0u8; 32]),
    }
}

fn encode_tail_bytes(bytes: &[u8], tail: &mut Vec<u8>) {
    tail.extend_from_slice(&U256::from_u64(bytes.len() as u64).to_be_bytes());
    tail.extend_from_slice(bytes);
    let pad = bytes.len().div_ceil(32) * 32 - bytes.len();
    tail.extend_from_slice(&vec![0u8; pad]);
}

/// Decode one dynamic value from its tail at `offset` into `body`,
/// clamping lengths to the bytes actually present.
fn decode_tail(ty: &ParamType, body: &[u8], offset: usize) -> AbiValue {
    let empty = match ty {
        ParamType::Str => AbiValue::Str(String::new()),
        ParamType::Array(_) => AbiValue::Array(Vec::new()),
        _ => AbiValue::Bytes(Vec::new()),
    };
    if offset >= body.len() {
        return empty;
    }
    let len = word_to_usize(&read_word(body, offset));
    let data_start = offset.saturating_add(32);
    match ty {
        ParamType::Bytes => {
            let len = len.min(body.len().saturating_sub(data_start));
            AbiValue::Bytes(body[data_start..data_start + len].to_vec())
        }
        ParamType::Str => {
            let len = len.min(body.len().saturating_sub(data_start));
            let bytes = &body[data_start..data_start + len];
            AbiValue::Str(String::from_utf8_lossy(bytes).into_owned())
        }
        ParamType::Array(inner) => {
            // Clamp the element count to the words present in the tail.
            let available = body.len().saturating_sub(data_start) / 32;
            let len = len.min(available);
            let elems = (0..len)
                .map(|i| AbiValue::from_word(inner, &read_word(body, data_start + 32 * i)))
                .collect();
            AbiValue::Array(elems)
        }
        _ => empty,
    }
}

/// Shape the lanes starting at `cursor` into one typed value.
fn shape_value(ty: &ParamType, lanes: &[U256], cursor: usize) -> AbiValue {
    let lane = |i: usize| lanes.get(cursor + i).copied().unwrap_or(U256::ZERO);
    match ty {
        ParamType::Uint256 => AbiValue::Uint(lane(0)),
        ParamType::Int256 => AbiValue::Int(lane(0)),
        ParamType::Address => AbiValue::Address(Address::from_u256(lane(0))),
        ParamType::Bool => AbiValue::Bool(!lane(0).is_zero()),
        ParamType::FixedBytes(n) => {
            let n = (*n).clamp(1, 32) as usize;
            AbiValue::FixedBytes(lane(0).to_be_bytes()[..n].to_vec())
        }
        ParamType::Bytes => {
            let len = (lane_low_u64(&lane(0)) % (MAX_BYTES_LEN as u64 + 1)) as usize;
            let seed = lane(1).to_be_bytes();
            AbiValue::Bytes((0..len).map(|i| seed[i % 32]).collect())
        }
        ParamType::Str => {
            let len = (lane_low_u64(&lane(0)) % (MAX_STRING_LEN as u64 + 1)) as usize;
            let seed = lane(1).to_be_bytes();
            // Printable ASCII so string-typed arguments stay string-shaped.
            let s: String = (0..len)
                .map(|i| (0x20 + (seed[i % 32] % 0x5f)) as char)
                .collect();
            AbiValue::Str(s)
        }
        ParamType::Array(inner) => {
            let len = (lane_low_u64(&lane(0)) % (ARRAY_LANE_BUDGET as u64 + 1)) as usize;
            let per = inner.lane_count();
            let elems = (0..len)
                .map(|i| shape_value(inner, lanes, cursor + 1 + i * per))
                .collect();
            AbiValue::Array(elems)
        }
    }
}

/// Contract-level ABI: every dispatchable function.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ContractAbi {
    /// Functions reachable through the dispatcher.
    pub functions: Vec<FunctionAbi>,
}

impl ContractAbi {
    /// Build the ABI from an AST contract.
    pub fn from_contract(contract: &Contract) -> ContractAbi {
        ContractAbi {
            functions: contract
                .callable_functions()
                .filter(|f| !f.name.is_empty())
                .map(FunctionAbi::from_function)
                .collect(),
        }
    }

    /// Look up by name.
    pub fn function(&self, name: &str) -> Option<&FunctionAbi> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Look up by selector.
    pub fn by_selector(&self, selector: [u8; 4]) -> Option<&FunctionAbi> {
        self.functions.iter().find(|f| f.selector == selector)
    }
}

/// Compute the 4-byte selector of a canonical signature.
pub fn compute_selector(signature: &str) -> [u8; 4] {
    let digest = keccak256(signature.as_bytes());
    [digest[0], digest[1], digest[2], digest[3]]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Param, Visibility};

    fn sample_function() -> Function {
        Function {
            name: "invest".into(),
            params: vec![Param {
                name: "donations".into(),
                ty: Type::Uint256,
            }],
            visibility: Visibility::Public,
            payable: true,
            returns: None,
            body: vec![],
        }
    }

    #[test]
    fn selector_matches_signature_hash() {
        let abi = FunctionAbi::from_function(&sample_function());
        assert_eq!(abi.signature(), "invest(uint256)");
        assert_eq!(abi.selector, compute_selector("invest(uint256)"));
        // A well-known reference selector.
        assert_eq!(
            compute_selector("transfer(address,uint256)"),
            [0xa9, 0x05, 0x9c, 0xbb]
        );
    }

    #[test]
    fn encode_and_decode_roundtrip() {
        let abi = FunctionAbi {
            name: "f".into(),
            inputs: vec![ParamType::Uint256, ParamType::Address, ParamType::Bool],
            payable: false,
            selector: [1, 2, 3, 4],
        };
        let args = vec![
            AbiValue::Uint(U256::from_u64(777)),
            AbiValue::Address(Address::from_low_u64(0xbeef)),
            AbiValue::Bool(true),
        ];
        let data = abi.encode_call(&args);
        assert_eq!(data.len(), abi.calldata_len());
        assert_eq!(&data[..4], &[1, 2, 3, 4]);
        assert_eq!(abi.decode_args(&data), args);
    }

    #[test]
    fn decode_tolerates_truncated_calldata() {
        let abi = FunctionAbi {
            name: "f".into(),
            inputs: vec![ParamType::Uint256, ParamType::Uint256],
            payable: false,
            selector: [0; 4],
        };
        let decoded = abi.decode_args(&[0, 0, 0, 0, 0xff]);
        assert_eq!(decoded.len(), 2);
        assert!(matches!(decoded[1], AbiValue::Uint(v) if v.is_zero()));
    }

    #[test]
    fn bool_decoding_is_nonzero_test() {
        let word_true = U256::from_u64(7).to_be_bytes();
        assert_eq!(
            AbiValue::from_word(&ParamType::Bool, &word_true),
            AbiValue::Bool(true)
        );
        let word_false = U256::ZERO.to_be_bytes();
        assert_eq!(
            AbiValue::from_word(&ParamType::Bool, &word_false),
            AbiValue::Bool(false)
        );
    }

    #[test]
    fn dynamic_types_roundtrip_through_head_tail_encoding() {
        let abi = FunctionAbi {
            name: "g".into(),
            inputs: vec![
                ParamType::Uint256,
                ParamType::Bytes,
                ParamType::Str,
                ParamType::Array(Box::new(ParamType::Uint256)),
                ParamType::FixedBytes(8),
            ],
            payable: false,
            selector: [0xaa, 0xbb, 0xcc, 0xdd],
        };
        let args = vec![
            AbiValue::Uint(U256::from_u64(5)),
            AbiValue::Bytes(vec![1, 2, 3, 4, 5]),
            AbiValue::Str("hello".into()),
            AbiValue::Array(vec![
                AbiValue::Uint(U256::from_u64(10)),
                AbiValue::Uint(U256::from_u64(20)),
            ]),
            AbiValue::FixedBytes(vec![9, 8, 7, 6, 5, 4, 3, 2]),
        ];
        let data = abi.encode_call(&args);
        // Head: 5 words; tails are word-aligned after the head.
        assert_eq!(&data[..4], &[0xaa, 0xbb, 0xcc, 0xdd]);
        assert!(data.len() > abi.calldata_len());
        assert_eq!(abi.decode_args(&data), args);
        assert_eq!(abi.signature(), "g(uint256,bytes,string,uint256[],bytes8)");
    }

    #[test]
    fn lane_shaping_is_deterministic_and_type_shaped() {
        let abi = FunctionAbi {
            name: "h".into(),
            inputs: vec![
                ParamType::Bool,
                ParamType::Bytes,
                ParamType::Array(Box::new(ParamType::Address)),
            ],
            payable: false,
            selector: [0; 4],
        };
        // bool: 1 lane; bytes: 2 lanes; address[]: 1 + 4 lanes.
        assert_eq!(abi.lane_count(), 1 + 2 + 5);
        assert!(!abi.all_static_words());
        let mut lanes = vec![U256::ZERO; abi.lane_count()];
        lanes[0] = U256::from_u64(99); // bool: nonzero -> true
        lanes[1] = U256::from_u64(3); // bytes length 3
        lanes[2] = U256::from_u64(0xab); // bytes content seed
        lanes[3] = U256::from_u64(2); // array length 2
        lanes[4] = U256::from_u64(0x1234); // element 0
        lanes[5] = U256::MAX; // element 1: masked to 160 bits
        let values = abi.values_from_lanes(&lanes);
        assert_eq!(values[0], AbiValue::Bool(true));
        assert!(matches!(&values[1], AbiValue::Bytes(b) if b.len() == 3));
        let AbiValue::Array(elems) = &values[2] else {
            panic!("expected array");
        };
        assert_eq!(elems.len(), 2);
        assert_eq!(elems[0], AbiValue::Address(Address::from_low_u64(0x1234)));
        // Shaped values encode and decode bit-identically (the mutant the
        // fuzzer executes is exactly the one the decoder reports).
        let encoded = abi.encode_call(&values);
        assert_eq!(abi.decode_args(&encoded), values);
    }

    #[test]
    fn static_only_abis_keep_the_legacy_word_layout() {
        let abi = FunctionAbi {
            name: "f".into(),
            inputs: vec![ParamType::Uint256, ParamType::Address, ParamType::Bool],
            payable: false,
            selector: [1, 2, 3, 4],
        };
        assert!(abi.all_static_words());
        assert_eq!(abi.lane_count(), 3);
        let lanes = vec![U256::from_u64(7), U256::from_u64(0xbeef), U256::from_u64(1)];
        let values = abi.values_from_lanes(&lanes);
        let encoded = abi.encode_call(&values);
        // Exactly selector ‖ head words: the raw-lane path and the typed
        // path agree byte for byte on static-only ABIs.
        assert_eq!(encoded.len(), abi.calldata_len());
        assert_eq!(&encoded[4..36], &U256::from_u64(7).to_be_bytes());
    }

    #[test]
    fn contract_abi_skips_internal_and_fallback_functions() {
        let mut contract = Contract {
            name: "C".into(),
            ..Default::default()
        };
        contract.functions.push(sample_function());
        contract.functions.push(Function {
            name: "hidden".into(),
            visibility: Visibility::Internal,
            params: vec![],
            payable: false,
            returns: None,
            body: vec![],
        });
        contract.functions.push(Function {
            name: String::new(),
            visibility: Visibility::Public,
            params: vec![],
            payable: true,
            returns: None,
            body: vec![],
        });
        let abi = ContractAbi::from_contract(&contract);
        assert_eq!(abi.functions.len(), 1);
        assert!(abi.function("invest").is_some());
        assert!(abi.by_selector(abi.functions[0].selector).is_some());
        assert!(abi.by_selector([9, 9, 9, 9]).is_none());
    }

    #[test]
    fn mapping_params_are_rejected() {
        assert_eq!(
            ParamType::from_ast(&Type::Mapping(
                Box::new(Type::Address),
                Box::new(Type::Uint256)
            )),
            None
        );
    }
}
