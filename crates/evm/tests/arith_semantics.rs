//! EVM-semantics regression suite for the signed and wide arithmetic
//! opcodes: `SDIV`, `SMOD`, `SIGNEXTEND`, `ADDMOD`, `MULMOD` and `SAR`.
//!
//! Two layers of checks:
//!
//! 1. Bytecode-level tests that execute each opcode through the interpreter
//!    and compare the returned word against hand-checked EVM vectors
//!    (min-int wrap, negative operands, overflowing intermediates).
//! 2. Property tests comparing the `U256` implementations against
//!    independent reference models: an `i128`-range two's-complement model
//!    for the signed opcodes, and a limb-wise `% u64` reduction for the
//!    wide modular opcodes.

use mufuzz_evm::{Account, Address, BlockEnv, Evm, Message, WorldState, U256};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Bytecode-level execution
// ---------------------------------------------------------------------------

const SDIV: u8 = 0x05;
const SMOD: u8 = 0x07;
const ADDMOD: u8 = 0x08;
const MULMOD: u8 = 0x09;
const SIGNEXTEND: u8 = 0x0b;
const SAR: u8 = 0x1d;

/// Execute `op` on operands pushed so the first listed operand ends on top
/// of the stack, and return the single result word. Runs through both
/// decoders (pre-decoded stream and legacy byte-at-a-time) and asserts they
/// agree before returning the value.
fn eval_op(op: u8, operands: &[U256]) -> U256 {
    let decoded = eval_op_with(op, operands, false);
    let legacy = eval_op_with(op, operands, true);
    assert_eq!(
        decoded, legacy,
        "decoder divergence on opcode 0x{op:02x} over {operands:?}"
    );
    decoded
}

fn eval_op_with(op: u8, operands: &[U256], legacy_decode: bool) -> U256 {
    let mut code = Vec::new();
    // Push in reverse so operands[0] is popped first.
    for word in operands.iter().rev() {
        code.push(0x7f); // PUSH32
        code.extend_from_slice(&word.to_be_bytes());
    }
    code.push(op);
    code.extend_from_slice(&[
        0x60, 0x00, // PUSH1 0
        0x52, // MSTORE
        0x60, 0x20, // PUSH1 32
        0x60, 0x00, // PUSH1 0
        0xf3, // RETURN
    ]);

    let sender = Address::from_low_u64(1);
    let contract = Address::from_low_u64(0x100);
    let mut world = WorldState::new();
    world.put_account(sender, Account::eoa(U256::from_u64(1)));
    world.put_account(contract, Account::contract(code, U256::ZERO));
    let mut evm = Evm::new(&mut world, BlockEnv::default());
    evm.config.legacy_decode = legacy_decode;
    let result = evm.execute(&Message::new(sender, contract, U256::ZERO, vec![]));
    assert!(
        result.success,
        "opcode 0x{op:02x} faulted: {:?}",
        result.halt
    );
    U256::from_be_slice(&result.output)
}

/// Two's-complement encoding of an `i128` as a 256-bit word.
fn word(v: i128) -> U256 {
    if v < 0 {
        U256::from_u128(v.unsigned_abs()).wrapping_neg()
    } else {
        U256::from_u128(v as u128)
    }
}

/// The most negative signed 256-bit value, -2^255.
fn min_signed() -> U256 {
    U256::ONE.shl_bits(255)
}

#[test]
fn sdiv_executes_signed_division() {
    assert_eq!(eval_op(SDIV, &[word(-8), word(2)]), word(-4));
    assert_eq!(eval_op(SDIV, &[word(8), word(-2)]), word(-4));
    assert_eq!(eval_op(SDIV, &[word(-8), word(-2)]), word(4));
    assert_eq!(eval_op(SDIV, &[word(-7), word(2)]), word(-3)); // truncates toward zero
    assert_eq!(eval_op(SDIV, &[word(-5), word(0)]), U256::ZERO);
    // The EVM-mandated overflow wrap: MIN / -1 == MIN.
    assert_eq!(eval_op(SDIV, &[min_signed(), word(-1)]), min_signed());
}

#[test]
fn smod_takes_the_sign_of_the_dividend() {
    assert_eq!(eval_op(SMOD, &[word(-8), word(3)]), word(-2));
    assert_eq!(eval_op(SMOD, &[word(8), word(-3)]), word(2));
    assert_eq!(eval_op(SMOD, &[word(-8), word(-3)]), word(-2));
    assert_eq!(eval_op(SMOD, &[word(-5), word(0)]), U256::ZERO);
    assert_eq!(eval_op(SMOD, &[min_signed(), word(-1)]), U256::ZERO);
}

#[test]
fn signextend_extends_the_chosen_byte() {
    assert_eq!(eval_op(SIGNEXTEND, &[word(0), word(0xff)]), word(-1));
    assert_eq!(eval_op(SIGNEXTEND, &[word(0), word(0x7f)]), word(0x7f));
    assert_eq!(eval_op(SIGNEXTEND, &[word(1), word(0xff7f)]), word(-0x81));
    assert_eq!(eval_op(SIGNEXTEND, &[word(0), word(0x1234)]), word(0x34));
    // Indices >= 31 (including absurdly large ones) leave x unchanged.
    assert_eq!(eval_op(SIGNEXTEND, &[word(31), word(0xff)]), word(0xff));
    assert_eq!(eval_op(SIGNEXTEND, &[U256::MAX, word(0xff)]), word(0xff));
}

#[test]
fn addmod_uses_a_257_bit_intermediate() {
    assert_eq!(
        eval_op(ADDMOD, &[word(10), word(10), word(8)]),
        U256::from_u64(4)
    );
    // MAX + 1 == 2^256 ≡ 1 (mod 2^256 - 1): wrapping addition would give 0.
    assert_eq!(eval_op(ADDMOD, &[U256::MAX, word(1), U256::MAX]), U256::ONE);
    // MAX + MAX ≡ 0 (mod 5) while the wrapped sum (2^256 - 2) ≡ 4.
    assert_eq!(
        eval_op(ADDMOD, &[U256::MAX, U256::MAX, word(5)]),
        U256::ZERO
    );
    assert_eq!(eval_op(ADDMOD, &[word(3), word(4), word(0)]), U256::ZERO);
}

#[test]
fn mulmod_uses_a_512_bit_intermediate() {
    assert_eq!(
        eval_op(MULMOD, &[word(7), word(6), word(5)]),
        U256::from_u64(2)
    );
    // 2^255 * 2 == 2^256 ≡ 1 (mod 2^256 - 1): wrapping product is 0.
    assert_eq!(
        eval_op(MULMOD, &[min_signed(), word(2), U256::MAX]),
        U256::ONE
    );
    // MAX ≡ 1 (mod MAX - 1), so MAX * MAX ≡ 1.
    assert_eq!(
        eval_op(MULMOD, &[U256::MAX, U256::MAX, U256::MAX - U256::ONE]),
        U256::ONE
    );
    assert_eq!(eval_op(MULMOD, &[word(3), word(4), word(0)]), U256::ZERO);
}

#[test]
fn sar_shifts_arithmetically() {
    // Stack order: eval_op(SAR, &[shift, value]).
    // Non-negative values degrade to a logical shift.
    assert_eq!(eval_op(SAR, &[word(1), word(8)]), word(4));
    assert_eq!(eval_op(SAR, &[word(4), word(0x7f)]), word(0x07));
    assert_eq!(eval_op(SAR, &[word(300), word(7)]), U256::ZERO);
    // Negative values keep their sign: -8 >> 1 == -4, -8 >> 3 == -1 and the
    // result saturates at -1 (rounding toward negative infinity).
    assert_eq!(eval_op(SAR, &[word(1), word(-8)]), word(-4));
    assert_eq!(eval_op(SAR, &[word(3), word(-8)]), word(-1));
    assert_eq!(eval_op(SAR, &[word(4), word(-8)]), word(-1));
    // Shift 0 is the identity; shifts >= 256 (including ones that do not
    // even fit in 64 bits) yield 0 or -1 depending on the sign.
    assert_eq!(eval_op(SAR, &[word(0), word(-8)]), word(-8));
    assert_eq!(eval_op(SAR, &[word(256), word(-8)]), word(-1));
    assert_eq!(eval_op(SAR, &[word(256), word(8)]), U256::ZERO);
    assert_eq!(eval_op(SAR, &[U256::MAX, word(-8)]), word(-1));
    assert_eq!(eval_op(SAR, &[U256::MAX, word(8)]), U256::ZERO);
    // MIN >> 255 == -1; MIN >> 1 == -2^254.
    assert_eq!(eval_op(SAR, &[word(255), min_signed()]), word(-1));
    assert_eq!(
        eval_op(SAR, &[word(1), min_signed()]),
        U256::ONE.shl_bits(254).wrapping_neg()
    );
}

// ---------------------------------------------------------------------------
// Property tests against reference models
// ---------------------------------------------------------------------------

fn arb_u256() -> impl Strategy<Value = U256> {
    proptest::array::uniform32(any::<u8>()).prop_map(U256::from_be_bytes)
}

/// `value % n` computed limb-by-limb, independent of `div_rem`.
fn mod_u64(value: U256, n: u64) -> u64 {
    let mut r: u128 = 0;
    for limb in value.0.iter().rev() {
        r = ((r << 64) | *limb as u128) % n as u128;
    }
    r as u64
}

proptest! {
    #[test]
    fn sdiv_smod_match_i128_reference(a in any::<i128>(), b in any::<i128>()) {
        let (q, r) = word(a).signed_div_rem(word(b));
        if b == 0 {
            prop_assert_eq!(q, U256::ZERO);
            prop_assert_eq!(r, U256::ZERO);
        } else if a == i128::MIN && b == -1 {
            // The true quotient 2^127 exceeds i128 but fits easily in the
            // 256-bit word (no 256-bit wrap is involved at this magnitude).
            prop_assert_eq!(q, U256::from_u128(1u128 << 127));
            prop_assert_eq!(r, U256::ZERO);
        } else {
            prop_assert_eq!(q, word(a / b));
            prop_assert_eq!(r, word(a % b));
        }
    }

    #[test]
    fn signextend_matches_i128_reference(x in any::<i128>(), index in 0usize..16) {
        // Arithmetic shifts sign-extend the low 8*(index+1) bits within i128.
        let bits = 8 * (index as u32 + 1);
        let expected = (x << (128 - bits)) >> (128 - bits);
        prop_assert_eq!(word(x).sign_extend(index), word(expected));
    }

    #[test]
    fn sar_matches_i128_reference(x in any::<i128>(), shift in 0u32..512) {
        // Arithmetic right shift of an i128 saturates to 0 / -1 beyond 127
        // bits, exactly like the 256-bit shift does for a value that fits in
        // i128 (the sign extension above bit 127 is uniform).
        let expected = x >> shift.min(127);
        prop_assert_eq!(word(x).sar_bits(shift), word(expected));
    }

    #[test]
    fn sar_of_nonnegative_equals_logical_shift(x in any::<u128>(), shift in 0u32..300) {
        let v = U256::from_u128(x);
        prop_assert_eq!(v.sar_bits(shift), v.shr_bits(shift.min(256)));
    }

    #[test]
    fn signed_div_rem_reconstructs_the_dividend(a in arb_u256(), b in arb_u256()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.signed_div_rem(b);
        // a == q * b + r in wrapping 256-bit arithmetic, for every sign mix.
        prop_assert_eq!(q.wrapping_mul(b).wrapping_add(r), a);
    }

    #[test]
    fn addmod_matches_limbwise_reference(a in arb_u256(), b in arb_u256(), n in 1u64..u64::MAX) {
        let expected = (mod_u64(a, n) as u128 + mod_u64(b, n) as u128) % n as u128;
        prop_assert_eq!(a.add_mod(b, U256::from_u64(n)), U256::from_u128(expected));
    }

    #[test]
    fn mulmod_matches_limbwise_reference(a in arb_u256(), b in arb_u256(), n in 1u64..u64::MAX) {
        let expected = (mod_u64(a, n) as u128 * mod_u64(b, n) as u128) % n as u128;
        prop_assert_eq!(a.mul_mod(b, U256::from_u64(n)), U256::from_u128(expected));
    }

    #[test]
    fn mulmod_agrees_with_div_rem_when_the_product_fits(a in any::<u128>(), b in any::<u128>(), n in arb_u256()) {
        prop_assume!(!n.is_zero());
        // u128 * u128 < 2^256, so the wrapping product is exact here.
        let (a, b) = (U256::from_u128(a), U256::from_u128(b));
        prop_assert_eq!(a.mul_mod(b, n), a.wrapping_mul(b).div_rem(n).1);
    }
}
