//! Keccak-256 implemented from scratch.
//!
//! The EVM uses Keccak-256 (the original Keccak padding, not NIST SHA3-256)
//! for the `SHA3` opcode, function selectors and mapping storage slots. The
//! round constants and rotation offsets are derived programmatically from the
//! Keccak specification so there are no hand-copied magic tables to get wrong.

/// Output size in bytes of Keccak-256.
pub const KECCAK256_OUTPUT: usize = 32;

/// Rate in bytes for Keccak-256 (1088 bits).
const RATE: usize = 136;

/// Number of Keccak-f[1600] rounds.
const ROUNDS: usize = 24;

/// Compute the 24 round constants via the LFSR defined in the Keccak spec.
fn round_constants() -> [u64; ROUNDS] {
    let mut rc = [0u64; ROUNDS];
    let mut lfsr: u8 = 0x01;
    for constant in rc.iter_mut() {
        let mut c: u64 = 0;
        for j in 0..7 {
            // Bit position 2^j - 1.
            let bit_pos = (1u32 << j) - 1;
            if lfsr & 1 == 1 {
                c |= 1u64 << bit_pos;
            }
            // Advance LFSR: x^8 + x^6 + x^5 + x^4 + 1.
            let high = lfsr & 0x80 != 0;
            lfsr <<= 1;
            if high {
                lfsr ^= 0x71;
            }
        }
        *constant = c;
    }
    rc
}

/// Compute the rho rotation offsets for each lane.
fn rotation_offsets() -> [[u32; 5]; 5] {
    let mut offsets = [[0u32; 5]; 5];
    let (mut x, mut y) = (1usize, 0usize);
    for t in 0..24u32 {
        offsets[x][y] = ((t + 1) * (t + 2) / 2) % 64;
        let new_x = y;
        let new_y = (2 * x + 3 * y) % 5;
        x = new_x;
        y = new_y;
    }
    offsets
}

fn keccak_f(state: &mut [[u64; 5]; 5]) {
    let rc = round_constants();
    let rot = rotation_offsets();
    for round in rc.iter().take(ROUNDS) {
        // Theta
        let mut c = [0u64; 5];
        for (x, cx) in c.iter_mut().enumerate() {
            *cx = state[x][0] ^ state[x][1] ^ state[x][2] ^ state[x][3] ^ state[x][4];
        }
        let mut d = [0u64; 5];
        for x in 0..5 {
            d[x] = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
        }
        for (plane, dx) in state.iter_mut().zip(&d) {
            for lane in plane.iter_mut() {
                *lane ^= dx;
            }
        }
        // Rho and Pi
        let mut b = [[0u64; 5]; 5];
        for x in 0..5 {
            for y in 0..5 {
                b[y][(2 * x + 3 * y) % 5] = state[x][y].rotate_left(rot[x][y]);
            }
        }
        // Chi
        for x in 0..5 {
            for y in 0..5 {
                state[x][y] = b[x][y] ^ ((!b[(x + 1) % 5][y]) & b[(x + 2) % 5][y]);
            }
        }
        // Iota
        state[0][0] ^= round;
    }
}

/// Compute the Keccak-256 digest of `data`.
pub fn keccak256(data: &[u8]) -> [u8; KECCAK256_OUTPUT] {
    let mut state = [[0u64; 5]; 5];

    // Absorb phase with Keccak padding (0x01 .. 0x80).
    let mut padded = data.to_vec();
    padded.push(0x01);
    while !padded.len().is_multiple_of(RATE) {
        padded.push(0x00);
    }
    let last = padded.len() - 1;
    padded[last] |= 0x80;

    for block in padded.chunks(RATE) {
        for (i, lane_bytes) in block.chunks(8).enumerate() {
            let mut lane = [0u8; 8];
            lane.copy_from_slice(lane_bytes);
            let x = i % 5;
            let y = i / 5;
            state[x][y] ^= u64::from_le_bytes(lane);
        }
        keccak_f(&mut state);
    }

    // Squeeze phase: 32 bytes fit in the first rate block; lane order matches
    // the absorb phase (lane index i maps to column i % 5, row i / 5).
    let mut out = [0u8; KECCAK256_OUTPUT];
    for (i, chunk) in out.chunks_mut(8).enumerate() {
        let lane = state[i % 5][i / 5].to_le_bytes();
        chunk.copy_from_slice(&lane[..chunk.len()]);
    }
    out
}

/// Compute the 4-byte function selector of a canonical signature string,
/// e.g. `invest(uint256)`.
pub fn selector(signature: &str) -> [u8; 4] {
    let digest = keccak256(signature.as_bytes());
    [digest[0], digest[1], digest[2], digest[3]]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_input_known_vector() {
        // Well-known Keccak-256 of the empty string.
        assert_eq!(
            hex(&keccak256(b"")),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
        );
    }

    #[test]
    fn abc_known_vector() {
        assert_eq!(
            hex(&keccak256(b"abc")),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
        );
    }

    #[test]
    fn transfer_selector_known_vector() {
        // The ERC-20 transfer(address,uint256) selector is a widely published constant.
        assert_eq!(hex(&selector("transfer(address,uint256)")), "a9059cbb");
    }

    #[test]
    fn deterministic_and_collision_resistant_smoke() {
        assert_eq!(keccak256(b"mufuzz"), keccak256(b"mufuzz"));
        assert_ne!(keccak256(b"mufuzz"), keccak256(b"mufuzy"));
    }

    #[test]
    fn long_input_spans_multiple_blocks() {
        let data = vec![0xabu8; 1000];
        let d1 = keccak256(&data);
        let mut data2 = data.clone();
        data2[999] = 0xac;
        assert_ne!(d1, keccak256(&data2));
        assert_eq!(d1.len(), 32);
    }

    #[test]
    fn rate_boundary_inputs() {
        // Inputs right at and around the 136-byte rate boundary exercise the
        // padding logic.
        for len in [135usize, 136, 137, 271, 272, 273] {
            let data = vec![0x5au8; len];
            let digest = keccak256(&data);
            assert_eq!(digest.len(), 32);
            // Changing a single byte must change the digest.
            let mut other = data.clone();
            other[len / 2] ^= 0xff;
            assert_ne!(digest, keccak256(&other));
        }
    }
}
