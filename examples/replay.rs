//! Record-and-replay driver for round-mode findings.
//!
//! Round-mode campaigns attach a replayable [`FindingRecord`] to every
//! trace-based finding: the exact mutant sequence, its `(seed uid, round,
//! slot)` provenance and an outcome digest, integrity-hashed into a small
//! binary blob. Together with a `CampaignSnapshot` checkpointed from the
//! same campaign, any finding can be re-demonstrated later — on a different
//! machine, at a different worker count — and verified bit-identical.
//!
//! ```text
//! cargo run --release --example replay -- --record out/
//! cargo run --release --example replay -- --replay out/finding-0.record --snapshot out/campaign.snapshot
//! ```

use mufuzz::{
    replay_finding, CampaignProgress, CampaignService, CampaignSnapshot, FindingRecord,
    FuzzerConfig, SubmitOptions,
};
use mufuzz_lang::compile_source;
use std::path::Path;

/// The classic reentrancy piggy bank: `smash` pays out through a raw call
/// before zeroing the savings.
const SOURCE: &str = "contract PiggyBank {
    uint256 savings;
    function deposit() public payable { savings += msg.value; }
    function smash() public {
        msg.sender.call.value(address(this).balance)();
        savings = 0;
    }
}";

/// Round-mode campaign config shared by record and replay: small rounds so
/// the checkpoint lands at a mid-campaign barrier.
fn config() -> FuzzerConfig {
    FuzzerConfig::mufuzz(400)
        .with_rng_seed(9)
        .with_workers(4)
        .with_round_mode()
        .with_round_slots(4)
        .with_round_batch(16)
}

/// Run the demo campaign, checkpoint it at a round barrier, finish it, and
/// write `campaign.snapshot` plus one `finding-N.record` per finding.
fn record(dir: &Path) {
    std::fs::create_dir_all(dir).expect("output directory");
    let service = CampaignService::new(2);

    // Pause mid-campaign: the checkpoint is the anchor replay validates
    // records against, so it must predate none of the recorded seed uids.
    let compiled = compile_source(SOURCE).expect("contract compiles");
    let handle = service
        .submit_with(compiled, config(), SubmitOptions::pause_at(200))
        .expect("campaign deploys");
    handle.join();
    match handle.poll() {
        CampaignProgress::Paused { executions } => {
            println!("paused at the round barrier after {executions} executions");
        }
        other => panic!("expected a paused campaign, got {other:?}"),
    }
    let snapshot = handle.checkpoint().expect("paused campaign checkpoints");
    let snap_path = dir.join("campaign.snapshot");
    std::fs::write(&snap_path, snapshot.to_bytes()).expect("snapshot writes");
    println!(
        "wrote {} ({} executions, {} seeds)",
        snap_path.display(),
        snapshot.executions(),
        snapshot.corpus_size()
    );

    // Resume and run the campaign to completion to collect its findings.
    let compiled = compile_source(SOURCE).expect("contract compiles");
    let report = service
        .resume(compiled, config(), &snapshot)
        .expect("snapshot resumes")
        .wait();
    println!(
        "campaign finished: {} executions, {} findings, {} replayable records",
        report.executions,
        report.findings.len(),
        report.finding_records.len()
    );
    for (i, rec) in report.finding_records.iter().enumerate() {
        let path = dir.join(format!("finding-{i}.record"));
        std::fs::write(&path, rec.to_bytes()).expect("record writes");
        println!(
            "wrote {}: {:?} via seed uid {} (round {}, slot {})",
            path.display(),
            rec.finding.class,
            rec.seed_uid,
            rec.round,
            rec.slot
        );
    }
}

/// Re-execute one recorded finding against its snapshot and verify it.
fn replay(record_path: &Path, snapshot_path: &Path) {
    let record_bytes = std::fs::read(record_path).expect("record reads");
    let record = match FindingRecord::from_bytes(&record_bytes) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot load {}: {e}", record_path.display());
            std::process::exit(1);
        }
    };
    let snapshot_bytes = std::fs::read(snapshot_path).expect("snapshot reads");
    let snapshot = match CampaignSnapshot::from_bytes(&snapshot_bytes) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot load {}: {e}", snapshot_path.display());
            std::process::exit(1);
        }
    };
    println!(
        "replaying {:?} from round {} slot {} (found at {} workers) ...",
        record.finding.class, record.round, record.slot, record.workers
    );
    let compiled = compile_source(SOURCE).expect("contract compiles");
    match replay_finding(compiled, &config(), &snapshot, &record) {
        Ok(outcome) => {
            println!(
                "reproduced: {} txs succeeded, {} edges covered, verdict {}",
                outcome.successes,
                outcome.covered_edges,
                if outcome.verdict_reproduced {
                    "REPRODUCED"
                } else {
                    "NOT reproduced"
                }
            );
            for finding in &outcome.findings {
                println!(
                    "  {:?} in {} at pc {}",
                    finding.class,
                    finding.function.as_deref().unwrap_or("<campaign>"),
                    finding.pc
                );
            }
            if !outcome.verdict_reproduced {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("replay failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    match (flag("--record"), flag("--replay"), flag("--snapshot")) {
        (Some(dir), None, None) => record(Path::new(&dir)),
        (None, Some(rec), Some(snap)) => replay(Path::new(&rec), Path::new(&snap)),
        _ => {
            eprintln!(
                "usage: replay --record <dir>\n       replay --replay <finding.record> --snapshot <campaign.snapshot>"
            );
            std::process::exit(2);
        }
    }
}
