//! Audit a suite of vulnerable contracts with MuFuzz and compare the findings
//! against the ground-truth annotations — the workflow behind Table III.
//!
//! Run with:
//! ```text
//! cargo run --example audit_campaign
//! ```

use mufuzz::{Fuzzer, FuzzerConfig};
use mufuzz_corpus::all_handwritten;
use mufuzz_lang::compile_source;
use mufuzz_oracles::score_contract;

fn main() {
    let mut total_tp = 0usize;
    let mut total_fn = 0usize;
    let mut total_fp = 0usize;

    for contract in all_handwritten() {
        let compiled = match compile_source(&contract.source) {
            Ok(c) => c,
            Err(e) => {
                println!("{:<22} failed to compile: {e}", contract.name);
                continue;
            }
        };
        let mut fuzzer = Fuzzer::new(compiled, FuzzerConfig::mufuzz(600).with_rng_seed(1))
            .expect("deployment should succeed");
        let report = fuzzer.run();
        let score = score_contract(&report.findings, &contract.annotations);
        total_tp += score.total_tp();
        total_fn += score.total_fn();
        total_fp += score.total_fp();

        let classes: Vec<String> = report
            .detected_classes()
            .iter()
            .map(|c| c.abbrev().to_string())
            .collect();
        println!(
            "{:<22} coverage {:>5.1}%  annotated {}  TP {}  FN {}  FP {}  detected [{}]",
            contract.name,
            report.coverage_percent(),
            contract.annotations.len(),
            score.total_tp(),
            score.total_fn(),
            score.total_fp(),
            classes.join(", ")
        );
    }

    println!("\noverall: TP {total_tp}  FN {total_fn}  FP {total_fp}");
}
