//! Common EVM value types: addresses and conversion helpers.

use crate::u256::U256;
use std::fmt;

/// A 20-byte Ethereum account address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Address(pub [u8; 20]);

impl Address {
    /// The zero address.
    pub const ZERO: Address = Address([0u8; 20]);

    /// Construct a deterministic address from a small integer. Used for test
    /// accounts, fuzzer sender pools and corpus contracts.
    pub fn from_low_u64(v: u64) -> Self {
        let mut bytes = [0u8; 20];
        bytes[12..20].copy_from_slice(&v.to_be_bytes());
        Address(bytes)
    }

    /// Widen to a 256-bit word (as the EVM does when pushing an address).
    pub fn to_u256(self) -> U256 {
        let mut word = [0u8; 32];
        word[12..].copy_from_slice(&self.0);
        U256::from_be_bytes(word)
    }

    /// Truncate a 256-bit word to an address (low 20 bytes).
    pub fn from_u256(v: U256) -> Self {
        let bytes = v.to_be_bytes();
        let mut out = [0u8; 20];
        out.copy_from_slice(&bytes[12..]);
        Address(out)
    }

    /// Returns true if this is the zero address.
    pub fn is_zero(&self) -> bool {
        self.0 == [0u8; 20]
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x")?;
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u64> for Address {
    fn from(v: u64) -> Self {
        Address::from_low_u64(v)
    }
}

/// One ether expressed in wei.
pub fn ether(n: u64) -> U256 {
    U256::from_u64(n).wrapping_mul(U256::from_u128(1_000_000_000_000_000_000))
}

/// One finney (0.001 ether) expressed in wei.
pub fn finney(n: u64) -> U256 {
    U256::from_u64(n).wrapping_mul(U256::from_u128(1_000_000_000_000_000))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_u256_roundtrip() {
        let a = Address::from_low_u64(0xdead_beef);
        assert_eq!(Address::from_u256(a.to_u256()), a);
    }

    #[test]
    fn address_truncates_high_bytes() {
        let v = U256::MAX;
        let a = Address::from_u256(v);
        assert_eq!(a.0, [0xffu8; 20]);
    }

    #[test]
    fn zero_address() {
        assert!(Address::ZERO.is_zero());
        assert!(!Address::from_low_u64(1).is_zero());
    }

    #[test]
    fn display_formats_as_hex() {
        let a = Address::from_low_u64(0xab);
        assert_eq!(format!("{a}"), "0x00000000000000000000000000000000000000ab");
    }

    #[test]
    fn denominations() {
        assert_eq!(ether(1), U256::from_u128(1_000_000_000_000_000_000));
        assert_eq!(finney(1000), ether(1));
        assert_eq!(finney(88), U256::from_u128(88_000_000_000_000_000));
    }
}
