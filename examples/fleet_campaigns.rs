//! Fleet-mode quickstart: several contracts fuzzed concurrently on one
//! `CampaignService`, with live event streaming and a checkpoint/resume
//! round trip.
//!
//! Run with:
//! ```text
//! cargo run --example fleet_campaigns
//! MUFUZZ_WORKERS=8 cargo run --example fleet_campaigns
//! ```

use mufuzz::prelude::*;
use mufuzz_corpus::contracts;
use std::thread;
use std::time::Duration;

fn main() {
    let threads = std::env::var("MUFUZZ_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);

    // One pool for the whole fleet; every campaign is scheduled as
    // (campaign, mutant-batch) tasks across these threads.
    let service = CampaignService::new(threads);
    println!("fleet pool: {} thread(s)\n", service.thread_count());

    // Submit the sweep up front — submit() never blocks.
    let handles: Vec<CampaignHandle> = [
        contracts::crowdsale().source,
        contracts::game().source,
        contracts::reentrant_bank().source,
    ]
    .iter()
    .map(|source| {
        let compiled = compile_source(source).expect("corpus contract compiles");
        service
            .submit(compiled, FuzzerConfig::mufuzz(2_000).with_rng_seed(7))
            .expect("deployment succeeds")
    })
    .collect();

    // Poll and stream events while the fleet runs.
    loop {
        let mut running = 0;
        for handle in &handles {
            for event in handle.events() {
                match event {
                    CampaignEvent::Started { contract } => {
                        println!("[{contract}] started");
                    }
                    CampaignEvent::Coverage {
                        executions,
                        covered_edges,
                        coverage,
                        ..
                    } => println!(
                        "[{}] {executions} execs, {covered_edges} edges ({:.1}%)",
                        handle.contract(),
                        coverage * 100.0
                    ),
                    CampaignEvent::Finding(finding) => {
                        println!("[{}] FOUND {:?}", handle.contract(), finding.class);
                    }
                    CampaignEvent::Paused { executions } => {
                        println!("[{}] paused at {executions}", handle.contract());
                    }
                    CampaignEvent::Completed => println!("[{}] done", handle.contract()),
                }
            }
            if matches!(handle.poll(), CampaignProgress::Running { .. }) {
                running += 1;
            }
        }
        if running == 0 {
            break;
        }
        thread::sleep(Duration::from_millis(10));
    }

    println!();
    for handle in handles {
        let report = handle.wait();
        println!(
            "{:<14} {:>5.1}% coverage, {} seeds, {} finding(s)",
            report.contract,
            report.coverage_percent(),
            report.corpus_size,
            report.findings.len()
        );
    }

    // Checkpoint/resume: pause a fresh campaign mid-flight, serialize it,
    // and finish it later from the snapshot bytes.
    println!("\ncheckpoint/resume round trip:");
    let compiled = compile_source(&contracts::crowdsale().source).unwrap();
    let config = FuzzerConfig::mufuzz(2_000).with_rng_seed(7).with_workers(1);
    let handle = service
        .submit_with(compiled, config.clone(), SubmitOptions::pause_at(500))
        .unwrap();
    handle.join();
    let snapshot = handle.checkpoint().expect("paused campaign checkpoints");
    let bytes = snapshot.to_bytes();
    println!(
        "  paused at {} execs, snapshot is {} bytes",
        snapshot.executions(),
        bytes.len()
    );

    let restored = CampaignSnapshot::from_bytes(&bytes).expect("snapshot parses");
    let compiled = compile_source(&contracts::crowdsale().source).unwrap();
    let report = service
        .resume(compiled, config, &restored)
        .expect("snapshot resumes")
        .wait();
    println!(
        "  resumed to completion: {} execs, {:.1}% coverage (bit-identical \
         to an uninterrupted run at workers=1)",
        report.executions,
        report.coverage_percent()
    );
}
