//! Code generator: mini-Solidity AST → EVM bytecode.
//!
//! The compiler produces the three artefacts MuFuzz consumes (§IV-A of the
//! paper): runtime bytecode, the ABI, and the AST itself (retained inside
//! [`CompiledContract`] for the data-flow analyses). It also reports the
//! program-counter range of every function so branches observed at run time
//! can be attributed to source functions.

use crate::abi::ContractAbi;
use crate::asm::{Assembler, Label};
use crate::ast::{AssignOp, BinOp, Contract, EnvValue, Expr, Function, LValue, Stmt, Type};
use mufuzz_evm::{Opcode, U256};
use std::collections::HashMap;
use std::fmt;

/// Memory offset where local variables start (the area below is keccak
/// scratch space).
const LOCALS_BASE: u64 = 0x80;

/// A compilation error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError {
    /// Description of the problem.
    pub message: String,
}

impl CompileError {
    fn new(message: impl Into<String>) -> Self {
        CompileError {
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

/// Storage layout: one slot per state variable, in declaration order.
/// Mapping elements live at `keccak256(key ++ slot)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StorageLayout {
    slots: HashMap<String, u64>,
}

impl StorageLayout {
    /// Build the layout for a contract.
    pub fn for_contract(contract: &Contract) -> StorageLayout {
        let slots = contract
            .state_vars
            .iter()
            .enumerate()
            .map(|(i, v)| (v.name.clone(), i as u64))
            .collect();
        StorageLayout { slots }
    }

    /// Slot of a state variable.
    pub fn slot(&self, name: &str) -> Option<u64> {
        self.slots.get(name).copied()
    }

    /// Number of state variables.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if the contract has no state variables.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// Post-assembly information about one dispatchable function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FunctionInfo {
    /// Function name.
    pub name: String,
    /// 4-byte selector (None for the fallback function).
    pub selector: Option<[u8; 4]>,
    /// First program counter of the function body.
    pub entry_pc: usize,
    /// One past the last program counter of the function body.
    pub end_pc: usize,
    /// Whether the function accepts ether.
    pub payable: bool,
}

impl FunctionInfo {
    /// True if the given program counter lies inside this function.
    pub fn contains_pc(&self, pc: usize) -> bool {
        pc >= self.entry_pc && pc < self.end_pc
    }
}

/// The full output of compiling one contract.
#[derive(Clone, Debug)]
pub struct CompiledContract {
    /// Contract name.
    pub name: String,
    /// Runtime bytecode installed at the contract address.
    pub runtime: Vec<u8>,
    /// Constructor bytecode executed once at deployment.
    pub constructor: Vec<u8>,
    /// ABI for all dispatchable functions.
    pub abi: ContractAbi,
    /// The source AST (consumed by the static analyses).
    pub contract: Contract,
    /// Per-function program-counter ranges in the runtime code.
    pub functions: Vec<FunctionInfo>,
    /// Storage layout.
    pub layout: StorageLayout,
}

impl CompiledContract {
    /// The function whose body contains `pc`, if any.
    pub fn function_at_pc(&self, pc: usize) -> Option<&FunctionInfo> {
        self.functions.iter().find(|f| f.contains_pc(pc))
    }

    /// Number of instructions in the runtime code (the paper's small/large
    /// dataset split is by compiled instruction count).
    pub fn instruction_count(&self) -> usize {
        mufuzz_evm::disassemble(&self.runtime).len()
    }
}

/// Compile a parsed contract.
pub fn compile_contract(contract: &Contract) -> Result<CompiledContract, CompileError> {
    let layout = StorageLayout::for_contract(contract);
    let abi = ContractAbi::from_contract(contract);

    // ---- constructor code ----
    let mut ctor_asm = Assembler::new();
    {
        let mut ctx = FnCtx::new_constructor(contract, &layout);
        // State variable initialisers run first.
        for (idx, var) in contract.state_vars.iter().enumerate() {
            if let Some(init) = &var.initial {
                compile_expr(&mut ctor_asm, &mut ctx, init)?;
                ctor_asm.push_u64(idx as u64);
                ctor_asm.op(Opcode::SStore);
            }
        }
        for stmt in &contract.constructor {
            compile_stmt(&mut ctor_asm, &mut ctx, stmt)?;
        }
        ctor_asm.op(Opcode::Stop);
    }
    let (constructor, _) = ctor_asm
        .assemble()
        .map_err(|e| CompileError::new(e.to_string()))?;

    // ---- runtime code ----
    let mut asm = Assembler::new();
    let callable: Vec<&Function> = contract
        .functions
        .iter()
        .filter(|f| f.visibility.is_callable() && !f.name.is_empty())
        .collect();
    let fallback = contract
        .functions
        .iter()
        .find(|f| f.name.is_empty() && f.visibility.is_callable());

    // Dispatcher: load the selector and compare against each function.
    asm.push_u64(0);
    asm.op(Opcode::CallDataLoad);
    asm.push_u64(0xe0);
    asm.op(Opcode::Shr);
    let mut fn_labels: Vec<(Label, &Function, [u8; 4])> = Vec::new();
    for f in &callable {
        let abi_entry = abi
            .function(&f.name)
            .ok_or_else(|| CompileError::new(format!("missing ABI entry for '{}'", f.name)))?;
        let label = asm.new_label();
        asm.op(Opcode::Dup(1));
        asm.push_bytes(&abi_entry.selector);
        asm.op(Opcode::Eq);
        asm.push_label(label);
        asm.op(Opcode::JumpI);
        fn_labels.push((label, f, abi_entry.selector));
    }
    // No selector matched: fall through to the fallback body (or accept ether
    // silently when no fallback is defined).
    let fallback_label = asm.new_label();
    asm.push_label(fallback_label);
    asm.op(Opcode::Jump);

    // Function bodies: (name, selector, entry label, end label, payable).
    type FnBounds = (String, Option<[u8; 4]>, Label, Label, bool);
    let mut fn_bounds: Vec<FnBounds> = Vec::new();
    for (label, f, selector) in &fn_labels {
        let end = asm.new_label();
        asm.place(*label);
        asm.op(Opcode::Pop); // discard the duplicated selector
        compile_function_body(&mut asm, contract, &layout, f)?;
        asm.op(Opcode::Stop);
        asm.place(end);
        asm.op(Opcode::Stop);
        fn_bounds.push((f.name.clone(), Some(*selector), *label, end, f.payable));
    }

    // Fallback body.
    {
        let end = asm.new_label();
        asm.place(fallback_label);
        asm.op(Opcode::Pop);
        if let Some(f) = fallback {
            compile_function_body(&mut asm, contract, &layout, f)?;
        }
        asm.op(Opcode::Stop);
        asm.place(end);
        asm.op(Opcode::Stop);
        fn_bounds.push((String::new(), None, fallback_label, end, true));
    }

    let (runtime, offsets) = asm
        .assemble()
        .map_err(|e| CompileError::new(e.to_string()))?;

    let functions = fn_bounds
        .into_iter()
        .map(|(name, selector, start, end, payable)| FunctionInfo {
            name,
            selector,
            entry_pc: offsets[&start],
            end_pc: offsets[&end],
            payable,
        })
        .collect();

    Ok(CompiledContract {
        name: contract.name.clone(),
        runtime,
        constructor,
        abi,
        contract: contract.clone(),
        functions,
        layout,
    })
}

/// Compile the prologue (payability check, parameter binding) and body of a
/// function.
fn compile_function_body(
    asm: &mut Assembler,
    contract: &Contract,
    layout: &StorageLayout,
    f: &Function,
) -> Result<(), CompileError> {
    let mut ctx = FnCtx::new_function(contract, layout, f);
    // Non-payable functions revert when sent ether, like solc output. This
    // also creates the realistic "guard branch" structure fuzzers must handle.
    if !f.payable {
        let ok = asm.new_label();
        asm.op(Opcode::CallValue);
        asm.op(Opcode::IsZero);
        asm.push_label(ok);
        asm.op(Opcode::JumpI);
        asm.push_u64(0);
        asm.push_u64(0);
        asm.op(Opcode::Revert);
        asm.place(ok);
    }
    for stmt in &f.body {
        compile_stmt(asm, &mut ctx, stmt)?;
    }
    Ok(())
}

/// Where an identifier lives.
enum Loc {
    /// Memory-resident local variable at the given offset.
    Local(u64),
    /// Function parameter at the given index.
    Param(usize),
    /// Scalar state variable in the given storage slot.
    Storage(u64),
    /// Mapping state variable whose elements hash from the given slot.
    Mapping(u64),
}

/// Per-function compilation context.
struct FnCtx<'a> {
    contract: &'a Contract,
    layout: &'a StorageLayout,
    params: Vec<String>,
    locals: HashMap<String, u64>,
    next_local: u64,
    /// Calldata offset of the first parameter word (4 in functions where a
    /// selector precedes the arguments, 0 in the constructor).
    args_base: u64,
}

impl<'a> FnCtx<'a> {
    fn new_function(contract: &'a Contract, layout: &'a StorageLayout, f: &Function) -> Self {
        FnCtx {
            contract,
            layout,
            params: f.params.iter().map(|p| p.name.clone()).collect(),
            locals: HashMap::new(),
            next_local: LOCALS_BASE,
            args_base: 4,
        }
    }

    fn new_constructor(contract: &'a Contract, layout: &'a StorageLayout) -> Self {
        FnCtx {
            contract,
            layout,
            params: contract
                .constructor_params
                .iter()
                .map(|p| p.name.clone())
                .collect(),
            locals: HashMap::new(),
            next_local: LOCALS_BASE,
            args_base: 0,
        }
    }

    fn declare_local(&mut self, name: &str) -> u64 {
        let offset = self.next_local;
        self.next_local += 32;
        self.locals.insert(name.to_string(), offset);
        offset
    }

    fn resolve(&self, name: &str) -> Result<Loc, CompileError> {
        if let Some(&offset) = self.locals.get(name) {
            return Ok(Loc::Local(offset));
        }
        if let Some(index) = self.params.iter().position(|p| p == name) {
            return Ok(Loc::Param(index));
        }
        if let Some(var) = self.contract.state_var(name) {
            let slot = self
                .layout
                .slot(name)
                .ok_or_else(|| CompileError::new(format!("no storage slot for '{name}'")))?;
            return Ok(match var.ty {
                Type::Mapping(_, _) => Loc::Mapping(slot),
                _ => Loc::Storage(slot),
            });
        }
        Err(CompileError::new(format!("undefined identifier '{name}'")))
    }
}

/// Compile a statement. Statements leave the stack depth unchanged.
fn compile_stmt(asm: &mut Assembler, ctx: &mut FnCtx, stmt: &Stmt) -> Result<(), CompileError> {
    match stmt {
        Stmt::Local(name, _ty, init) => {
            compile_expr(asm, ctx, init)?;
            let offset = ctx.declare_local(name);
            asm.push_u64(offset);
            asm.op(Opcode::MStore);
        }
        Stmt::Assign(lvalue, op, value) => {
            // Compound assignments desugar to `lhs = lhs <op> value`.
            let rhs = match op {
                AssignOp::Assign => value.clone(),
                AssignOp::AddAssign | AssignOp::SubAssign | AssignOp::MulAssign => {
                    let bin = match op {
                        AssignOp::AddAssign => BinOp::Add,
                        AssignOp::SubAssign => BinOp::Sub,
                        _ => BinOp::Mul,
                    };
                    let current = match lvalue {
                        LValue::Ident(name) => Expr::Ident(name.clone()),
                        LValue::Index(name, key) => {
                            Expr::Index(Box::new(Expr::Ident(name.clone())), Box::new(key.clone()))
                        }
                    };
                    Expr::Binary(bin, Box::new(current), Box::new(value.clone()))
                }
            };
            match lvalue {
                LValue::Ident(name) => match ctx.resolve(name)? {
                    Loc::Local(offset) => {
                        compile_expr(asm, ctx, &rhs)?;
                        asm.push_u64(offset);
                        asm.op(Opcode::MStore);
                    }
                    Loc::Storage(slot) => {
                        compile_expr(asm, ctx, &rhs)?;
                        asm.push_u64(slot);
                        asm.op(Opcode::SStore);
                    }
                    Loc::Param(_) => {
                        return Err(CompileError::new(format!(
                            "cannot assign to parameter '{name}'"
                        )))
                    }
                    Loc::Mapping(_) => {
                        return Err(CompileError::new(format!(
                            "cannot assign to mapping '{name}' without a key"
                        )))
                    }
                },
                LValue::Index(name, key) => {
                    let slot = match ctx.resolve(name)? {
                        Loc::Mapping(slot) => slot,
                        _ => return Err(CompileError::new(format!("'{name}' is not a mapping"))),
                    };
                    compile_expr(asm, ctx, &rhs)?;
                    compile_mapping_slot(asm, ctx, slot, key)?;
                    asm.op(Opcode::SStore);
                }
            }
        }
        Stmt::If(cond, then_block, else_block) => {
            let else_label = asm.new_label();
            let end_label = asm.new_label();
            compile_expr(asm, ctx, cond)?;
            asm.op(Opcode::IsZero);
            asm.push_label(else_label);
            asm.op(Opcode::JumpI);
            for s in then_block {
                compile_stmt(asm, ctx, s)?;
            }
            asm.push_label(end_label);
            asm.op(Opcode::Jump);
            asm.place(else_label);
            for s in else_block {
                compile_stmt(asm, ctx, s)?;
            }
            asm.place(end_label);
        }
        Stmt::While(cond, body) => {
            let start = asm.new_label();
            let end = asm.new_label();
            asm.place(start);
            compile_expr(asm, ctx, cond)?;
            asm.op(Opcode::IsZero);
            asm.push_label(end);
            asm.op(Opcode::JumpI);
            for s in body {
                compile_stmt(asm, ctx, s)?;
            }
            asm.push_label(start);
            asm.op(Opcode::Jump);
            asm.place(end);
        }
        Stmt::Require(cond) => {
            let ok = asm.new_label();
            compile_expr(asm, ctx, cond)?;
            asm.push_label(ok);
            asm.op(Opcode::JumpI);
            asm.push_u64(0);
            asm.push_u64(0);
            asm.op(Opcode::Revert);
            asm.place(ok);
        }
        Stmt::Transfer(to, amount) => {
            // `transfer` forwards a 2300-gas stipend and reverts on failure.
            compile_external_call(asm, ctx, to, amount, CallGas::Stipend)?;
            let ok = asm.new_label();
            asm.push_label(ok);
            asm.op(Opcode::JumpI);
            asm.push_u64(0);
            asm.push_u64(0);
            asm.op(Opcode::Revert);
            asm.place(ok);
        }
        Stmt::ExprStmt(expr) => {
            compile_expr(asm, ctx, expr)?;
            asm.op(Opcode::Pop);
        }
        Stmt::SelfDestruct(beneficiary) => {
            compile_expr(asm, ctx, beneficiary)?;
            asm.op(Opcode::SelfDestruct);
        }
        Stmt::Return(value) => {
            match value {
                Some(expr) => {
                    compile_expr(asm, ctx, expr)?;
                    asm.push_u64(0);
                    asm.op(Opcode::MStore);
                    asm.push_u64(32);
                    asm.push_u64(0);
                    asm.op(Opcode::Return);
                }
                None => asm.op(Opcode::Stop),
            };
        }
        Stmt::BugMarker => {
            // LOG0 over an empty memory region: observable in the trace, no
            // semantic effect.
            asm.push_u64(0);
            asm.push_u64(0);
            asm.op(Opcode::Log(0));
        }
    }
    Ok(())
}

/// How much gas an external value transfer forwards.
enum CallGas {
    /// The 2300-gas stipend used by `transfer`/`send`.
    Stipend,
    /// All remaining gas, used by `call.value`.
    All,
}

/// Emit a `CALL` transferring `amount` to `to` with no calldata; leaves the
/// success flag on the stack.
fn compile_external_call(
    asm: &mut Assembler,
    ctx: &mut FnCtx,
    to: &Expr,
    amount: &Expr,
    gas: CallGas,
) -> Result<(), CompileError> {
    asm.push_u64(0); // ret length
    asm.push_u64(0); // ret offset
    asm.push_u64(0); // args length
    asm.push_u64(0); // args offset
    compile_expr(asm, ctx, amount)?;
    compile_expr(asm, ctx, to)?;
    match gas {
        CallGas::Stipend => asm.push_u64(2_300),
        CallGas::All => asm.op(Opcode::Gas),
    }
    asm.op(Opcode::Call);
    Ok(())
}

/// Compute the storage slot of `mapping[key]` and leave it on the stack.
fn compile_mapping_slot(
    asm: &mut Assembler,
    ctx: &mut FnCtx,
    slot: u64,
    key: &Expr,
) -> Result<(), CompileError> {
    compile_expr(asm, ctx, key)?;
    asm.push_u64(0);
    asm.op(Opcode::MStore); // mem[0..32] = key
    asm.push_u64(slot);
    asm.push_u64(0x20);
    asm.op(Opcode::MStore); // mem[32..64] = slot
    asm.push_u64(0x40);
    asm.push_u64(0);
    asm.op(Opcode::Sha3);
    Ok(())
}

/// Compile an expression; leaves exactly one word on the stack.
fn compile_expr(asm: &mut Assembler, ctx: &mut FnCtx, expr: &Expr) -> Result<(), CompileError> {
    match expr {
        Expr::Number(v) => asm.push_u256(U256::from_u128(*v)),
        Expr::Bool(b) => asm.push_u64(u64::from(*b)),
        Expr::Ident(name) => match ctx.resolve(name)? {
            Loc::Local(offset) => {
                asm.push_u64(offset);
                asm.op(Opcode::MLoad);
            }
            Loc::Param(index) => {
                asm.push_u64(ctx.args_base + 32 * index as u64);
                asm.op(Opcode::CallDataLoad);
            }
            Loc::Storage(slot) => {
                asm.push_u64(slot);
                asm.op(Opcode::SLoad);
            }
            Loc::Mapping(_) => {
                return Err(CompileError::new(format!(
                    "mapping '{name}' used without a key"
                )))
            }
        },
        Expr::Env(env) => match env {
            EnvValue::MsgSender => asm.op(Opcode::Caller),
            EnvValue::MsgValue => asm.op(Opcode::CallValue),
            EnvValue::TxOrigin => asm.op(Opcode::Origin),
            EnvValue::BlockTimestamp => asm.op(Opcode::Timestamp),
            EnvValue::BlockNumber => asm.op(Opcode::Number),
            EnvValue::This => asm.op(Opcode::Address),
        },
        Expr::Index(base, key) => {
            let name = match base.as_ref() {
                Expr::Ident(name) => name.clone(),
                _ => return Err(CompileError::new("only named mappings can be indexed")),
            };
            let slot = match ctx.resolve(&name)? {
                Loc::Mapping(slot) => slot,
                _ => return Err(CompileError::new(format!("'{name}' is not a mapping"))),
            };
            compile_mapping_slot(asm, ctx, slot, key)?;
            asm.op(Opcode::SLoad);
        }
        Expr::Binary(op, lhs, rhs) => {
            // Evaluate rhs first so lhs ends up on top, matching the EVM's
            // `a <op> b` convention where `a` is the top of the stack.
            compile_expr(asm, ctx, rhs)?;
            compile_expr(asm, ctx, lhs)?;
            match op {
                BinOp::Add => asm.op(Opcode::Add),
                BinOp::Sub => asm.op(Opcode::Sub),
                BinOp::Mul => asm.op(Opcode::Mul),
                BinOp::Div => asm.op(Opcode::Div),
                BinOp::Mod => asm.op(Opcode::Mod),
                BinOp::Lt => asm.op(Opcode::Lt),
                BinOp::Gt => asm.op(Opcode::Gt),
                BinOp::Le => {
                    asm.op(Opcode::Gt);
                    asm.op(Opcode::IsZero);
                }
                BinOp::Ge => {
                    asm.op(Opcode::Lt);
                    asm.op(Opcode::IsZero);
                }
                BinOp::Eq => asm.op(Opcode::Eq),
                BinOp::Ne => {
                    asm.op(Opcode::Eq);
                    asm.op(Opcode::IsZero);
                }
                BinOp::And => {
                    // Normalise both operands to 0/1 and multiply.
                    asm.op(Opcode::IsZero);
                    asm.op(Opcode::IsZero);
                    asm.op(Opcode::Swap(1));
                    asm.op(Opcode::IsZero);
                    asm.op(Opcode::IsZero);
                    asm.op(Opcode::And);
                }
                BinOp::Or => {
                    asm.op(Opcode::Or);
                    asm.op(Opcode::IsZero);
                    asm.op(Opcode::IsZero);
                }
            }
        }
        Expr::Not(inner) => {
            compile_expr(asm, ctx, inner)?;
            asm.op(Opcode::IsZero);
        }
        Expr::Keccak(args) => {
            if args.is_empty() || args.len() > 4 {
                return Err(CompileError::new(
                    "keccak256 supports between 1 and 4 arguments",
                ));
            }
            for (i, arg) in args.iter().enumerate() {
                compile_expr(asm, ctx, arg)?;
                asm.push_u64(32 * i as u64);
                asm.op(Opcode::MStore);
            }
            asm.push_u64(32 * args.len() as u64);
            asm.push_u64(0);
            asm.op(Opcode::Sha3);
        }
        Expr::BalanceOf(addr) => {
            compile_expr(asm, ctx, addr)?;
            asm.op(Opcode::Balance);
        }
        Expr::Send(to, amount) => {
            compile_external_call(asm, ctx, to, amount, CallGas::Stipend)?;
        }
        Expr::CallValue(to, amount) => {
            compile_external_call(asm, ctx, to, amount, CallGas::All)?;
        }
        Expr::DelegateCall(to, args) => {
            if args.len() > 4 {
                return Err(CompileError::new("delegatecall supports at most 4 words"));
            }
            for (i, arg) in args.iter().enumerate() {
                compile_expr(asm, ctx, arg)?;
                asm.push_u64(32 * i as u64);
                asm.op(Opcode::MStore);
            }
            asm.push_u64(0); // ret length
            asm.push_u64(0); // ret offset
            asm.push_u64(32 * args.len() as u64); // args length
            asm.push_u64(0); // args offset
            compile_expr(asm, ctx, to)?;
            asm.op(Opcode::Gas);
            asm.op(Opcode::DelegateCall);
        }
        Expr::Cast(_, inner) => compile_expr(asm, ctx, inner)?,
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abi::AbiValue;
    use crate::parser::parse_contract_source;
    use mufuzz_evm::{Account, Address, BlockEnv, Evm, Message, WorldState};

    const CROWDSALE: &str = r#"
        contract Crowdsale {
            uint256 phase = 0;
            uint256 goal;
            uint256 invested;
            address owner;
            mapping(address => uint256) invests;

            constructor() public {
                goal = 100 ether;
                invested = 0;
                owner = msg.sender;
            }

            function invest(uint256 donations) public payable {
                if (invested < goal) {
                    invests[msg.sender] += donations;
                    invested += donations;
                    phase = 0;
                } else {
                    phase = 1;
                }
            }

            function refund() public {
                if (phase == 0) {
                    msg.sender.transfer(invests[msg.sender]);
                    invests[msg.sender] = 0;
                }
            }

            function withdraw() public {
                if (phase == 1) {
                    bug();
                    owner.transfer(invested);
                }
            }
        }
    "#;

    fn compile(src: &str) -> CompiledContract {
        compile_contract(&parse_contract_source(src).unwrap()).unwrap()
    }

    struct Harness {
        world: WorldState,
        contract_addr: Address,
        sender: Address,
        compiled: CompiledContract,
    }

    impl Harness {
        fn deploy(src: &str) -> Harness {
            let compiled = compile(src);
            let sender = Address::from_low_u64(0xAAAA);
            let contract_addr = Address::from_low_u64(0xC0DE);
            let mut world = WorldState::new();
            world.put_account(sender, Account::eoa(mufuzz_evm::ether(10_000)));
            let mut evm = Evm::new(&mut world, BlockEnv::default());
            let result = evm.deploy(
                sender,
                contract_addr,
                &compiled.constructor,
                compiled.runtime.clone(),
                U256::ZERO,
                vec![],
            );
            assert!(result.success, "constructor failed: {:?}", result.halt);
            Harness {
                world,
                contract_addr,
                sender,
                compiled,
            }
        }

        fn call(
            &mut self,
            function: &str,
            args: &[AbiValue],
            value: U256,
        ) -> mufuzz_evm::ExecutionResult {
            let abi = self.compiled.abi.function(function).unwrap().clone();
            let data = abi.encode_call(args);
            let mut evm = Evm::new(&mut self.world, BlockEnv::default());
            evm.execute(&Message::new(self.sender, self.contract_addr, value, data))
        }

        fn storage(&self, slot: u64) -> U256 {
            self.world.storage(self.contract_addr, U256::from_u64(slot))
        }
    }

    #[test]
    fn compiles_crowdsale_with_expected_shape() {
        let compiled = compile(CROWDSALE);
        assert_eq!(compiled.abi.functions.len(), 3);
        assert!(compiled.instruction_count() > 50);
        assert_eq!(compiled.layout.slot("phase"), Some(0));
        assert_eq!(compiled.layout.slot("invests"), Some(4));
        // Function pc ranges are disjoint and ordered.
        for f in &compiled.functions {
            assert!(f.entry_pc < f.end_pc);
        }
    }

    #[test]
    fn constructor_initialises_state() {
        let h = Harness::deploy(CROWDSALE);
        // goal (slot 1) == 100 ether, owner (slot 3) == deployer.
        assert_eq!(h.storage(1), mufuzz_evm::ether(100));
        assert_eq!(h.storage(3), h.sender.to_u256());
    }

    #[test]
    fn invest_updates_state_and_phase_transition_requires_two_calls() {
        let mut h = Harness::deploy(CROWDSALE);
        let result = h.call(
            "invest",
            &[AbiValue::Uint(mufuzz_evm::ether(100))],
            U256::ZERO,
        );
        assert!(result.success, "{:?}", result.halt);
        // invested (slot 2) updated, phase (slot 0) still 0.
        assert_eq!(h.storage(2), mufuzz_evm::ether(100));
        assert_eq!(h.storage(0), U256::ZERO);
        // Second call reaches the else-branch and sets phase = 1.
        let result = h.call("invest", &[AbiValue::Uint(U256::from_u64(1))], U256::ZERO);
        assert!(result.success);
        assert_eq!(h.storage(0), U256::ONE);
    }

    #[test]
    fn withdraw_bug_branch_only_reachable_after_phase_one() {
        let mut h = Harness::deploy(CROWDSALE);
        // Calling withdraw immediately does not execute the bug marker (LOG0).
        let result = h.call("withdraw", &[], U256::ZERO);
        assert!(result.success);
        assert!(!result.trace.contains_opcode(Opcode::Log(0)));
        // Reach phase == 1, then withdraw hits the bug marker. Investments are
        // backed by real ether so the final owner.transfer can succeed.
        h.call(
            "invest",
            &[AbiValue::Uint(mufuzz_evm::ether(100))],
            mufuzz_evm::ether(100),
        );
        h.call(
            "invest",
            &[AbiValue::Uint(U256::from_u64(1))],
            U256::from_u64(1),
        );
        let result = h.call("withdraw", &[], U256::ZERO);
        assert!(result.success, "{:?}", result.halt);
        assert!(result.trace.contains_opcode(Opcode::Log(0)));
    }

    #[test]
    fn non_payable_function_rejects_value() {
        let mut h = Harness::deploy(CROWDSALE);
        let result = h.call("refund", &[], U256::from_u64(5));
        assert!(!result.success);
        // Payable function accepts value.
        let result = h.call("invest", &[AbiValue::Uint(U256::ONE)], U256::from_u64(5));
        assert!(result.success);
    }

    #[test]
    fn refund_transfers_recorded_investment() {
        let mut h = Harness::deploy(CROWDSALE);
        h.call(
            "invest",
            &[AbiValue::Uint(U256::from_u64(50))],
            U256::from_u64(50),
        );
        let before = h.world.balance(h.sender);
        let result = h.call("refund", &[], U256::ZERO);
        assert!(result.success, "{:?}", result.halt);
        assert_eq!(result.trace.calls.len(), 1);
        assert!(result.trace.calls[0].success);
        assert_eq!(
            h.world.balance(h.sender),
            before.wrapping_add(U256::from_u64(50))
        );
    }

    #[test]
    fn mapping_storage_uses_keyed_slots() {
        let mut h = Harness::deploy(CROWDSALE);
        h.call("invest", &[AbiValue::Uint(U256::from_u64(7))], U256::ZERO);
        // invests[sender] must be 7; recompute the slot hash the same way the
        // compiler does.
        let mut buf = [0u8; 64];
        buf[..32].copy_from_slice(&h.sender.to_u256().to_be_bytes());
        buf[32..].copy_from_slice(&U256::from_u64(4).to_be_bytes());
        let slot = U256::from_be_bytes(mufuzz_evm::keccak256(&buf));
        assert_eq!(h.world.storage(h.contract_addr, slot), U256::from_u64(7));
    }

    #[test]
    fn unknown_selector_hits_fallback_and_accepts_ether() {
        let mut h = Harness::deploy(CROWDSALE);
        let mut evm = Evm::new(&mut h.world, BlockEnv::default());
        let result = evm.execute(&Message::new(
            h.sender,
            h.contract_addr,
            U256::from_u64(123),
            vec![0xde, 0xad, 0xbe, 0xef],
        ));
        assert!(result.success);
        assert_eq!(h.world.balance(h.contract_addr), U256::from_u64(123));
    }

    #[test]
    fn game_contract_require_and_nested_branches() {
        let src = r#"
            contract Game {
                mapping(address => uint256) balance;
                function guessNum(uint256 number) public payable {
                    uint256 random = uint256(keccak256(abi.encodePacked(block.timestamp, now))) % 200;
                    require(msg.value == 88 finney);
                    if (number < random) {
                        uint256 luckyNum = number % 2;
                        if (luckyNum == 0) {
                            balance[msg.sender] += msg.value * 10;
                        } else {
                            balance[msg.sender] += msg.value * 5;
                        }
                    }
                }
            }
        "#;
        let mut h = Harness::deploy(src);
        // Wrong msg.value reverts at the require.
        let result = h.call("guessNum", &[AbiValue::Uint(U256::ZERO)], U256::from_u64(1));
        assert!(!result.success);
        // Correct value (88 finney) passes the require.
        let result = h.call(
            "guessNum",
            &[AbiValue::Uint(U256::ZERO)],
            mufuzz_evm::finney(88),
        );
        assert!(result.success, "{:?}", result.halt);
        // number = 0 is even; if it also beat the random draw the mapping got
        // credited — either way at least two branches executed.
        assert!(result.trace.branches.len() >= 2);
    }

    #[test]
    fn while_loop_and_return_value() {
        let src = r#"
            contract Loop {
                uint256 total;
                function sum(uint256 n) public returns (uint256) {
                    uint256 i = 0;
                    while (i < n) {
                        total = total + i;
                        i = i + 1;
                    }
                    return total;
                }
            }
        "#;
        let mut h = Harness::deploy(src);
        let result = h.call("sum", &[AbiValue::Uint(U256::from_u64(5))], U256::ZERO);
        assert!(result.success, "{:?}", result.halt);
        // 0+1+2+3+4 = 10
        assert_eq!(U256::from_be_slice(&result.output), U256::from_u64(10));
        assert_eq!(h.storage(0), U256::from_u64(10));
    }

    #[test]
    fn send_and_callvalue_and_delegatecall_compile_and_run() {
        let src = r#"
            contract Wallet {
                uint256 marker;
                function pay(address to, uint256 amount) public payable {
                    to.send(amount);
                    to.call.value(amount)();
                    marker = 1;
                }
            }
        "#;
        let mut h = Harness::deploy(src);
        let result = h.call(
            "pay",
            &[
                AbiValue::Address(Address::from_low_u64(0x77)),
                AbiValue::Uint(U256::from_u64(3)),
            ],
            U256::from_u64(10),
        );
        assert!(result.success, "{:?}", result.halt);
        assert_eq!(result.trace.calls.len(), 2);
        // send forwards the stipend, call.value forwards (much) more gas.
        assert_eq!(result.trace.calls[0].gas, 2_300);
        assert!(result.trace.calls[1].gas > 2_300);
        assert_eq!(h.storage(0), U256::ONE);
        assert_eq!(
            h.world.balance(Address::from_low_u64(0x77)),
            U256::from_u64(6)
        );
    }

    #[test]
    fn selfdestruct_and_origin_and_blockdep_compile() {
        let src = r#"
            contract Misc {
                address owner;
                constructor() public { owner = msg.sender; }
                function kill() public {
                    require(tx.origin == owner);
                    selfdestruct(msg.sender);
                }
                function lucky() public returns (uint256) {
                    if (block.timestamp % 2 == 0) {
                        return 1;
                    }
                    return 0;
                }
            }
        "#;
        let mut h = Harness::deploy(src);
        let result = h.call("lucky", &[], U256::ZERO);
        assert!(result.success);
        let result = h.call("kill", &[], U256::ZERO);
        assert!(result.success, "{:?}", result.halt);
        assert_eq!(result.trace.self_destructs.len(), 1);
        assert!(result.trace.self_destructs[0].caller_guarded);
    }

    #[test]
    fn constructor_arguments_are_read_from_calldata() {
        let src = r#"
            contract Init {
                uint256 limit;
                constructor(uint256 l) public { limit = l; }
                function get() public returns (uint256) { return limit; }
            }
        "#;
        let compiled = compile(src);
        let sender = Address::from_low_u64(1);
        let contract_addr = Address::from_low_u64(2);
        let mut world = WorldState::new();
        world.put_account(sender, Account::eoa(mufuzz_evm::ether(1)));
        let mut evm = Evm::new(&mut world, BlockEnv::default());
        let args = U256::from_u64(555).to_be_bytes().to_vec();
        let result = evm.deploy(
            sender,
            contract_addr,
            &compiled.constructor,
            compiled.runtime.clone(),
            U256::ZERO,
            args,
        );
        assert!(result.success);
        assert_eq!(
            world.storage(contract_addr, U256::ZERO),
            U256::from_u64(555)
        );
    }

    #[test]
    fn compile_errors_for_undefined_and_misused_identifiers() {
        let undefined =
            parse_contract_source("contract C { function f() public { x = 1; } }").unwrap();
        assert!(compile_contract(&undefined).is_err());

        let mapping_misuse = parse_contract_source(
            "contract C { mapping(address => uint256) m; function f() public { m = 1; } }",
        )
        .unwrap();
        assert!(compile_contract(&mapping_misuse).is_err());
    }

    #[test]
    fn function_info_maps_pcs_to_functions() {
        let compiled = compile(CROWDSALE);
        let invest = compiled
            .functions
            .iter()
            .find(|f| f.name == "invest")
            .unwrap();
        assert!(compiled
            .function_at_pc(invest.entry_pc + 1)
            .map(|f| f.name == "invest")
            .unwrap_or(false));
    }
}
