//! Throughput benchmark of the campaign engine: fuzz the quickstart
//! PiggyBank contract with 1 worker and with N workers — the N-worker
//! campaign both on the sharded seed scheduler (the default: lock-free
//! steady-state draws) and on the historical global draw under the state
//! lock — then sweep three corpus contracts through one `CampaignService`
//! fleet pool, sequentially and concurrently. A raw-harness interpreter
//! A/B isolates the execution tiers from scheduler effects: three kernels
//! — a straight-line local-arithmetic mixer, a branchy unrolled
//! Collatz-style router, and a storage-heavy mapping ledger — each
//! executed through `ContractHarness` directly under three tiers
//! (pre-decoded instruction-at-a-time, block-lowered `match` dispatch,
//! and block-lowered direct-threaded dispatch), measured best-of-N
//! interleaved to shrug off scheduler noise. Reports execs/sec for each
//! and emits a machine-readable `BENCH_throughput.json` so CI can track
//! the performance trajectory, the sharded-vs-global scaling claim, the
//! fleet-concurrency claim, the block-lowering speedup and the
//! direct-threading speedup across PRs.
//!
//! Run with:
//! ```text
//! cargo run --release --example throughput            # N = 4 workers
//! MUFUZZ_WORKERS=8 cargo run --release --example throughput
//! MUFUZZ_EXECS=100000 cargo run --release --example throughput
//! cargo run --release --example throughput -- --kernel branchy
//! ```
//!
//! `--kernel <straight_line|branchy|storage|all>` restricts the
//! interpreter A/B to one kernel (default: all three).

use mufuzz::{
    CampaignReport, CampaignService, ContractHarness, Fuzzer, FuzzerConfig, Sequence, TxInput,
};
use mufuzz_corpus::{contracts, ingest};
use mufuzz_evm::{ExecFrame, U256};
use mufuzz_lang::{compile_source, CompiledContract};
use std::time::Instant;

const SOURCE: &str = r#"
contract PiggyBank {
    address owner;
    uint256 total;
    mapping(address => uint256) deposits;

    constructor() public { owner = msg.sender; }

    function deposit() public payable {
        require(msg.value > 0);
        deposits[msg.sender] += msg.value;
        total += msg.value;
    }

    function withdraw(uint256 amount) public {
        require(deposits[msg.sender] >= amount);
        deposits[msg.sender] -= amount;
        total -= amount;
        msg.sender.transfer(amount);
    }

    function smash() public {
        if (total > 10 ether) {
            bug();
            selfdestruct(msg.sender);
        }
    }
}
"#;

fn campaign(workers: usize, executions: usize, sharded: bool) -> CampaignReport {
    let compiled = compile_source(SOURCE).expect("contract should compile");
    let config = FuzzerConfig::mufuzz(executions)
        .with_rng_seed(42)
        .with_workers(workers)
        .with_sharded_scheduler(sharded);
    Fuzzer::new(compiled, config)
        .expect("deployment should succeed")
        .run()
}

/// The same N-worker campaign under the barrier-synchronized round profile:
/// what reproducibility costs relative to free-running workers.
fn round_campaign(workers: usize, executions: usize) -> CampaignReport {
    let compiled = compile_source(SOURCE).expect("contract should compile");
    let config = FuzzerConfig::mufuzz(executions)
        .with_rng_seed(42)
        .with_workers(workers)
        .with_round_mode();
    Fuzzer::new(compiled, config)
        .expect("deployment should succeed")
        .run()
}

/// The interpreter-A/B kernels, each stressing a different part of the
/// dispatcher. The first three are toy-language sources; `ingested` is the
/// committed real-bytecode fixture (ABI JSON + runtime hex, no source) and
/// measures the full ingestion execution path including per-transaction
/// typed calldata encoding for its dynamic `uint256[]` parameter.
const KERNELS: [&str; 4] = ["straight_line", "branchy", "storage", "ingested"];

/// Kernel source for the interpreter A/B. Scheduler, corpus and
/// branch-record costs are identical across the tiers, so a mixed campaign
/// workload buries the dispatch difference in symmetric overhead — these
/// kernels isolate it, each from a different angle:
///
/// * `straight_line` — an unrolled run of `x = x * c1 + c2` over
///   memory-resident locals: pure fused-arithmetic throughput, the best
///   case for block settlement and superinstructions.
/// * `branchy` — an unrolled Collatz-style router whose every step takes a
///   data-dependent branch: short blocks and dense `JUMPI`s, the workload
///   where `match` dispatch mispredicts and direct threading should win.
/// * `storage` — a mapping-and-counter ledger dominated by
///   `balances[msg.sender] +=` / `total +=` idioms: the `MapSlot*`,
///   `PushSLoad`/`PushSStore` and `StorageExprStore` fusion arms.
fn kernel_source(kernel: &str) -> String {
    match kernel {
        "straight_line" => {
            let mut body = String::new();
            for k in 0..48u64 {
                body.push_str(&format!(
                    "        x = x * {} + {};\n",
                    3 + k % 7,
                    11 + k % 13
                ));
                if k % 4 == 3 {
                    body.push_str("        y = y + x;\n");
                }
            }
            format!(
                "contract Mixer {{\n    uint256 acc;\n    function mix(uint256 seed) public returns (uint256) {{\n        uint256 x = seed;\n        uint256 y = 1;\n{body}        acc = y;\n        return y;\n    }}\n}}\n"
            )
        }
        "branchy" => {
            let mut body = String::new();
            for k in 0..24u64 {
                body.push_str(&format!(
                    "        if (x % 2 == 0) {{ x = x / 2; y = y + {}; }} else {{ x = x * 3 + 1; y = y + {}; }}\n",
                    3 + k % 5,
                    7 + k % 11
                ));
                if k % 6 == 5 {
                    body.push_str(
                        "        if (x > 1000000) { x = x % 1000003; } else { y = y * 2 + 1; }\n",
                    );
                }
            }
            format!(
                "contract Router {{\n    uint256 acc;\n    function route(uint256 seed) public returns (uint256) {{\n        uint256 x = seed + 27;\n        uint256 y = 0;\n{body}        acc = y;\n        return y;\n    }}\n}}\n"
            )
        }
        "storage" => {
            let mut body = String::new();
            for k in 0..8u64 {
                body.push_str(&format!(
                    "        balances[msg.sender] += amount + {k};\n        cells[{}] += amount;\n        total += amount + {};\n        checksum += total + balances[msg.sender];\n",
                    k % 4,
                    k + 1
                ));
            }
            format!(
                "contract Ledger {{\n    uint256 total;\n    uint256 checksum;\n    mapping(address => uint256) balances;\n    mapping(uint256 => uint256) cells;\n    function churn(uint256 amount) public returns (uint256) {{\n{body}        return total;\n    }}\n}}\n"
            )
        }
        other => panic!("unknown kernel {other:?} (expected straight_line|branchy|storage)"),
    }
}

/// The compiled form of a kernel: toy-language sources compile, the
/// `ingested` kernel goes through the ABI + bytecode front door instead.
fn kernel_compiled(kernel: &str) -> CompiledContract {
    if kernel == "ingested" {
        let root = env!("CARGO_MANIFEST_DIR");
        let abi = std::fs::read_to_string(format!("{root}/tests/fixtures/vault_token.abi.json"))
            .expect("fixture ABI should be readable");
        let hex = std::fs::read_to_string(format!("{root}/tests/fixtures/vault_token.hex"))
            .expect("fixture bytecode should be readable");
        ingest("VaultToken", &abi, &hex)
            .expect("fixture should ingest")
            .compiled
    } else {
        compile_source(&kernel_source(kernel)).expect("kernel should compile")
    }
}

/// The entry-point transaction of a kernel.
fn kernel_tx(kernel: &str) -> TxInput {
    if kernel == "ingested" {
        // `sum(uint256[])`: lane 0 selects a 4-element array, lanes 1..5
        // are the elements — every transaction walks the dispatcher, the
        // calldata loop and the head/tail ABI encoder.
        let lanes: Vec<U256> = [4u64, 11, 22, 33, 44]
            .iter()
            .map(|&v| U256::from_u64(v))
            .collect();
        return TxInput::new("sum", 0, U256::ZERO, &lanes);
    }
    let function = match kernel {
        "straight_line" => "mix",
        "branchy" => "route",
        _ => "churn",
    };
    TxInput::new(function, 0, U256::ZERO, &[U256::from_u64(12345)])
}

/// One timed chunk of the interpreter A/B: `iters` transactions of the
/// kernel through `ContractHarness` pinned to one tier. Returns tx/sec.
fn tier_chunk(kernel: &str, block_lowering: bool, direct_threaded: bool, iters: usize) -> f64 {
    let compiled = kernel_compiled(kernel);
    let config = FuzzerConfig::default()
        .with_block_lowering(block_lowering)
        .with_direct_threaded(direct_threaded);
    let harness = ContractHarness::new(compiled, &config).expect("kernel should deploy");
    let seq = Sequence::new(vec![kernel_tx(kernel)]);
    let mut frame = ExecFrame::new();
    let start = Instant::now();
    let mut successes = 0usize;
    for _ in 0..iters {
        successes += harness.execute_sequence_with(&seq, &mut frame).successes;
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert!(successes == iters, "kernel transactions should all succeed");
    iters as f64 / elapsed
}

/// Best-of-N rates for one kernel under all three tiers, interleaved so a
/// machine-noise spike hits every side instead of biasing one. Returns
/// `(predecoded, block_match, direct_threaded)` tx/sec.
fn kernel_rates(kernel: &str, rounds: usize, iters: usize) -> (f64, f64, f64) {
    tier_chunk(kernel, true, true, iters / 2); // warm-up: page in all tiers
    tier_chunk(kernel, true, false, iters / 2);
    tier_chunk(kernel, false, false, iters / 2);
    let (mut pre, mut blk, mut thr) = (0.0f64, 0.0f64, 0.0f64);
    for _ in 0..rounds {
        pre = pre.max(tier_chunk(kernel, false, false, iters));
        blk = blk.max(tier_chunk(kernel, true, false, iters));
        thr = thr.max(tier_chunk(kernel, true, true, iters));
    }
    (pre, blk, thr)
}

fn print_report(report: &CampaignReport, sharded: bool) {
    println!(
        "workers={} scheduler={}: {} execs in {} ms -> {:.0} execs/sec ({:.1}% coverage)",
        report.workers,
        if sharded { "sharded" } else { "global" },
        report.executions,
        report.elapsed_ms,
        report.execs_per_sec(),
        report.coverage_percent()
    );
}

/// One JSON record per measured configuration.
fn json_entry(report: &CampaignReport, sharded: bool) -> String {
    format!(
        concat!(
            "{{\"workers\": {}, \"sharded_scheduler\": {}, \"executions\": {}, ",
            "\"elapsed_ms\": {}, \"execs_per_sec\": {:.1}, \"coverage_percent\": {:.2}}}"
        ),
        report.workers,
        sharded,
        report.executions,
        report.elapsed_ms,
        report.execs_per_sec(),
        report.coverage_percent()
    )
}

/// JSON record for one interpreter tier of the block-lowering A/B (the
/// historical top-level keys CI tracks across PRs).
fn tier_json(block_lowering: bool, rate: f64) -> String {
    format!(
        "{{\"block_lowering\": {}, \"benchmark\": \"local-arithmetic kernel\", \"execs_per_sec\": {:.1}}}",
        block_lowering, rate
    )
}

/// JSON record for one kernel: all three tiers side by side.
fn kernel_json(kernel: &str, pre: f64, blk: f64, thr: f64) -> String {
    format!(
        concat!(
            "\"{}\": {{\"predecoded\": {:.1}, \"block_match\": {:.1}, ",
            "\"direct_threaded\": {:.1}}}"
        ),
        kernel, pre, blk, thr
    )
}

/// Sweep three corpus contracts through one fleet pool of `threads`
/// threads. `concurrent` submits all three up front (the fleet case);
/// otherwise each campaign is waited out before the next is submitted (the
/// sequential baseline). Returns `(total executions, elapsed ms)`.
fn fleet_sweep(threads: usize, executions: usize, concurrent: bool) -> (usize, u64) {
    let sources = [
        contracts::crowdsale().source,
        contracts::game().source,
        contracts::reentrant_bank().source,
    ];
    let service = CampaignService::new(threads);
    let config = || FuzzerConfig::mufuzz(executions).with_rng_seed(42);
    let start = Instant::now();
    let total: usize = if concurrent {
        let handles: Vec<_> = sources
            .iter()
            .map(|s| {
                let compiled = compile_source(s).expect("corpus contract compiles");
                service.submit(compiled, config()).expect("deploys")
            })
            .collect();
        handles.into_iter().map(|h| h.wait().executions).sum()
    } else {
        sources
            .iter()
            .map(|s| {
                let compiled = compile_source(s).expect("corpus contract compiles");
                service
                    .submit(compiled, config())
                    .expect("deploys")
                    .wait()
                    .executions
            })
            .sum()
    };
    (total, start.elapsed().as_millis().max(1) as u64)
}

/// JSON record for one fleet sweep.
fn fleet_json(threads: usize, total: usize, elapsed_ms: u64) -> String {
    format!(
        concat!(
            "{{\"threads\": {}, \"executions\": {}, \"elapsed_ms\": {}, ",
            "\"execs_per_sec\": {:.1}}}"
        ),
        threads,
        total,
        elapsed_ms,
        total as f64 * 1000.0 / elapsed_ms as f64
    )
}

fn main() {
    let executions = std::env::var("MUFUZZ_EXECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let workers = std::env::var("MUFUZZ_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let args: Vec<String> = std::env::args().collect();
    let kernel_filter = args
        .iter()
        .position(|a| a == "--kernel")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "all".into());
    let kernels: Vec<&str> = if kernel_filter == "all" {
        KERNELS.to_vec()
    } else {
        let name = KERNELS
            .iter()
            .find(|k| **k == kernel_filter)
            .unwrap_or_else(|| {
                panic!(
                    "unknown --kernel {kernel_filter:?} \
                     (expected straight_line|branchy|storage|ingested|all)"
                )
            });
        vec![name]
    };

    // Warm-up run so page faults and lazy allocations do not skew the
    // single-worker number.
    campaign(1, executions / 10, true);

    let single = campaign(1, executions, true);
    print_report(&single, true);

    // The scaling A/B: the same N-worker campaign drawn from per-worker
    // corpus shards (lock-free steady state) vs under the state lock.
    let sharded = campaign(workers, executions, true);
    print_report(&sharded, true);
    let global = campaign(workers, executions, false);
    print_report(&global, false);
    println!(
        "speedup vs single: sharded {:.2}x, global {:.2}x; sharded vs global {:.2}x",
        sharded.execs_per_sec() / single.execs_per_sec(),
        global.execs_per_sec() / single.execs_per_sec(),
        sharded.execs_per_sec() / global.execs_per_sec()
    );

    // The determinism A/B: the same N-worker campaign under the round
    // profile. The barriers and frozen corpus views buy cross-worker-count
    // reproducibility; the contract is that they cost at most 25% of the
    // free-running throughput.
    let round = round_campaign(workers, executions);
    let round_cost = 1.0 - round.execs_per_sec() / sharded.execs_per_sec();
    println!(
        "round mode: {} execs in {} ms -> {:.0} execs/sec ({:.1}% cost vs free-running)",
        round.executions,
        round.elapsed_ms,
        round.execs_per_sec(),
        round_cost * 100.0
    );
    assert!(
        round.execs_per_sec() >= 0.75 * sharded.execs_per_sec(),
        "round mode costs {:.1}% throughput vs free-running (budget is 25%)",
        round_cost * 100.0
    );

    // The interpreter A/B: each kernel through the raw harness under all
    // three tiers. Every per-instruction gas charge, stack bounds check
    // and dispatch decision the lowering, its superinstructions and the
    // threaded handler chain remove shows up directly here.
    let mut kernel_entries = Vec::new();
    let mut legacy_keys: Option<(f64, f64)> = None;
    let mut block_tier_rates: Vec<(&str, f64)> = Vec::new();
    for kernel in &kernels {
        let (pre, blk, thr) = kernel_rates(kernel, 12, 5000);
        println!(
            "interpreter A/B ({kernel}): predecoded {pre:.0}, block-match {blk:.0} \
             ({:.2}x), direct-threaded {thr:.0} ({:.2}x vs match)",
            blk / pre,
            thr / blk
        );
        kernel_entries.push(kernel_json(kernel, pre, blk, thr));
        block_tier_rates.push((kernel, thr));
        // The historical top-level keys track the straight-line kernel
        // (falling back to whatever ran when the suite is filtered).
        if *kernel == "straight_line" || legacy_keys.is_none() {
            legacy_keys = Some((pre, blk));
        }
    }
    let (predecoded, block_lowered) = legacy_keys.expect("at least one kernel runs");

    // Ingestion guardrail: the real-bytecode kernel pays for per-transaction
    // head/tail ABI encoding on top of dispatch, but its block-tier
    // throughput must stay within 5% of the storage kernel's — the encoding
    // layer is not allowed to become the bottleneck of ingested campaigns.
    let rate_of = |name: &str| {
        block_tier_rates
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, r)| *r)
    };
    if let (Some(storage), Some(ingested)) = (rate_of("storage"), rate_of("ingested")) {
        println!(
            "ingested vs storage (block tier): {ingested:.0} vs {storage:.0} tx/sec ({:.2}x)",
            ingested / storage
        );
        assert!(
            ingested >= 0.95 * storage,
            "ingested kernel runs at {:.2}x the storage kernel's block-tier \
             throughput (floor is 0.95x)",
            ingested / storage
        );
    }

    // The fleet sweep: three corpus contracts through one CampaignService,
    // sequentially on one pool thread vs concurrently on `workers` threads.
    let fleet_budget = (executions / 10).max(500);
    let (seq_total, seq_ms) = fleet_sweep(1, fleet_budget, false);
    let (conc_total, conc_ms) = fleet_sweep(workers, fleet_budget, true);
    let seq_rate = seq_total as f64 * 1000.0 / seq_ms as f64;
    let conc_rate = conc_total as f64 * 1000.0 / conc_ms as f64;
    println!(
        "fleet sweep (3 contracts x {fleet_budget} execs): sequential {seq_rate:.0} execs/sec, \
         concurrent x{workers} {conc_rate:.0} execs/sec ({:.2}x)",
        conc_rate / seq_rate
    );

    // Machine-readable record for the CI perf-smoke artifact.
    let json = format!(
        concat!(
            "{{\n  \"benchmark\": \"piggybank\",\n  \"budget\": {},\n",
            "  \"single\": {},\n  \"parallel_sharded\": {},\n  \"parallel_global\": {},\n",
            "  \"round_mode\": {},\n",
            "  \"predecoded\": {},\n  \"block_lowered\": {},\n",
            "  \"kernels\": {{{}}},\n",
            "  \"fleet_sequential\": {},\n  \"fleet_concurrent\": {}\n}}\n"
        ),
        executions,
        json_entry(&single, true),
        json_entry(&sharded, true),
        json_entry(&global, false),
        json_entry(&round, true),
        tier_json(false, predecoded),
        tier_json(true, block_lowered),
        kernel_entries.join(", "),
        fleet_json(1, seq_total, seq_ms),
        fleet_json(workers, conc_total, conc_ms)
    );
    let path =
        std::env::var("MUFUZZ_BENCH_JSON").unwrap_or_else(|_| "BENCH_throughput.json".into());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
