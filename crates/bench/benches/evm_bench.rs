//! Micro-benchmarks of the substrate: U256 arithmetic, Keccak-256, the
//! compiler pipeline, the EVM interpreter and the static analyses.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mufuzz_analysis::ControlFlowGraph;
use mufuzz_corpus::contracts;
use mufuzz_evm::{
    keccak256, Account, Address, BlockEnv, DecodedProgram, Evm, ExecFrame, Message, ProgramCache,
    WorldState, U256,
};
use mufuzz_lang::{compile_source, AbiValue};
use std::sync::Arc;

fn bench_u256(c: &mut Criterion) {
    let a = U256::from_hex("0x1234567890abcdef1234567890abcdef1234567890abcdef1234567890abcdef")
        .unwrap();
    let b = U256::from_hex("0xfedcba0987654321fedcba0987654321").unwrap();
    let mut group = c.benchmark_group("u256");
    group.bench_function("mul", |bencher| {
        bencher.iter(|| black_box(a).overflowing_mul(black_box(b)))
    });
    group.bench_function("div_rem", |bencher| {
        bencher.iter(|| black_box(a).div_rem(black_box(b)))
    });
    group.bench_function("to_dec_string", |bencher| {
        bencher.iter(|| black_box(a).to_dec_string())
    });
    group.finish();
}

fn bench_keccak(c: &mut Criterion) {
    let mut group = c.benchmark_group("keccak256");
    for size in [32usize, 136, 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("{size}B"), |bencher| {
            bencher.iter(|| keccak256(black_box(&data)))
        });
    }
    group.finish();
}

fn bench_compiler(c: &mut Criterion) {
    let source = contracts::crowdsale().source;
    let mut group = c.benchmark_group("compiler");
    group.bench_function("compile_crowdsale", |bencher| {
        bencher.iter(|| compile_source(black_box(&source)).unwrap())
    });
    let compiled = compile_source(&source).unwrap();
    group.bench_function("cfg_build", |bencher| {
        bencher.iter(|| ControlFlowGraph::build(black_box(&compiled.runtime)))
    });
    group.finish();
}

fn bench_interpreter(c: &mut Criterion) {
    let compiled = compile_source(&contracts::crowdsale().source).unwrap();
    let sender = Address::from_low_u64(1);
    let target = Address::from_low_u64(2);
    let mut world = WorldState::new();
    world.put_account(sender, Account::eoa(mufuzz_evm::ether(1_000_000)));
    {
        let mut evm = Evm::new(&mut world, BlockEnv::default());
        evm.deploy(
            sender,
            target,
            &compiled.constructor,
            compiled.runtime.clone(),
            U256::ZERO,
            vec![],
        );
    }
    let invest = compiled.abi.function("invest").unwrap();
    let calldata = invest.encode_call(&[AbiValue::Uint(mufuzz_evm::ether(10))]);

    // Freeze the deployed world: the per-iteration snapshot is then the
    // production-shaped O(changed) copy-on-write clone.
    world.freeze();
    let msg = Message::new(sender, target, mufuzz_evm::ether(10), calldata);

    // The production pipeline: decode-once program cache + reusable frame.
    let blob = world.code(target);
    let mut cache = ProgramCache::new();
    cache.insert(Arc::clone(&blob), Arc::new(DecodedProgram::decode(&blob)));
    let mut frame = ExecFrame::new();
    c.bench_function("evm_execute_invest_tx_predecoded", |bencher| {
        bencher.iter(|| {
            let mut w = world.snapshot();
            let mut evm = Evm::new(&mut w, BlockEnv::default()).with_programs(&cache);
            let result = evm.execute_in(&msg, &mut frame);
            black_box(result.trace.instruction_count())
        })
    });

    // The legacy byte-at-a-time decoder, allocating scratch per execution.
    c.bench_function("evm_execute_invest_tx_legacy_decode", |bencher| {
        bencher.iter(|| {
            let mut w = world.snapshot();
            let mut evm = Evm::new(&mut w, BlockEnv::default());
            evm.config.legacy_decode = true;
            let result = evm.execute(&msg);
            black_box(result.trace.instruction_count())
        })
    });
}

criterion_group!(
    benches,
    bench_u256,
    bench_keccak,
    bench_compiler,
    bench_interpreter
);
criterion_main!(benches);
