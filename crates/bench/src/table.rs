//! Plain-text table rendering for the experiment binaries.

/// Render an ASCII table with a header row and aligned columns.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let columns = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(columns) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    let render_row = |out: &mut String, cells: &[String]| {
        for (i, w) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = cells.get(i).unwrap_or(&empty);
            out.push_str(&format!("| {cell:<w$} "));
        }
        out.push_str("|\n");
    };
    sep(&mut out);
    render_row(
        &mut out,
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    );
    sep(&mut out);
    for row in rows {
        render_row(&mut out, row);
    }
    sep(&mut out);
    out
}

/// Render a simple textual line chart: one labelled series of (x, y) points,
/// y expressed as a percentage bar.
pub fn render_series(title: &str, series: &[(String, Vec<(f64, f64)>)]) -> String {
    let mut out = format!("{title}\n");
    for (label, points) in series {
        out.push_str(&format!("  {label}\n"));
        for (x, y) in points {
            let bar_len = (y * 50.0).round().clamp(0.0, 50.0) as usize;
            out.push_str(&format!(
                "    {x:>8.1} | {}{} {:.1}%\n",
                "#".repeat(bar_len),
                " ".repeat(50 - bar_len),
                y * 100.0
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let out = render(
            &["Tool", "Coverage"],
            &[
                vec!["MuFuzz".into(), "90%".into()],
                vec!["sFuzz".into(), "65%".into()],
            ],
        );
        assert!(out.contains("| Tool   "));
        assert!(out.contains("| MuFuzz "));
        assert!(out.contains("| 65%"));
        // Four horizontal separators total? Three: top, header, bottom.
        assert_eq!(out.matches("+--").count() / 2, 3);
    }

    #[test]
    fn renders_series_with_bars() {
        let out = render_series(
            "coverage",
            &[("MuFuzz".into(), vec![(10.0, 0.5), (20.0, 0.9)])],
        );
        assert!(out.contains("MuFuzz"));
        assert!(out.contains("50.0%"));
        assert!(out.contains("90.0%"));
    }

    #[test]
    fn handles_ragged_rows() {
        let out = render(&["A", "B"], &[vec!["only one".into()]]);
        assert!(out.contains("only one"));
    }
}
