//! # mufuzz-repro
//!
//! Umbrella crate for the MuFuzz (ICDE 2024) reproduction workspace. It
//! re-exports every workspace crate under one roof so the top-level
//! integration tests (`tests/`) and examples (`examples/`) have a single
//! dependency surface, and so `cargo doc` renders the whole system together.

#![warn(missing_docs)]

pub use mufuzz;
pub use mufuzz_analysis;
pub use mufuzz_baselines;
pub use mufuzz_bench;
pub use mufuzz_corpus;
pub use mufuzz_evm;
pub use mufuzz_lang;
pub use mufuzz_oracles;
