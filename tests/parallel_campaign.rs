//! Integration tests for the parallel campaign engine.
//!
//! The contract: `workers == 1` replays the historical single-threaded
//! engine bit for bit (the snapshot constants below were captured from the
//! sequential implementation before the worker refactor), multi-worker
//! campaigns stay functionally equivalent (coverage, corpus growth, oracle
//! findings), and oracle results merge correctly across workers.

use mufuzz::{CampaignReport, Fuzzer, FuzzerConfig};
use mufuzz_corpus::contracts;
use mufuzz_lang::compile_source;
use mufuzz_oracles::BugClass;

fn run_crowdsale(seed: u64, workers: usize) -> CampaignReport {
    let compiled = compile_source(&contracts::crowdsale().source).unwrap();
    let config = FuzzerConfig::mufuzz(400)
        .with_rng_seed(seed)
        .with_workers(workers);
    Fuzzer::new(compiled, config).unwrap().run()
}

/// Snapshot test: a single worker must reproduce the exact campaign the
/// sequential engine produced for the same seed. The expected values were
/// recorded by running the pre-refactor implementation (400 executions on
/// the Crowdsale benchmark contract).
#[test]
fn workers_one_reproduces_the_sequential_baseline() {
    let report = run_crowdsale(11, 1);
    assert_eq!(report.covered_edges, 18);
    assert_eq!(report.total_edges, 20);
    assert_eq!(report.executions, 400);
    assert_eq!(report.corpus_size, 14);
    assert!(report.findings.is_empty());
    assert_eq!(
        report.interesting_shapes.first().map(String::as_str),
        Some("invest->refund->withdraw")
    );

    let report = run_crowdsale(42, 1);
    assert_eq!(report.covered_edges, 18);
    assert_eq!(report.corpus_size, 11);
    assert_eq!(
        report.interesting_shapes.first().map(String::as_str),
        Some("invest->refund->withdraw->invest->refund->withdraw")
    );
}

/// Two single-worker runs with the same seed are identical in every
/// reported dimension, including the timeline.
#[test]
fn single_worker_campaigns_are_fully_deterministic() {
    let a = run_crowdsale(7, 1);
    let b = run_crowdsale(7, 1);
    assert_eq!(a.covered_edges, b.covered_edges);
    assert_eq!(a.executions, b.executions);
    assert_eq!(a.corpus_size, b.corpus_size);
    assert_eq!(a.interesting_shapes, b.interesting_shapes);
    assert_eq!(a.detected_classes(), b.detected_classes());
    assert_eq!(a.timeline.len(), b.timeline.len());
    for (pa, pb) in a.timeline.iter().zip(&b.timeline) {
        assert_eq!(pa.executions, pb.executions);
        assert_eq!(pa.covered_edges, pb.covered_edges);
    }
}

/// The concurrent engine reaches the same coverage plateau as the
/// sequential one on the benchmark contract and respects the budget.
#[test]
fn four_workers_match_sequential_coverage_on_crowdsale() {
    let sequential = run_crowdsale(11, 1);
    let parallel = run_crowdsale(11, 4);
    assert_eq!(parallel.workers, 4);
    assert!(parallel.executions >= 400);
    // The budget may overshoot by the in-flight mutants (one per extra
    // worker) plus one outstanding mask-probe pass *per worker* — a pass
    // runs to completion without budget checks and costs at most
    // 6 txs x 3 words x 4 ops = 72 probes on this contract.
    assert!(parallel.executions < 400 + 4 * 72 + 4);
    // 400 executions saturate this contract from many seeds; the parallel
    // schedule must find (nearly) the same plateau regardless of interleaving.
    assert!(
        parallel.covered_edges + 2 >= sequential.covered_edges,
        "parallel {} vs sequential {}",
        parallel.covered_edges,
        sequential.covered_edges
    );
    assert!(parallel.corpus_size >= 3);
}

/// Oracle findings survive the per-worker monitor merge: the reentrant bank
/// is detected with a multi-worker campaign too.
#[test]
fn parallel_campaign_detects_reentrancy() {
    let compiled = compile_source(&contracts::reentrant_bank().source).unwrap();
    let config = FuzzerConfig::mufuzz(600).with_rng_seed(5).with_workers(4);
    let report = Fuzzer::new(compiled, config).unwrap().run();
    assert!(
        report.detected_classes().contains(&BugClass::Reentrancy),
        "findings: {:?}",
        report.findings
    );
}
