//! Dynamic-adaptive energy adjustment (paper §IV-C, Algorithm 3).
//!
//! During a pre-fuzz pass every executed path is weighted: each conditional
//! branch along the path contributes its nesting score, and branches from
//! which a *vulnerable instruction* (external call, delegatecall,
//! self-destruct, block-state read, ...) is reachable receive an extra bonus.
//! Seeds whose paths carry more weight receive proportionally more mutation
//! energy in later rounds, so deep and security-relevant branches get a fair
//! share of the fuzzing budget.

use crate::input::Seed;
use mufuzz_analysis::ControlFlowGraph;
use mufuzz_evm::ExecutionTrace;

/// Extra weight for a branch from which a vulnerable instruction is reachable.
pub const VULNERABLE_BONUS: f64 = 2.0;

/// Weight of a single executed path (Algorithm 3): the running nested score
/// plus vulnerability bonuses, averaged over the branches on the path so long
/// paths do not dominate purely by length.
pub fn path_weight(trace: &ExecutionTrace, cfg: &ControlFlowGraph) -> f64 {
    if trace.branches.is_empty() {
        return 1.0;
    }
    let mut total = 0.0;
    let mut nested_score = 0usize;
    let mut max_branch_weight: f64 = 0.0;
    for branch in &trace.branches {
        nested_score += 1;
        let static_depth = cfg
            .branches
            .get(&branch.pc)
            .map(|site| site.nesting_depth)
            .unwrap_or(nested_score);
        let vulnerable = cfg
            .branches
            .get(&branch.pc)
            .map(|site| !site.reachable_vulnerable.is_empty())
            .unwrap_or(false);
        let w = static_depth as f64 + if vulnerable { VULNERABLE_BONUS } else { 0.0 };
        total += w;
        max_branch_weight = max_branch_weight.max(w);
    }
    let avg = total / trace.branches.len() as f64;
    // Reward both the typical depth of the path and the deepest branch it
    // reached.
    (avg + max_branch_weight) / 2.0
}

/// Weight of a seed = mean path weight over its transaction traces.
pub fn seed_weight(traces: &[ExecutionTrace], cfg: &ControlFlowGraph) -> f64 {
    if traces.is_empty() {
        return 1.0;
    }
    let sum: f64 = traces.iter().map(|t| path_weight(t, cfg)).sum();
    (sum / traces.len() as f64).max(1.0)
}

/// Mean seed weight of a corpus view — Algorithm 3's normalisation base.
///
/// The "view" may be the global corpus (the mutex-guarded draw path), a
/// worker's shard mirror of it (the lock-free sharded scheduler), or a round
/// slot's frozen [`RoundView`](crate::config::DeterminismProfile::Round)
/// snapshot — all paths call this so the normalisation arithmetic — a plain
/// sum-then-divide, kept deliberately order-dependent-free — is identical to
/// the bit. Round mode computes the mean once per round at the barrier and
/// freezes it into the view, so every slot allocates energy from the same
/// denominator no matter which admissions other slots are staging.
pub fn corpus_mean_weight(seeds: &[Seed]) -> f64 {
    if seeds.is_empty() {
        return 1.0;
    }
    seeds.iter().map(|s| s.weight).sum::<f64>() / seeds.len() as f64
}

/// Energy (number of mutants) allocated to a seed.
///
/// With dynamic adjustment the allocation is proportional to the seed's weight
/// relative to the corpus mean, clamped to `[base/2, 4*base]`; without it,
/// every seed receives the base energy (the sFuzz-style default scheme used in
/// the ablation).
pub fn allocate_energy(weight: f64, mean_weight: f64, base: usize, dynamic: bool) -> usize {
    if !dynamic {
        return base.max(1);
    }
    let mean = if mean_weight <= 0.0 { 1.0 } else { mean_weight };
    let ratio = (weight / mean).clamp(0.5, 4.0);
    ((base as f64 * ratio).round() as usize).max(1)
}

/// Cross-campaign scheduling priority: the exponentially smoothed marginal
/// coverage per execution.
///
/// The fleet scheduler ranks campaigns by how much new coverage each recent
/// execution bought (`new_edges / executions` over the window since the last
/// refresh) and smooths it against the previous score so one lucky batch does
/// not monopolise the pool. Campaigns that stopped discovering edges decay
/// toward zero and yield their slots to fresher submissions.
pub fn marginal_coverage_priority(previous: f64, new_edges: usize, executions: usize) -> f64 {
    if executions == 0 {
        return previous;
    }
    let marginal = new_edges as f64 / executions as f64;
    0.5 * previous + 0.5 * marginal
}

#[cfg(test)]
mod tests {
    use super::*;
    use mufuzz_evm::{Address, BranchRecord, Taint};

    fn branch(pc: usize) -> BranchRecord {
        BranchRecord {
            pc,
            dest: pc + 10,
            taken: true,
            cond_taint: Taint::empty(),
            comparison: None,
            depth: 0,
            code_address: Address::from_low_u64(1),
        }
    }

    fn trace_with_branches(pcs: &[usize]) -> ExecutionTrace {
        let mut t = ExecutionTrace::new();
        for &pc in pcs {
            t.branches.push(branch(pc));
        }
        t
    }

    #[test]
    fn empty_trace_has_unit_weight() {
        let cfg = ControlFlowGraph::default();
        assert_eq!(path_weight(&ExecutionTrace::new(), &cfg), 1.0);
        assert_eq!(seed_weight(&[], &cfg), 1.0);
    }

    #[test]
    fn deeper_paths_weigh_more() {
        let cfg = ControlFlowGraph::default();
        let shallow = trace_with_branches(&[1]);
        let deep = trace_with_branches(&[1, 2, 3, 4, 5]);
        assert!(path_weight(&deep, &cfg) > path_weight(&shallow, &cfg));
    }

    #[test]
    fn vulnerable_reachability_adds_bonus() {
        use mufuzz_analysis::BranchSite;
        use std::collections::BTreeSet;
        let mut cfg = ControlFlowGraph::default();
        cfg.branches.insert(
            10,
            BranchSite {
                pc: 10,
                taken_target: Some(20),
                fallthrough: 12,
                nesting_depth: 1,
                reachable_vulnerable: BTreeSet::from([42]),
            },
        );
        cfg.branches.insert(
            30,
            BranchSite {
                pc: 30,
                taken_target: Some(40),
                fallthrough: 32,
                nesting_depth: 1,
                reachable_vulnerable: BTreeSet::new(),
            },
        );
        let vulnerable = trace_with_branches(&[10]);
        let benign = trace_with_branches(&[30]);
        assert!(path_weight(&vulnerable, &cfg) > path_weight(&benign, &cfg));
    }

    #[test]
    fn energy_allocation_scales_with_weight_when_dynamic() {
        let heavy = allocate_energy(8.0, 2.0, 10, true);
        let light = allocate_energy(1.0, 2.0, 10, true);
        let fixed = allocate_energy(8.0, 2.0, 10, false);
        assert!(heavy > light);
        assert_eq!(fixed, 10);
        assert_eq!(heavy, 40); // clamped at 4x
        assert_eq!(light, 5); // clamped at 0.5x
    }

    #[test]
    fn corpus_mean_weight_matches_the_arithmetic_mean() {
        use crate::input::{Seed, Sequence};
        let mut seeds: Vec<Seed> = (0..4).map(|_| Seed::new(Sequence::default())).collect();
        for (i, seed) in seeds.iter_mut().enumerate() {
            seed.weight = (i + 1) as f64;
        }
        assert_eq!(corpus_mean_weight(&seeds), 2.5);
        assert_eq!(corpus_mean_weight(&[]), 1.0);
    }

    #[test]
    fn marginal_priority_rewards_discovery_and_decays_without_it() {
        // A productive window raises the score toward its marginal rate...
        let hot = marginal_coverage_priority(0.0, 50, 100);
        assert!(hot > 0.2);
        // ...a dry window halves the previous score...
        let cooling = marginal_coverage_priority(hot, 0, 100);
        assert_eq!(cooling, hot / 2.0);
        // ...and an empty window (no executions yet) changes nothing.
        assert_eq!(marginal_coverage_priority(0.75, 9, 0), 0.75);
    }

    #[test]
    fn energy_is_always_at_least_one() {
        assert!(allocate_energy(0.0, 0.0, 0, true) >= 1);
        assert!(allocate_energy(1.0, 1.0, 0, false) >= 1);
    }
}
