//! Integration tests of the Table III / Table IV experiment machinery:
//! detection scoring over annotated datasets, for both the fuzzers and the
//! pattern-based static analyzers.

use mufuzz_baselines::{all_static_analyzers, OyenteLike, StaticAnalyzer};
use mufuzz_bench::{bug_detection, real_world};
use mufuzz_corpus::{contracts, d3, Dataset};
use mufuzz_lang::compile_source;
use mufuzz_oracles::{score_contract, BugClass};

fn mini_d2() -> Dataset {
    Dataset {
        name: "mini-D2".into(),
        contracts: vec![
            contracts::reentrant_bank(),
            contracts::suicidal_wallet(),
            contracts::tx_origin_auth(),
            contracts::frozen_vault(),
            contracts::unchecked_send(),
        ],
        historical_txs_per_contract: 0,
    }
}

#[test]
fn mufuzz_scores_more_true_positives_than_unsupporting_static_tools() {
    let dataset = mini_d2();
    let result = bug_detection(&dataset, 350, 3, 1);
    let tp_of = |name: &str| {
        result
            .rows
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, _, s)| s.total_tp())
            .unwrap()
    };
    // Oyente supports none of the five injected classes, so it cannot beat
    // MuFuzz here; Securify supports only RE and UE.
    assert!(tp_of("MuFuzz") >= tp_of("Oyente"));
    assert!(tp_of("MuFuzz") >= tp_of("Securify"));
    // MuFuzz finds most of the annotated bugs in this mini benchmark.
    assert!(tp_of("MuFuzz") >= 4, "MuFuzz TP = {}", tp_of("MuFuzz"));
}

#[test]
fn static_analyzers_report_false_positives_dynamic_oracles_avoid() {
    // The guarded delegatecall in forwardSafe() is a static-analysis false
    // positive by construction.
    let compiled = compile_source(&contracts::delegatecall_proxy().source).unwrap();
    let annotations = contracts::delegatecall_proxy().annotations;
    let mythril = all_static_analyzers()
        .into_iter()
        .find(|t| t.name() == "Mythril")
        .unwrap();
    let score = score_contract(&mythril.analyze(&compiled), &annotations);
    assert!(
        score
            .class(BugClass::UnprotectedDelegatecall)
            .false_positives
            >= 1
    );
}

#[test]
fn unsupported_classes_never_appear_in_a_tools_findings() {
    let compiled = compile_source(&contracts::suicidal_wallet().source).unwrap();
    let findings = OyenteLike.analyze(&compiled);
    assert!(findings
        .iter()
        .all(|f| f.class != BugClass::UnprotectedSelfDestruct));
}

#[test]
fn real_world_study_keeps_false_positive_rate_low() {
    let dataset = d3(6);
    let result = real_world(&dataset, 250, 5, 1);
    assert_eq!(result.total_contracts, 6);
    assert!(result.average_coverage > 0.25);
    // The reproduction should preserve the paper's headline: most alarms are
    // true positives.
    if result.total_reported() > 0 {
        let precision = result.total_tp() as f64 / result.total_reported() as f64;
        assert!(
            precision >= 0.5,
            "precision {:.2} (TP {}, reported {})",
            precision,
            result.total_tp(),
            result.total_reported()
        );
    }
}
