//! Throughput comparison of the parallel campaign engine: fuzz the
//! quickstart PiggyBank contract with 1 worker and with N workers and report
//! execs/sec for both.
//!
//! Run with:
//! ```text
//! cargo run --release --example throughput            # N = available parallelism
//! MUFUZZ_WORKERS=4 cargo run --release --example throughput
//! ```

use mufuzz::{CampaignReport, Fuzzer, FuzzerConfig};
use mufuzz_lang::compile_source;

const SOURCE: &str = r#"
contract PiggyBank {
    address owner;
    uint256 total;
    mapping(address => uint256) deposits;

    constructor() public { owner = msg.sender; }

    function deposit() public payable {
        require(msg.value > 0);
        deposits[msg.sender] += msg.value;
        total += msg.value;
    }

    function withdraw(uint256 amount) public {
        require(deposits[msg.sender] >= amount);
        deposits[msg.sender] -= amount;
        total -= amount;
        msg.sender.transfer(amount);
    }

    function smash() public {
        if (total > 10 ether) {
            bug();
            selfdestruct(msg.sender);
        }
    }
}
"#;

fn campaign(workers: usize, executions: usize) -> CampaignReport {
    let compiled = compile_source(SOURCE).expect("contract should compile");
    let config = FuzzerConfig::mufuzz(executions)
        .with_rng_seed(42)
        .with_workers(workers);
    Fuzzer::new(compiled, config)
        .expect("deployment should succeed")
        .run()
}

fn main() {
    let executions = std::env::var("MUFUZZ_EXECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let workers = std::env::var("MUFUZZ_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(mufuzz::default_workers);

    // Warm-up run so page faults and lazy allocations do not skew the
    // single-worker number.
    campaign(1, executions / 10);

    let single = campaign(1, executions);
    println!(
        "workers=1: {} execs in {} ms -> {:.0} execs/sec ({:.1}% coverage)",
        single.executions,
        single.elapsed_ms,
        single.execs_per_sec(),
        single.coverage_percent()
    );

    let parallel = campaign(workers, executions);
    println!(
        "workers={}: {} execs in {} ms -> {:.0} execs/sec ({:.1}% coverage)",
        parallel.workers,
        parallel.executions,
        parallel.elapsed_ms,
        parallel.execs_per_sec(),
        parallel.coverage_percent()
    );
    println!(
        "speedup: {:.2}x",
        parallel.execs_per_sec() / single.execs_per_sec()
    );
}
