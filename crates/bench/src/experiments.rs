//! Experiment runners for the paper's tables and figures.
//!
//! Every experiment follows the same pattern: build (or receive) a corpus
//! dataset, run one or more fuzzing strategies / static analyzers on every
//! contract, and aggregate coverage or detection statistics the way the paper
//! reports them. Campaigns on different contracts are independent: each
//! experiment submits them all to one [`CampaignService`] — a single
//! work-stealing fleet pool — and collects the reports in submission order.
//! Campaigns stay single-lane, so per-contract results are deterministic for
//! a seed no matter how many pool threads the service has.

use mufuzz::{CampaignHandle, CampaignReport, CampaignService, FuzzerConfig};
use mufuzz_baselines::{
    all_static_analyzers, coverage_baselines, FuzzRequest, FuzzingStrategy, MuFuzzStrategy,
};
use mufuzz_corpus::{BenchContract, Dataset};
use mufuzz_lang::compile_source;
use mufuzz_oracles::{score_contract, BugClass, DetectionScore};
use std::collections::BTreeMap;
use std::thread;

/// Cap on the auto-sized fleet pool (`workers == 0`).
const MAX_WORKERS: usize = 8;

/// Resolve a `--workers` value to a fleet pool size: `0` means auto (the
/// machine's available parallelism, capped at 8), anything else is taken
/// literally.
pub fn fleet_threads(workers: usize) -> usize {
    if workers == 0 {
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(MAX_WORKERS)
    } else {
        workers
    }
}

/// Submit one strategy's campaign for every contract and collect the reports
/// in submission order (contracts that fail to compile or deploy yield
/// `None`). Submissions are non-blocking, so every campaign is in flight
/// before the first wait.
fn run_strategy_on(
    service: &CampaignService,
    strategy: &dyn FuzzingStrategy,
    contracts: &[BenchContract],
    budget: usize,
    rng_seed: u64,
) -> Vec<Option<CampaignReport>> {
    let req = FuzzRequest::new(budget, rng_seed);
    let handles: Vec<Option<CampaignHandle>> = contracts
        .iter()
        .map(|c| {
            let compiled = compile_source(&c.source).ok()?;
            strategy.submit(service, compiled, &req).ok()
        })
        .collect();
    handles
        .into_iter()
        .map(|handle| handle.map(CampaignHandle::wait))
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 5: branch coverage over time
// ---------------------------------------------------------------------------

/// Averaged coverage-over-time curves for several tools on one dataset.
#[derive(Clone, Debug)]
pub struct CoverageSeries {
    /// Dataset label (`small` / `large`).
    pub dataset: String,
    /// Per-tool series of `(fraction of budget, mean coverage)` checkpoints.
    pub per_tool: Vec<(String, Vec<(f64, f64)>)>,
    /// Per-tool final mean coverage.
    pub final_coverage: Vec<(String, f64)>,
    /// Total sequence executions across every campaign (throughput numerator
    /// for the figure binaries' execs/sec reporting).
    pub total_executions: usize,
}

/// Sample a campaign's timeline at fixed budget fractions.
fn sample_timeline(report: &CampaignReport, budget: usize, checkpoints: usize) -> Vec<f64> {
    let mut samples = Vec::with_capacity(checkpoints);
    for c in 1..=checkpoints {
        let target = budget * c / checkpoints;
        let coverage = report
            .timeline
            .iter()
            .filter(|p| p.executions <= target)
            .map(|p| p.coverage)
            .fold(0.0f64, f64::max);
        samples.push(coverage);
    }
    // The curve is monotone by construction of the filter + max.
    samples
}

/// Reproduce one panel of Figure 5: run MuFuzz, IR-Fuzz, ConFuzzius and sFuzz
/// on every contract of the dataset and average coverage at fixed fractions
/// of the execution budget.
pub fn coverage_over_time(
    dataset_label: &str,
    contracts: &[BenchContract],
    budget: usize,
    rng_seed: u64,
    checkpoints: usize,
    workers: usize,
) -> CoverageSeries {
    let service = CampaignService::new(fleet_threads(workers));
    let mut per_tool = Vec::new();
    let mut final_coverage = Vec::new();
    let mut total_executions = 0usize;
    for strategy in coverage_baselines() {
        let reports = run_strategy_on(&service, strategy.as_ref(), contracts, budget, rng_seed);
        let valid: Vec<&CampaignReport> = reports.iter().flatten().collect();
        total_executions += valid.iter().map(|r| r.executions).sum::<usize>();
        let mut curve = vec![0.0f64; checkpoints];
        for report in &valid {
            for (i, v) in sample_timeline(report, budget, checkpoints)
                .iter()
                .enumerate()
            {
                curve[i] += v;
            }
        }
        let n = valid.len().max(1) as f64;
        let points: Vec<(f64, f64)> = curve
            .iter()
            .enumerate()
            .map(|(i, total)| ((i + 1) as f64 / checkpoints as f64, total / n))
            .collect();
        let final_mean = valid.iter().map(|r| r.coverage).sum::<f64>() / valid.len().max(1) as f64;
        per_tool.push((strategy.name().to_string(), points));
        final_coverage.push((strategy.name().to_string(), final_mean));
    }
    CoverageSeries {
        dataset: dataset_label.to_string(),
        per_tool,
        final_coverage,
        total_executions,
    }
}

// ---------------------------------------------------------------------------
// Figure 6: overall coverage
// ---------------------------------------------------------------------------

/// Final mean coverage per tool on small and large contracts (Figure 6).
#[derive(Clone, Debug)]
pub struct OverallCoverage {
    /// Rows `(tool, mean coverage on small, mean coverage on large)`.
    pub rows: Vec<(String, f64, f64)>,
}

/// Reproduce Figure 6.
pub fn overall_coverage(
    small: &[BenchContract],
    large: &[BenchContract],
    budget: usize,
    rng_seed: u64,
    workers: usize,
) -> OverallCoverage {
    let service = CampaignService::new(fleet_threads(workers));
    let mut rows = Vec::new();
    for strategy in coverage_baselines() {
        let mean = |contracts: &[BenchContract]| -> f64 {
            let reports = run_strategy_on(&service, strategy.as_ref(), contracts, budget, rng_seed);
            let valid: Vec<&CampaignReport> = reports.iter().flatten().collect();
            if valid.is_empty() {
                return 0.0;
            }
            valid.iter().map(|r| r.coverage).sum::<f64>() / valid.len() as f64
        };
        rows.push((strategy.name().to_string(), mean(small), mean(large)));
    }
    OverallCoverage { rows }
}

// ---------------------------------------------------------------------------
// Table III: bug detection (true positives / false negatives)
// ---------------------------------------------------------------------------

/// Aggregated detection scores per tool over the D2 dataset (Table III).
#[derive(Clone, Debug)]
pub struct BugDetectionResult {
    /// `(tool name, is_fuzzer, aggregated score)` rows.
    pub rows: Vec<(String, bool, DetectionScore)>,
    /// Total number of annotations in the dataset.
    pub total_annotations: usize,
}

/// Reproduce Table III: run the static analyzers and all fuzzing strategies
/// on the annotated D2 corpus and score TP/FN/FP per bug class.
pub fn bug_detection(
    dataset: &Dataset,
    budget: usize,
    rng_seed: u64,
    workers: usize,
) -> BugDetectionResult {
    let service = CampaignService::new(fleet_threads(workers));
    let mut rows = Vec::new();

    // Static analyzers: pure pattern matching, cheap enough to run inline.
    for tool in all_static_analyzers() {
        let mut total = DetectionScore::default();
        for c in &dataset.contracts {
            let Ok(compiled) = compile_source(&c.source) else {
                continue;
            };
            let findings = tool.analyze(&compiled);
            total.merge(&score_contract(&findings, &c.annotations));
        }
        rows.push((tool.name().to_string(), false, total));
    }

    // Fuzzers: fan every contract's campaign out on the fleet.
    for strategy in mufuzz_baselines::all_fuzzers() {
        let reports = run_strategy_on(
            &service,
            strategy.as_ref(),
            &dataset.contracts,
            budget,
            rng_seed,
        );
        let mut total = DetectionScore::default();
        for (c, report) in dataset.contracts.iter().zip(&reports) {
            if let Some(report) = report {
                total.merge(&score_contract(&report.findings, &c.annotations));
            }
        }
        rows.push((strategy.name().to_string(), true, total));
    }

    BugDetectionResult {
        rows,
        total_annotations: dataset.total_annotations(),
    }
}

// ---------------------------------------------------------------------------
// Figure 7: ablation study
// ---------------------------------------------------------------------------

/// Ablation results (Figure 7): absolute coverage and alarm counts per
/// variant on small and large contracts.
#[derive(Clone, Debug)]
pub struct AblationResult {
    /// Rows `(variant, mean coverage small, mean coverage large,
    /// alarms small, alarms large)`.
    pub rows: Vec<(String, f64, f64, usize, usize)>,
    /// Total sequence executions across every campaign (throughput numerator
    /// for the figure binaries' execs/sec reporting).
    pub total_executions: usize,
}

impl AblationResult {
    /// Coverage of a variant relative to the full system, on small contracts.
    pub fn relative_small(&self, variant: &str) -> Option<f64> {
        let full = self.rows.first()?.1;
        let row = self.rows.iter().find(|r| r.0 == variant)?;
        Some(if full > 0.0 { row.1 / full } else { 0.0 })
    }
}

/// Reproduce Figure 7: the full system against the three single-component
/// ablations, on samples of small and large contracts.
pub fn ablation(
    small: &[BenchContract],
    large: &[BenchContract],
    budget: usize,
    rng_seed: u64,
    workers: usize,
) -> AblationResult {
    let variants: Vec<(String, FuzzerConfig)> = vec![
        ("MuFuzz (full)".into(), FuzzerConfig::mufuzz(budget)),
        (
            "w/o sequence-aware mutation".into(),
            FuzzerConfig::mufuzz(budget).without_sequence_aware(),
        ),
        (
            "w/o mask-guided mutation".into(),
            FuzzerConfig::mufuzz(budget).without_mask_guidance(),
        ),
        (
            "w/o dynamic energy".into(),
            FuzzerConfig::mufuzz(budget).without_dynamic_energy(),
        ),
    ];
    let service = CampaignService::new(fleet_threads(workers));
    let mut rows = Vec::new();
    let mut total_executions = 0usize;
    for (name, config) in variants {
        let mut run_set = |contracts: &[BenchContract]| -> (f64, usize) {
            let handles: Vec<Option<CampaignHandle>> = contracts
                .iter()
                .map(|c| {
                    let compiled = compile_source(&c.source).ok()?;
                    let variant = config.clone().with_rng_seed(rng_seed);
                    service.submit(compiled, variant).ok()
                })
                .collect();
            let results: Vec<(f64, usize, usize)> = handles
                .into_iter()
                .map(|handle| match handle {
                    Some(handle) => {
                        let report = handle.wait();
                        (report.coverage, report.findings.len(), report.executions)
                    }
                    None => (0.0, 0, 0),
                })
                .collect();
            let n = results.len().max(1) as f64;
            let coverage = results.iter().map(|(c, _, _)| c).sum::<f64>() / n;
            let alarms = results.iter().map(|(_, a, _)| a).sum();
            total_executions += results.iter().map(|(_, _, e)| e).sum::<usize>();
            (coverage, alarms)
        };
        let (cov_small, alarms_small) = run_set(small);
        let (cov_large, alarms_large) = run_set(large);
        rows.push((name, cov_small, cov_large, alarms_small, alarms_large));
    }
    AblationResult {
        rows,
        total_executions,
    }
}

// ---------------------------------------------------------------------------
// Table IV: real-world case study
// ---------------------------------------------------------------------------

/// Results of the D3 real-world case study (Table IV).
#[derive(Clone, Debug, Default)]
pub struct RealWorldResult {
    /// Per bug class: `(reported alarms, true positives, false positives)`.
    pub per_class: BTreeMap<BugClass, (usize, usize, usize)>,
    /// Number of contracts with at least one alarm.
    pub flagged_contracts: usize,
    /// Number of contracts analysed.
    pub total_contracts: usize,
    /// Mean branch coverage across all contracts.
    pub average_coverage: f64,
}

impl RealWorldResult {
    /// Total reported alarms.
    pub fn total_reported(&self) -> usize {
        self.per_class.values().map(|(r, _, _)| r).sum()
    }

    /// Total true positives.
    pub fn total_tp(&self) -> usize {
        self.per_class.values().map(|(_, tp, _)| tp).sum()
    }

    /// Total false positives.
    pub fn total_fp(&self) -> usize {
        self.per_class.values().map(|(_, _, fp)| fp).sum()
    }
}

/// Reproduce Table IV: run full MuFuzz on the D3 dataset, count alarms per
/// class, and classify them as TP/FP against the injected ground truth.
pub fn real_world(
    dataset: &Dataset,
    budget: usize,
    rng_seed: u64,
    workers: usize,
) -> RealWorldResult {
    let service = CampaignService::new(fleet_threads(workers));
    let reports = run_strategy_on(
        &service,
        &MuFuzzStrategy,
        &dataset.contracts,
        budget,
        rng_seed,
    );
    let outcomes: Vec<Option<(CampaignReport, DetectionScore)>> = dataset
        .contracts
        .iter()
        .zip(reports)
        .map(|(c, report)| {
            report.map(|report| {
                let score = score_contract(&report.findings, &c.annotations);
                (report, score)
            })
        })
        .collect();

    let mut result = RealWorldResult {
        total_contracts: dataset.len(),
        ..Default::default()
    };
    let mut coverage_sum = 0.0;
    let mut analysed = 0usize;
    for outcome in outcomes.into_iter().flatten() {
        let (report, score) = outcome;
        analysed += 1;
        coverage_sum += report.coverage;
        if !report.findings.is_empty() {
            result.flagged_contracts += 1;
        }
        for class in BugClass::ALL {
            let cs = score.class(class);
            let reported = cs.true_positives + cs.false_positives;
            if reported == 0 {
                continue;
            }
            let entry = result.per_class.entry(class).or_insert((0, 0, 0));
            entry.0 += reported;
            entry.1 += cs.true_positives;
            entry.2 += cs.false_positives;
        }
    }
    result.average_coverage = if analysed > 0 {
        coverage_sum / analysed as f64
    } else {
        0.0
    };
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use mufuzz_corpus::{contracts, d1_small, d2, d3, generate_contract, GeneratorConfig};

    fn tiny_small() -> Vec<BenchContract> {
        vec![
            contracts::crowdsale(),
            generate_contract("T1", &GeneratorConfig::small(77)),
        ]
    }

    #[test]
    fn fleet_threads_resolves_auto_and_literal_values() {
        assert!(fleet_threads(0) >= 1);
        assert!(fleet_threads(0) <= MAX_WORKERS);
        assert_eq!(fleet_threads(3), 3);
    }

    #[test]
    fn coverage_over_time_produces_monotone_curves_for_all_tools() {
        let series = coverage_over_time("small", &tiny_small(), 120, 5, 6, 1);
        assert_eq!(series.per_tool.len(), 4);
        for (tool, points) in &series.per_tool {
            assert_eq!(points.len(), 6, "{tool}");
            let mut prev = 0.0;
            for (_, cov) in points {
                assert!(*cov >= prev - 1e-9, "{tool} not monotone");
                prev = *cov;
            }
        }
        // MuFuzz final coverage is positive.
        assert!(series.final_coverage[0].1 > 0.0);
    }

    #[test]
    fn overall_coverage_reports_all_four_tools() {
        let small = tiny_small();
        let large = vec![generate_contract("L1", &GeneratorConfig::large(5))];
        let result = overall_coverage(&small, &large, 100, 9, 1);
        assert_eq!(result.rows.len(), 4);
        for (tool, s, l) in &result.rows {
            assert!(*s > 0.0, "{tool} small");
            assert!(*l > 0.0, "{tool} large");
        }
    }

    #[test]
    fn bug_detection_scores_mufuzz_above_zero_tp() {
        // A tiny D2-like dataset: three handwritten vulnerable contracts.
        let dataset = Dataset {
            name: "mini-D2".into(),
            contracts: vec![
                contracts::reentrant_bank(),
                contracts::tx_origin_auth(),
                contracts::suicidal_wallet(),
            ],
            historical_txs_per_contract: 0,
        };
        let result = bug_detection(&dataset, 250, 13, 1);
        assert_eq!(result.rows.len(), 10); // 5 static + 5 fuzzers
        let mufuzz = result
            .rows
            .iter()
            .find(|(name, is_fuzzer, _)| name == "MuFuzz" && *is_fuzzer)
            .unwrap();
        assert!(mufuzz.2.total_tp() >= 2, "tp = {}", mufuzz.2.total_tp());
        assert!(result.total_annotations >= 4);
    }

    #[test]
    fn ablation_contains_four_variants_with_positive_coverage() {
        let small = tiny_small();
        let large = vec![generate_contract("L2", &GeneratorConfig::large(6))];
        let result = ablation(&small, &large, 100, 17, 1);
        assert_eq!(result.rows.len(), 4);
        for (name, cs, cl, _, _) in &result.rows {
            assert!(*cs > 0.0, "{name}");
            assert!(*cl > 0.0, "{name}");
        }
        assert!(result.relative_small("MuFuzz (full)").unwrap() > 0.99);
    }

    #[test]
    fn real_world_study_reports_coverage_and_flags() {
        let dataset = d3(4);
        let result = real_world(&dataset, 150, 23, 1);
        assert_eq!(result.total_contracts, 4);
        assert!(result.average_coverage > 0.0);
        assert!(result.total_reported() >= result.total_tp());
    }

    #[test]
    fn dataset_builders_integrate_with_experiments() {
        // Smoke test: a one-contract slice of each generated dataset runs
        // through the coverage experiment.
        let d1 = d1_small(1);
        let series = coverage_over_time("d1", &d1.contracts, 60, 3, 4, 1);
        assert_eq!(series.per_tool.len(), 4);
        let d2set = d2(0);
        assert!(d2set.len() >= 12);
    }
}
